"""Serving-tier throughput: multi-process workers over one shared snapshot.

Backs the acceptance criteria of the concurrent serving tier:

* sustained **ingest+serve**: the publisher pushes each epoch's posterior into
  the shared-memory segment while the worker pool drains a staged range-query
  workload between publishes — the deployment loop ``repro serve`` runs;
* answers are **worker-count invariant**: every pass is compared bit-for-bit
  against a serial :class:`~repro.queries.engine.QueryEngine` over the same
  published estimate, and every task in a pass reports the same
  ``(generation, epoch)`` snapshot;
* on a multi-core machine 4 workers must serve range queries at least **2x**
  faster than 1 worker (the assertion is gated on the cores actually being
  available — a single-core runner still records the measurement honestly);
* the replay path reports **p50/p99 per-operation latency** alongside
  throughput, so serving regressions show up in tail latency, not just means.

Results are recorded to ``benchmarks/results/serving_throughput.txt`` and
``BENCH_serving_throughput.json`` (the CI regression baseline's input).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets.synthetic import shifting_hotspot_stream
from repro.queries.engine import QueryEngine, QueryLog, WorkloadReplay
from repro.serving import ServingServer, WorkloadArena
from repro.streaming import StreamingEstimationService

GRID_D = 16
EPSILON = 3.5
WORKER_COUNTS = (1, 4)
SCALING_TARGET = 2.0


def _load(bench_profile) -> tuple[int, int, int]:
    """(n_epochs, users_per_epoch, queries_per_epoch) per profile."""
    if bench_profile == "paper":
        return 8, 100_000, 400_000
    if bench_profile == "smoke":
        return 3, 10_000, 60_000
    return 6, 50_000, 200_000


def test_serving_throughput_scaling(bench_profile, record_result):
    """Staged workload served at 1 vs 4 workers, bit-identical at every count."""
    n_epochs, users_per_epoch, queries_per_epoch = _load(bench_profile)
    available = os.cpu_count() or 1
    stream = shifting_hotspot_stream(
        n_epochs=n_epochs, users_per_epoch=users_per_epoch, seed=0
    )
    service = StreamingEstimationService.build(
        stream.domain, GRID_D, EPSILON, window_epochs=4, seed=1
    )
    # Ingest once; replaying the same published estimates against every worker
    # count keeps the serve passes comparable (and the answers comparable bits).
    estimates = [service.ingest_epoch(points).estimate for points in stream.epochs]
    serial_engines = [QueryEngine(estimate) for estimate in estimates]
    log = QueryLog.random(stream.domain, n_range=queries_per_epoch, seed=2)
    serial_answers = [
        engine.range_mass(log.range_queries) for engine in serial_engines
    ]

    lines = [
        f"serving tier, d={GRID_D}, eps={EPSILON}, epochs={n_epochs}, "
        f"queries/epoch={queries_per_epoch}, cpus={available}",
    ]
    throughput: dict[int, float] = {}
    grid = service.grid
    with WorkloadArena(log.range_queries) as arena:
        for workers in WORKER_COUNTS:
            with ServingServer(grid, workers=workers) as server:
                server.publish(estimates[0], epoch=0)
                server.start()
                total_seconds = 0.0
                for epoch, estimate in enumerate(estimates):
                    generation = server.publish(estimate, epoch=epoch)
                    start = time.perf_counter()
                    snapshots = server.serve_staged(arena, batch_rows=8192)
                    total_seconds += time.perf_counter() - start
                    # Every task answered from the snapshot just published...
                    assert snapshots == [(generation, epoch)] * len(snapshots)
                    # ...and bit-identically to the serial engine over it.
                    assert np.array_equal(arena.answers, serial_answers[epoch]), (
                        f"{workers}-worker pass diverged from the serial engine "
                        f"at epoch {epoch}"
                    )
                rate = n_epochs * queries_per_epoch / total_seconds
                throughput[workers] = rate
                lines.append(
                    f"workers={workers}    : {total_seconds:8.3f} s "
                    f"({rate:12,.0f} queries/s)  [bit-identical]"
                )

    serving_scaling_speedup = throughput[WORKER_COUNTS[-1]] / throughput[1]
    lines.append(
        f"4-worker scaling     : {serving_scaling_speedup:.2f}x over 1 worker"
    )

    # Tail latency through the replay path: per-kind p50/p99 must be reported.
    report, _ = WorkloadReplay(serial_engines[-1]).replay(log)
    stats = report.per_kind["range_mass"]
    assert 0 <= stats["latency_p50"] <= stats["latency_p99"]
    lines.append(
        f"serial replay        : {stats['ops_per_second']:12,.0f} queries/s "
        f"(p50 {stats['latency_p50'] * 1e3:.3f} ms, "
        f"p99 {stats['latency_p99'] * 1e3:.3f} ms)"
    )

    record_result(
        "serving_throughput",
        "\n".join(lines),
        metrics={
            "serving_scaling_speedup": serving_scaling_speedup,
            "one_worker_queries_per_second": throughput[1],
            "range_latency_p99_seconds": stats["latency_p99"],
            "cpus": available,
        },
    )
    if available >= 4:
        assert serving_scaling_speedup >= SCALING_TARGET, (
            f"4 workers only {serving_scaling_speedup:.2f}x over 1 "
            f"(target {SCALING_TARGET}x on {available} cpus)"
        )
