"""Trajectory session throughput: O(one epoch) slides vs full-window refits.

Backs the acceptance criteria of the streaming trajectory subsystem:

* a **window slide** (merged/subtracted count algebra + the closed-form Markov
  model refresh) must be at least **5x** faster than a **full refit**
  (re-reducing every stored epoch's raw oracle reports to support counts — the
  pass a batch-and-done LDPTrace deployment re-runs on every window move — then
  the same estimate) at matched point-density W2 against the surviving input
  window;
* the slid window's total must be *bit-identical* to a fresh merge over the
  surviving epoch aggregates (the exact-inverse property the speedup rests on);
* the per-epoch serving swap keeps the trajectory workload replay path available
  mid-stream at serving rates.

The workload is fixed (not profile-scaled) like the other throughput benches: a
commute-shift stream sized so the ratio has comfortable margin on slow CI
workers.  Results are recorded to ``benchmarks/results/`` and the slide speedup
is gated against ``benchmarks/baselines/smoke.json`` in CI.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np
import pytest

from repro.datasets.trajectories import commute_shift_stream
from repro.metrics.wasserstein import wasserstein2_auto
from repro.queries.engine import QueryLog, WorkloadReplay
from repro.streaming import StreamingTrajectoryService
from repro.trajectory.adapter import trajectory_point_distribution
from repro.trajectory.engine import merge_trajectory_aggregates

GRID_D = 12
EPSILON = 4.0
WINDOW_EPOCHS = 16
N_EPOCHS = 24
TRAJECTORIES_PER_EPOCH = 2_000
MAX_LENGTH = 40
N_SYNTHETIC = 2_000
SLIDE_SPEEDUP_TARGET = 5.0
#: matched accuracy: the slide path may not lose more than 25% W2 (+ absolute
#: noise floor) to the refit path — both estimate the same windowed statistic
#: from independently privatized reports, so they differ only by oracle noise.
ACCURACY_HEADROOM = 1.25
ACCURACY_FLOOR = 0.02


@pytest.fixture(scope="module")
def session():
    """Run the drifting session once; collect slide/refit measurements."""
    stream = commute_shift_stream(
        n_epochs=N_EPOCHS,
        trajectories_per_epoch=TRAJECTORIES_PER_EPOCH,
        max_length=MAX_LENGTH,
        seed=0,
    )
    service = StreamingTrajectoryService.build(
        stream.domain,
        GRID_D,
        EPSILON,
        max_length=MAX_LENGTH,
        window_epochs=WINDOW_EPOCHS,
        n_synthetic=N_SYNTHETIC,
        seed=1,
    )
    engine = service.engine
    refit_rng = np.random.default_rng(2)
    # The refit twin stores the window's raw per-epoch oracle reports — what a
    # batch-and-done deployment has to re-reduce on every window move.
    stored_reports = deque(maxlen=WINDOW_EPOCHS)
    measurements = {
        "slide_seconds": 0.0,
        "refit_seconds": 0.0,
        "epochs_measured": 0,
    }
    refit_model = None
    for epoch, trajectories in enumerate(stream.epochs):
        update = service.ingest_epoch(trajectories)
        stored_reports.append(engine.collect_reports(trajectories, seed=refit_rng))

        start = time.perf_counter()
        window_aggregate = merge_trajectory_aggregates(
            [engine.aggregate_reports(reports) for reports in stored_reports]
        )
        refit_model = engine.estimate(window_aggregate)
        refit_seconds = time.perf_counter() - start

        if epoch >= WINDOW_EPOCHS:  # steady state: the window is full and sliding
            measurements["slide_seconds"] += update.slide_seconds + update.refresh_seconds
            measurements["refit_seconds"] += refit_seconds
            measurements["epochs_measured"] += 1
    measurements["service"] = service
    measurements["stream"] = stream
    measurements["refit_model"] = refit_model
    return measurements


def test_trajectory_slide_speedup(session, record_result):
    """Slide + model refresh >= 5x faster than report re-reduction, same W2."""
    service = session["service"]
    stream = session["stream"]
    engine = service.engine
    n = session["epochs_measured"]
    slide_ms = session["slide_seconds"] / n * 1e3
    refit_ms = session["refit_seconds"] / n * 1e3
    speedup = session["refit_seconds"] / session["slide_seconds"]

    # Matched accuracy at the final epoch: synthesize from both models with the
    # same seed and score each release's point density against the (non-private)
    # surviving input window.
    truth = trajectory_point_distribution(
        stream.window_trajectories(N_EPOCHS - 1, WINDOW_EPOCHS), service.grid
    )
    slide_release = engine.synthesize(service.model, N_SYNTHETIC, seed=123)
    refit_release = engine.synthesize(session["refit_model"], N_SYNTHETIC, seed=123)
    slide_w2 = float(
        wasserstein2_auto(trajectory_point_distribution(slide_release, service.grid), truth)
    )
    refit_w2 = float(
        wasserstein2_auto(trajectory_point_distribution(refit_release, service.grid), truth)
    )

    record_result(
        "streaming_trajectory_throughput",
        "\n".join(
            [
                f"stream: {N_EPOCHS} epochs x {TRAJECTORIES_PER_EPOCH:,} trajectories   "
                f"window: {WINDOW_EPOCHS} epochs   grid: {GRID_D}x{GRID_D}   "
                f"epsilon: {EPSILON}",
                f"window slide (algebra + model refresh): {slide_ms:.3f} ms/epoch",
                f"full refit (report re-reduction):       {refit_ms:.3f} ms/epoch",
                f"slide speedup: {speedup:.1f}x (target >= {SLIDE_SPEEDUP_TARGET}x)",
                f"W2 vs surviving input window: slide {slide_w2:.4f}   "
                f"refit {refit_w2:.4f}",
            ]
        ),
        metrics={
            "trajectory_slide_speedup": speedup,
            "slide_ms_per_epoch": slide_ms,
            "refit_ms_per_epoch": refit_ms,
            "slide_w2": slide_w2,
            "refit_w2": refit_w2,
        },
    )
    # Matched accuracy first: a fast but stale/diverged window would be worthless.
    assert slide_w2 <= refit_w2 * ACCURACY_HEADROOM + ACCURACY_FLOOR
    assert speedup >= SLIDE_SPEEDUP_TARGET


def test_slid_total_is_bit_identical_to_fresh_merge(session):
    """The window total the model refresh consumes equals a fresh merge over the
    surviving epoch aggregates byte for byte — the invariant the speedup rests on."""
    window = session["service"].window
    fresh = merge_trajectory_aggregates(list(window.epoch_aggregates()))
    total = window.total
    assert np.array_equal(total.length_counts, fresh.length_counts)
    assert np.array_equal(total.start_counts, fresh.start_counts)
    assert np.array_equal(total.direction_counts, fresh.direction_counts)
    assert total.n_users == fresh.n_users


def test_mid_stream_trajectory_serving_rates(session, record_result):
    """The published engine serves the trajectory workload at batch-serving rates."""
    service = session["service"]
    log = QueryLog.random(
        service.grid.domain,
        n_range=20_000,
        n_density=20_000,
        n_od_top_k=200,
        n_transition_top_k=200,
        n_length_histograms=100,
        seed=5,
    )
    report, answers = WorkloadReplay(service.serving).replay(log)
    record_result(
        "streaming_trajectory_workload_replay",
        report.format(),
        metrics={
            "range_ops_per_second": report.per_kind["range_mass"]["ops_per_second"],
            "od_top_k_ops_per_second": report.per_kind["od_top_k"]["ops_per_second"],
        },
    )
    assert report.n_operations == log.size
    assert len(answers["od_top_k"]) == 200
    assert report.per_kind["range_mass"]["ops_per_second"] > 50_000
    assert report.per_kind["od_top_k"]["ops_per_second"] > 1_000
