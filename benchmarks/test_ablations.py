"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but measurements that back its design arguments:

* **Shrinkage** (Section VI-A): border-cell shrinkage reduces DAM's error on the
  road-network surrogates (the paper's DAM vs DAM-NS comparison isolated).
* **Radius rule** (Section V-C): the closed-form b_check is close to the empirically
  best radius.
* **Post-processing** (Algorithm 1): EM beats plain least-squares inversion.
* **Metric choice** (Section I): TV cannot separate near- from far-misplacement while
  W2 can — the motivation for the Wasserstein objective.
"""

from __future__ import annotations

import numpy as np

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.core.radius import grid_radius
from repro.datasets.loader import load_dataset
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_on_part
from repro.metrics.divergence import total_variation
from repro.metrics.wasserstein import wasserstein2_grid


def _crime_part(config):
    dataset = load_dataset("Crime", scale=config.dataset_scale, seed=config.seed)
    _, points, domain = dataset.parts[0]
    return points, domain


def test_ablation_shrinkage(benchmark, bench_config, record_result):
    points, domain = _crime_part(bench_config)

    def run():
        rows = []
        for d in (5, 10, 15):
            errors = {}
            for name in ("DAM", "DAM-NS"):
                errors[name] = float(
                    np.mean(
                        [
                            evaluate_on_part(
                                name,
                                points,
                                domain,
                                d,
                                bench_config.default_epsilon,
                                seed=seed,
                                max_users=bench_config.max_users_per_part,
                            )
                            for seed in range(max(bench_config.n_repeats, 2))
                        ]
                    )
                )
            rows.append((d, round(errors["DAM"], 4), round(errors["DAM-NS"], 4)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    dam_mean = float(np.mean([row[1] for row in rows]))
    ns_mean = float(np.mean([row[2] for row in rows]))
    record_result(
        "ablation_shrinkage",
        format_table(["d", "DAM", "DAM-NS"], rows),
        metrics={"dam_mean_w2": dam_mean, "dam_ns_mean_w2": ns_mean},
    )
    # Shrinkage never hurts materially, and the average over granularities favours it.
    assert dam_mean <= ns_mean * 1.05 + 0.005


def test_ablation_radius_rule(benchmark, bench_config, record_result):
    points, domain = _crime_part(bench_config)
    d, epsilon = 10, bench_config.default_epsilon
    optimal = grid_radius(epsilon, d, 1.0)
    candidates = sorted({1, max(optimal - 1, 1), optimal, optimal + 1, optimal + 3})

    def run():
        rows = []
        for b_hat in candidates:
            error = float(
                np.mean(
                    [
                        evaluate_on_part(
                            "DAM",
                            points,
                            domain,
                            d,
                            epsilon,
                            b_hat=b_hat,
                            seed=seed,
                            max_users=bench_config.max_users_per_part,
                        )
                        for seed in range(max(bench_config.n_repeats, 2))
                    ]
                )
            )
            rows.append((b_hat, "closed-form" if b_hat == optimal else "", round(error, 4)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    errors = {row[0]: row[2] for row in rows}
    record_result(
        "ablation_radius_rule",
        format_table(["b_hat", "", "W2"], rows),
        metrics={
            "closed_form_w2": float(errors[optimal]),
            "best_candidate_w2": float(min(errors.values())),
            "closed_form_b_hat": float(optimal),
        },
    )
    assert errors[optimal] <= min(errors.values()) * 1.35 + 0.02


def test_ablation_postprocessing(benchmark, bench_config, record_result):
    points, domain = _crime_part(bench_config)
    grid = GridSpec(SpatialDomain.unit(), 8)
    unit_points = domain.normalise(points)

    def run():
        rows = []
        true = grid.distribution(unit_points)
        for mode in ("ems", "em", "ls"):
            mech = DiscreteDAM(grid, bench_config.default_epsilon, postprocess=mode)
            errors = [
                wasserstein2_grid(true, mech.run(unit_points, seed=seed).estimate)
                for seed in range(max(bench_config.n_repeats, 2))
            ]
            rows.append((mode, round(float(np.mean(errors)), 4)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_postprocessing",
        format_table(["post-process", "W2"], rows),
        metrics={f"{mode}_w2": float(error) for mode, error in rows},
    )
    errors = dict(rows)
    # EM-family post-processing beats (or ties) the least-squares inversion.
    assert min(errors["ems"], errors["em"]) <= errors["ls"] * 1.05 + 0.005


def test_ablation_metric_choice(benchmark, bench_config, record_result):
    """TV treats near and far misplacement identically; W2 does not (Section I)."""
    grid = GridSpec.unit(9)

    def run():
        truth = np.zeros((9, 9))
        truth[4, 4] = 1.0
        near = np.zeros((9, 9))
        near[4, 5] = 1.0
        far = np.zeros((9, 9))
        far[8, 8] = 1.0
        t = GridDistribution(grid, truth)
        rows = []
        for label, other in (("one cell away", near), ("far corner", far)):
            o = GridDistribution(grid, other)
            rows.append(
                (label, round(total_variation(t, o), 4), round(wasserstein2_grid(t, o), 4))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    (near_label, near_tv, near_w2), (far_label, far_tv, far_w2) = rows
    record_result(
        "ablation_metric_choice",
        format_table(["estimate", "TV", "W2"], rows),
        metrics={
            "near_tv": float(near_tv),
            "far_tv": float(far_tv),
            "near_w2": float(near_w2),
            "far_w2": float(far_w2),
        },
    )
    assert near_tv == far_tv
    assert near_w2 < far_w2
