"""Figure 14 — trajectory point-density estimation: LDPTrace vs PivotTrace vs DAM.

Appendix D converts trajectory statistics to point statistics (the seven-step
procedure) and reports W2 versus the grid side d and versus the budget eps on NYC
trajectories.  The paper's findings: W2 grows with d for all three mechanisms, and DAM
consistently outperforms both trajectory mechanisms, which spend most of their budget
on directionality rather than density.
"""

from __future__ import annotations

from repro.experiments.figures import figure14_trajectory


def _series_text(results) -> str:
    lines = []
    for sweep_name, sweep in results.items():
        lines.append(f"[{sweep_name}]")
        mechanisms = sorted({p.mechanism for p in sweep.points})
        for mechanism in mechanisms:
            series = ", ".join(f"{x:g}: {y:.4f}" for x, y in sweep.series(mechanism))
            lines.append(f"  {mechanism:11s} {series}")
    return "\n".join(lines)


def test_figure14_trajectory(benchmark, bench_trajectory_config, record_result):
    results = benchmark.pedantic(
        lambda: figure14_trajectory(bench_trajectory_config, sweep="both"),
        rounds=1,
        iterations=1,
    )
    d_sweep = results["d"]
    eps_sweep = results["epsilon"]

    def mean_of(sweep, mechanism):
        series = sweep.series(mechanism)
        return sum(y for _, y in series) / len(series)

    record_result(
        "figure14_trajectory",
        _series_text(results),
        metrics={
            f"{mechanism.lower()}_eps_mean_w2": mean_of(eps_sweep, mechanism)
            for mechanism in ("LDPTrace", "PivotTrace", "DAM")
        },
    )

    # W2 grows with d for every mechanism (compare the endpoints; d=1 is degenerate).
    for mechanism in ("LDPTrace", "PivotTrace", "DAM"):
        series = dict(d_sweep.series(mechanism))
        assert series[20.0] >= series[5.0] * 0.7

    # DAM beats (or ties) both trajectory mechanisms on average over the eps sweep.
    dam = mean_of(eps_sweep, "DAM")
    assert dam <= mean_of(eps_sweep, "LDPTrace") * 1.05 + 0.01
    assert dam <= mean_of(eps_sweep, "PivotTrace") * 1.05 + 0.01
