"""Native-kernel-tier benchmarks: fused EM solve, batched walk, rank-map sampler.

Backs the acceptance criteria of the :mod:`repro.kernels` tier:

* the fused stencil-convolution EM solve must beat the structured-operator loop
  by at least 3x at d=64 (the per-iteration python scatter/gather overhead is
  what the preallocated kernel eliminates; the reference container measures
  well above the floor) while matching its estimates to 1e-10;
* the batched inverse-CDF walk and the vectorised order-statistics sampler must
  each beat their whole-array numpy counterparts while staying bit-identical —
  the native tier is a drop-in, not an approximation.

Every asserted ratio is gated in ``benchmarks/baselines/smoke.json`` so CI
tracks regressions.  Results land in ``benchmarks/results/native_*.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.core.postprocess import expectation_maximization
from repro.trajectory.engine import TrajectoryEngine

# The kernel tier targets the fine-resolution regime where the operator loop's
# per-iteration overhead dominates: Figure-9 scale d=64 for EM/sampling, the
# routing grid scale d=60 for trajectory synthesis.
N_USERS = 200_000
GRID_D = 64
EPSILON = 3.5
EM_ITERATIONS = 60
WALK_D = 60
N_SYNTH = 100_000


def _best_of(callable_, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def grid() -> GridSpec:
    return GridSpec.unit(GRID_D)


@pytest.fixture(scope="module")
def mechanisms(grid):
    return (
        DiscreteDAM(grid, EPSILON, backend="operator"),
        DiscreteDAM(grid, EPSILON, backend="native"),
    )


@pytest.fixture(scope="module")
def cells(grid) -> np.ndarray:
    return np.random.default_rng(0).integers(0, grid.n_cells, N_USERS)


def test_native_em_solve_speedup(mechanisms, cells, record_result):
    """The fused EM kernel must beat the operator loop by >= 3x at d=64."""
    operator_backed, native_backed = mechanisms
    counts = operator_backed.aggregate(operator_backed.privatize_cells(cells, seed=2))

    def solve(mechanism):
        return expectation_maximization(
            mechanism.operator, counts, max_iterations=EM_ITERATIONS, tolerance=0.0
        )

    # Warm up outside the timed region: kernel build (numba compile or FFT plan
    # buffers) and the operator's gather/scatter index caches.
    via_native = solve(native_backed)
    via_operator = solve(operator_backed)
    # Drop-in contract first: same fixed-iteration trajectory to 1e-10.
    np.testing.assert_allclose(
        via_native.estimate, via_operator.estimate, rtol=0, atol=1e-10
    )
    assert via_native.kernel == native_backed.kernel_build.describe()

    t_operator = _best_of(lambda: solve(operator_backed))
    t_native = _best_of(lambda: solve(native_backed))
    em_native_speedup = t_operator / t_native
    record_result(
        "native_em_throughput",
        "\n".join(
            [
                f"EM solve latency ({EM_ITERATIONS} fixed iterations), d={GRID_D}, "
                f"eps={EPSILON}, b_hat={operator_backed.b_hat}, "
                f"kernel={via_native.kernel}",
                f"operator gather/scatter loop: {t_operator * 1e3:8.2f} ms",
                f"fused native kernel         : {t_native * 1e3:8.2f} ms  "
                f"[{em_native_speedup:.1f}x]",
            ]
        ),
        metrics={
            "em_native_speedup": em_native_speedup,
            "em_native_ms": t_native * 1e3,
        },
    )
    assert em_native_speedup >= 3.0, f"native EM only {em_native_speedup:.1f}x faster"


def test_native_sampler_speedup(mechanisms, cells, record_result):
    """The vectorised order-statistics map must beat the per-cell searchsorted."""
    operator_backed, native_backed = mechanisms
    via_operator = operator_backed.operator
    via_native = native_backed.operator

    # Warm the order-statistics caches outside the timed region.
    via_operator.sample(cells[:100], np.random.default_rng(0))
    via_native.sample(cells[:100], np.random.default_rng(0))
    # Bit-identity is the contract: same draws, same reports.
    np.testing.assert_array_equal(
        via_operator.sample(cells[:20_000], np.random.default_rng(2)),
        via_native.sample(cells[:20_000], np.random.default_rng(2)),
    )

    t_operator = _best_of(lambda: via_operator.sample(cells, np.random.default_rng(1)))
    t_native = _best_of(lambda: via_native.sample(cells, np.random.default_rng(1)))
    sampler_native_speedup = t_operator / t_native
    record_result(
        "native_sampler_throughput",
        "\n".join(
            [
                f"disk sampler throughput, d={GRID_D}, eps={EPSILON}, "
                f"b_hat={operator_backed.b_hat}, users={N_USERS}",
                f"operator per-cell searchsorted: {N_USERS / t_operator:12,.0f} users/s "
                f"({t_operator * 1e3:8.2f} ms)",
                f"native bisection rank map     : {N_USERS / t_native:12,.0f} users/s "
                f"({t_native * 1e3:8.2f} ms)  [{sampler_native_speedup:.2f}x]",
            ]
        ),
        metrics={
            "sampler_native_speedup": sampler_native_speedup,
            "native_users_per_second": N_USERS / t_native,
        },
    )
    assert sampler_native_speedup >= 1.2, (
        f"native sampler only {sampler_native_speedup:.2f}x faster"
    )


def test_native_walk_speedup(record_result):
    """The batched int8/int16 walk must beat the whole-array int64 loop."""
    grid = GridSpec.unit(WALK_D)
    via_operator = TrajectoryEngine.build(grid, EPSILON, max_length=40)
    via_native = TrajectoryEngine.build(grid, EPSILON, max_length=40, backend="native")
    rng = np.random.default_rng(3)
    trajectories = [
        grid.domain.denormalise(rng.random((int(rng.integers(2, 40)), 2)))
        for _ in range(500)
    ]
    model = via_operator.fit(trajectories, seed=4)

    # Bit-identity across backends (same RNG consumption, same trajectories).
    a = via_operator.synthesize(model, 2_000, seed=9)
    b = via_native.synthesize(model, 2_000, seed=9)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)

    t_operator = _best_of(lambda: via_operator.synthesize(model, N_SYNTH, seed=5))
    t_native = _best_of(lambda: via_native.synthesize(model, N_SYNTH, seed=5))
    walk_native_speedup = t_operator / t_native
    record_result(
        "native_walk_throughput",
        "\n".join(
            [
                f"Markov walk synthesis, d={WALK_D}, eps={EPSILON}, "
                f"trajectories={N_SYNTH}",
                f"whole-array int64 walk : {N_SYNTH / t_operator:12,.0f} traj/s "
                f"({t_operator * 1e3:8.2f} ms)",
                f"native batched walk    : {N_SYNTH / t_native:12,.0f} traj/s "
                f"({t_native * 1e3:8.2f} ms)  [{walk_native_speedup:.2f}x]",
            ]
        ),
        metrics={
            "walk_native_speedup": walk_native_speedup,
            "native_trajectories_per_second": N_SYNTH / t_native,
        },
    )
    assert walk_native_speedup >= 1.2, (
        f"native walk only {walk_native_speedup:.2f}x faster"
    )
