"""Figure 9(k)-(o) — W2 versus the privacy budget eps in {0.7 .. 3.5}, all mechanisms.

The paper's findings: W2 decreases (weakly) as eps grows; DAM is always better than
MDSW; SEM-Geo-I can edge out DAM at the smallest budgets (its distance-aware kernel
wins when the LDP reports are nearly uniform).
"""

from __future__ import annotations

from repro.experiments.figures import figure9_small_epsilon
from repro.experiments.reporting import format_sweep, mean_error


def test_figure9_small_epsilon(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure9_small_epsilon(bench_config), rounds=1, iterations=1)
    datasets = result.datasets()
    record_result(
        "figure9_small_epsilon",
        format_sweep(result),
        metrics={
            "dam_mean_w2": sum(mean_error(result, d, "DAM") for d in datasets)
            / len(datasets),
            "mdsw_mean_w2": sum(mean_error(result, d, "MDSW") for d in datasets)
            / len(datasets),
        },
    )

    mdsw_wins = 0
    for dataset in result.datasets():
        dam = mean_error(result, dataset, "DAM")
        mdsw = mean_error(result, dataset, "MDSW")
        # DAM never loses badly to MDSW (the headline LDP-vs-LDP comparison) ...
        assert dam <= mdsw * 1.30 + 0.01
        if dam <= mdsw * 1.05 + 0.005:
            mdsw_wins += 1

        # Weak monotonicity in the budget: the largest budget's error does not exceed
        # the smallest budget's error for DAM.
        series = dict(result.series(dataset, "DAM"))
        assert series[3.5] <= series[0.7] * 1.05 + 0.01
    # ... and DAM wins (or ties) on the majority of datasets.
    assert mdsw_wins >= len(result.datasets()) // 2 + 1
