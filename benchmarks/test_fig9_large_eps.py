"""Figure 9(p)-(t) — W2 versus eps in {5 .. 9}: DAM versus SEM-Geo-I at d = 15.

The paper's findings: both errors shrink towards zero as the budget grows, and DAM
outperforms SEM-Geo-I in this large-budget, fine-granularity regime.
"""

from __future__ import annotations

from repro.experiments.figures import figure9_large_epsilon
from repro.experiments.reporting import format_sweep, mean_error


def test_figure9_large_epsilon(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure9_large_epsilon(bench_config), rounds=1, iterations=1)
    datasets = result.datasets()
    dam_means = [mean_error(result, dataset, "DAM") for dataset in datasets]
    sem_means = [mean_error(result, dataset, "SEM-Geo-I") for dataset in datasets]
    dam_wins = sum(1 for dam, sem in zip(dam_means, sem_means) if dam <= sem * 1.02)
    record_result(
        "figure9_large_epsilon",
        format_sweep(result),
        metrics={
            "dam_mean_w2": sum(dam_means) / len(dam_means),
            "sem_geo_i_mean_w2": sum(sem_means) / len(sem_means),
            "dam_wins": dam_wins,
        },
    )

    for dataset in datasets:
        dam = dict(result.series(dataset, "DAM"))
        # Error shrinks as the budget grows (compare the endpoints).
        assert dam[9.0] <= dam[5.0] * 1.05 + 0.005
    # DAM wins on the majority of datasets in the large-budget regime.
    assert dam_wins >= len(result.datasets()) // 2 + 1
