"""Figure 8 — Wasserstein distance as the norm distance b varies.

The paper sweeps ``b`` over ``{0.33, 0.67, 1.0, 1.33, 1.67} * b_check`` (the optimal
grid radius) at ``d = 15`` and ``eps = 3.5`` on all five datasets and observes a U-shape
with the minimum near ``b_check``.  This benchmark regenerates the five series and
asserts the qualitative shape: the closed-form radius is never far from the best swept
value.
"""

from __future__ import annotations

from repro.experiments.figures import figure8_radius_sweep
from repro.experiments.reporting import format_sweep


def test_figure8_radius_sweep(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure8_radius_sweep(bench_config), rounds=1, iterations=1)
    at_bcheck = {}
    best = {}
    for dataset in result.datasets():
        series = dict(result.series(dataset, "DAM"))
        assert set(series) == {0.33, 0.67, 1.0, 1.33, 1.67}
        at_bcheck[dataset] = series[1.0]
        best[dataset] = min(series.values())
    record_result(
        "figure8_radius_sweep",
        format_sweep(result),
        metrics={
            "mean_w2_at_bcheck": sum(at_bcheck.values()) / len(at_bcheck),
            "mean_best_w2": sum(best.values()) / len(best),
        },
    )

    for dataset in result.datasets():
        # The optimal-radius choice (scale 1.0) is within 40% of the best swept value —
        # the paper's "choose b independent of the distribution and still do well".
        assert at_bcheck[dataset] <= best[dataset] * 1.4 + 0.02
