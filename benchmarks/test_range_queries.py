"""Extension benchmark — private range queries on top of DAM (the paper's future work).

The related-work section notes DAM "can combine with the methods of HIO, HDG and AHEAD
to further improve the accuracy in private range query".  This benchmark measures that
combination on the Chicago surrogate: the flat engine (sum the DAM estimate) against
the HIO-style hierarchy of DAM estimates, over short- and long-range workloads, plus an
empirical privacy audit of the deployed mechanism.
"""

from __future__ import annotations

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.loader import load_dataset
from repro.experiments.reporting import format_table
from repro.metrics.privacy_audit import audit_mechanism, worst_case_epsilon
from repro.queries.range_query import (
    FlatRangeQueryEngine,
    HierarchicalRangeQueryEngine,
    RangeQueryWorkload,
)

EPSILON = 3.5
FLAT_D = 16


def _unit_crime_points(config):
    dataset = load_dataset("Crime", scale=config.dataset_scale, seed=config.seed)
    _, points, domain = dataset.parts[0]
    return domain.normalise(points)


def test_range_query_engines(benchmark, bench_config, record_result):
    points = _unit_crime_points(bench_config)
    domain = SpatialDomain.unit("crime-unit")

    def run():
        grid = GridSpec(domain, FLAT_D)
        flat_estimate = DiscreteDAM(grid, EPSILON).run(points, seed=0).estimate
        flat_engine = FlatRangeQueryEngine(flat_estimate)
        hierarchical = HierarchicalRangeQueryEngine(
            domain,
            EPSILON,
            levels=3,
            base_d=4,
            branching=2,
        ).fit(points, seed=1)

        rows = []
        for label, lo, hi in (("short-range", 0.05, 0.2), ("long-range", 0.4, 0.8)):
            workload = RangeQueryWorkload.random(
                domain, 40, min_fraction=lo, max_fraction=hi, seed=2
            )
            flat_mae = workload.mean_absolute_error(
                flat_engine.answer_batch(workload.queries), points
            )
            hier_mae = workload.mean_absolute_error(
                hierarchical.answer_batch(workload.queries), points
            )
            rows.append((label, round(flat_mae, 4), round(hier_mae, 4)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "range_query_engines",
        format_table(["workload", "flat DAM", "hierarchical DAM"], rows),
        metrics={
            f"{label.replace('-', '_')}_{engine}_mae": value
            for label, flat_mae, hier_mae in rows
            for engine, value in (("flat", flat_mae), ("hierarchical", hier_mae))
        },
    )
    # Both engines answer range queries with single-digit-percent absolute error.
    for _, flat_mae, hier_mae in rows:
        assert flat_mae < 0.12
        assert hier_mae < 0.15


def test_range_query_privacy_audit(benchmark, bench_config, record_result):
    """Empirical audit of the deployed DAM reporter (catches implementation regressions)."""
    grid = GridSpec(SpatialDomain.unit(), 8)
    mechanism = DiscreteDAM(grid, EPSILON)

    def run():
        results = audit_mechanism(mechanism, n_pairs=4, n_trials=15_000, seed=0)
        rows = [
            (i, round(r.epsilon_measured, 3), round(r.epsilon_lower_confidence, 3), r.violated)
            for i, r in enumerate(results)
        ]
        return results, rows

    results, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "range_query_privacy_audit",
        format_table(["pair", "eps measured", "eps lower bound", "violated"], rows)
        + f"\ndeclared epsilon: {EPSILON}",
        metrics={
            "declared_epsilon": EPSILON,
            "worst_case_epsilon": worst_case_epsilon(results),
            "violations": sum(1 for r in results if r.violated),
        },
    )
    assert not any(r.violated for r in results)
    assert worst_case_epsilon(results) <= EPSILON + 0.5
