"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The profile is
selected with the ``REPRO_BENCH_PROFILE`` environment variable:

* ``laptop`` (default) — down-scaled datasets, 1-2 repetitions; every figure finishes
  in minutes and the qualitative trends match the paper;
* ``paper``  — the full Table IV/V settings (hours of runtime);
* ``smoke``  — tiny settings used to exercise the harness itself.

Two further environment variables tune execution without changing any measured
number: ``REPRO_BENCH_WORKERS`` fans sweep cells out to a process pool, and
``REPRO_BENCH_CACHE_DIR`` memoises every sweep cell in a content-addressed on-disk
cache so interrupted or repeated benchmark runs only compute missing cells.

Each benchmark writes the regenerated series to ``benchmarks/results/<name>.txt`` so
the numbers that back EXPERIMENTS.md can be re-inspected after a run.  Alongside
every ``.txt``, :func:`record_result` writes a machine-readable
``BENCH_<name>.json`` — profile, python version and the benchmark's numeric
``metrics`` dict (speedups, parities, queries/sec).  CI uploads these as workflow
artifacts and diffs the gated speedups against the committed baseline in
``benchmarks/baselines/`` (``benchmarks/compare_baseline.py``), so a silent
performance regression fails the bench job instead of scrolling past in a log.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    TrajectoryConfig,
    laptop_config,
    laptop_trajectory_config,
    paper_config,
    paper_trajectory_config,
    smoke_config,
)

RESULTS_DIR = Path(__file__).parent / "results"


def _profile() -> str:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "laptop").lower()
    if profile not in ("laptop", "paper", "smoke"):
        raise ValueError(f"unknown REPRO_BENCH_PROFILE {profile!r}")
    return profile


@pytest.fixture(scope="session")
def bench_profile() -> str:
    return _profile()


def _execution_overrides() -> dict:
    """Worker-pool size and cache directory from the environment (execution-only)."""
    overrides: dict = {}
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    if workers:
        overrides["workers"] = max(int(workers), 1)
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if cache_dir:
        overrides["cache_dir"] = cache_dir
    return overrides


@pytest.fixture(scope="session")
def bench_config(bench_profile) -> ExperimentConfig:
    if bench_profile == "paper":
        config = paper_config()
    elif bench_profile == "smoke":
        config = smoke_config()
    else:
        config = laptop_config()
    return config.with_overrides(**_execution_overrides())


@pytest.fixture(scope="session")
def bench_trajectory_config(bench_profile) -> TrajectoryConfig:
    if bench_profile == "paper":
        return paper_trajectory_config()
    if bench_profile == "smoke":
        return laptop_trajectory_config().with_overrides(
            n_trajectories=30, max_length=15, routing_d=30, default_d=5
        )
    return laptop_trajectory_config()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_result(results_dir, bench_profile):
    """Write a named result blob (text + machine-readable JSON) and echo it.

    ``metrics`` is an optional flat dict of the benchmark's measured numbers
    (speedups, parities, rates).  It lands in ``BENCH_<name>.json`` next to the
    human-readable ``.txt`` — the artifact the CI regression compare consumes —
    so pass every number a regression check could care about.
    """

    def _record(name: str, text: str, metrics: dict | None = None) -> None:
        header = f"# profile: {bench_profile}\n"
        path = results_dir / f"{name}.txt"
        path.write_text(header + text + "\n")
        payload = {
            "name": name,
            "profile": bench_profile,
            "python_version": platform.python_version(),
            "metrics": dict(metrics or {}),
        }
        json_path = results_dir / f"BENCH_{name}.json"
        json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _record
