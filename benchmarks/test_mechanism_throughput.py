"""Micro-benchmarks: per-user randomisation and estimation throughput.

Not a paper figure — these are the timings a library user cares about (reports per
second, estimation latency) and they back the complexity analysis of Section VI-B
(randomisation is O(g) per user; estimation is dominated by the EM iterations).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.core.huem import DiscreteHUEM
from repro.mechanisms.mdsw import MDSW
from repro.mechanisms.sem_geo_i import SEMGeoI

N_USERS = 20_000
GRID_D = 15
EPSILON = 3.5


@pytest.fixture(scope="module")
def grid() -> GridSpec:
    return GridSpec.unit(GRID_D)


@pytest.fixture(scope="module")
def cells(grid) -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.integers(0, grid.n_cells, N_USERS)


@pytest.mark.parametrize(
    "mechanism_cls", [DiscreteDAM, DiscreteHUEM, MDSW, SEMGeoI], ids=lambda c: c.__name__
)
def test_privatize_throughput(benchmark, grid, cells, mechanism_cls):
    mechanism = mechanism_cls(grid, EPSILON)
    rng = np.random.default_rng(1)
    reports = benchmark(lambda: mechanism.privatize_cells(cells, seed=rng))
    assert reports.shape[0] == N_USERS


@pytest.mark.parametrize(
    "mechanism_cls", [DiscreteDAM, DiscreteHUEM, MDSW], ids=lambda c: c.__name__
)
def test_estimate_latency(benchmark, grid, cells, mechanism_cls):
    mechanism = mechanism_cls(grid, EPSILON)
    reports = mechanism.privatize_cells(cells, seed=2)
    counts = mechanism.aggregate(reports)
    estimate = benchmark(lambda: mechanism.estimate(counts, N_USERS))
    assert estimate.flat().sum() == pytest.approx(1.0)


def test_mechanism_construction_cost(benchmark, grid):
    """Transition-matrix construction is a one-off cost paid per (grid, epsilon)."""
    mechanism = benchmark(lambda: DiscreteDAM(grid, EPSILON))
    assert mechanism.output_domain_size() > grid.n_cells
