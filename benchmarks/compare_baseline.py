"""Compare freshly produced BENCH_*.json results against a committed baseline.

The bench-smoke CI job runs the throughput benchmarks, which record their measured
speedups to ``benchmarks/results/BENCH_<name>.json`` (see the ``record_result``
fixture in ``benchmarks/conftest.py``).  This script diffs the *gated* speedups —
the ratios each benchmark already asserts a floor on — against the values committed
in ``benchmarks/baselines/smoke.json`` and exits non-zero when any of them
regressed by more than the baseline's ``max_regression`` (default 30%).

Speedups are ratios of two timings on the same machine, so they transfer between
runners far better than absolute timings do; the 30% tolerance absorbs the rest of
the machine-to-machine noise while still catching a real architectural regression
(a de-vectorised hot path typically costs an order of magnitude, not 30%).

Usage::

    python benchmarks/compare_baseline.py \
        [--results benchmarks/results] [--baseline benchmarks/baselines/smoke.json]

A missing result file or metric is a failure too — a benchmark silently not
producing its JSON is exactly the kind of rot this check exists to catch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).parent / "results"
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "smoke.json"


def compare(results_dir: Path, baseline_path: Path) -> list[str]:
    """Return a list of human-readable failures (empty when everything holds)."""
    baseline = json.loads(baseline_path.read_text())
    max_regression = float(baseline.get("max_regression", 0.30))
    failures: list[str] = []
    print(f"baseline: {baseline_path} (profile {baseline.get('profile', '?')}, "
          f"tolerance -{max_regression:.0%})")
    for bench_name, expected_metrics in sorted(baseline["gated"].items()):
        result_path = results_dir / f"BENCH_{bench_name}.json"
        if not result_path.exists():
            failures.append(f"{bench_name}: missing {result_path}")
            print(f"  {bench_name}: MISSING ({result_path})")
            continue
        payload = json.loads(result_path.read_text())
        expected_profile = baseline.get("profile")
        if expected_profile and payload.get("profile") != expected_profile:
            failures.append(
                f"{bench_name}: result profile {payload.get('profile')!r} does not "
                f"match baseline profile {expected_profile!r} (stale file?)"
            )
            print(f"  {bench_name}: WRONG PROFILE ({payload.get('profile')!r}, "
                  f"expected {expected_profile!r})")
            continue
        metrics = payload.get("metrics", {})
        for metric, reference in sorted(expected_metrics.items()):
            floor = reference * (1.0 - max_regression)
            current = metrics.get(metric)
            if current is None:
                failures.append(f"{bench_name}.{metric}: metric not recorded")
                print(f"  {bench_name}.{metric}: NOT RECORDED")
            elif current < floor:
                failures.append(
                    f"{bench_name}.{metric}: {current:.2f} < floor {floor:.2f} "
                    f"(baseline {reference:.2f})"
                )
                print(f"  {bench_name}.{metric}: {current:.2f}  REGRESSED "
                      f"(baseline {reference:.2f}, floor {floor:.2f})")
            else:
                print(f"  {bench_name}.{metric}: {current:.2f}  ok "
                      f"(baseline {reference:.2f}, floor {floor:.2f})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=DEFAULT_RESULTS,
        help="directory holding the BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline JSON to compare against",
    )
    args = parser.parse_args(argv)
    failures = compare(args.results, args.baseline)
    if failures:
        print(
            f"\n{len(failures)} gated speedup(s) regressed >"
            f" allowed tolerance:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall gated speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
