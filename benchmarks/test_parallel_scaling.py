"""Parallel execution-engine benchmarks: sharded pipeline and sweep scaling.

Backs the acceptance criteria of the parallel sharded execution engine:

* ``ParallelPipeline`` must stay *bit-identical* to the serial streaming path at
  every worker count while privatizing shards on a process pool;
* fanning an experiment sweep out to workers must not change a single measured
  value, and on a multi-core machine 4 workers must cut the sweep wall-clock by
  at least 1.5x (the assertion is gated on the cores actually being available —
  a single-core runner still records the measurement);
* the content-addressed result cache must make a warm sweep re-run at least
  1.5x faster than the cold run (in practice it is orders of magnitude faster)
  while returning exactly the cold run's numbers.

Results are recorded to ``benchmarks/results/parallel_scaling.txt``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.domain import SpatialDomain
from repro.core.parallel import ParallelPipeline
from repro.core.pipeline import DAMPipeline
from repro.experiments.cache import ResultCache
from repro.experiments.runner import sweep_parameter

EPSILON = 3.5
WORKER_COUNTS = (1, 2, 4)

#: Sweep used for the runner-scaling measurement: small enough for the laptop
#: profile, large enough that per-cell work dominates pool overhead.
SWEEP_D_VALUES = (8, 10, 12)
SWEEP_MECHANISMS = ("DAM", "MDSW")
SWEEP_DATASETS = ("SZipf", "Normal")


def _pipeline_load(bench_profile) -> tuple[int, int]:
    """(n_users, grid_d) for the pipeline-scaling benchmark, per profile."""
    if bench_profile == "paper":
        return 2_000_000, 20
    if bench_profile == "smoke":
        return 50_000, 10
    return 400_000, 15


def test_parallel_pipeline_scaling(bench_profile, record_result):
    """Shard-parallel privatization: per-worker wall clock, serial bit-equality."""
    n_users, grid_d = _pipeline_load(bench_profile)
    points = np.random.default_rng(0).random((n_users, 2))
    domain = SpatialDomain.unit()
    available = os.cpu_count() or 1

    start = time.perf_counter()
    serial = DAMPipeline(domain, grid_d, EPSILON).run(points, seed=1)
    t_serial = time.perf_counter() - start

    lines = [
        f"parallel pipeline, users={n_users}, d={grid_d}, eps={EPSILON}, "
        f"cpus={available}",
        f"serial DAMPipeline.run    : {t_serial:8.3f} s "
        f"({n_users / t_serial:12,.0f} users/s)",
    ]
    for workers in WORKER_COUNTS:
        pipeline = ParallelPipeline(
            domain,
            grid_d,
            EPSILON,
            workers=workers,
            shard_size=max(n_users // max(workers * 2, 4), 1),
        )
        start = time.perf_counter()
        result = pipeline.run(points, seed=1)
        elapsed = time.perf_counter() - start
        assert np.array_equal(
            serial.estimate.probabilities,
            result.estimate.probabilities,
        ), f"parallel run with {workers} workers diverged from the serial estimate"
        assert np.array_equal(serial.noisy_counts, result.noisy_counts)
        lines.append(
            f"ParallelPipeline w={workers}    : {elapsed:8.3f} s "
            f"({n_users / elapsed:12,.0f} users/s)  [{t_serial / elapsed:.2f}x, "
            f"bit-identical]"
        )
    record_result(
        "parallel_scaling_pipeline",
        "\n".join(lines),
        metrics={
"serial_users_per_second": n_users / t_serial,
"cpus": available,
},
    )


def test_parallel_sweep_scaling_and_cache(bench_config, record_result, tmp_path_factory):
    """Sweep fan-out and the result cache: speedups without changing one number."""
    config = bench_config.with_overrides(datasets=SWEEP_DATASETS, workers=1, cache_dir=None)
    available = os.cpu_count() or 1

    def run_sweep(workers: int, cache: ResultCache | None) -> tuple[float, list]:
        start = time.perf_counter()
        result = sweep_parameter(
            "parallel-scaling",
            "d",
            SWEEP_D_VALUES,
            SWEEP_MECHANISMS,
            config,
            datasets=SWEEP_DATASETS,
            workers=workers,
            cache=cache if cache is not None else ResultCache(None),
        )
        return time.perf_counter() - start, result.points

    t_serial, serial_points = run_sweep(workers=1, cache=None)
    t_parallel, parallel_points = run_sweep(workers=4, cache=None)
    assert parallel_points == serial_points, "worker fan-out changed sweep results"
    parallel_speedup = t_serial / t_parallel

    cache = ResultCache(tmp_path_factory.mktemp("sweep-cache"))
    t_cold, cold_points = run_sweep(workers=1, cache=cache)
    assert cold_points == serial_points
    assert cache.hits == 0 and cache.misses == len(serial_points)
    t_warm, warm_points = run_sweep(workers=1, cache=cache)
    assert warm_points == cold_points, "cached re-run changed sweep results"
    assert cache.hits == len(serial_points), "warm re-run did not hit every cell"
    warm_speedup = t_cold / t_warm

    n_cells = len(serial_points)
    lines = [
        f"sweep scaling: {n_cells} cells "
        f"({len(SWEEP_DATASETS)} datasets x {len(SWEEP_MECHANISMS)} mechanisms x "
        f"{len(SWEEP_D_VALUES)} d values), cpus={available}",
        f"serial sweep              : {t_serial:8.3f} s",
        f"4 workers                 : {t_parallel:8.3f} s  [{parallel_speedup:.2f}x, "
        f"identical points]",
        f"cold run (caching)        : {t_cold:8.3f} s",
        f"warm re-run (all cached)  : {t_warm:8.3f} s  [{warm_speedup:.1f}x, "
        f"identical points]",
    ]
    record_result(
        "parallel_scaling_sweep",
        "\n".join(lines),
        metrics={
"warm_cache_speedup": warm_speedup,
"parallel_speedup": parallel_speedup,
"cpus": available,
},
    )

    # The warm re-run only replays JSON lookups; 1.5x is a deliberately loose floor.
    assert warm_speedup >= 1.5, f"warm cache re-run only {warm_speedup:.2f}x faster"
    # Genuine multiprocessing gains need the cores to exist; on >= 4 cpus demand the
    # acceptance floor, elsewhere the recorded measurement is the deliverable.
    if available >= 4:
        assert parallel_speedup >= 1.5, (
            f"sweep with 4 workers only {parallel_speedup:.2f}x faster on "
            f"{available} cpus"
        )
