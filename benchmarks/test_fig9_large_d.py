"""Figure 9(f)-(j) — W2 versus d up to 20: DAM versus SEM-Geo-I (Sinkhorn regime).

The paper's finding: both errors grow with d, and DAM overtakes SEM-Geo-I once the
granularity is fine enough (the discrete DAM approaches the continuous optimum while
the categorical SEM-Geo-I keeps paying for the larger domain).
"""

from __future__ import annotations

from repro.experiments.figures import figure9_large_d
from repro.experiments.reporting import format_sweep


def test_figure9_large_d(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure9_large_d(bench_config), rounds=1, iterations=1)
    datasets = result.datasets()

    fine_wins = 0
    dam_fine, sem_fine = [], []
    for dataset in datasets:
        dam = dict(result.series(dataset, "DAM"))
        sem = dict(result.series(dataset, "SEM-Geo-I"))
        dam_fine.append(dam[20.0])
        sem_fine.append(sem[20.0])
        if dam[20.0] <= sem[20.0] * 1.02:
            fine_wins += 1
    record_result(
        "figure9_large_d",
        format_sweep(result),
        metrics={
            "dam_mean_w2_at_d20": sum(dam_fine) / len(dam_fine),
            "sem_geo_i_mean_w2_at_d20": sum(sem_fine) / len(sem_fine),
            "dam_fine_wins": fine_wins,
        },
    )

    for dataset in datasets:
        dam = dict(result.series(dataset, "DAM"))
        sem = dict(result.series(dataset, "SEM-Geo-I"))
        # Errors grow from the coarsest non-trivial grid to the finest for both.
        assert dam[20.0] >= dam[5.0] * 0.7
        assert sem[20.0] >= sem[5.0] * 0.7
    # DAM wins at fine granularity on the majority of datasets (the paper's crossover).
    assert fine_wins >= len(result.datasets()) // 2 + 1
