"""Trajectory engine throughput: batched fit/synthesis vs the seed loops.

Backs the acceptance criteria of the vectorized trajectory engine
(:mod:`repro.trajectory.engine`):

* batched Markov-walk synthesis must deliver at least a **20x** throughput
  improvement over the seed per-trajectory/per-step loop
  (:meth:`LDPTrace.synthesize_reference`) on 10,000 trajectories, at point-density
  parity — the W2 between the two synthetic sets' per-cell distributions stays
  within tolerance (both are draws from the same fitted model, so any systematic
  gap is an engine bug; the differential property tests in
  ``tests/trajectory/test_trajectory_engine.py`` pin the same claim for arbitrary grids);
* vectorized report collection must beat the seed per-trajectory fitting loop;
* the trajectory query engine sustains serving-scale rates on the OD/transition
  workload mix.

Results are recorded to ``benchmarks/results/trajectory_throughput.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.trajectories import generate_trajectories
from repro.metrics.wasserstein import wasserstein2_auto
from repro.queries.engine import QueryLog, TrajectoryQueryEngine, WorkloadReplay
from repro.trajectory.adapter import trajectory_point_distribution
from repro.trajectory.engine import TrajectoryEngine

#: d = 12 keeps the parity check on the exact LP Wasserstein solver (144 cells);
#: finer grids would switch to Sinkhorn, whose entropic bias would dominate the gap.
GRID_D = 12
EPSILON = 2.0
MAX_LENGTH = 32
N_SYNTHESIZE = 10_000
SYNTHESIS_SPEEDUP_TARGET = 20.0
FIT_SPEEDUP_TARGET = 3.0
#: Two independent 10k-trajectory draws from the same model measure ~0.03 against
#: each other on the unit square (the sampling noise floor); a systematic walk bug
#: blows straight through this.
W2_PARITY_TOLERANCE = 0.08


def _best_of(callable_, repeats: int = 2) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def engine() -> TrajectoryEngine:
    grid = GridSpec(SpatialDomain.unit("trajectories"), GRID_D)
    return TrajectoryEngine.build(grid, EPSILON, max_length=MAX_LENGTH)


@pytest.fixture(scope="module")
def trajectories():
    rng = np.random.default_rng(5)
    points = np.clip(rng.normal([0.45, 0.55], 0.15, size=(30_000, 2)), 0, 1)
    dataset = generate_trajectories(
        points,
        SpatialDomain.unit("trajectories"),
        routing_d=60,
        n_trajectories=2_000,
        max_length=MAX_LENGTH,
        seed=6,
    )
    return dataset.trajectories


@pytest.fixture(scope="module")
def model(engine, trajectories):
    return engine.fit(trajectories, seed=7)


def test_batched_synthesis_speedup(engine, model, record_result):
    """Batched walk must beat the seed per-step loop by >= 20x at W2 parity."""
    synthetic = engine.synthesize(model, N_SYNTHESIZE, seed=11)
    reference = engine.synthesize_reference(model, N_SYNTHESIZE, seed=11)
    assert len(synthetic) == len(reference) == N_SYNTHESIZE
    batched_distribution = trajectory_point_distribution(synthetic, engine.grid)
    reference_distribution = trajectory_point_distribution(reference, engine.grid)
    parity = wasserstein2_auto(reference_distribution, batched_distribution)
    assert parity <= W2_PARITY_TOLERANCE

    t_reference = _best_of(
        lambda: engine.synthesize_reference(model, N_SYNTHESIZE, seed=11), repeats=1
    )
    t_batched = _best_of(lambda: engine.synthesize(model, N_SYNTHESIZE, seed=11))
    speedup = t_reference / t_batched
    record_result(
        "trajectory_throughput",
        "\n".join(
            [
                f"grid: {GRID_D}x{GRID_D}   trajectories: {N_SYNTHESIZE}   "
                f"max length: {MAX_LENGTH}   epsilon: {EPSILON}",
                f"reference per-step loop: {t_reference:.3f} s "
                f"({N_SYNTHESIZE / t_reference:,.0f} trajectories/s)",
                f"batched Markov walk:     {t_batched:.4f} s "
                f"({N_SYNTHESIZE / t_batched:,.0f} trajectories/s)",
                f"synthesis speedup: {speedup:.1f}x "
                f"(target >= {SYNTHESIS_SPEEDUP_TARGET}x)",
                f"point-density W2(reference, batched): {parity:.4f} "
                f"(tolerance {W2_PARITY_TOLERANCE})",
            ]
        ),
        metrics={
            "synthesis_speedup": speedup,
            "w2_parity": float(parity),
            "trajectories_per_second": N_SYNTHESIZE / t_batched,
        },
    )
    assert speedup >= SYNTHESIS_SPEEDUP_TARGET


def test_vectorized_fit_speedup(engine, trajectories, record_result):
    """Whole-array report collection must beat the seed per-trajectory fit loop."""
    t_reference = _best_of(lambda: engine.fit_reference(trajectories, seed=9), repeats=1)
    t_vectorized = _best_of(lambda: engine.fit(trajectories, seed=9))
    speedup = t_reference / t_vectorized
    record_result(
        "trajectory_fit_throughput",
        "\n".join(
            [
                f"trajectories: {len(trajectories)}   grid: {GRID_D}x{GRID_D}",
                f"reference fit loop: {t_reference:.3f} s "
                f"({len(trajectories) / t_reference:,.0f} trajectories/s)",
                f"vectorized fit:     {t_vectorized:.4f} s "
                f"({len(trajectories) / t_vectorized:,.0f} trajectories/s)",
                f"fit speedup: {speedup:.1f}x (target >= {FIT_SPEEDUP_TARGET}x)",
            ]
        ),
        metrics={
            "fit_speedup": speedup,
            "fit_trajectories_per_second": len(trajectories) / t_vectorized,
        },
    )
    assert speedup >= FIT_SPEEDUP_TARGET


def test_trajectory_workload_replay_rates(engine, model, record_result):
    """The trajectory serving mix (point + sequence ops) sustains serving rates."""
    synthetic = engine.synthesize(model, N_SYNTHESIZE, seed=13)
    serving = TrajectoryQueryEngine(synthetic, engine.grid)
    log = QueryLog.random(
        engine.grid.domain,
        n_range=20_000,
        n_density=20_000,
        n_od_top_k=200,
        n_transition_top_k=200,
        n_length_histograms=200,
        seed=17,
    )
    report, answers = WorkloadReplay(serving).replay(log)
    record_result(
        "trajectory_workload_replay",
        report.format(),
        metrics={
"range_ops_per_second": report.per_kind["range_mass"]["ops_per_second"],
"od_top_k_ops_per_second": report.per_kind["od_top_k"]["ops_per_second"],
},
    )
    assert report.n_operations == log.size
    assert {"od_top_k", "transition_top_k", "length_histogram"} <= set(answers)
    # The sequence-statistic lookups are pre-aggregated; even slow CI workers
    # should clear a thousand of each per second.
    assert report.per_kind["od_top_k"]["ops_per_second"] > 1_000
    assert report.per_kind["transition_top_k"]["ops_per_second"] > 1_000
