"""HTTP front throughput: the network face versus the staged in-memory path.

The question this benchmark pins down: how much of the serving tier's
throughput survives the trip through the asyncio HTTP/1.1 front — JSON
serialisation both ways, the admission queue, the dispatcher's coalescing trip
into the worker pool — relative to the fastest path the same workers offer (a
staged :class:`~repro.serving.server.WorkloadArena`, where a task message is a
row range and the answers land in shared memory)?

* The same range workload is served twice from the same published snapshot:
  once via :meth:`~repro.serving.server.ServingServer.serve_staged`, once as
  batched ``POST /query`` requests through :class:`HttpServingFront`.
* Both passes must answer **bit-identically** to a serial
  :class:`~repro.queries.engine.QueryEngine` — JSON float round-tripping is
  exact, so the network face gets no numeric slack.
* The gated metric is ``http_serving_ratio`` — HTTP rows/s over staged rows/s —
  so a regression in the HTTP layer (serialisation, queueing, batching) fails
  CI even while raw worker throughput is unchanged.
* The front's ``/metrics`` endpoint must report the traffic it just served
  with the replay-style per-kind p50/p99 latency stats.

Results land in ``benchmarks/results/http_serving_throughput.txt`` and
``BENCH_http_serving_throughput.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets.synthetic import shifting_hotspot_stream
from repro.queries.engine import QueryEngine, QueryLog
from repro.serving import (
    HttpQueryClient,
    HttpServingFront,
    QueryKind,
    QueryRequest,
    ServingServer,
    WorkloadArena,
)
from repro.streaming import StreamingEstimationService

GRID_D = 16
EPSILON = 3.5
WORKERS = 2
ROWS_PER_REQUEST = 4096


def _load(bench_profile) -> int:
    """Total range rows served per pass, per profile."""
    if bench_profile == "paper":
        return 400_000
    if bench_profile == "smoke":
        return 60_000
    return 200_000


def test_http_serving_throughput(bench_profile, record_result):
    n_rows = _load(bench_profile)
    available = os.cpu_count() or 1
    stream = shifting_hotspot_stream(n_epochs=1, users_per_epoch=20_000, seed=0)
    service = StreamingEstimationService.build(
        stream.domain, GRID_D, EPSILON, window_epochs=4, seed=1
    )
    estimate = service.ingest_epoch(next(iter(stream.epochs))).estimate
    log = QueryLog.random(stream.domain, n_range=n_rows, seed=2)
    serial_answers = QueryEngine(estimate).range_mass(log.range_queries)

    with ServingServer(service.grid, workers=WORKERS) as server:
        server.publish(estimate, epoch=0)
        server.start()

        # Staged pass: the in-memory ceiling the HTTP face is measured against.
        with WorkloadArena(log.range_queries) as arena:
            start = time.perf_counter()
            server.serve_staged(arena, batch_rows=8192)
            staged_seconds = time.perf_counter() - start
            assert np.array_equal(arena.answers, serial_answers)
        staged_rate = n_rows / staged_seconds

        # HTTP pass: the same rows as batched wire requests through the front.
        with HttpServingFront(server) as front:
            client = HttpQueryClient(front.host, front.port)
            served = np.empty(n_rows)
            start = time.perf_counter()
            for lo in range(0, n_rows, ROWS_PER_REQUEST):
                rows = log.range_queries[lo : lo + ROWS_PER_REQUEST]
                response = client.query(
                    QueryRequest(QueryKind.RANGE_MASS, {"queries": rows.tolist()})
                )
                served[lo : lo + rows.shape[0]] = response.result
            http_seconds = time.perf_counter() - start
            assert np.array_equal(served, serial_answers), (
                "HTTP-served answers diverged from the serial engine"
            )
            metrics = client.metrics()
            client.close()
        http_rate = n_rows / http_seconds

    stats = metrics["per_kind"]["range_mass"]
    assert stats["count"] == n_rows
    assert 0 <= stats["latency_p50"] <= stats["latency_p99"]
    http_serving_ratio = http_rate / staged_rate

    record_result(
        "http_serving_throughput",
        "\n".join(
            [
                f"HTTP front vs staged arena, d={GRID_D}, eps={EPSILON}, "
                f"rows={n_rows}, workers={WORKERS}, cpus={available}",
                f"staged arena         : {staged_seconds:8.3f} s "
                f"({staged_rate:12,.0f} rows/s)  [bit-identical]",
                f"HTTP front           : {http_seconds:8.3f} s "
                f"({http_rate:12,.0f} rows/s)  [bit-identical]",
                f"http/staged ratio    : {http_serving_ratio:.3f}",
                f"front-reported p50/p99: {stats['latency_p50'] * 1e3:.3f} / "
                f"{stats['latency_p99'] * 1e3:.3f} ms per request",
            ]
        ),
        metrics={
            "http_serving_ratio": http_serving_ratio,
            "http_rows_per_second": http_rate,
            "staged_rows_per_second": staged_rate,
            "http_latency_p99_seconds": stats["latency_p99"],
            "cpus": available,
        },
    )
