"""Streaming service throughput: O(one epoch) slides vs full-window refits.

Backs the acceptance criteria of the streaming subsystem:

* a **window slide** (subtract/add count algebra + warm-started EM re-solve) must
  be at least **10x** faster than a **full refit** (re-scanning every stored
  report in the window — the per-epoch bincount pass the batch stack would run —
  plus a cold EM solve) at matched accuracy against the window's true
  distribution;
* the warm-started re-solve must need at least **3x** fewer EM iterations than the
  cold start at (at least) the cold start's final log-likelihood — the payoff of
  starting each epoch from the previous posterior under drift;
* the per-epoch serving swap keeps the mixed-workload replay path available
  mid-stream at serving rates.

The workload is fixed (not profile-scaled) like the query-throughput bench: a
shifting-hotspot stream sized so both ratios have comfortable margin on slow CI
workers.  Results are recorded to ``benchmarks/results/streaming_throughput.txt``
and ``BENCH_streaming_throughput.json`` (the CI regression baseline's input).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.postprocess import expectation_maximization
from repro.datasets.synthetic import shifting_hotspot_stream
from repro.queries.engine import QueryLog, WorkloadReplay
from repro.streaming import StreamingEstimationService

GRID_D = 16
EPSILON = 3.5
WINDOW_EPOCHS = 24
N_EPOCHS = 48
USERS_PER_EPOCH = 100_000
TOLERANCE = 1e-2
MAX_ITERATIONS = 2_000
SLIDE_SPEEDUP_TARGET = 10.0
WARM_ITERATION_TARGET = 3.0
#: matched accuracy: the incremental path may not lose more than 15% MAE to the
#: refit path (measured: it is typically slightly *better*, both ~5e-4).
ACCURACY_HEADROOM = 1.15


@pytest.fixture(scope="module")
def session():
    """Run the drifting session once; collect slide/refit/warm/cold measurements."""
    stream = shifting_hotspot_stream(n_epochs=N_EPOCHS, users_per_epoch=USERS_PER_EPOCH, seed=0)
    service = StreamingEstimationService.build(
        stream.domain,
        GRID_D,
        EPSILON,
        window_epochs=WINDOW_EPOCHS,
        tolerance=TOLERANCE,
        max_iterations=MAX_ITERATIONS,
        seed=1,
    )
    mechanism = service.mechanism
    refit_rng = np.random.default_rng(2)
    # The refit twin stores the window's raw per-epoch reports — what a
    # batch-and-done deployment has to re-scan on every window move.
    stored_reports: list[np.ndarray] = []
    stored_cells: list[np.ndarray] = []
    measurements = {
        "slide_seconds": 0.0,
        "refit_seconds": 0.0,
        "warm_iterations": 0,
        "cold_iterations": 0,
        "slide_mae": 0.0,
        "refit_mae": 0.0,
        "ll_gap_per_user": [],
        "epochs_measured": 0,
    }
    for epoch, points in enumerate(stream.epochs):
        update = service.ingest_epoch(points)

        cells = mechanism.grid.point_to_cell(points)
        stored_cells.append(cells)
        stored_reports.append(mechanism.privatize_cells(cells, seed=refit_rng))
        if len(stored_reports) > WINDOW_EPOCHS:
            stored_reports.pop(0)
            stored_cells.pop(0)

        start = time.perf_counter()
        noisy = np.zeros(mechanism.output_domain_size())
        true_counts = np.zeros(mechanism.grid.n_cells)
        for reports, true_cells in zip(stored_reports, stored_cells):
            noisy += np.bincount(reports, minlength=noisy.shape[0])
            true_counts += np.bincount(true_cells, minlength=true_counts.shape[0])
        cold = expectation_maximization(
            mechanism._estimation_transition(),
            noisy,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
        )
        refit_seconds = time.perf_counter() - start

        if epoch >= WINDOW_EPOCHS:  # steady state: the window is full and sliding
            truth = service.window.true_distribution().flat()
            measurements["slide_seconds"] += update.slide_seconds + update.solve_seconds
            measurements["refit_seconds"] += refit_seconds
            measurements["warm_iterations"] += update.iterations
            measurements["cold_iterations"] += cold.iterations
            measurements["slide_mae"] += float(
                np.abs(update.estimate.flat() - truth).mean()
            )
            measurements["refit_mae"] += float(np.abs(cold.estimate - truth).mean())
            measurements["ll_gap_per_user"].append(
                (update.log_likelihood - cold.log_likelihood) / update.n_users_window
            )
            measurements["epochs_measured"] += 1
    measurements["service"] = service
    return measurements


def test_window_slide_speedup(session, record_result):
    """Slide + warm re-solve >= 10x faster than re-scan + cold solve, same accuracy."""
    n = session["epochs_measured"]
    slide_ms = session["slide_seconds"] / n * 1e3
    refit_ms = session["refit_seconds"] / n * 1e3
    speedup = session["refit_seconds"] / session["slide_seconds"]
    slide_mae = session["slide_mae"] / n
    refit_mae = session["refit_mae"] / n
    warm_ratio = session["cold_iterations"] / session["warm_iterations"]
    record_result(
        "streaming_throughput",
        "\n".join(
            [
                f"stream: {N_EPOCHS} epochs x {USERS_PER_EPOCH:,} users   "
                f"window: {WINDOW_EPOCHS} epochs   grid: {GRID_D}x{GRID_D}   "
                f"epsilon: {EPSILON}",
                f"window slide (algebra + warm EM): {slide_ms:.3f} ms/epoch",
                f"full refit (re-scan + cold EM):   {refit_ms:.3f} ms/epoch",
                f"slide speedup: {speedup:.1f}x (target >= {SLIDE_SPEEDUP_TARGET}x)",
                f"EM iterations: warm {session['warm_iterations']} vs cold "
                f"{session['cold_iterations']} ({warm_ratio:.2f}x fewer, "
                f"target >= {WARM_ITERATION_TARGET}x)",
                f"MAE vs window truth: slide {slide_mae:.6f}   refit {refit_mae:.6f}",
            ]
        ),
        metrics={
            "slide_speedup": speedup,
            "warm_iteration_ratio": warm_ratio,
            "slide_ms_per_epoch": slide_ms,
            "refit_ms_per_epoch": refit_ms,
            "slide_mae": slide_mae,
            "refit_mae": refit_mae,
        },
    )
    # Matched accuracy first: a fast but stale/diverged window would be worthless.
    assert slide_mae <= refit_mae * ACCURACY_HEADROOM + 1e-6
    assert speedup >= SLIDE_SPEEDUP_TARGET


def test_warm_start_iterations(session):
    """>= 3x fewer EM iterations, at (or above) the cold start's log-likelihood."""
    warm_ratio = session["cold_iterations"] / session["warm_iterations"]
    assert warm_ratio >= WARM_ITERATION_TARGET
    # "Equal final log-likelihood": the warm solve may not trade iterations for
    # fit quality — per-user, it must land within noise of the cold optimum.
    assert min(session["ll_gap_per_user"]) > -1e-3


def test_mid_stream_serving_rates(session, record_result):
    """The published engine serves the mixed workload at batch-serving rates."""
    service = session["service"]
    log = QueryLog.random(
        service.grid.domain,
        n_range=50_000,
        n_density=50_000,
        n_top_k=20,
        n_quantiles=10,
        n_marginals=10,
        seed=5,
    )
    report, answers = WorkloadReplay(service.serving).replay(log)
    record_result(
        "streaming_workload_replay",
        report.format(),
        metrics={
            "range_ops_per_second": report.per_kind["range_mass"]["ops_per_second"],
            "density_ops_per_second": report.per_kind["point_density"]["ops_per_second"],
        },
    )
    assert report.n_operations == log.size
    assert report.per_kind["range_mass"]["ops_per_second"] > 100_000
    assert report.per_kind["point_density"]["ops_per_second"] > 100_000
