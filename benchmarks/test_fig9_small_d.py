"""Figure 9(a)-(e) — W2 versus the discrete side length d (1..5), all five mechanisms.

The paper's findings for this panel row:

* W2 grows with d for (almost) every mechanism — finer grids are harder;
* DAM is always at least as good as MDSW;
* DAM is at least as good as HUEM on average (the optimality of the flat disk);
* DAM-NS trails or ties DAM on the road-network datasets (shrinkage helps).
"""

from __future__ import annotations

from repro.experiments.figures import figure9_small_d
from repro.experiments.reporting import format_sweep, mean_error


def test_figure9_small_d(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure9_small_d(bench_config), rounds=1, iterations=1)
    datasets = result.datasets()
    means = {
        name: sum(mean_error(result, dataset, name) for dataset in datasets) / len(datasets)
        for name in ("DAM", "MDSW", "HUEM")
    }
    record_result(
        "figure9_small_d",
        format_sweep(result),
        metrics={f"{name.lower()}_mean_w2": value for name, value in means.items()},
    )

    mdsw_wins = 0
    for dataset in datasets:
        dam = mean_error(result, dataset, "DAM")
        mdsw = mean_error(result, dataset, "MDSW")
        huem = mean_error(result, dataset, "HUEM")
        # Headline ordering: DAM never loses to MDSW by a wide margin ...
        assert dam <= mdsw * 1.30 + 0.01, f"DAM should not lose badly to MDSW on {dataset}"
        if dam <= mdsw * 1.05 + 0.005:
            mdsw_wins += 1
        # ... and DAM is competitive with HUEM (Theorem V.2's optimality claim).
        assert dam <= huem * 1.20 + 0.01, f"DAM should track HUEM on {dataset}"
    # ... and wins (or ties) on the majority of datasets.  (On SZipf the coordinates
    # are independent, which is MDSW's best case, so an occasional MDSW win there at
    # laptop scale is expected noise.)
    assert mdsw_wins >= len(result.datasets()) // 2 + 1

    # Granularity behaviour: d = 1 is degenerate (one cell, zero error) and every finer
    # grid has a genuinely positive error.  The paper's "W2 grows with d" trend is only
    # robust at full dataset scale, so it is asserted in the d -> 20 sweep
    # (test_fig9_large_d) rather than on the 1..5 range at laptop scale.
    for dataset in result.datasets():
        series = dict(result.series(dataset, "DAM"))
        assert series[1.0] <= 1e-9
        assert all(series[float(d)] > 0 for d in (2, 3, 4, 5))
