"""Operator-engine benchmarks: vectorised privatization and structured-EM parity.

Backs the acceptance criteria of the transition-operator engine:

* the vectorised sampler (per-row CDFs + one ``searchsorted`` over a single uniform
  batch, or the structured disk sampler) must deliver at least a 10x throughput
  improvement over the seed implementation's per-distinct-cell ``Generator.choice``
  loop;
* expectation maximisation driven by the structured operator must reproduce the
  dense-matrix estimates to 1e-10 on DAM, DAM-NS and HUEM (same fixed iteration
  count, so the two backends follow the same trajectory).

Results are recorded to ``benchmarks/results/operator_throughput.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.core.huem import DiscreteHUEM
from repro.core.postprocess import expectation_maximization
from repro.utils.rng import ensure_rng

# Figure-9-scale configuration: the per-cell choice loop is what collapses at fine
# grid resolutions, so that is where the engine has to prove itself.
N_USERS = 200_000
GRID_D = 50
EPSILON = 3.5
EM_ITERATIONS = 60


def _privatize_cells_seed_loop(transition: np.ndarray, cells: np.ndarray, seed) -> np.ndarray:
    """The seed implementation: one ``Generator.choice`` call per distinct cell."""
    rng = ensure_rng(seed)
    reports = np.empty(cells.shape[0], dtype=np.int64)
    n_out = transition.shape[1]
    for cell in np.unique(cells):
        mask = cells == cell
        reports[mask] = rng.choice(n_out, size=int(mask.sum()), p=transition[cell])
    return reports


def _best_of(callable_, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def grid() -> GridSpec:
    return GridSpec.unit(GRID_D)


@pytest.fixture(scope="module")
def cells(grid) -> np.ndarray:
    return np.random.default_rng(0).integers(0, grid.n_cells, N_USERS)


def test_vectorised_sampler_speedup(grid, cells, record_result):
    """Both new samplers must beat the seed per-cell choice loop by >= 10x."""
    operator_backed = DiscreteDAM(grid, EPSILON, backend="operator")
    dense_backed = DiscreteDAM(grid, EPSILON, backend="dense")
    transition = dense_backed.transition

    # Warm up caches (row CDFs, operator sampling tables) outside the timed region.
    operator_backed.privatize_cells(cells[:100], seed=0)
    dense_backed.privatize_cells(cells[:100], seed=0)

    t_seed = _best_of(lambda: _privatize_cells_seed_loop(transition, cells, seed=1), repeats=2)
    t_operator = _best_of(lambda: operator_backed.privatize_cells(cells, seed=1))
    t_dense = _best_of(lambda: dense_backed.privatize_cells(cells, seed=1))

    speedup_operator = t_seed / t_operator
    speedup_dense = t_seed / t_dense
    lines = [
        f"privatization throughput, d={GRID_D}, eps={EPSILON}, "
        f"b_hat={operator_backed.b_hat}, users={N_USERS}",
        f"seed per-cell choice loop : {N_USERS / t_seed:12,.0f} users/s ({t_seed * 1e3:8.2f} ms)",
        f"dense row-CDF searchsorted: {N_USERS / t_dense:12,.0f} users/s ({t_dense * 1e3:8.2f} ms)"
        f"  [{speedup_dense:.1f}x]",
        f"structured disk sampler   : {N_USERS / t_operator:12,.0f} users/s ({t_operator * 1e3:8.2f} ms)"
        f"  [{speedup_operator:.1f}x]",
    ]
    record_result(
        "operator_throughput",
        "\n".join(lines),
        metrics={
"sampler_speedup": speedup_operator,
"dense_sampler_speedup": speedup_dense,
"operator_users_per_second": N_USERS / t_operator,
},
    )
    assert speedup_operator >= 10.0, f"operator sampler only {speedup_operator:.1f}x faster"
    # The generic row-CDF sampler (used by dense-backed mechanisms) is secondary;
    # it must still be several times faster than the per-cell loop.
    assert speedup_dense >= 4.0, f"row-CDF sampler only {speedup_dense:.1f}x faster"


@pytest.mark.parametrize(
    "factory",
    [
        lambda grid, backend: DiscreteDAM(grid, EPSILON, backend=backend),
        lambda grid, backend: DiscreteDAM(grid, EPSILON, use_shrinkage=False, backend=backend),
        lambda grid, backend: DiscreteHUEM(grid, EPSILON, backend=backend),
    ],
    ids=["DAM", "DAM-NS", "HUEM"],
)
def test_em_iteration_parity(grid, cells, factory):
    """Structured-operator EM reproduces dense-matrix EM estimates to 1e-10."""
    operator_backed = factory(grid, "operator")
    dense_backed = factory(grid, "dense")
    counts = operator_backed.aggregate(operator_backed.privatize_cells(cells, seed=2))
    via_operator = expectation_maximization(
        operator_backed.operator, counts, max_iterations=EM_ITERATIONS, tolerance=0.0
    )
    via_dense = expectation_maximization(
        dense_backed.transition, counts, max_iterations=EM_ITERATIONS, tolerance=0.0
    )
    np.testing.assert_allclose(via_operator.estimate, via_dense.estimate, atol=1e-10)


def test_em_matvec_speed(grid, cells, record_result):
    """The structured matvecs make each EM iteration cheaper than the dense matmuls."""
    operator_backed = DiscreteDAM(grid, EPSILON, backend="operator")
    dense = operator_backed.operator.to_dense()
    counts = operator_backed.aggregate(operator_backed.privatize_cells(cells, seed=3))

    t_operator = _best_of(
        lambda: expectation_maximization(
            operator_backed.operator, counts, max_iterations=EM_ITERATIONS, tolerance=0.0
        )
    )
    t_dense = _best_of(
        lambda: expectation_maximization(dense, counts, max_iterations=EM_ITERATIONS, tolerance=0.0)
    )
    record_result(
        "operator_em_latency",
        "\n".join(
            [
                f"EM latency ({EM_ITERATIONS} fixed iterations), d={GRID_D}, "
                f"eps={EPSILON}, b_hat={operator_backed.b_hat}",
                f"dense matmuls      : {t_dense * 1e3:8.2f} ms",
                f"structured matvecs : {t_operator * 1e3:8.2f} ms  "
                f"[{t_dense / t_operator:.1f}x]",
            ]
        ),
        metrics={"em_speedup": t_dense / t_operator},
    )
    # The structured path must never be slower; the margin grows with d.
    assert t_operator <= t_dense


def test_streaming_matches_batch(grid, cells):
    """Sharded ingestion with a shared seed reproduces the batch histogram exactly."""
    mechanism = DiscreteDAM(grid, EPSILON, backend="operator")
    batch = mechanism.run_cells(cells, seed=4)
    aggregator = mechanism.streaming_aggregator(seed=4)
    for chunk in np.array_split(cells, 64):
        aggregator.add_cells(chunk)
    streamed = aggregator.finalize()
    np.testing.assert_array_equal(streamed.noisy_counts, batch.noisy_counts)
    np.testing.assert_allclose(streamed.estimate.flat(), batch.estimate.flat(), atol=1e-12)
