"""Table III — dataset part statistics (ranges and point counts).

Regenerates the Table III rows from the surrogate datasets.  The paper's point counts
are reported next to the surrogate counts (which are the paper counts multiplied by the
profile's dataset scale), so the table documents exactly how far the laptop profile is
from the full-size experiment.
"""

from __future__ import annotations

from repro.experiments.figures import table3_dataset_statistics
from repro.experiments.reporting import format_table3


def test_table3_dataset_statistics(benchmark, bench_config, record_result):
    rows = benchmark.pedantic(
        lambda: table3_dataset_statistics(bench_config), rounds=1, iterations=1
    )
    record_result(
        "table3_datasets",
        format_table3(rows),
        metrics={
            "n_parts": len(rows),
            "total_surrogate_points": sum(row.surrogate_points for row in rows),
            "total_paper_points": sum(row.paper_points for row in rows),
        },
    )

    # Structural checks: all six Table III parts present with the paper's counts.
    assert len(rows) == 6
    paper_counts = {row.part: row.paper_points for row in rows}
    assert paper_counts["chicago-part-a"] == 216_595
    assert paper_counts["nyc-part-b"] == 42_195
    # Surrogate sizes follow the configured scale (within the minimum-size floor).
    for row in rows:
        expected = max(int(row.paper_points * bench_config.dataset_scale), 50)
        assert row.surrogate_points == expected
