"""Figure 13 — the d and eps sweeps repeated on the Chicago Crime *full* domain.

Appendix C's observation: the relative ordering of the mechanisms on the full (sparser)
domain mirrors the per-part results — DAM still outperforms the other LDP mechanisms
and stays competitive with SEM-Geo-I, with the gap widening at fine granularity.
"""

from __future__ import annotations

from repro.experiments.figures import figure13_full_domain
from repro.experiments.reporting import format_sweep, mean_error


def test_figure13_full_domain(benchmark, bench_config, record_result):
    results = benchmark.pedantic(lambda: figure13_full_domain(bench_config), rounds=1, iterations=1)
    text = "\n\n".join(f"[{key}]\n{format_sweep(sweep)}" for key, sweep in results.items())
    record_result(
        "figure13_full_domain",
        text,
        metrics={
            "dam_small_d_w2": mean_error(results["small_d"], "Crime", "DAM"),
            "mdsw_small_d_w2": mean_error(results["small_d"], "Crime", "MDSW"),
            "dam_small_eps_w2": mean_error(results["small_epsilon"], "Crime", "DAM"),
            "dam_large_d_w2": mean_error(results["large_d"], "Crime", "DAM"),
        },
    )

    small_d = results["small_d"]
    assert small_d.datasets() == ["Crime"]
    # DAM does not lose to MDSW on the full domain either.
    assert mean_error(small_d, "Crime", "DAM") <= mean_error(small_d, "Crime", "MDSW") * 1.10 + 0.01

    # Budget sweep shows (weakly) decreasing error for DAM.
    small_eps = results["small_epsilon"]
    series = dict(small_eps.series("Crime", "DAM"))
    assert series[3.5] <= series[0.7] * 1.05 + 0.01

    # Fine-granularity sweep: error grows with d for both remaining mechanisms.
    large_d = results["large_d"]
    for mechanism in ("DAM", "SEM-Geo-I"):
        series = dict(large_d.series("Crime", mechanism))
        assert series[20.0] >= series[5.0] * 0.7
