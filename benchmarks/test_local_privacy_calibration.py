"""Section VII-B — the Local Privacy calibration between DAM (LDP) and SEM-Geo-I (Geo-I).

The paper makes the two privacy models comparable by matching their Local Privacy
(Eq. 15/16) under a uniform prior: for every DAM budget eps of Table IV it derives the
SEM-Geo-I budget eps' with equal LP.  This benchmark regenerates that calibration table
and checks its qualitative properties (monotonicity, convergence, LP equality).
"""

from __future__ import annotations

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.experiments.config import EPSILON_VALUES_SMALL
from repro.experiments.reporting import format_table
from repro.experiments.runner import calibrated_sem_epsilon
from repro.mechanisms.sem_geo_i import SEMGeoI
from repro.metrics.local_privacy import local_privacy_of_mechanism


def _calibration_table(d: int):
    grid = GridSpec.unit(d)
    rows = []
    for epsilon in EPSILON_VALUES_SMALL:
        dam_lp = local_privacy_of_mechanism(DiscreteDAM(grid, epsilon))
        sem_epsilon = calibrated_sem_epsilon(grid, epsilon)
        sem_lp = local_privacy_of_mechanism(SEMGeoI(grid, sem_epsilon))
        rows.append((epsilon, round(dam_lp, 4), round(sem_epsilon, 3), round(sem_lp, 4)))
    return rows


def test_local_privacy_calibration(benchmark, bench_config, record_result):
    d = min(bench_config.default_d, 10)  # keep the LP matrix sizes bounded
    rows = benchmark.pedantic(lambda: _calibration_table(d), rounds=1, iterations=1)
    lp_values = [row[1] for row in rows]
    sem_epsilons = [row[2] for row in rows]
    record_result(
        "local_privacy_calibration",
        format_table(["epsilon (DAM)", "LP(DAM)", "epsilon' (SEM-Geo-I)", "LP(SEM)"], rows),
        metrics={
            "max_lp_mismatch": max(
                abs(dam_lp - sem_lp) for _, dam_lp, _, sem_lp in rows
            ),
            "max_calibrated_sem_epsilon": max(sem_epsilons),
            "max_dam_lp": max(lp_values),
        },
    )
    # More budget -> less privacy, for DAM's LP.
    assert all(a > b for a, b in zip(lp_values, lp_values[1:]))
    # The calibrated SEM-Geo-I budget grows with the DAM budget.
    assert all(a <= b + 1e-9 for a, b in zip(sem_epsilons, sem_epsilons[1:]))
    # LP values match after calibration.
    for _, dam_lp, _, sem_lp in rows:
        assert abs(dam_lp - sem_lp) <= 0.02 * max(dam_lp, 1e-6)
