"""Query-serving throughput: summed-area-table batch vs the seed per-query loop.

Backs the acceptance criteria of the query-serving engine:

* ``answer_batch`` over the summed-area table must deliver at least a **20x**
  throughput improvement over the seed implementation (one dense O(d^2)
  ``_cell_overlap_fractions`` pass per query in a Python loop) on a 64x64 grid with
  10,000 queries;
* the SAT answers must match the dense path to 1e-10 on the same workload (the
  hypothesis equivalence property in ``tests/queries/test_engine.py`` pins this for
  arbitrary grids; the benchmark re-asserts it at serving scale);
* the mixed-workload replay driver reports the per-operation serving rates that back
  the ROADMAP's heavy-traffic north star.

Results are recorded to ``benchmarks/results/query_throughput.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.queries.engine import QueryEngine, QueryLog, SummedAreaTable, WorkloadReplay
from repro.queries.range_query import RangeQuery, _cell_overlap_fractions

GRID_D = 64
N_QUERIES = 10_000
SPEEDUP_TARGET = 20.0
PARITY_TOLERANCE = 1e-10


def _seed_answer_loop(estimate: GridDistribution, queries: np.ndarray) -> np.ndarray:
    """The seed serving path: one dense overlap pass per query, in a Python loop."""
    answers = np.empty(queries.shape[0])
    for index, (x_lo, x_hi, y_lo, y_hi) in enumerate(queries):
        fractions = _cell_overlap_fractions(estimate.grid, RangeQuery(x_lo, x_hi, y_lo, y_hi))
        answers[index] = float((estimate.probabilities * fractions).sum())
    return answers


def _best_of(callable_, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def estimate() -> GridDistribution:
    grid = GridSpec(SpatialDomain.unit("serving"), GRID_D)
    rng = np.random.default_rng(7)
    return GridDistribution(grid, rng.dirichlet(np.ones(GRID_D * GRID_D)))


@pytest.fixture(scope="module")
def workload(estimate) -> np.ndarray:
    log = QueryLog.random(
        estimate.grid.domain,
        n_range=N_QUERIES,
        min_fraction=0.02,
        max_fraction=0.6,
        seed=11,
    )
    return log.range_queries


def test_batched_query_speedup(estimate, workload, record_result):
    """SAT batch must beat the seed per-query loop by >= 20x at parity <= 1e-10."""
    sat = SummedAreaTable(estimate)  # table built outside the timed region
    sat_answers = sat.answer_batch(workload)
    seed_answers = _seed_answer_loop(estimate, workload)
    parity = float(np.abs(sat_answers - seed_answers).max())
    assert parity <= PARITY_TOLERANCE

    t_seed = _best_of(lambda: _seed_answer_loop(estimate, workload), repeats=2)
    t_sat = _best_of(lambda: sat.answer_batch(workload))
    speedup = t_seed / t_sat
    record_result(
        "query_throughput",
        "\n".join(
            [
                f"grid: {GRID_D}x{GRID_D}   queries: {N_QUERIES}",
                f"seed per-query loop: {t_seed:.4f} s "
                f"({N_QUERIES / t_seed:,.0f} queries/s)",
                f"SAT answer_batch:    {t_sat:.6f} s "
                f"({N_QUERIES / t_sat:,.0f} queries/s)",
                f"speedup: {speedup:.1f}x (target >= {SPEEDUP_TARGET}x)",
                f"max |SAT - dense|: {parity:.2e} (tolerance {PARITY_TOLERANCE})",
            ]
        ),
        metrics={
            "query_speedup": speedup,
            "sat_queries_per_second": N_QUERIES / t_sat,
            "parity": parity,
        },
    )
    assert speedup >= SPEEDUP_TARGET


def test_mixed_workload_replay_rates(estimate, record_result):
    """The full QueryEngine workload mix sustains serving-scale rates."""
    engine = QueryEngine(estimate)
    log = QueryLog.random(
        estimate.grid.domain,
        n_range=N_QUERIES,
        n_density=N_QUERIES,
        n_top_k=50,
        n_quantiles=20,
        n_marginals=20,
        seed=13,
    )
    report, answers = WorkloadReplay(engine).replay(log)
    record_result(
        "query_workload_replay",
        report.format(),
        metrics={
            "range_ops_per_second": report.per_kind["range_mass"]["ops_per_second"],
            "density_ops_per_second": report.per_kind["point_density"]["ops_per_second"],
        },
    )
    assert report.n_operations == log.size
    assert set(answers) == {"range_mass", "point_density", "top_k", "quantiles", "marginals"}
    # The batched kinds must comfortably clear 100k ops/sec even on slow CI workers.
    assert report.per_kind["range_mass"]["ops_per_second"] > 100_000
    assert report.per_kind["point_density"]["ops_per_second"] > 100_000
