"""Private trajectory collection: point-density quality of three collection strategies.

Appendix D of the paper compares DAM against two dedicated trajectory mechanisms
(LDPTrace and PivotTrace) when the analyst only needs the *spatial density* of the
collected trajectories (e.g. road-usage heat maps), not the sequential structure.
This example reproduces that comparison at laptop scale on simulated NYC-style
trajectories and prints the seven-step evaluation of the Appendix.

Run with:  python examples/trajectory_collection.py
"""

from __future__ import annotations

from repro.datasets.loader import load_dataset
from repro.datasets.trajectories import generate_trajectories
from repro.trajectory.adapter import compare_all_trajectory_mechanisms

EPSILON = 1.5
GRID_SIDE = 12


def main() -> None:
    nyc = load_dataset("NYC", scale=0.05, seed=0, full_domain=True)
    _, points, domain = nyc.parts[0]

    # Appendix-D generation: popularity-weighted random walks on a fine routing grid.
    dataset = generate_trajectories(
        points,
        domain,
        routing_d=100,
        n_trajectories=300,
        min_length=2,
        max_length=60,
        seed=1,
    )
    lengths = dataset.lengths()
    print(f"generated {dataset.size} trajectories "
          f"(lengths {lengths.min()}..{lengths.max()}, mean {lengths.mean():.1f})")
    print(f"total trajectory points: {dataset.all_points().shape[0]}")

    results = compare_all_trajectory_mechanisms(
        dataset.trajectories, domain, d=GRID_SIDE, epsilon=EPSILON, seed=2
    )

    print(f"\nPoint-density W2 at eps = {EPSILON}, d = {GRID_SIDE} (lower is better):")
    for key in ("ldptrace", "pivottrace", "dam"):
        result = results[key]
        print(f"  {result.mechanism:<11}: W2 = {result.w2:.4f}")

    ordered = sorted(results.values(), key=lambda r: r.w2)
    print(f"\nbest strategy for density estimation: {ordered[0].mechanism}")
    print("expected from the paper: DAM wins — the trajectory mechanisms spend their "
          "budget on sequence structure the density query never uses.")

    # Show where the budget argument bites: LDPTrace's error barely improves with eps.
    print("\nW2 as the budget grows:")
    for epsilon in (0.5, 1.5, 2.5):
        row = compare_all_trajectory_mechanisms(
            dataset.trajectories, domain, d=GRID_SIDE, epsilon=epsilon, seed=3
        )
        cells = ", ".join(
            f"{row[k].mechanism}: {row[k].w2:.4f}" for k in ("ldptrace", "pivottrace", "dam")
        )
        print(f"  eps = {epsilon}: {cells}")


if __name__ == "__main__":
    main()
