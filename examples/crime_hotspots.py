"""Crime hot-spot mapping under LDP — the paper's motivating Chicago scenario.

The police want a city-wide picture of where incidents concentrate without publishing
exact incident coordinates (Example 1 of the paper).  This example runs the full
comparison on the Chicago Crime surrogate: DAM against MDSW, SEM-Geo-I and the naive
Bucket+GRR strawman, all at the same privacy level (SEM-Geo-I's Geo-I budget is
calibrated through the Local Privacy metric exactly as in Section VII-B).

Run with:  python examples/crime_hotspots.py
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.loader import load_dataset
from repro.experiments.runner import build_mechanism
from repro.metrics import wasserstein2_auto

EPSILON = 3.5
GRID_SIDE = 10
MECHANISMS = ("DAM", "DAM-NS", "HUEM", "MDSW", "SEM-Geo-I", "Bucket+CFO")


def main() -> None:
    # Surrogate for the Chicago Crimes extraction (2% of the paper's size for speed).
    dataset = load_dataset("Crime", scale=0.02, seed=0)
    print(f"dataset: {dataset.name}, parts: {dataset.part_names()}, "
          f"total points: {dataset.total_points}")

    print(f"\nPer-mechanism W2 (lower is better), eps = {EPSILON}, d = {GRID_SIDE}:")
    print(
        f"{'mechanism':<12} "
        + " ".join(f"{name.split('-')[-1]:>10}" for name, _, _ in dataset.parts)
        + "      mean"
    )

    results: dict[str, float] = {}
    for mechanism_name in MECHANISMS:
        part_errors = []
        for part_name, points, domain in dataset.parts:
            # Work in the unit square, as in the paper's problem definition.
            unit_points = domain.normalise(points)
            grid = GridSpec(SpatialDomain.unit(part_name), GRID_SIDE)
            true_distribution = grid.distribution(unit_points)
            mechanism = build_mechanism(mechanism_name, grid, EPSILON)
            report = mechanism.run(unit_points, seed=1)
            part_errors.append(wasserstein2_auto(true_distribution, report.estimate))
        results[mechanism_name] = float(np.mean(part_errors))
        row = " ".join(f"{e:>10.4f}" for e in part_errors)
        print(f"{mechanism_name:<12} {row}  {results[mechanism_name]:>8.4f}")

    best = min(results, key=results.get)
    print(f"\nbest mechanism on the Crime surrogate: {best} (W2 = {results[best]:.4f})")
    print("expected from the paper: DAM wins among the LDP mechanisms and beats "
          "SEM-Geo-I once the grid is fine enough.")


if __name__ == "__main__":
    main()
