"""Quickstart: privately estimate a spatial density map in a few lines.

A service holds users' 2-D locations and wants a density map without ever seeing the
true coordinates.  Each location is perturbed on the user's device with the Disk Area
Mechanism (DAM) under epsilon-LDP; the analyst reconstructs the density from the noisy
reports only.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import estimate_spatial_distribution, wasserstein2_auto


def ascii_heatmap(probabilities: np.ndarray, title: str) -> None:
    """Print a small ASCII heat map of a (d, d) probability grid."""
    shades = " .:-=+*#%@"
    scale = probabilities.max() or 1.0
    print(f"\n{title}")
    for row in probabilities[::-1]:  # highest y band on top
        line = "".join(shades[int(v / scale * (len(shades) - 1))] for v in row)
        print("  " + line)


def main() -> None:
    rng = np.random.default_rng(7)

    # Simulated user locations: a dense downtown cluster plus a lighter suburb.
    downtown = rng.normal([0.35, 0.60], 0.06, size=(12_000, 2))
    suburb = rng.normal([0.70, 0.25], 0.10, size=(6_000, 2))
    locations = np.clip(np.vstack([downtown, suburb]), 0.0, 1.0)

    # One call: bucketise onto a 12x12 grid, perturb every report under eps = 2 LDP,
    # and reconstruct the density map with the EM post-processing of the paper.
    result = estimate_spatial_distribution(locations, epsilon=2.0, d=12, seed=0)

    error = wasserstein2_auto(result.true_distribution, result.estimate)
    print(f"users reporting      : {result.n_users}")
    print(f"mechanism            : {result.mechanism} (b_hat = {result.b_hat})")
    print(f"privacy budget       : eps = {result.info['epsilon']}")
    print(f"2-Wasserstein error  : {error:.4f} (unit-square scale)")

    ascii_heatmap(result.true_distribution.probabilities, "true density (never leaves the users)")
    ascii_heatmap(result.estimate.probabilities, "privately estimated density")

    # The pipeline runs on the structured transition-operator engine by default, so
    # randomisation and EM never materialise the dense (d^2, m) transition matrix.
    # For datasets too large to hold in memory, stream shards instead — with a fixed
    # seed the result is identical to the one-batch call above:
    #
    #   from repro import DAMPipeline, SpatialDomain
    #   pipeline = DAMPipeline(SpatialDomain.unit(), d=12, epsilon=2.0)
    #   result = pipeline.run_stream(shard_iterator(), seed=0)
    #
    # And to privatize the shards on a process pool — still bit-identical to the
    # serial run at any worker count:
    #
    #   from repro import ParallelPipeline
    #   pipeline = ParallelPipeline(SpatialDomain.unit(), d=12, epsilon=2.0, workers=4)
    #   result = pipeline.run(locations, seed=0)


if __name__ == "__main__":
    main()
