"""Epidemic monitoring: private case-density maps with multiple outbreak centres.

A health agency collects self-reported case locations under LDP and needs the spatial
case distribution to allocate testing capacity.  Outbreaks are multi-modal (several
simultaneous clusters), which is exactly the structure the MNormal synthetic dataset
models.  This example shows:

* how the estimate degrades gracefully as the privacy budget shrinks,
* why keeping the cross-dimension correlation matters (DAM versus MDSW on the
  correlated cluster), and
* how to answer "how many cases fall inside this district?" range queries on the
  private estimate.

Run with:  python examples/epidemic_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.synthetic import mnormal_dataset
from repro.mechanisms.mdsw import MDSW
from repro.metrics import wasserstein2_auto

GRID_SIDE = 12


def district_mass(probabilities: np.ndarray, rows: slice, cols: slice) -> float:
    """Fraction of cases estimated to fall inside a rectangular district."""
    return float(probabilities[rows, cols].sum())


def main() -> None:
    data = mnormal_dataset(n=30_000, seed=3)
    domain = data.domain
    unit_points = domain.normalise(data.points)
    unit_domain = SpatialDomain.unit("epidemic")
    grid = GridSpec(unit_domain, GRID_SIDE)
    true_distribution = grid.distribution(unit_points)

    print(f"simulated cases: {data.size}, clusters: {len(data.parameters['centers'])}")

    print("\nPrivacy/utility trade-off (DAM, d = 12):")
    for epsilon in (0.7, 1.4, 2.8, 5.0):
        mechanism = DiscreteDAM(grid, epsilon)
        estimate = mechanism.run(unit_points, seed=0).estimate
        error = wasserstein2_auto(true_distribution, estimate)
        print(f"  eps = {epsilon:>3}: W2 = {error:.4f}  (b_hat = {mechanism.b_hat})")

    print("\nKeeping the spatial correlation (eps = 2.8):")
    for mechanism in (DiscreteDAM(grid, 2.8), MDSW(grid, 2.8)):
        estimate = mechanism.run(unit_points, seed=1).estimate
        error = wasserstein2_auto(true_distribution, estimate)
        print(f"  {mechanism.name:<5}: W2 = {error:.4f}")

    # District-level counts from the private estimate (post-processing is free under DP).
    mechanism = DiscreteDAM(grid, 2.8)
    estimate = mechanism.run(unit_points, seed=2).estimate
    half = GRID_SIDE // 2
    districts = {
        "south-west": (slice(0, half), slice(0, half)),
        "north-east": (slice(half, GRID_SIDE), slice(half, GRID_SIDE)),
    }
    print("\nEstimated vs true share of cases per district (eps = 2.8):")
    for name, (rows, cols) in districts.items():
        estimated = district_mass(estimate.probabilities, rows, cols)
        actual = district_mass(true_distribution.probabilities, rows, cols)
        print(f"  {name:<11}: estimated {estimated:.3f}, true {actual:.3f}")


if __name__ == "__main__":
    main()
