"""Traffic-density estimation: the privacy/utility trade-off for a ride-hailing fleet.

A ride-hailing platform wants the pickup-density map of New York (to route drivers
around hot spots) while each driver's reported location stays epsilon-LDP private.
This example sweeps the privacy budget and the grid resolution on the NYC Green Taxi
surrogate and prints how the estimation error responds — the practical "how much budget
do I need for my resolution?" question a deployment has to answer.

Run with:  python examples/traffic_density.py
"""

from __future__ import annotations

from repro.core.pipeline import DAMPipeline
from repro.core.radius import grid_radius, optimal_radius
from repro.datasets.loader import load_dataset
from repro.metrics import wasserstein2_auto

BUDGETS = (0.7, 1.4, 2.8, 5.0)
RESOLUTIONS = (5, 10, 15)


def main() -> None:
    dataset = load_dataset("NYC", scale=0.05, seed=0, full_domain=True)
    part_name, points, domain = dataset.parts[0]
    print(f"NYC pickup surrogate: {points.shape[0]} pickups in {domain.bounds}")

    print("\noptimal high-probability radius b* (continuous, unit square):")
    for epsilon in BUDGETS:
        print(f"  eps = {epsilon:>3}: b* = {optimal_radius(epsilon):.3f}"
              f"  -> grid radius at d=15: {grid_radius(epsilon, 15, 1.0)} cells")

    print("\nW2 error of the DAM pipeline (rows: resolution d, columns: budget eps):")
    header = "d \\ eps " + "".join(f"{eps:>9}" for eps in BUDGETS)
    print(header)
    unit_points = domain.normalise(points)
    from repro.core.domain import SpatialDomain

    unit_domain = SpatialDomain.unit("nyc")
    for d in RESOLUTIONS:
        row = [f"{d:<8}"]
        for epsilon in BUDGETS:
            pipeline = DAMPipeline(unit_domain, d=d, epsilon=epsilon)
            result = pipeline.run(unit_points, seed=2)
            error = wasserstein2_auto(result.true_distribution, result.estimate)
            row.append(f"{error:>9.4f}")
        print("".join(row))

    print("\nReading the table: more budget always helps; finer grids need more budget "
          "to reach the same error — the trend the paper's Figure 9 reports.")


if __name__ == "__main__":
    main()
