"""Shared-memory snapshot publication: the seqlock under the serving tier.

A long-lived deployment has one *publisher* (the streaming ingest loop) and N
*serving workers* in separate processes.  Pickling the posterior into every
worker per refresh — let alone per query — would dominate the serve path, so the
current window snapshot lives in one ``multiprocessing.shared_memory`` segment
that every process maps zero-copy:

=========  =======================  ==========================================
offset     contents                 dtype / shape
=========  =======================  ==========================================
0          header                   ``int64[4]``: generation, epoch, d, layout
32         posterior grid           ``float64 (d, d)``
32+8·d²    summed-area table        ``float64 (d+1, d+1)`` (zero-padded prefix
                                    sums, the substrate of O(1) range queries)
=========  =======================  ==========================================

Consistency is a **seqlock** on the generation counter (header slot 0):

* :meth:`SnapshotWriter.publish` bumps the generation to an *odd* value, copies
  both buffers and the epoch label in, then bumps to the next *even* value.
* :meth:`SnapshotReader.read` loads the generation, answers the query off the
  mapped buffers, then re-loads the generation: if it was odd, or changed, a
  publish overlapped the read and the reader retries.  Readers never block the
  writer and the writer never blocks readers — a torn posterior/SAT pair can be
  *computed* mid-publish but never *returned*.

Bit-identity: the reader rebuilds its :class:`~repro.queries.engine.QueryEngine`
through :meth:`~repro.core.domain.GridDistribution.from_normalized`, which
adopts the mapped probabilities and installs the mapped summed-area table as the
cumulative cache.  Nothing is re-normalised and nothing is recomputed, so every
worker answers bit-for-bit like the publisher's serial engine at the same
generation (asserted in ``tests/serving/`` and the serving benchmark).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.queries.engine import QueryEngine, TrajectoryQueryEngine

_HEADER_SLOTS = 4
_HEADER_BYTES = _HEADER_SLOTS * 8
_GENERATION, _EPOCH, _SIDE, _LAYOUT = 0, 1, 2, 3
_LAYOUT_VERSION = 1
#: epoch header value meaning "no epoch label" (epochs are 0-based everywhere)
_NO_EPOCH = -1

# Trajectory layout (v2): the v1 header plus per-publish table counts.  The
# capacity-bounded tables (lengths, OD pairs, transition pairs) live after the
# posterior + SAT; each publish records how many rows of each are live.
_TRAJ_HEADER_SLOTS = 8
_TRAJ_HEADER_BYTES = _TRAJ_HEADER_SLOTS * 8
_N_LENGTHS, _N_OD, _N_TRANSITIONS = 4, 5, 6
_TRAJ_LAYOUT_VERSION = 2


class TornSnapshotError(RuntimeError):
    """The generation counter is stuck odd: the writer died mid-publish.

    A live publisher holds the generation odd only for the microseconds of two
    buffer copies, so a generation that sits *unchanged* on one odd value is not
    contention — it is a publisher that crashed between the two bumps, leaving
    the segment permanently torn.  :meth:`SnapshotReader.read` raises this after
    ``torn_timeout`` seconds of no progress instead of spinning out its full
    read timeout, so serving workers surface a dead publisher as a fast, typed
    failure rather than a hang.
    """


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup responsibility.

    On Python < 3.13 every attach re-registers the segment with the
    ``multiprocessing`` resource tracker.  Under the ``spawn`` start method a
    worker owns its *own* tracker, whose exit-time cleanup would unlink a
    segment the creator still serves from — so spawn-side attaches deregister
    immediately; only the writer/arena that created a segment unlinks it.
    Under ``fork`` every process shares one tracker and the re-register is a
    set no-op, so deregistering there would instead cancel the creator's entry
    (KeyError noise when it later unlinks) — leave it alone.
    """
    segment = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:
            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals vary per platform
            pass
    return segment


@dataclass(frozen=True)
class SnapshotSpec:
    """Everything a worker process needs to map a snapshot segment.

    Plain strings and floats only, so the spec is cheap to pickle into worker
    processes; the grid geometry rides along because the buffers alone cannot
    reconstruct the domain bounds.
    """

    name: str
    d: int
    bounds: tuple[float, float, float, float]
    domain_name: str = ""

    def grid(self) -> GridSpec:
        return GridSpec(SpatialDomain(*self.bounds, name=self.domain_name), self.d)

    @property
    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.d * self.d * 8 + (self.d + 1) * (self.d + 1) * 8


def _carve(
    segment: shared_memory.SharedMemory, d: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The (header, probabilities, table) views over one mapped segment."""
    header = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=segment.buf)
    probabilities = np.ndarray(
        (d, d), dtype=np.float64, buffer=segment.buf, offset=_HEADER_BYTES
    )
    table = np.ndarray(
        (d + 1, d + 1),
        dtype=np.float64,
        buffer=segment.buf,
        offset=_HEADER_BYTES + d * d * 8,
    )
    return header, probabilities, table


class SnapshotWriter:
    """The publisher's half of the seqlock: owns the segment, writes snapshots.

    Create one per serving deployment (the grid geometry is fixed for the
    segment's lifetime), hand :attr:`spec` to the workers, then call
    :meth:`publish` once per refresh.  The writer owns the segment: closing it
    unlinks the backing memory.
    """

    def __init__(self, grid: GridSpec, *, name: str | None = None) -> None:
        self.grid = grid
        spec_size = (
            _HEADER_BYTES + grid.d * grid.d * 8 + (grid.d + 1) * (grid.d + 1) * 8
        )
        self._shm = shared_memory.SharedMemory(create=True, size=spec_size, name=name)
        self._header, self._probabilities, self._table = _carve(self._shm, grid.d)
        self._header[:] = (0, _NO_EPOCH, grid.d, _LAYOUT_VERSION)
        self._closed = False

    @property
    def spec(self) -> SnapshotSpec:
        domain = self.grid.domain
        return SnapshotSpec(
            name=self._shm.name,
            d=self.grid.d,
            bounds=domain.bounds,
            domain_name=domain.name,
        )

    @property
    def generation(self) -> int:
        """The current generation (even = consistent, odd = publish in progress)."""
        return int(self._header[_GENERATION])

    @property
    def epoch(self) -> int | None:
        """Epoch label of the current snapshot (``None`` before a labelled publish)."""
        epoch = int(self._header[_EPOCH])
        return None if epoch == _NO_EPOCH else epoch

    def publish(self, estimate: GridDistribution, *, epoch: int | None = None) -> int:
        """Copy a new snapshot into the segment; returns its (even) generation.

        The seqlock write: generation goes odd, the posterior, its summed-area
        table and the epoch label are copied, generation goes even.  Readers
        that overlapped the copy observe the odd/changed generation and retry.
        """
        if self._closed:
            raise RuntimeError("snapshot writer is closed")
        grid = estimate.grid
        if grid.d != self.grid.d or grid.domain.bounds != self.grid.domain.bounds:
            raise ValueError(
                f"estimate grid (d={grid.d}, bounds={grid.domain.bounds}) does not "
                f"match the snapshot segment (d={self.grid.d}, "
                f"bounds={self.grid.domain.bounds})"
            )
        if epoch is not None and epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        table = estimate.cumulative()
        self._header[_GENERATION] += 1  # odd: publish in progress
        self._probabilities[:] = estimate.probabilities
        self._table[:] = table
        self._header[_EPOCH] = _NO_EPOCH if epoch is None else int(epoch)
        self._header[_GENERATION] += 1  # even: snapshot consistent
        return int(self._header[_GENERATION])

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # numpy views export pointers into the mmap; drop them before closing
        # or mmap.close() raises BufferError.
        self._header = self._probabilities = self._table = None  # type: ignore[assignment]
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SnapshotReader:
    """A worker's half of the seqlock: maps the segment, answers consistently.

    The reader builds one zero-copy :class:`~repro.queries.engine.QueryEngine`
    over the mapped buffers at attach time; :meth:`read` wraps any engine call
    in the seqlock retry loop so its result always comes from one consistent
    (posterior, SAT, epoch) triple.
    """

    def __init__(self, spec: SnapshotSpec) -> None:
        self.spec = spec
        self._shm = attach_shared_memory(spec.name)
        if self._shm.size < spec.size_bytes:
            raise ValueError(
                f"segment {spec.name!r} is {self._shm.size} bytes, expected at "
                f"least {spec.size_bytes} for d={spec.d}"
            )
        self._header, probabilities, table = _carve(self._shm, spec.d)
        side = int(self._header[_SIDE])
        layout = int(self._header[_LAYOUT])
        if side != spec.d or layout != _LAYOUT_VERSION:
            raise ValueError(
                f"segment {spec.name!r} holds d={side} layout v{layout}, expected "
                f"d={spec.d} layout v{_LAYOUT_VERSION}"
            )
        self.grid = spec.grid()
        # Zero-copy rebuild: adopt the mapped probabilities and install the
        # mapped table as the cumulative cache, so the engine is bit-identical
        # to the publisher's and nothing is recomputed per attach (or per read).
        estimate = GridDistribution.from_normalized(
            self.grid, probabilities, cumulative=table
        )
        self._engine: QueryEngine | None = QueryEngine(estimate)
        #: seqlock retries observed so far (throwaway reads that overlapped a
        #: publish); exposed for the protocol tests
        self.retries = 0

    @property
    def generation(self) -> int:
        if self._engine is None:
            raise RuntimeError("snapshot reader is closed")
        return int(self._header[_GENERATION])

    @property
    def ready(self) -> bool:
        """Whether at least one complete snapshot has been published."""
        return self.generation >= 2

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the first publish completes (workers start before it)."""
        deadline = time.monotonic() + timeout
        while not self.ready:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no snapshot published to {self.spec.name!r} within {timeout}s"
                )
            time.sleep(1e-4)

    def read(self, fn, *, timeout: float = 30.0, torn_timeout: float = 1.0):
        """Run ``fn(engine)`` against one consistent snapshot.

        Returns ``(result, generation, epoch)``.  The seqlock read: load the
        generation, compute, re-load — odd or changed means a publish overlapped
        and the result is discarded and recomputed.  ``fn`` must be a pure read
        of the engine (it may run more than once).

        A generation that sits *unchanged* on one odd value is a writer that
        died between its two bumps, not contention, and no amount of retrying
        recovers it; after ``torn_timeout`` seconds without progress the read
        raises :class:`TornSnapshotError` instead of burning the full
        ``timeout``.
        """
        if self._engine is None:
            raise RuntimeError("snapshot reader is closed")
        if torn_timeout <= 0:
            raise ValueError(f"torn_timeout must be positive, got {torn_timeout}")
        deadline = time.monotonic() + timeout
        torn_generation = -1
        torn_deadline = 0.0
        while True:
            generation = int(self._header[_GENERATION])
            if generation >= 2 and generation % 2 == 0:
                torn_generation = -1
                epoch = int(self._header[_EPOCH])
                result = fn(self._engine)
                if int(self._header[_GENERATION]) == generation:
                    return result, generation, (None if epoch == _NO_EPOCH else epoch)
                self.retries += 1
            elif generation % 2 == 1:
                now = time.monotonic()
                if generation != torn_generation:
                    # First sight of this odd value: (re)arm the torn clock.
                    torn_generation = generation
                    torn_deadline = now + torn_timeout
                elif now > torn_deadline:
                    raise TornSnapshotError(
                        f"segment {self.spec.name!r} stuck at odd generation "
                        f"{generation} for {torn_timeout}s — the writer died "
                        f"mid-publish and the snapshot is torn"
                    )
                # A publish-in-flight resolves in microseconds; back off a touch
                # so a torn wait does not hot-spin a core.
                time.sleep(1e-5)
            else:  # generation 0: nothing published yet
                time.sleep(1e-4)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no consistent snapshot read from {self.spec.name!r} within "
                    f"{timeout}s (generation {generation})"
                )

    def pinned(
        self, *, timeout: float = 30.0, torn_timeout: float = 1.0
    ) -> tuple[QueryEngine, int, int | None]:
        """A private copy of the current snapshot: ``(engine, generation, epoch)``.

        The copy is taken inside the seqlock loop, so the returned engine is a
        consistent window that later publishes cannot touch — the cross-process
        analogue of :meth:`~repro.queries.engine.StreamingQueryEngine.snapshot`.
        """

        def copy_out(engine: QueryEngine) -> tuple[np.ndarray, np.ndarray]:
            return engine.estimate.probabilities.copy(), engine.sat.table.copy()

        (probabilities, table), generation, epoch = self.read(
            copy_out, timeout=timeout, torn_timeout=torn_timeout
        )
        estimate = GridDistribution.from_normalized(
            self.grid, probabilities, cumulative=table
        )
        return QueryEngine(estimate), generation, epoch

    def close(self) -> None:
        """Release the mapping (idempotent; never unlinks — the writer owns it)."""
        if self._engine is None:
            return
        self._engine = None
        self._header = None  # type: ignore[assignment]
        self._shm.close()

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------------------- trajectory snapshots
@dataclass(frozen=True)
class TrajectorySnapshotSpec:
    """Worker-side description of a trajectory snapshot segment (layout v2).

    ``max_trajectories`` / ``max_pairs`` are the segment's fixed table
    capacities: a publish carrying more rows than the segment was created for
    is rejected at the writer, never silently truncated.
    """

    name: str
    d: int
    bounds: tuple[float, float, float, float]
    max_trajectories: int
    max_pairs: int
    domain_name: str = ""

    def grid(self) -> GridSpec:
        return GridSpec(SpatialDomain(*self.bounds, name=self.domain_name), self.d)

    @property
    def size_bytes(self) -> int:
        return (
            _TRAJ_HEADER_BYTES
            + self.d * self.d * 8
            + (self.d + 1) * (self.d + 1) * 8
            + self.max_trajectories * 8
            + 2 * self.max_pairs * 3 * 8
        )


def _carve_trajectory(segment: shared_memory.SharedMemory, spec: "TrajectorySnapshotSpec"):
    """(header, probabilities, table, lengths, od, transitions) views over a segment."""
    d = spec.d
    header = np.ndarray((_TRAJ_HEADER_SLOTS,), dtype=np.int64, buffer=segment.buf)
    offset = _TRAJ_HEADER_BYTES
    probabilities = np.ndarray((d, d), dtype=np.float64, buffer=segment.buf, offset=offset)
    offset += d * d * 8
    table = np.ndarray((d + 1, d + 1), dtype=np.float64, buffer=segment.buf, offset=offset)
    offset += (d + 1) * (d + 1) * 8
    lengths = np.ndarray(
        (spec.max_trajectories,), dtype=np.int64, buffer=segment.buf, offset=offset
    )
    offset += spec.max_trajectories * 8
    od = np.ndarray((spec.max_pairs, 3), dtype=np.float64, buffer=segment.buf, offset=offset)
    offset += spec.max_pairs * 3 * 8
    transitions = np.ndarray(
        (spec.max_pairs, 3), dtype=np.float64, buffer=segment.buf, offset=offset
    )
    return header, probabilities, table, lengths, od, transitions


class TrajectorySnapshotWriter:
    """Publish a :class:`~repro.queries.engine.TrajectoryQueryEngine` over shm.

    The trajectory surface reduces to flat tables at engine construction
    (lengths, presorted OD / transition ``(from, to, count)`` triples), so the
    segment carries those tables — never the trajectories themselves — under
    the same seqlock protocol as :class:`SnapshotWriter`.  Cell ids and counts
    are stored as float64 (exact for any id below 2^53) so the pair tables are
    two plain ``(max_pairs, 3)`` strips.
    """

    def __init__(
        self,
        grid: GridSpec,
        *,
        max_trajectories: int,
        max_pairs: int,
        name: str | None = None,
    ) -> None:
        if max_trajectories < 1:
            raise ValueError(f"max_trajectories must be >= 1, got {max_trajectories}")
        if max_pairs < 1:
            raise ValueError(f"max_pairs must be >= 1, got {max_pairs}")
        self.grid = grid
        self.max_trajectories = max_trajectories
        self.max_pairs = max_pairs
        domain = grid.domain
        size = TrajectorySnapshotSpec(
            name="", d=grid.d, bounds=domain.bounds,
            max_trajectories=max_trajectories, max_pairs=max_pairs,
        ).size_bytes
        self._shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        self._views = _carve_trajectory(self._shm, self.spec)
        self._views[0][:4] = (0, _NO_EPOCH, grid.d, _TRAJ_LAYOUT_VERSION)
        self._closed = False

    @property
    def spec(self) -> TrajectorySnapshotSpec:
        domain = self.grid.domain
        return TrajectorySnapshotSpec(
            name=self._shm.name,
            d=self.grid.d,
            bounds=domain.bounds,
            max_trajectories=self.max_trajectories,
            max_pairs=self.max_pairs,
            domain_name=domain.name,
        )

    @property
    def generation(self) -> int:
        return int(self._views[0][_GENERATION])

    @property
    def epoch(self) -> int | None:
        """Epoch label of the current snapshot (``None`` before a labelled publish)."""
        epoch = int(self._views[0][_EPOCH])
        return None if epoch == _NO_EPOCH else epoch

    def publish(self, engine: TrajectoryQueryEngine, *, epoch: int | None = None) -> int:
        """Copy the engine's posterior, SAT and trajectory tables in; returns the generation."""
        if self._closed:
            raise RuntimeError("trajectory snapshot writer is closed")
        grid = engine.grid
        if grid.d != self.grid.d or grid.domain.bounds != self.grid.domain.bounds:
            raise ValueError(
                f"engine grid (d={grid.d}, bounds={grid.domain.bounds}) does not "
                f"match the snapshot segment (d={self.grid.d}, "
                f"bounds={self.grid.domain.bounds})"
            )
        if epoch is not None and epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        od = engine._od_pairs
        transitions = engine._transition_pairs
        n_lengths = engine.lengths.shape[0]
        n_od, n_transitions = od[2].shape[0], transitions[2].shape[0]
        if n_lengths > self.max_trajectories:
            raise ValueError(
                f"engine holds {n_lengths} trajectories, segment capacity is "
                f"{self.max_trajectories}"
            )
        if max(n_od, n_transitions) > self.max_pairs:
            raise ValueError(
                f"engine holds {n_od} OD / {n_transitions} transition pairs, "
                f"segment capacity is {self.max_pairs}"
            )
        header, probabilities, table, lengths, od_strip, transition_strip = self._views
        header[_GENERATION] += 1  # odd: publish in progress
        probabilities[:] = engine.estimate.probabilities
        table[:] = engine.sat.table
        lengths[:n_lengths] = engine.lengths
        for column, part in enumerate(od):
            od_strip[:n_od, column] = part
        for column, part in enumerate(transitions):
            transition_strip[:n_transitions, column] = part
        header[_N_LENGTHS] = n_lengths
        header[_N_OD] = n_od
        header[_N_TRANSITIONS] = n_transitions
        header[_EPOCH] = _NO_EPOCH if epoch is None else int(epoch)
        header[_GENERATION] += 1  # even: snapshot consistent
        return int(header[_GENERATION])

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._views = None  # type: ignore[assignment]
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "TrajectorySnapshotWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TrajectorySnapshotReader:
    """Serve the full trajectory surface from a mapped v2 segment.

    Unlike :class:`SnapshotReader`, the engine cannot be built once at attach
    time — the live row counts change per publish — so :meth:`read` rebuilds a
    :meth:`~repro.queries.engine.TrajectoryQueryEngine.from_tables` view inside
    the seqlock loop (a handful of array wraps; nothing is copied or
    recomputed).  ``fn`` must materialise its result (plain lists / copies):
    slices of the mapped tables are views a later publish may overwrite.
    """

    def __init__(self, spec: TrajectorySnapshotSpec) -> None:
        self.spec = spec
        self._shm = attach_shared_memory(spec.name)
        if self._shm.size < spec.size_bytes:
            raise ValueError(
                f"segment {spec.name!r} is {self._shm.size} bytes, expected at "
                f"least {spec.size_bytes} for d={spec.d}"
            )
        views = _carve_trajectory(self._shm, spec)
        header = views[0]
        side, layout = int(header[_SIDE]), int(header[_LAYOUT])
        if side != spec.d or layout != _TRAJ_LAYOUT_VERSION:
            raise ValueError(
                f"segment {spec.name!r} holds d={side} layout v{layout}, expected "
                f"d={spec.d} layout v{_TRAJ_LAYOUT_VERSION}"
            )
        self.grid = spec.grid()
        self._views: tuple | None = views
        #: seqlock retries observed so far; exposed for the protocol tests
        self.retries = 0

    @property
    def generation(self) -> int:
        if self._views is None:
            raise RuntimeError("trajectory snapshot reader is closed")
        return int(self._views[0][_GENERATION])

    @property
    def ready(self) -> bool:
        """Whether at least one complete snapshot has been published."""
        return self.generation >= 2

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the first publish completes (readers may attach before it)."""
        deadline = time.monotonic() + timeout
        while not self.ready:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no snapshot published to {self.spec.name!r} within {timeout}s"
                )
            time.sleep(1e-4)

    def _engine_view(self) -> TrajectoryQueryEngine:
        """The engine over the currently-live table rows (views, not copies)."""
        header, probabilities, table, lengths, od, transitions = self._views
        n_lengths = int(header[_N_LENGTHS])
        n_od = int(header[_N_OD])
        n_transitions = int(header[_N_TRANSITIONS])
        return TrajectoryQueryEngine.from_tables(
            self.grid,
            probabilities,
            lengths[:n_lengths],
            (
                od[:n_od, 0].astype(np.int64),
                od[:n_od, 1].astype(np.int64),
                od[:n_od, 2].copy(),
            ),
            (
                transitions[:n_transitions, 0].astype(np.int64),
                transitions[:n_transitions, 1].astype(np.int64),
                transitions[:n_transitions, 2].copy(),
            ),
            cumulative=table,
        )

    def read(self, fn, *, timeout: float = 30.0, torn_timeout: float = 1.0):
        """Run ``fn(engine)`` against one consistent snapshot.

        Returns ``(result, generation, epoch)`` under the same seqlock/torn
        protocol as :meth:`SnapshotReader.read`.  ``fn`` may run more than once
        and must not return live views into the engine's tables.
        """
        if self._views is None:
            raise RuntimeError("trajectory snapshot reader is closed")
        if torn_timeout <= 0:
            raise ValueError(f"torn_timeout must be positive, got {torn_timeout}")
        header = self._views[0]
        deadline = time.monotonic() + timeout
        torn_generation = -1
        torn_deadline = 0.0
        while True:
            generation = int(header[_GENERATION])
            if generation >= 2 and generation % 2 == 0:
                torn_generation = -1
                epoch = int(header[_EPOCH])
                result = fn(self._engine_view())
                if int(header[_GENERATION]) == generation:
                    return result, generation, (None if epoch == _NO_EPOCH else epoch)
                self.retries += 1
            elif generation % 2 == 1:
                now = time.monotonic()
                if generation != torn_generation:
                    torn_generation = generation
                    torn_deadline = now + torn_timeout
                elif now > torn_deadline:
                    raise TornSnapshotError(
                        f"segment {self.spec.name!r} stuck at odd generation "
                        f"{generation} for {torn_timeout}s — the writer died "
                        f"mid-publish and the snapshot is torn"
                    )
                time.sleep(1e-5)
            else:  # generation 0: nothing published yet
                time.sleep(1e-4)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no consistent snapshot read from {self.spec.name!r} within "
                    f"{timeout}s (generation {generation})"
                )

    def close(self) -> None:
        """Release the mapping (idempotent; never unlinks — the writer owns it)."""
        if self._views is None:
            return
        self._views = None
        self._shm.close()

    def __enter__(self) -> "TrajectorySnapshotReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
