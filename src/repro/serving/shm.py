"""Shared-memory snapshot publication: the seqlock under the serving tier.

A long-lived deployment has one *publisher* (the streaming ingest loop) and N
*serving workers* in separate processes.  Pickling the posterior into every
worker per refresh — let alone per query — would dominate the serve path, so the
current window snapshot lives in one ``multiprocessing.shared_memory`` segment
that every process maps zero-copy:

=========  =======================  ==========================================
offset     contents                 dtype / shape
=========  =======================  ==========================================
0          header                   ``int64[4]``: generation, epoch, d, layout
32         posterior grid           ``float64 (d, d)``
32+8·d²    summed-area table        ``float64 (d+1, d+1)`` (zero-padded prefix
                                    sums, the substrate of O(1) range queries)
=========  =======================  ==========================================

Consistency is a **seqlock** on the generation counter (header slot 0):

* :meth:`SnapshotWriter.publish` bumps the generation to an *odd* value, copies
  both buffers and the epoch label in, then bumps to the next *even* value.
* :meth:`SnapshotReader.read` loads the generation, answers the query off the
  mapped buffers, then re-loads the generation: if it was odd, or changed, a
  publish overlapped the read and the reader retries.  Readers never block the
  writer and the writer never blocks readers — a torn posterior/SAT pair can be
  *computed* mid-publish but never *returned*.

Bit-identity: the reader rebuilds its :class:`~repro.queries.engine.QueryEngine`
through :meth:`~repro.core.domain.GridDistribution.from_normalized`, which
adopts the mapped probabilities and installs the mapped summed-area table as the
cumulative cache.  Nothing is re-normalised and nothing is recomputed, so every
worker answers bit-for-bit like the publisher's serial engine at the same
generation (asserted in ``tests/serving/`` and the serving benchmark).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.queries.engine import QueryEngine

_HEADER_SLOTS = 4
_HEADER_BYTES = _HEADER_SLOTS * 8
_GENERATION, _EPOCH, _SIDE, _LAYOUT = 0, 1, 2, 3
_LAYOUT_VERSION = 1
#: epoch header value meaning "no epoch label" (epochs are 0-based everywhere)
_NO_EPOCH = -1


class TornSnapshotError(RuntimeError):
    """The generation counter is stuck odd: the writer died mid-publish.

    A live publisher holds the generation odd only for the microseconds of two
    buffer copies, so a generation that sits *unchanged* on one odd value is not
    contention — it is a publisher that crashed between the two bumps, leaving
    the segment permanently torn.  :meth:`SnapshotReader.read` raises this after
    ``torn_timeout`` seconds of no progress instead of spinning out its full
    read timeout, so serving workers surface a dead publisher as a fast, typed
    failure rather than a hang.
    """


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup responsibility.

    On Python < 3.13 every attach re-registers the segment with the
    ``multiprocessing`` resource tracker.  Under the ``spawn`` start method a
    worker owns its *own* tracker, whose exit-time cleanup would unlink a
    segment the creator still serves from — so spawn-side attaches deregister
    immediately; only the writer/arena that created a segment unlinks it.
    Under ``fork`` every process shares one tracker and the re-register is a
    set no-op, so deregistering there would instead cancel the creator's entry
    (KeyError noise when it later unlinks) — leave it alone.
    """
    segment = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:
            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals vary per platform
            pass
    return segment


@dataclass(frozen=True)
class SnapshotSpec:
    """Everything a worker process needs to map a snapshot segment.

    Plain strings and floats only, so the spec is cheap to pickle into worker
    processes; the grid geometry rides along because the buffers alone cannot
    reconstruct the domain bounds.
    """

    name: str
    d: int
    bounds: tuple[float, float, float, float]
    domain_name: str = ""

    def grid(self) -> GridSpec:
        return GridSpec(SpatialDomain(*self.bounds, name=self.domain_name), self.d)

    @property
    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.d * self.d * 8 + (self.d + 1) * (self.d + 1) * 8


def _carve(
    segment: shared_memory.SharedMemory, d: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The (header, probabilities, table) views over one mapped segment."""
    header = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=segment.buf)
    probabilities = np.ndarray(
        (d, d), dtype=np.float64, buffer=segment.buf, offset=_HEADER_BYTES
    )
    table = np.ndarray(
        (d + 1, d + 1),
        dtype=np.float64,
        buffer=segment.buf,
        offset=_HEADER_BYTES + d * d * 8,
    )
    return header, probabilities, table


class SnapshotWriter:
    """The publisher's half of the seqlock: owns the segment, writes snapshots.

    Create one per serving deployment (the grid geometry is fixed for the
    segment's lifetime), hand :attr:`spec` to the workers, then call
    :meth:`publish` once per refresh.  The writer owns the segment: closing it
    unlinks the backing memory.
    """

    def __init__(self, grid: GridSpec, *, name: str | None = None) -> None:
        self.grid = grid
        spec_size = (
            _HEADER_BYTES + grid.d * grid.d * 8 + (grid.d + 1) * (grid.d + 1) * 8
        )
        self._shm = shared_memory.SharedMemory(create=True, size=spec_size, name=name)
        self._header, self._probabilities, self._table = _carve(self._shm, grid.d)
        self._header[:] = (0, _NO_EPOCH, grid.d, _LAYOUT_VERSION)
        self._closed = False

    @property
    def spec(self) -> SnapshotSpec:
        domain = self.grid.domain
        return SnapshotSpec(
            name=self._shm.name,
            d=self.grid.d,
            bounds=domain.bounds,
            domain_name=domain.name,
        )

    @property
    def generation(self) -> int:
        """The current generation (even = consistent, odd = publish in progress)."""
        return int(self._header[_GENERATION])

    def publish(self, estimate: GridDistribution, *, epoch: int | None = None) -> int:
        """Copy a new snapshot into the segment; returns its (even) generation.

        The seqlock write: generation goes odd, the posterior, its summed-area
        table and the epoch label are copied, generation goes even.  Readers
        that overlapped the copy observe the odd/changed generation and retry.
        """
        if self._closed:
            raise RuntimeError("snapshot writer is closed")
        grid = estimate.grid
        if grid.d != self.grid.d or grid.domain.bounds != self.grid.domain.bounds:
            raise ValueError(
                f"estimate grid (d={grid.d}, bounds={grid.domain.bounds}) does not "
                f"match the snapshot segment (d={self.grid.d}, "
                f"bounds={self.grid.domain.bounds})"
            )
        if epoch is not None and epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        table = estimate.cumulative()
        self._header[_GENERATION] += 1  # odd: publish in progress
        self._probabilities[:] = estimate.probabilities
        self._table[:] = table
        self._header[_EPOCH] = _NO_EPOCH if epoch is None else int(epoch)
        self._header[_GENERATION] += 1  # even: snapshot consistent
        return int(self._header[_GENERATION])

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # numpy views export pointers into the mmap; drop them before closing
        # or mmap.close() raises BufferError.
        self._header = self._probabilities = self._table = None  # type: ignore[assignment]
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SnapshotReader:
    """A worker's half of the seqlock: maps the segment, answers consistently.

    The reader builds one zero-copy :class:`~repro.queries.engine.QueryEngine`
    over the mapped buffers at attach time; :meth:`read` wraps any engine call
    in the seqlock retry loop so its result always comes from one consistent
    (posterior, SAT, epoch) triple.
    """

    def __init__(self, spec: SnapshotSpec) -> None:
        self.spec = spec
        self._shm = attach_shared_memory(spec.name)
        if self._shm.size < spec.size_bytes:
            raise ValueError(
                f"segment {spec.name!r} is {self._shm.size} bytes, expected at "
                f"least {spec.size_bytes} for d={spec.d}"
            )
        self._header, probabilities, table = _carve(self._shm, spec.d)
        side = int(self._header[_SIDE])
        layout = int(self._header[_LAYOUT])
        if side != spec.d or layout != _LAYOUT_VERSION:
            raise ValueError(
                f"segment {spec.name!r} holds d={side} layout v{layout}, expected "
                f"d={spec.d} layout v{_LAYOUT_VERSION}"
            )
        self.grid = spec.grid()
        # Zero-copy rebuild: adopt the mapped probabilities and install the
        # mapped table as the cumulative cache, so the engine is bit-identical
        # to the publisher's and nothing is recomputed per attach (or per read).
        estimate = GridDistribution.from_normalized(
            self.grid, probabilities, cumulative=table
        )
        self._engine: QueryEngine | None = QueryEngine(estimate)
        #: seqlock retries observed so far (throwaway reads that overlapped a
        #: publish); exposed for the protocol tests
        self.retries = 0

    @property
    def generation(self) -> int:
        if self._engine is None:
            raise RuntimeError("snapshot reader is closed")
        return int(self._header[_GENERATION])

    @property
    def ready(self) -> bool:
        """Whether at least one complete snapshot has been published."""
        return self.generation >= 2

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the first publish completes (workers start before it)."""
        deadline = time.monotonic() + timeout
        while not self.ready:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no snapshot published to {self.spec.name!r} within {timeout}s"
                )
            time.sleep(1e-4)

    def read(self, fn, *, timeout: float = 30.0, torn_timeout: float = 1.0):
        """Run ``fn(engine)`` against one consistent snapshot.

        Returns ``(result, generation, epoch)``.  The seqlock read: load the
        generation, compute, re-load — odd or changed means a publish overlapped
        and the result is discarded and recomputed.  ``fn`` must be a pure read
        of the engine (it may run more than once).

        A generation that sits *unchanged* on one odd value is a writer that
        died between its two bumps, not contention, and no amount of retrying
        recovers it; after ``torn_timeout`` seconds without progress the read
        raises :class:`TornSnapshotError` instead of burning the full
        ``timeout``.
        """
        if self._engine is None:
            raise RuntimeError("snapshot reader is closed")
        if torn_timeout <= 0:
            raise ValueError(f"torn_timeout must be positive, got {torn_timeout}")
        deadline = time.monotonic() + timeout
        torn_generation = -1
        torn_deadline = 0.0
        while True:
            generation = int(self._header[_GENERATION])
            if generation >= 2 and generation % 2 == 0:
                torn_generation = -1
                epoch = int(self._header[_EPOCH])
                result = fn(self._engine)
                if int(self._header[_GENERATION]) == generation:
                    return result, generation, (None if epoch == _NO_EPOCH else epoch)
                self.retries += 1
            elif generation % 2 == 1:
                now = time.monotonic()
                if generation != torn_generation:
                    # First sight of this odd value: (re)arm the torn clock.
                    torn_generation = generation
                    torn_deadline = now + torn_timeout
                elif now > torn_deadline:
                    raise TornSnapshotError(
                        f"segment {self.spec.name!r} stuck at odd generation "
                        f"{generation} for {torn_timeout}s — the writer died "
                        f"mid-publish and the snapshot is torn"
                    )
                # A publish-in-flight resolves in microseconds; back off a touch
                # so a torn wait does not hot-spin a core.
                time.sleep(1e-5)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no consistent snapshot read from {self.spec.name!r} within "
                    f"{timeout}s (generation {generation})"
                )

    def pinned(
        self, *, timeout: float = 30.0, torn_timeout: float = 1.0
    ) -> tuple[QueryEngine, int, int | None]:
        """A private copy of the current snapshot: ``(engine, generation, epoch)``.

        The copy is taken inside the seqlock loop, so the returned engine is a
        consistent window that later publishes cannot touch — the cross-process
        analogue of :meth:`~repro.queries.engine.StreamingQueryEngine.snapshot`.
        """

        def copy_out(engine: QueryEngine) -> tuple[np.ndarray, np.ndarray]:
            return engine.estimate.probabilities.copy(), engine.sat.table.copy()

        (probabilities, table), generation, epoch = self.read(
            copy_out, timeout=timeout, torn_timeout=torn_timeout
        )
        estimate = GridDistribution.from_normalized(
            self.grid, probabilities, cumulative=table
        )
        return QueryEngine(estimate), generation, epoch

    def close(self) -> None:
        """Release the mapping (idempotent; never unlinks — the writer owns it)."""
        if self._engine is None:
            return
        self._engine = None
        self._header = None  # type: ignore[assignment]
        self._shm.close()

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
