"""Async HTTP/1.1 front end over the serving tier (stdlib only).

:class:`HttpServingFront` puts one network face on everything the serving tier
can answer: the point surface a :class:`~repro.serving.server.ServingServer`
serves from its shared-memory snapshot, and (when a trajectory segment is
attached) the trajectory surface of a
:class:`~repro.serving.shm.TrajectorySnapshotReader`.  Requests and responses
are the versioned wire schema of :mod:`repro.serving.wire`; Python's ``json``
round-trips float answers bit-identically, so an HTTP client sees the very
numbers a serial in-process engine computes.

The deployment shape::

    connections ──► admission queue ──► dispatcher ──► serving thread
      (asyncio)       (bounded)          (coalesces)     │
                                                         ├─ range_mass ► ServingServer
                                                         │   (submit* + one flush + collect —
                                                         │    the worker-pool batching path)
                                                         └─ other kinds ► seqlock readers

* **Bounded admission** — each ``POST /query`` is enqueued with
  ``put_nowait``; a full queue rejects with **429** (plus ``Retry-After``)
  instead of buffering without bound, mirroring
  :class:`~repro.serving.server.BackpressureError` one layer up.
* **Batch coalescing** — the dispatcher drains whatever has queued up behind
  the request it is holding and serves the whole batch in one trip to the
  serving thread: every range request in the batch is submitted, then *one*
  :meth:`~repro.serving.server.ServingServer.flush` packs them into worker
  tasks of at most ``coalesce_rows`` rows.  Concurrent HTTP clients therefore
  share worker dispatches exactly like in-process batch callers.
* **Torn snapshots** — a dead publisher surfaces as
  :class:`~repro.serving.shm.TornSnapshotError` (directly from a front-end
  read, or inside a worker-task failure); either way the client sees **503**
  with ``Retry-After``, never a hang.
* **Graceful drain** — :meth:`HttpServingFront.stop` closes the listener,
  answers every already-admitted request, then tears the dispatcher down.
* **/metrics** — generation/epoch of the live snapshot, queue depth, and
  per-kind latency through :func:`repro.queries.engine.latency_stats` — the
  same count/p50/p99 formula :class:`~repro.queries.engine.ReplayReport` uses.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.queries.engine import latency_stats
from repro.serving.server import BackpressureError, ServingServer
from repro.serving.shm import (
    SnapshotReader,
    TornSnapshotError,
    TrajectorySnapshotReader,
    TrajectorySnapshotSpec,
)
from repro.serving.wire import (
    SCHEMA_VERSION,
    TRAJECTORY_KINDS,
    QueryKind,
    QueryRequest,
    QueryResponse,
    WireFormatError,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpStatusError(RuntimeError):
    """A non-200 response from the HTTP front, carrying its status and hint."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class _Rejection(Exception):
    """Internal: a request's terminal HTTP failure (status + message)."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


def _request_ops(request: QueryRequest) -> int:
    """How many logical operations one request carries (for throughput stats)."""
    payload = request.payload
    if request.kind is QueryKind.RANGE_MASS:
        return max(1, len(payload["queries"]))
    if request.kind is QueryKind.POINT_DENSITY:
        return max(1, len(payload["points"]))
    if request.kind is QueryKind.QUANTILES:
        return max(1, len(payload["levels"]))
    return 1


class HttpServingFront:
    """An asyncio HTTP/1.1 server exposing a :class:`ServingServer` over the wire.

    The front runs its own event loop in a daemon thread, so callers drive it
    synchronously: construct, :meth:`start`, point clients at :attr:`address`,
    :meth:`stop` (or use as a context manager).  All traffic into the serving
    tier funnels through one serving thread — ``ServingServer``'s front-end
    bookkeeping is single-threaded by design, and the seqlock readers for the
    non-range kinds ride in the same thread.

    Parameters
    ----------
    server:
        The serving tier to front.  Must be constructed (its snapshot segment
        exists); publish at least once before expecting 200s.
    host, port:
        Bind address.  ``port=0`` picks a free port; :attr:`port` holds the
        bound one after :meth:`start`.
    trajectory_spec:
        Optional :class:`TrajectorySnapshotSpec` of a published trajectory
        segment; attaching one turns the three trajectory kinds from 400s into
        served answers.
    max_queue:
        Admission bound: requests queued (admitted, not yet dispatched) before
        ``POST /query`` answers 429.
    retry_after:
        The ``Retry-After`` hint (seconds) on 429/503 responses.
    drain_timeout:
        How long :meth:`stop` waits for admitted requests to finish.
    """

    def __init__(
        self,
        server: ServingServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        trajectory_spec: TrajectorySnapshotSpec | None = None,
        max_queue: int = 256,
        retry_after: float = 1.0,
        drain_timeout: float = 10.0,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._server = server
        self.host = host
        self.port = port
        self._trajectory_spec = trajectory_spec
        self._max_queue = max_queue
        self._retry_after = float(retry_after)
        self._drain_timeout = float(drain_timeout)
        self._collect_timeout = server.read_timeout + 30.0
        # One serving thread: ServingServer front-end state is not thread-safe,
        # and funnelling every batch through it is what makes coalescing work.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-http-serve"
        )
        self._point_reader: SnapshotReader | None = None
        self._trajectory_reader: TrajectorySnapshotReader | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._shutdown: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._draining = False
        self._connections: set = set()
        self._conn_tasks: set = set()
        # Metrics state; touched only from the event-loop thread.
        self._latencies: dict[str, list[float]] = {}
        self._counts: dict[str, int] = {}
        self._served = 0
        self._rejected = 0

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, *, timeout: float = 30.0) -> "HttpServingFront":
        """Bind and begin serving; returns once the listener is accepting."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-http-front", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(f"HTTP front failed to bind within {timeout}s")
        if self._startup_error is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
            raise RuntimeError(
                f"HTTP front failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, *, timeout: float | None = None) -> None:
        """Graceful drain: stop accepting, answer admitted requests, shut down."""
        if self._thread is None:
            return
        self._draining = True
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout if timeout is not None else self._drain_timeout + 30.0)
        self._thread = None
        self._executor.shutdown(wait=True)
        for reader in (self._point_reader, self._trajectory_reader):
            if reader is not None:
                reader.close()
        self._point_reader = self._trajectory_reader = None

    def __enter__(self) -> "HttpServingFront":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start() or swallowed on stop
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._queue = asyncio.Queue(maxsize=self._max_queue)
        self._shutdown = asyncio.Event()
        dispatcher = loop.create_task(self._dispatch_loop())
        server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        await self._shutdown.wait()
        # Drain: no new connections, answer everything already admitted, then
        # hang up idle keep-alive connections and retire the dispatcher.
        server.close()
        await server.wait_closed()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._queue.join(), timeout=self._drain_timeout)
        for writer in list(self._connections):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=self._drain_timeout)
        dispatcher.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await dispatcher

    # ------------------------------------------------------------- dispatcher
    async def _dispatch_loop(self) -> None:
        """Admission queue -> serving thread, one coalesced batch per trip."""
        loop = asyncio.get_running_loop()
        while True:
            entries = [await self._queue.get()]
            while True:
                try:
                    entries.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [request for request, _, _ in entries]
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._serve_batch, requests
                )
            except Exception as exc:  # pragma: no cover - _serve_batch catches
                outcomes = [self._classify(exc)] * len(entries)
            now = time.perf_counter()
            for (request, future, enqueued), outcome in zip(entries, outcomes):
                if isinstance(outcome, QueryResponse):
                    self._observe(request, now - enqueued)
                if not future.done():
                    future.set_result(outcome)
                self._queue.task_done()

    def _observe(self, request: QueryRequest, latency: float) -> None:
        kind = request.kind.value
        self._latencies.setdefault(kind, []).append(latency)
        self._counts[kind] = self._counts.get(kind, 0) + _request_ops(request)
        self._served += 1

    def _classify(self, exc: BaseException) -> _Rejection:
        """Map a serving-layer failure to its HTTP rejection."""
        text = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, TornSnapshotError) or "TornSnapshotError" in text:
            # The publisher died mid-publish (directly observed, or surfaced
            # through a worker-task failure): retryable server-side state.
            return _Rejection(503, text, retry_after=self._retry_after)
        if isinstance(exc, BackpressureError):
            return _Rejection(429, text, retry_after=self._retry_after)
        if isinstance(exc, TimeoutError):
            return _Rejection(503, text, retry_after=self._retry_after)
        if isinstance(exc, (WireFormatError, ValueError, TypeError, KeyError)):
            return _Rejection(400, text)
        return _Rejection(500, text)

    # ---------------------------------------------------------- serving thread
    def _serve_batch(self, requests: list[QueryRequest]) -> list:
        """Answer one coalesced batch (runs in the serving thread).

        Range requests all go through the worker pool as one flush — the same
        coalescing in-process batch callers get — while the other kinds are
        answered under the seqlock by this thread's own readers.  Every
        outcome is a :class:`QueryResponse` or a :class:`_Rejection`; a
        request never takes its batch down with it.
        """
        outcomes: list = [None] * len(requests)
        tickets: list[tuple[int, int]] = []
        for index, request in enumerate(requests):
            if request.kind is QueryKind.RANGE_MASS:
                try:
                    rows = np.asarray(request.payload["queries"], dtype=float)
                    ticket = self._server.submit_range_mass(rows)
                except Exception as exc:
                    outcomes[index] = self._classify(exc)
                else:
                    tickets.append((index, ticket))
        if tickets:
            self._server.flush()
        collect_failure: _Rejection | None = None
        for index, ticket in tickets:
            if collect_failure is not None:
                # One coalesced worker task failing fails every ticket packed
                # into it; don't burn a full collect timeout per sibling.
                outcomes[index] = collect_failure
                continue
            try:
                batch = self._server.collect(ticket, timeout=self._collect_timeout)
            except Exception as exc:
                collect_failure = self._classify(exc)
                outcomes[index] = collect_failure
            else:
                outcomes[index] = QueryResponse(
                    QueryKind.RANGE_MASS,
                    batch.answers.tolist(),
                    generation=batch.generations[-1],
                    epoch=batch.epochs[-1],
                )
        for index, request in enumerate(requests):
            if outcomes[index] is None:
                try:
                    outcomes[index] = self._answer_single(request)
                except Exception as exc:
                    outcomes[index] = self._classify(exc)
        return outcomes

    def _answer_single(self, request: QueryRequest) -> QueryResponse:
        """One non-range request, answered under the appropriate seqlock reader."""
        kind, payload = request.kind, request.payload
        if kind in TRAJECTORY_KINDS:
            if self._trajectory_spec is None:
                raise WireFormatError(
                    f"{kind.value} needs the trajectory surface, but this front "
                    "has no trajectory snapshot attached"
                )
            if self._trajectory_reader is None:
                self._trajectory_reader = TrajectorySnapshotReader(self._trajectory_spec)
            result, generation, epoch = self._trajectory_reader.read(
                lambda engine: self._trajectory_result(engine, kind, payload),
                timeout=self._server.read_timeout,
                torn_timeout=self._server.torn_timeout,
            )
        else:
            if self._point_reader is None:
                self._point_reader = SnapshotReader(self._server.writer.spec)
            result, generation, epoch = self._point_reader.read(
                lambda engine: self._point_result(engine, kind, payload),
                timeout=self._server.read_timeout,
                torn_timeout=self._server.torn_timeout,
            )
        return QueryResponse(kind, result, generation=generation, epoch=epoch)

    @staticmethod
    def _point_result(engine, kind: QueryKind, payload: dict):
        """JSON-ready answer for a point kind (materialised inside the seqlock)."""
        if kind is QueryKind.POINT_DENSITY:
            points = np.asarray(payload["points"], dtype=float)
            return engine.point_density(points).tolist()
        if kind is QueryKind.TOP_K:
            cells = engine.top_k_cells(int(payload["k"]))
            return {
                "flat_indices": cells.flat_indices.tolist(),
                "rows": cells.rows.tolist(),
                "cols": cells.cols.tolist(),
                "masses": cells.masses.tolist(),
                "centers": cells.centers.tolist(),
            }
        if kind is QueryKind.QUANTILES:
            contours = engine.quantile_contours(
                [float(level) for level in payload["levels"]]
            )
            return [
                {
                    "level": contour.level,
                    "threshold": contour.threshold,
                    "covered_mass": contour.covered_mass,
                    "n_cells": contour.n_cells,
                    "mask": contour.mask.astype(int).tolist(),
                }
                for contour in contours
            ]
        x_marginal, y_marginal = engine.axis_marginals()
        return {"x": x_marginal.tolist(), "y": y_marginal.tolist()}

    @staticmethod
    def _trajectory_result(engine, kind: QueryKind, payload: dict):
        """JSON-ready answer for a trajectory kind (materialised inside the seqlock)."""
        if kind is QueryKind.LENGTH_HISTOGRAM:
            counts, edges = engine.length_histogram(int(payload["bins"]))
            return {"counts": counts.tolist(), "edges": edges.tolist()}
        top = (
            engine.od_top_k(int(payload["k"]))
            if kind is QueryKind.OD_TOP_K
            else engine.transition_top_k(int(payload["k"]))
        )
        return {
            "from_cells": top.from_cells.tolist(),
            "to_cells": top.to_cells.tolist(),
            "counts": top.counts.tolist(),
            "fractions": top.fractions.tolist(),
        }

    # -------------------------------------------------------------- HTTP layer
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    writer.write(self._error_bytes(400, "malformed request line", close=True))
                    await writer.drain()
                    break
                method, path, _version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                close = headers.get("connection", "").lower() == "close"
                status, payload, retry_after = await self._route(method, path, body)
                close = close or self._draining
                writer.write(
                    self._response_bytes(
                        status, payload, retry_after=retry_after, close=close
                    )
                )
                await writer.drain()
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, float | None]:
        """Dispatch one request; returns ``(status, json_body, retry_after)``."""
        if path == "/query":
            if method != "POST":
                return 405, json.dumps({"error": "POST required"}), None
            return await self._route_query(body)
        if path == "/metrics":
            if method != "GET":
                return 405, json.dumps({"error": "GET required"}), None
            return 200, json.dumps(self._metrics()), None
        if path == "/healthz":
            return 200, json.dumps({"status": "draining" if self._draining else "ok"}), None
        return 404, json.dumps({"error": f"no route {path!r}"}), None

    async def _route_query(self, body: bytes) -> tuple[int, str, float | None]:
        if self._draining:
            return (
                503,
                json.dumps({"error": "server is draining"}),
                self._retry_after,
            )
        try:
            request = QueryRequest.from_json(body)
        except WireFormatError as exc:
            return 400, json.dumps({"error": str(exc)}), None
        future = self._loop.create_future()
        try:
            self._queue.put_nowait((request, future, time.perf_counter()))
        except asyncio.QueueFull:
            self._rejected += 1
            return (
                429,
                json.dumps(
                    {"error": f"admission queue full ({self._max_queue} queued)"}
                ),
                self._retry_after,
            )
        outcome = await future
        if isinstance(outcome, _Rejection):
            if outcome.status == 429:
                self._rejected += 1
            return outcome.status, json.dumps({"error": outcome.message}), outcome.retry_after
        return 200, outcome.to_json(), None

    def _metrics(self) -> dict:
        """The `/metrics` document (computed on the event-loop thread)."""
        per_kind = {
            kind: latency_stats(self._counts[kind], latencies)
            for kind, latencies in self._latencies.items()
            if latencies
        }
        return {
            "generation": self._server.generation,
            "epoch": self._server.writer.epoch,
            "queue_depth": self._queue.qsize(),
            "pending_rows": self._server.pending_rows,
            "served_requests": self._served,
            "rejected_requests": self._rejected,
            "per_kind": per_kind,
            "schema_version": SCHEMA_VERSION,
        }

    @staticmethod
    def _response_bytes(
        status: int, body: str, *, retry_after: float | None = None, close: bool = False
    ) -> bytes:
        payload = body.encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if retry_after is not None:
            lines.append(f"Retry-After: {retry_after:g}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload

    @classmethod
    def _error_bytes(cls, status: int, message: str, *, close: bool = False) -> bytes:
        return cls._response_bytes(status, json.dumps({"error": message}), close=close)


class HttpQueryClient:
    """Minimal synchronous client for :class:`HttpServingFront` (stdlib only).

    One keep-alive connection; :meth:`query` raises :class:`HttpStatusError`
    on any non-200 (carrying the parsed ``Retry-After`` hint on 429/503) so
    callers implement backpressure with one ``except``.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def _request(self, method: str, path: str, body: str | None = None):
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = self._connection.getresponse()
        except (http.client.HTTPException, ConnectionError, OSError):
            # Stale keep-alive connection (e.g. the server restarted): one
            # transparent reconnect, then let failures propagate.
            self.close()
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = self._connection.getresponse()
        payload = response.read()
        if response.status != 200:
            try:
                message = json.loads(payload).get("error", "")
            except (ValueError, AttributeError):
                message = payload.decode(errors="replace")
            retry_after = response.getheader("Retry-After")
            raise HttpStatusError(
                response.status,
                message,
                retry_after=float(retry_after) if retry_after else None,
            )
        return payload

    def query(self, request: QueryRequest) -> QueryResponse:
        """POST one wire request; returns the parsed response or raises."""
        return QueryResponse.from_json(self._request("POST", "/query", request.to_json()))

    def metrics(self) -> dict:
        return json.loads(self._request("GET", "/metrics"))

    def health(self) -> dict:
        return json.loads(self._request("GET", "/healthz"))

    def close(self) -> None:
        if self._connection is not None:
            with contextlib.suppress(Exception):
                self._connection.close()
            self._connection = None

    def __enter__(self) -> "HttpQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
