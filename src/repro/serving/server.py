"""The concurrent serving tier: worker processes + an admission/batching front-end.

:class:`ServingServer` is the deployment shape ROADMAP item 1 asks for — one
publisher process running the streaming ingest loop, N long-lived worker
processes answering queries against the current window snapshot:

* **Snapshot plane** — the server owns a :class:`~repro.serving.shm.SnapshotWriter`;
  each worker maps the segment once through a
  :class:`~repro.serving.shm.SnapshotReader` and answers every query zero-copy
  under the seqlock, so :meth:`ServingServer.publish` costs one buffer copy
  regardless of worker count and no engine is ever pickled per query.
* **Admission front-end** — :meth:`submit_range_mass` admits a batch under a
  bounded pending-row budget (raising :class:`BackpressureError` instead of
  queueing unboundedly), :meth:`flush` coalesces buffered submissions into
  worker tasks of at most ``coalesce_rows`` rows (small bursts share one
  dispatch; large batches split across workers), and :meth:`collect` demuxes
  completed tasks back to per-ticket answer arrays with the generation/epoch
  each slice was answered at.
* **Staged bulk plane** — :class:`WorkloadArena` stages a large workload in its
  own shared-memory block once; :meth:`serve_staged` then dispatches ``(start,
  stop)`` row ranges, so per-task queue traffic is a few tens of bytes and the
  answers land in shared memory.  This is the path the sustained ingest+serve
  benchmark drives.

Every worker answers bit-identically to a serial
:class:`~repro.queries.engine.QueryEngine` over the same published estimate —
the grid, posterior and summed-area table are the very same bytes.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.domain import GridSpec
from repro.queries.engine import queries_to_array
from repro.serving.shm import (
    SnapshotReader,
    SnapshotSpec,
    SnapshotWriter,
    attach_shared_memory,
)
from repro.serving.wire import QueryKind

# Worker task tags.  Range tasks reuse the wire vocabulary (one kind string
# across HTTP, replay and the task queue); staged tasks are an execution plane
# of their own, not a query kind, so they keep a private tag.
_RANGE_TASK = QueryKind.RANGE_MASS.value
_STAGED_TASK = "staged"


class BackpressureError(RuntimeError):
    """Admission would exceed the front-end's bounded pending-row budget.

    Raised instead of queueing without bound: the caller sheds load or retries
    after collecting outstanding tickets, so a slow consumer cannot grow the
    task queue (and its pickled payloads) arbitrarily.
    """


@dataclass(frozen=True)
class ArenaSpec:
    """Name and row count of a staged-workload segment (picklable for workers)."""

    name: str
    n_rows: int


@dataclass(frozen=True)
class ServedBatch:
    """One collected ticket: answers plus the snapshot(s) that produced them.

    ``generations``/``epochs`` carry one entry per worker task the ticket's rows
    were coalesced into, in task-completion order; a single-generation batch
    means every row was answered from the same published snapshot.
    """

    answers: np.ndarray
    generations: tuple[int, ...]
    epochs: tuple[int | None, ...]


class WorkloadArena:
    """A query workload staged once in shared memory, with an answer strip.

    Layout: ``(n, 4) float64`` query rows followed by ``(n,) float64`` answers.
    Workers attach by :class:`ArenaSpec` and write their slice of answers in
    place, so a task message is ``(arena, start, stop)`` instead of pickled
    rows.  The creator owns the segment: :meth:`close` unlinks it (copy
    ``answers`` out first if they must outlive the arena).
    """

    def __init__(self, queries) -> None:
        rows = queries_to_array(queries)
        self.n_rows = int(rows.shape[0])
        if self.n_rows == 0:
            raise ValueError("cannot stage an empty workload")
        query_bytes = self.n_rows * 4 * 8
        self._shm = shared_memory.SharedMemory(
            create=True, size=query_bytes + self.n_rows * 8
        )
        self.queries = np.ndarray(
            (self.n_rows, 4), dtype=np.float64, buffer=self._shm.buf
        )
        self.answers = np.ndarray(
            (self.n_rows,), dtype=np.float64, buffer=self._shm.buf, offset=query_bytes
        )
        self.queries[:] = rows
        self.answers[:] = 0.0
        self.spec = ArenaSpec(name=self._shm.name, n_rows=self.n_rows)
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.queries = self.answers = None  # type: ignore[assignment]
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "WorkloadArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _arena_views(
    arenas: dict, spec: ArenaSpec
) -> tuple[np.ndarray, np.ndarray]:
    """A worker's cached (queries, answers) views over a staged arena."""
    cached = arenas.get(spec.name)
    if cached is None:
        segment = attach_shared_memory(spec.name)
        query_bytes = spec.n_rows * 4 * 8
        queries = np.ndarray((spec.n_rows, 4), dtype=np.float64, buffer=segment.buf)
        answers = np.ndarray(
            (spec.n_rows,), dtype=np.float64, buffer=segment.buf, offset=query_bytes
        )
        cached = (queries, answers, segment)
        arenas[spec.name] = cached
    return cached[0], cached[1]


def _worker_main(
    spec: SnapshotSpec, tasks, results, ready, read_timeout: float, torn_timeout: float
) -> None:
    """Serving-worker loop: map the snapshot once, answer tasks until sentinel."""
    reader = SnapshotReader(spec)
    arenas: dict = {}
    ready.release()
    try:
        while True:
            task = tasks.get()
            if task is None:
                break
            kind, task_id = task[0], task[1]
            try:
                if kind == _RANGE_TASK:
                    payload = task[2]
                    answers, generation, epoch = reader.read(
                        lambda engine: engine.range_mass(payload),
                        timeout=read_timeout,
                        torn_timeout=torn_timeout,
                    )
                    results.put((task_id, generation, epoch, answers, None))
                elif kind == _STAGED_TASK:
                    arena_spec, start, stop = task[2], task[3], task[4]
                    queries, answer_strip = _arena_views(arenas, arena_spec)
                    chunk, generation, epoch = reader.read(
                        lambda engine: engine.range_mass(queries[start:stop]),
                        timeout=read_timeout,
                        torn_timeout=torn_timeout,
                    )
                    answer_strip[start:stop] = chunk
                    results.put((task_id, generation, epoch, None, None))
                else:
                    raise ValueError(f"unknown task kind {kind!r}")
            except Exception as exc:  # surface, don't kill the worker
                results.put((task_id, -1, None, None, f"{type(exc).__name__}: {exc}"))
    finally:
        reader.close()
        for _, _, segment in arenas.values():
            segment.close()


class ServingServer:
    """N serving workers behind one shared-memory snapshot and a bounded front-end.

    Lifecycle: construct (creates the snapshot segment), :meth:`publish` at
    least once, :meth:`start` the workers, then interleave further publishes
    with query traffic freely — that *is* the sustained ingest+serve loop.  Use
    as a context manager (or call :meth:`close`) to tear the workers and the
    segment down.

    Parameters
    ----------
    grid:
        Geometry of every snapshot this server will publish.
    workers:
        Worker-process count.  Answers are worker-count invariant (bit-identical
        to a serial :class:`~repro.queries.engine.QueryEngine`); the count only
        sets the parallelism.
    max_pending_rows:
        Admission budget: the total rows buffered + in flight that
        :meth:`submit_range_mass` accepts before raising
        :class:`BackpressureError`.
    coalesce_rows:
        Target worker-task size.  Buffered submissions are packed together up
        to this many rows per task (small bursts coalesce, large batches split).
    read_timeout:
        How long a worker waits for a consistent snapshot before failing the
        task (covers the start-before-first-publish window).
    torn_timeout:
        How long a worker tolerates a generation stuck on one odd value before
        failing the task with :class:`~repro.serving.shm.TornSnapshotError` —
        the dead-publisher detector, surfaced as a task *result*, not a hang.
    """

    def __init__(
        self,
        grid: GridSpec,
        *,
        workers: int = 1,
        max_pending_rows: int = 1_000_000,
        coalesce_rows: int = 16_384,
        read_timeout: float = 30.0,
        torn_timeout: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending_rows < 1:
            raise ValueError(f"max_pending_rows must be >= 1, got {max_pending_rows}")
        if coalesce_rows < 1:
            raise ValueError(f"coalesce_rows must be >= 1, got {coalesce_rows}")
        self.grid = grid
        self.workers = workers
        self.max_pending_rows = max_pending_rows
        self.coalesce_rows = coalesce_rows
        self.read_timeout = float(read_timeout)
        self.torn_timeout = float(torn_timeout)
        self.writer = SnapshotWriter(grid)
        context = multiprocessing.get_context()
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._ready = context.Semaphore(0)
        self._context = context
        self._processes: list = []
        self._closed = False
        # Front-end state: buffered (not yet dispatched) submissions, in-flight
        # tasks awaiting demux, and finished tickets awaiting collection.
        self._next_ticket = 0
        self._next_task = 0
        self._buffered: list[tuple[int, np.ndarray]] = []
        self._buffered_rows = 0
        self._inflight_rows = 0
        self._task_demux: dict[int, list[tuple[int, int, int, int]]] = {}
        self._ticket_answers: dict[int, np.ndarray] = {}
        self._ticket_progress: dict[int, dict] = {}
        self._finished: dict[int, ServedBatch] = {}

    # ---------------------------------------------------------------- publish
    def publish(self, estimate, *, epoch: int | None = None) -> int:
        """Publish a fresh window snapshot to every worker; returns its generation."""
        return self.writer.publish(estimate, epoch=epoch)

    @property
    def generation(self) -> int:
        return self.writer.generation

    # -------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return bool(self._processes)

    def start(self, *, timeout: float = 30.0) -> "ServingServer":
        """Spawn the serving workers and wait until every one has mapped the segment."""
        if self._closed:
            raise RuntimeError("serving server is closed")
        if self._processes:
            return self
        for index in range(self.workers):
            process = self._context.Process(
                target=_worker_main,
                args=(
                    self.writer.spec,
                    self._tasks,
                    self._results,
                    self._ready,
                    self.read_timeout,
                    self.torn_timeout,
                ),
                name=f"repro-serving-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        for _ in range(self.workers):
            if not self._ready.acquire(timeout=timeout):
                self.close()
                raise RuntimeError(
                    f"serving workers failed to attach within {timeout}s"
                )
        return self

    def stop(self, *, timeout: float = 10.0) -> None:
        """Send the shutdown sentinel and join the workers (idempotent)."""
        if not self._processes:
            return
        for _ in self._processes:
            self._tasks.put(None)
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=timeout)
        self._processes = []

    def close(self) -> None:
        """Stop the workers, drop the queues and unlink the snapshot segment."""
        if self._closed:
            return
        self.stop()
        self._closed = True
        for q in (self._tasks, self._results):
            q.cancel_join_thread()
            q.close()
        self.writer.close()

    def __enter__(self) -> "ServingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------- admission / batching
    @property
    def pending_rows(self) -> int:
        """Rows admitted but not yet collected (buffered + in flight)."""
        return self._buffered_rows + self._inflight_rows

    def submit_range_mass(self, queries) -> int:
        """Admit a range-query batch; returns the ticket to :meth:`collect` on.

        Admission is bounded: when the buffered + in-flight rows would exceed
        ``max_pending_rows`` the batch is *rejected* with
        :class:`BackpressureError` rather than queued.
        """
        if self._closed:
            raise RuntimeError("serving server is closed")
        rows = queries_to_array(queries)
        n = rows.shape[0]
        if n == 0:
            raise ValueError("cannot submit an empty batch")
        if self.pending_rows + n > self.max_pending_rows:
            raise BackpressureError(
                f"admitting {n} rows would exceed the pending budget "
                f"({self.pending_rows} pending of {self.max_pending_rows}); "
                "collect outstanding tickets or shed load"
            )
        ticket = self._next_ticket
        self._next_ticket += 1
        self._ticket_answers[ticket] = np.empty(n)
        self._ticket_progress[ticket] = {
            "remaining": n,
            "generations": [],
            "epochs": [],
        }
        self._buffered.append((ticket, rows))
        self._buffered_rows += n
        return ticket

    def flush(self) -> None:
        """Coalesce buffered submissions into worker tasks and dispatch them.

        Consecutive submissions are packed into tasks of at most
        ``coalesce_rows`` rows: a burst of small batches shares one dispatch
        (one pickle, one seqlock read) while an oversized batch is split across
        tasks so every worker gets a share.
        """
        pieces: list[tuple[int, np.ndarray, int]] = []  # (ticket, rows, dst offset)
        piece_rows = 0

        def dispatch() -> None:
            nonlocal pieces, piece_rows
            if not pieces:
                return
            payload = (
                pieces[0][1]
                if len(pieces) == 1
                else np.concatenate([rows for _, rows, _ in pieces])
            )
            demux = []
            offset = 0
            for ticket, rows, dst_offset in pieces:
                demux.append((ticket, offset, offset + rows.shape[0], dst_offset))
                offset += rows.shape[0]
            task_id = self._next_task
            self._next_task += 1
            self._task_demux[task_id] = demux
            self._tasks.put((_RANGE_TASK, task_id, payload))
            pieces = []
            piece_rows = 0

        for ticket, rows in self._buffered:
            offset = 0
            while offset < rows.shape[0]:
                take = min(self.coalesce_rows - piece_rows, rows.shape[0] - offset)
                pieces.append((ticket, rows[offset : offset + take], offset))
                piece_rows += take
                offset += take
                if piece_rows >= self.coalesce_rows:
                    dispatch()
        dispatch()
        self._inflight_rows += self._buffered_rows
        self._buffered = []
        self._buffered_rows = 0

    def collect(self, ticket: int, *, timeout: float = 60.0) -> ServedBatch:
        """Block until a ticket's every row is answered; demux and return it."""
        if ticket not in self._finished and ticket not in self._ticket_progress:
            raise KeyError(f"unknown (or already collected) ticket {ticket}")
        self.flush()  # a ticket still sitting in the buffer would never finish
        deadline = time.monotonic() + timeout
        while ticket not in self._finished:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"ticket {ticket} not served within {timeout}s")
            try:
                message = self._results.get(timeout=remaining)
            except queue_module.Empty:
                raise TimeoutError(f"ticket {ticket} not served within {timeout}s")
            self._demux(message)
        return self._finished.pop(ticket)

    def range_mass(self, queries, *, timeout: float = 60.0) -> np.ndarray:
        """Admit, dispatch and collect one batch — the synchronous convenience path."""
        ticket = self.submit_range_mass(queries)
        self.flush()
        return self.collect(ticket, timeout=timeout).answers

    def _demux(self, message) -> None:
        task_id, generation, epoch, payload, error = message
        demux = self._task_demux.pop(task_id)
        if error is not None:
            raise RuntimeError(f"serving worker failed task {task_id}: {error}")
        for ticket, lo, hi, dst_offset in demux:
            n = hi - lo
            self._ticket_answers[ticket][dst_offset : dst_offset + n] = payload[lo:hi]
            progress = self._ticket_progress[ticket]
            progress["remaining"] -= n
            progress["generations"].append(generation)
            progress["epochs"].append(epoch)
            self._inflight_rows -= n
            if progress["remaining"] == 0:
                self._finished[ticket] = ServedBatch(
                    answers=self._ticket_answers.pop(ticket),
                    generations=tuple(progress["generations"]),
                    epochs=tuple(progress["epochs"]),
                )
                del self._ticket_progress[ticket]

    # ------------------------------------------------------------ staged bulk
    def serve_staged(
        self,
        arena: WorkloadArena,
        *,
        start: int = 0,
        stop: int | None = None,
        batch_rows: int | None = None,
        timeout: float = 120.0,
    ) -> list[tuple[int, int | None]]:
        """Fan a staged arena's ``[start, stop)`` rows across the workers.

        Dispatches ``(arena, lo, hi)`` row-range tasks of ``batch_rows`` (default
        ``coalesce_rows``) and blocks until all are answered; the answers land in
        ``arena.answers``.  Returns the ``(generation, epoch)`` each task was
        answered at, in dispatch order — all-equal entries certify the whole
        range was served from one snapshot.
        """
        if self._closed:
            raise RuntimeError("serving server is closed")
        stop = arena.n_rows if stop is None else stop
        if not 0 <= start < stop <= arena.n_rows:
            raise ValueError(
                f"need 0 <= start < stop <= {arena.n_rows}, got [{start}, {stop})"
            )
        batch = batch_rows or self.coalesce_rows
        task_ids = []
        for lo in range(start, stop, batch):
            task_id = self._next_task
            self._next_task += 1
            self._tasks.put((_STAGED_TASK, task_id, arena.spec, lo, min(lo + batch, stop)))
            task_ids.append(task_id)
        outstanding = set(task_ids)
        answered: dict[int, tuple[int, int | None]] = {}
        deadline = time.monotonic() + timeout
        while outstanding:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"{len(outstanding)} staged tasks unanswered within {timeout}s"
                )
            try:
                message = self._results.get(timeout=remaining)
            except queue_module.Empty:
                raise TimeoutError(
                    f"{len(outstanding)} staged tasks unanswered within {timeout}s"
                )
            task_id, generation, epoch, _, error = message
            if task_id in outstanding:
                if error is not None:
                    raise RuntimeError(
                        f"serving worker failed task {task_id}: {error}"
                    )
                outstanding.discard(task_id)
                answered[task_id] = (generation, epoch)
            else:
                self._demux(message)  # an interleaved front-end task completing
        return [answered[task_id] for task_id in task_ids]
