"""Concurrent query serving over shared-memory window snapshots.

The serving tier of the streaming stack: a publisher (the ingest loop) writes
each epoch's posterior + summed-area table into a shared-memory segment behind
a seqlock generation counter (:mod:`repro.serving.shm`), and N long-lived
worker processes answer queries zero-copy against it
(:mod:`repro.serving.server`), bit-identically to a serial
:class:`~repro.queries.engine.QueryEngine`.  See the "Serving tier" section of
``docs/ARCHITECTURE.md`` for the layout and protocol.
"""

from repro.serving.server import (
    ArenaSpec,
    BackpressureError,
    ServedBatch,
    ServingServer,
    WorkloadArena,
)
from repro.serving.shm import (
    SnapshotReader,
    SnapshotSpec,
    SnapshotWriter,
    TornSnapshotError,
)

__all__ = [
    "ArenaSpec",
    "BackpressureError",
    "ServedBatch",
    "ServingServer",
    "SnapshotReader",
    "SnapshotSpec",
    "SnapshotWriter",
    "TornSnapshotError",
    "WorkloadArena",
]
