"""Concurrent query serving over shared-memory window snapshots.

The serving tier of the streaming stack: a publisher (the ingest loop) writes
each epoch's posterior + summed-area table into a shared-memory segment behind
a seqlock generation counter (:mod:`repro.serving.shm`), and N long-lived
worker processes answer queries zero-copy against it
(:mod:`repro.serving.server`), bit-identically to a serial
:class:`~repro.queries.engine.QueryEngine`.  Queries cross process and network
boundaries as the versioned wire schema (:mod:`repro.serving.wire`), and
:mod:`repro.serving.http` puts an asyncio HTTP/1.1 face on the whole surface —
point and trajectory kinds alike.  See the "Serving tier" and "Network front"
sections of ``docs/ARCHITECTURE.md`` for the layout and protocol.
"""

from repro.serving.http import HttpQueryClient, HttpServingFront, HttpStatusError
from repro.serving.server import (
    ArenaSpec,
    BackpressureError,
    ServedBatch,
    ServingServer,
    WorkloadArena,
)
from repro.serving.shm import (
    SnapshotReader,
    SnapshotSpec,
    SnapshotWriter,
    TornSnapshotError,
    TrajectorySnapshotReader,
    TrajectorySnapshotSpec,
    TrajectorySnapshotWriter,
)
from repro.serving.wire import (
    POINT_KINDS,
    SCHEMA_VERSION,
    TRAJECTORY_KINDS,
    QueryKind,
    QueryRequest,
    QueryResponse,
    WireFormatError,
    requests_from_log,
)

__all__ = [
    "ArenaSpec",
    "BackpressureError",
    "HttpQueryClient",
    "HttpServingFront",
    "HttpStatusError",
    "POINT_KINDS",
    "QueryKind",
    "QueryRequest",
    "QueryResponse",
    "SCHEMA_VERSION",
    "ServedBatch",
    "ServingServer",
    "SnapshotReader",
    "SnapshotSpec",
    "SnapshotWriter",
    "TRAJECTORY_KINDS",
    "TornSnapshotError",
    "TrajectorySnapshotReader",
    "TrajectorySnapshotSpec",
    "TrajectorySnapshotWriter",
    "WireFormatError",
    "WorkloadArena",
    "requests_from_log",
]
