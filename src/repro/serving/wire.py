"""Versioned wire schema for the serving tier.

Every query that crosses a process or network boundary travels as a
:class:`QueryRequest` and comes back as a :class:`QueryResponse`.  The operation
kinds are a *closed* enum (:class:`QueryKind`) validated at parse time, and the
same kind strings key :class:`~repro.queries.engine.ReplayReport` stats and
replay answer dicts — so a producer and a consumer disagreeing on a kind name
(the ``"density"``/``"point_density"`` mismatch PR 8 fixed ad hoc) is now a
:class:`WireFormatError` at the boundary, not a silent key miss downstream.

The schema is versioned: ``schema_version`` rides in every message, and a
parser rejects versions it does not speak instead of misinterpreting payloads.
JSON is the interchange format; Python's ``json`` emits shortest-round-trip
``repr`` floats, so float answers survive the wire bit-identically.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Version of the request/response schema this build speaks.
SCHEMA_VERSION = 1


class WireFormatError(ValueError):
    """A message failed wire-schema validation (unknown kind, bad shape, ...)."""


class QueryKind(str, enum.Enum):
    """The closed set of operation kinds the serving tier speaks.

    Values double as the kind strings of replay reports and answer dicts, the
    HTTP request ``kind`` field, and worker task tags — one vocabulary, defined
    once.
    """

    RANGE_MASS = "range_mass"
    POINT_DENSITY = "point_density"
    TOP_K = "top_k"
    QUANTILES = "quantiles"
    MARGINALS = "marginals"
    OD_TOP_K = "od_top_k"
    TRANSITION_TOP_K = "transition_top_k"
    LENGTH_HISTOGRAM = "length_histogram"

    @classmethod
    def parse(cls, value: object) -> "QueryKind":
        """Validate ``value`` as a kind; :class:`WireFormatError` on anything else."""
        try:
            return cls(value)
        except ValueError:
            valid = ", ".join(kind.value for kind in cls)
            raise WireFormatError(
                f"unknown query kind {value!r}; valid kinds: {valid}"
            ) from None


#: Kinds every point engine serves (the :class:`~repro.queries.QueryEngine` surface).
POINT_KINDS = frozenset(
    {
        QueryKind.RANGE_MASS,
        QueryKind.POINT_DENSITY,
        QueryKind.TOP_K,
        QueryKind.QUANTILES,
        QueryKind.MARGINALS,
    }
)

#: Kinds that need the trajectory surface (:class:`~repro.queries.TrajectoryQueryEngine`).
TRAJECTORY_KINDS = frozenset(
    {QueryKind.OD_TOP_K, QueryKind.TRANSITION_TOP_K, QueryKind.LENGTH_HISTOGRAM}
)

#: payload field each kind requires (empty tuple: no required fields).
_REQUIRED_FIELDS: dict[QueryKind, tuple[str, ...]] = {
    QueryKind.RANGE_MASS: ("queries",),
    QueryKind.POINT_DENSITY: ("points",),
    QueryKind.TOP_K: ("k",),
    QueryKind.QUANTILES: ("levels",),
    QueryKind.MARGINALS: (),
    QueryKind.OD_TOP_K: ("k",),
    QueryKind.TRANSITION_TOP_K: ("k",),
    QueryKind.LENGTH_HISTOGRAM: ("bins",),
}


def _check_version(message: dict, what: str) -> int:
    version = message.get("schema_version")
    if version != SCHEMA_VERSION:
        raise WireFormatError(
            f"{what} schema_version {version!r} is not supported; "
            f"this build speaks version {SCHEMA_VERSION}"
        )
    return version


@dataclass(frozen=True)
class QueryRequest:
    """One query crossing the wire: a kind, its payload, and the schema version."""

    kind: QueryKind
    payload: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", QueryKind.parse(self.kind))
        if not isinstance(self.payload, dict):
            raise WireFormatError(
                f"request payload must be a JSON object, got {type(self.payload).__name__}"
            )
        for name in _REQUIRED_FIELDS[self.kind]:
            if name not in self.payload:
                raise WireFormatError(
                    f"{self.kind.value} request payload requires field {name!r}"
                )

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind.value,
                "payload": self.payload,
                "schema_version": self.schema_version,
            }
        )

    @classmethod
    def from_dict(cls, message: object) -> "QueryRequest":
        if not isinstance(message, dict):
            raise WireFormatError(
                f"request must be a JSON object, got {type(message).__name__}"
            )
        _check_version(message, "request")
        return cls(
            kind=QueryKind.parse(message.get("kind")),
            payload=message.get("payload", {}),
            schema_version=SCHEMA_VERSION,
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "QueryRequest":
        try:
            message = json.loads(text)
        except json.JSONDecodeError as error:
            raise WireFormatError(f"request is not valid JSON: {error}") from None
        return cls.from_dict(message)


@dataclass(frozen=True)
class QueryResponse:
    """One answer crossing the wire, stamped with the snapshot that produced it."""

    kind: QueryKind
    result: Any
    generation: int | None = None
    epoch: int | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", QueryKind.parse(self.kind))

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind.value,
                "result": self.result,
                "generation": self.generation,
                "epoch": self.epoch,
                "schema_version": self.schema_version,
            }
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "QueryResponse":
        try:
            message = json.loads(text)
        except json.JSONDecodeError as error:
            raise WireFormatError(f"response is not valid JSON: {error}") from None
        if not isinstance(message, dict):
            raise WireFormatError(
                f"response must be a JSON object, got {type(message).__name__}"
            )
        _check_version(message, "response")
        return cls(
            kind=QueryKind.parse(message.get("kind")),
            result=message.get("result"),
            generation=message.get("generation"),
            epoch=message.get("epoch"),
            schema_version=SCHEMA_VERSION,
        )


def requests_from_log(log) -> Iterator[QueryRequest]:
    """Expand a :class:`~repro.queries.engine.QueryLog` into wire requests.

    One request per logged operation (range/density rows each become their own
    request — the granularity live HTTP traffic arrives at, and what the batch
    coalescer is for).  Row order matches the replay order of
    :class:`~repro.queries.engine.WorkloadReplay`, so the concatenated responses
    compare directly against a serial replay's answer arrays.
    """
    for row in log.range_queries:
        yield QueryRequest(QueryKind.RANGE_MASS, {"queries": [list(map(float, row))]})
    for point in log.density_points:
        yield QueryRequest(QueryKind.POINT_DENSITY, {"points": [list(map(float, point))]})
    for k in log.top_k:
        yield QueryRequest(QueryKind.TOP_K, {"k": int(k)})
    for level in log.quantile_levels:
        yield QueryRequest(QueryKind.QUANTILES, {"levels": [float(level)]})
    for _ in range(log.n_marginal_requests):
        yield QueryRequest(QueryKind.MARGINALS)
    for k in log.od_top_k:
        yield QueryRequest(QueryKind.OD_TOP_K, {"k": int(k)})
    for k in log.transition_top_k:
        yield QueryRequest(QueryKind.TRANSITION_TOP_K, {"k": int(k)})
    for bins in log.length_histogram_bins:
        yield QueryRequest(QueryKind.LENGTH_HISTOGRAM, {"bins": int(bins)})
