"""The Spatial Area Mechanism (SAM) family — Definition 4 of the paper.

A SAM is defined by a 2-D *wave function* ``W`` mapping an offset ``z`` (noisy point
minus true point) to a probability density bounded between ``q`` and ``e^eps * q``:

* ``W(z) = q`` whenever ``||z||_2 > b`` (outside the high-probability disk), and
* the integral of ``W`` over the disk equals ``1 - (4b + 1) q`` so that the density
  integrates to one over the rounded-square output domain of a unit input square.

Any such mechanism satisfies ``eps``-LDP (Theorem IV.1).  This module provides the
abstract wave-function interface, the two concrete waves used by the paper (the flat
DAM disk and the exponential HUEM decay), continuous-domain sampling for them, and a
numerical LDP audit used by the tests.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.core.domain import SpatialDomain
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon, check_positive


def rounded_square_area(b: float, side: float = 1.0) -> float:
    """Area of the output domain: the input square dilated by the disk radius ``b``.

    For a square of side ``L`` the dilated ("rounded square") area is
    ``L^2 + 4 L b + pi b^2``.
    """
    b = check_positive(b, "b", allow_zero=True)
    side = check_positive(side, "side")
    return side * side + 4.0 * side * b + math.pi * b * b


class WaveFunction(abc.ABC):
    """A SAM wave function ``W : R^2 -> [q, e^eps q]``.

    Concrete waves expose the baseline density ``q``, the disk radius ``b`` and a
    vectorised :meth:`density` over offset vectors.  ``density`` must obey the SAM
    conditions; :func:`audit_sam_conditions` verifies them numerically.
    """

    def __init__(self, epsilon: float, b: float, side: float = 1.0) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.b = check_positive(b, "b")
        self.side = check_positive(side, "side")

    @property
    @abc.abstractmethod
    def q(self) -> float:
        """Baseline (outside-disk) density."""

    @abc.abstractmethod
    def density(self, offsets: np.ndarray) -> np.ndarray:
        """Evaluate ``W`` at an ``(n, 2)`` array of offsets ``z = noisy - true``."""

    def density_at_radius(self, radii: np.ndarray) -> np.ndarray:
        """Evaluate the (radially symmetric) wave as a function of ``||z||_2``."""
        radii = np.asarray(radii, dtype=float).reshape(-1)
        offsets = np.column_stack([radii, np.zeros_like(radii)])
        return self.density(offsets)

    def disk_mass(self) -> float:
        """Probability mass the wave places inside the disk: ``1 - (4 L b + L^2) q``."""
        return 1.0 - (4.0 * self.side * self.b + self.side * self.side) * self.q

    def max_density(self) -> float:
        return float(self.density(np.zeros((1, 2)))[0])


@dataclass(frozen=True)
class DamProbabilities:
    """The flat DAM densities ``p`` (inside the disk) and ``q`` (outside)."""

    p: float
    q: float
    b: float
    epsilon: float
    side: float = 1.0

    @property
    def ratio(self) -> float:
        return self.p / self.q


def dam_probabilities(epsilon: float, b: float, side: float = 1.0) -> DamProbabilities:
    """Closed-form DAM densities of Definition 8 (generalised to side length ``L``).

    ``p = e^eps / (pi b^2 e^eps + 4 L b + L^2)`` and
    ``q = 1 / (pi b^2 e^eps + 4 L b + L^2)``; for ``L = 1`` these reduce to the paper's
    unit-square expressions.
    """
    epsilon = check_epsilon(epsilon)
    b = check_positive(b, "b")
    side = check_positive(side, "side")
    denom = math.pi * b * b * math.exp(epsilon) + 4.0 * side * b + side * side
    return DamProbabilities(
        p=math.exp(epsilon) / denom, q=1.0 / denom, b=b, epsilon=epsilon, side=side
    )


def huem_base_density(epsilon: float, b: float, side: float = 1.0) -> float:
    """Closed-form HUEM baseline density ``q`` of Definition 5.

    For the unit square the paper gives
    ``q = eps^2 / (2 pi (e^eps - 1 - eps) b^2 + 4 eps^2 b + eps^2)``; the general-side
    version scales the flat terms by ``L`` exactly as in the DAM case.
    """
    epsilon = check_epsilon(epsilon)
    b = check_positive(b, "b")
    side = check_positive(side, "side")
    eps2 = epsilon * epsilon
    denom = (
        2.0 * math.pi * (math.exp(epsilon) - 1.0 - epsilon) * b * b
        + 4.0 * eps2 * side * b
        + eps2 * side * side
    )
    return eps2 / denom


class DiskWave(WaveFunction):
    """The DAM wave: constant ``p`` inside the disk, ``q`` outside (Definition 8)."""

    def __init__(self, epsilon: float, b: float, side: float = 1.0) -> None:
        super().__init__(epsilon, b, side)
        self._probs = dam_probabilities(epsilon, b, side)

    @property
    def q(self) -> float:
        return self._probs.q

    @property
    def p(self) -> float:
        return self._probs.p

    def density(self, offsets: np.ndarray) -> np.ndarray:
        z = np.asarray(offsets, dtype=float)
        radii = np.linalg.norm(z, axis=-1)
        return np.where(radii <= self.b, self._probs.p, self._probs.q)


class ExponentialWave(WaveFunction):
    """The HUEM wave: exponential decay with distance inside the disk (Definition 5)."""

    def __init__(self, epsilon: float, b: float, side: float = 1.0) -> None:
        super().__init__(epsilon, b, side)
        self._q = huem_base_density(epsilon, b, side)

    @property
    def q(self) -> float:
        return self._q

    def density(self, offsets: np.ndarray) -> np.ndarray:
        z = np.asarray(offsets, dtype=float)
        radii = np.linalg.norm(z, axis=-1)
        inside = self._q * np.exp((1.0 - radii / self.b) * self.epsilon)
        return np.where(radii <= self.b, inside, self._q)


class ContinuousSAM:
    """Continuous-domain SAM sampler built on a :class:`WaveFunction`.

    Reports lie in the rounded-square output domain (the unit/``L`` square dilated by
    ``b``).  Sampling uses rejection from the uniform distribution over the output
    bounding box against the wave density, which is exact and fast because the wave is
    bounded by ``e^eps q``.
    """

    def __init__(self, wave: WaveFunction, domain: SpatialDomain | None = None) -> None:
        self.wave = wave
        self.domain = (
            domain if domain is not None else SpatialDomain(0.0, wave.side, 0.0, wave.side)
        )

    def output_bounds(self) -> tuple[float, float, float, float]:
        b = self.wave.b
        return (
            self.domain.x_min - b,
            self.domain.x_max + b,
            self.domain.y_min - b,
            self.domain.y_max + b,
        )

    def in_output_domain(self, points: np.ndarray, true_point: np.ndarray) -> np.ndarray:
        """Membership in the rounded-square output domain.

        A point belongs to the output domain iff its distance to the input square is at
        most ``b`` (union of all disks ``DS_b(v)`` over ``v`` in the square).
        """
        pts = np.asarray(points, dtype=float)
        dx = np.maximum(
            np.maximum(self.domain.x_min - pts[:, 0], pts[:, 0] - self.domain.x_max), 0.0
        )
        dy = np.maximum(
            np.maximum(self.domain.y_min - pts[:, 1], pts[:, 1] - self.domain.y_max), 0.0
        )
        return np.hypot(dx, dy) <= self.wave.b + 1e-12

    def privatize(self, points: np.ndarray, seed=None) -> np.ndarray:
        """Randomise each true point into one noisy report in the output domain."""
        rng = ensure_rng(seed)
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(1, 2)
        reports = np.empty_like(pts)
        x_lo, x_hi, y_lo, y_hi = self.output_bounds()
        max_density = self.wave.max_density()
        for i, point in enumerate(pts):
            reports[i] = self._rejection_sample(point, rng, x_lo, x_hi, y_lo, y_hi, max_density)
        return reports

    def _rejection_sample(
        self,
        point: np.ndarray,
        rng: np.random.Generator,
        x_lo: float,
        x_hi: float,
        y_lo: float,
        y_hi: float,
        max_density: float,
        batch: int = 256,
    ) -> np.ndarray:
        while True:
            candidates = np.column_stack(
                [rng.uniform(x_lo, x_hi, batch), rng.uniform(y_lo, y_hi, batch)]
            )
            in_domain = self.in_output_domain(candidates, point)
            density = self.wave.density(candidates - point)
            accept = in_domain & (rng.uniform(0.0, max_density, batch) < density)
            hits = np.nonzero(accept)[0]
            if hits.size:
                return candidates[hits[0]]


def audit_sam_conditions(
    wave: WaveFunction, *, grid_resolution: int = 600, rtol: float = 2e-2
) -> dict[str, float]:
    """Numerically audit the two SAM conditions and the ``e^eps`` bound for a wave.

    Returns a dictionary with the measured disk mass, the target disk mass
    ``1 - (4Lb + L^2) q``, the maximum density ratio and the density bounds.  Tests use
    this to confirm Definitions 5 and 8 really define SAMs.
    """
    b = wave.b
    xs = np.linspace(-b, b, grid_resolution)
    step = xs[1] - xs[0]
    grid_x, grid_y = np.meshgrid(xs, xs)
    offsets = np.column_stack([grid_x.reshape(-1), grid_y.reshape(-1)])
    radii = np.linalg.norm(offsets, axis=1)
    inside = radii <= b
    density = wave.density(offsets)
    disk_mass = float(density[inside].sum() * step * step)
    target = wave.disk_mass()
    ratio = float(density.max() / density.min())
    return {
        "disk_mass": disk_mass,
        "target_disk_mass": target,
        "max_over_min_ratio": ratio,
        "epsilon_bound": math.exp(wave.epsilon),
        "q": wave.q,
        "max_density": float(density.max()),
        "tolerance": rtol,
    }
