"""Spatial domains, grid specifications and grid distributions.

Section VI of the paper works on a square input domain of side length ``L`` that is
bucketised into a ``d x d`` grid of cells with side ``g = L / d``.  Three classes model
that world:

* :class:`SpatialDomain` — the continuous bounding box of the raw data.
* :class:`GridSpec` — a bucketisation of a domain into ``d x d`` cells; it knows how to
  map points to cell indices and cell indices back to centre coordinates.
* :class:`GridDistribution` — a probability histogram over a :class:`GridSpec`; this is
  the common currency exchanged between datasets, mechanisms and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.utils.histogram import (
    counts_to_distribution,
    flatten_grid,
    grid_cell_centers,
    points_to_grid_counts,
    unflatten_grid,
)
from repro.utils.validation import check_bounds, check_grid_side, check_points


@dataclass(frozen=True)
class SpatialDomain:
    """A rectangular region of the plane holding the raw (continuous) data.

    Attributes
    ----------
    x_min, x_max, y_min, y_max:
        Bounding box.  The paper uses squares; rectangles are accepted and the longer
        side is reported as the side length ``L`` (used for radius selection).
    name:
        Optional human-readable label (e.g. ``"chicago-part-a"``).
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    name: str = ""

    def __post_init__(self) -> None:
        check_bounds(self.x_min, self.x_max, name="x bounds")
        check_bounds(self.y_min, self.y_max, name="y bounds")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def side_length(self) -> float:
        """The side length ``L`` used by the paper (longest side for rectangles)."""
        return max(self.width, self.height)

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        return (self.x_min, self.x_max, self.y_min, self.y_max)

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which points fall inside (inclusive) the domain."""
        pts = check_points(points)
        return (
            (pts[:, 0] >= self.x_min)
            & (pts[:, 0] <= self.x_max)
            & (pts[:, 1] >= self.y_min)
            & (pts[:, 1] <= self.y_max)
        )

    def clip(self, points: np.ndarray) -> np.ndarray:
        """Clamp points onto the domain boundary."""
        pts = check_points(points).copy()
        pts[:, 0] = np.clip(pts[:, 0], self.x_min, self.x_max)
        pts[:, 1] = np.clip(pts[:, 1], self.y_min, self.y_max)
        return pts

    def filter(self, points: np.ndarray) -> np.ndarray:
        """Return only the points lying inside the domain."""
        pts = check_points(points)
        return pts[self.contains(pts)]

    def normalise(self, points: np.ndarray) -> np.ndarray:
        """Map points affinely into the unit square ``[0, 1]^2``."""
        pts = check_points(points)
        out = np.empty_like(pts)
        out[:, 0] = (pts[:, 0] - self.x_min) / self.width
        out[:, 1] = (pts[:, 1] - self.y_min) / self.height
        return out

    def denormalise(self, unit_points: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalise`."""
        pts = check_points(unit_points)
        out = np.empty_like(pts)
        out[:, 0] = pts[:, 0] * self.width + self.x_min
        out[:, 1] = pts[:, 1] * self.height + self.y_min
        return out

    @staticmethod
    def unit(name: str = "unit") -> "SpatialDomain":
        """The unit square the paper's analysis is normalised to."""
        return SpatialDomain(0.0, 1.0, 0.0, 1.0, name=name)

    @staticmethod
    def from_points(
        points: np.ndarray,
        *,
        pad: float = 0.0,
        relative_pad: float = 0.0,
        name: str = "",
    ) -> "SpatialDomain":
        """Tightest axis-aligned box around a point cloud, optionally padded.

        ``pad`` is an absolute margin added on every side.  ``relative_pad`` is a
        fraction of the (longest) extent — prefer it over a tiny absolute pad: an
        absolute ``1e-9`` underflows for projected coordinates (around ``1e6`` m,
        ``x_max + 1e-9 == x_max`` in float64), silently producing a degenerate or
        unpadded box.  Degenerate axes are widened relative to the coordinate
        magnitude for the same reason, and the result is guaranteed to have strictly
        positive width and height.
        """
        pts = check_points(points)
        if pts.shape[0] == 0:
            raise ValueError("cannot derive a domain from an empty point set")
        if pad < 0 or relative_pad < 0:
            raise ValueError("pad and relative_pad must be non-negative")
        x_min, y_min = pts.min(axis=0)
        x_max, y_max = pts.max(axis=0)
        scale = max(abs(x_min), abs(x_max), abs(y_min), abs(y_max), 1.0)
        if x_min == x_max:
            x_max = x_min + max(1e-9, scale * 1e-9)
        if y_min == y_max:
            y_max = y_min + max(1e-9, scale * 1e-9)
        grow = pad + relative_pad * max(x_max - x_min, y_max - y_min)
        x_min, x_max = x_min - grow, x_max + grow
        y_min, y_max = y_min - grow, y_max + grow
        # Guard against float rounding swallowing the expansion entirely.
        if x_max <= x_min:
            x_max = float(np.nextafter(x_min, np.inf))
        if y_max <= y_min:
            y_max = float(np.nextafter(y_min, np.inf))
        return SpatialDomain(x_min, x_max, y_min, y_max, name=name)


@dataclass(frozen=True)
class GridSpec:
    """A ``d x d`` bucketisation of a :class:`SpatialDomain`.

    The grid index convention follows the paper's Figure 4: the cell at index
    ``(col=0, row=0)`` is the lower-left cell and coordinates are measured in units of
    the cell side ``g``.  Internally arrays are stored ``[row, col]`` (row = y band).
    """

    domain: SpatialDomain
    d: int

    def __post_init__(self) -> None:
        check_grid_side(self.d)

    @property
    def n_cells(self) -> int:
        return self.d * self.d

    @property
    def cell_width(self) -> float:
        return self.domain.width / self.d

    @property
    def cell_height(self) -> float:
        return self.domain.height / self.d

    @property
    def cell_side(self) -> float:
        """The paper's ``g`` — uses the longer domain side for rectangles."""
        return self.domain.side_length / self.d

    def cell_centers(self) -> np.ndarray:
        """``(d*d, 2)`` cell-centre coordinates, row-major (matches flatten order)."""
        return grid_cell_centers(self.d, self.domain.bounds)

    def cell_centers_grid_units(self) -> np.ndarray:
        """Cell centres in grid units (cell side = 1), as integer indices ``(col, row)``."""
        cols, rows = np.meshgrid(np.arange(self.d), np.arange(self.d))
        return np.column_stack([cols.reshape(-1), rows.reshape(-1)]).astype(float)

    def point_to_cell(self, points: np.ndarray) -> np.ndarray:
        """Map each point to its flattened cell index (row-major).

        Results are clamped into ``[0, d)`` per axis: a point exactly on the upper
        domain boundary (``x == x_max``) floors to column ``d`` and must land in the
        last cell, not outside the grid.
        """
        pts = check_points(points)
        x_min, x_max, y_min, y_max = self.domain.bounds
        cols = np.clip(
            np.floor((pts[:, 0] - x_min) / (x_max - x_min) * self.d).astype(np.int64),
            0,
            self.d - 1,
        )
        rows = np.clip(
            np.floor((pts[:, 1] - y_min) / (y_max - y_min) * self.d).astype(np.int64),
            0,
            self.d - 1,
        )
        return rows * self.d + cols

    def cell_to_rowcol(self, flat_index: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
        """Convert flattened indices back into ``(row, col)`` pairs."""
        idx = np.asarray(flat_index)
        return idx // self.d, idx % self.d

    def rowcol_to_cell(self, rows: np.ndarray | int, cols: np.ndarray | int) -> np.ndarray:
        """Convert ``(row, col)`` pairs into flattened indices."""
        return np.asarray(rows) * self.d + np.asarray(cols)

    def histogram(self, points: np.ndarray) -> np.ndarray:
        """Count grid of shape ``(d, d)`` for the given point cloud."""
        return points_to_grid_counts(points, self.domain.bounds, self.d)

    def distribution(self, points: np.ndarray) -> "GridDistribution":
        """Empirical :class:`GridDistribution` of a point cloud on this grid."""
        return GridDistribution(self, counts_to_distribution(self.histogram(points)))

    def iter_cells(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(flat_index, row, col)`` over all cells in row-major order."""
        for flat in range(self.n_cells):
            yield flat, flat // self.d, flat % self.d

    def with_side(self, d: int) -> "GridSpec":
        """Return a new spec on the same domain with a different resolution."""
        return GridSpec(self.domain, d)

    @staticmethod
    def unit(d: int) -> "GridSpec":
        return GridSpec(SpatialDomain.unit(), d)


@dataclass
class GridDistribution:
    """A probability distribution over the cells of a :class:`GridSpec`.

    ``probabilities`` is stored as a ``(d, d)`` array that sums to one.  The class is
    intentionally light-weight: it exists so mechanisms and metrics can exchange a
    distribution without re-checking shapes and normalisation at every boundary.
    """

    grid: GridSpec
    probabilities: np.ndarray = field(repr=False)
    _cumulative: np.ndarray | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.probabilities, dtype=float)
        if arr.shape == (self.grid.n_cells,):
            arr = unflatten_grid(arr, self.grid.d)
        if arr.shape != (self.grid.d, self.grid.d):
            raise ValueError(
                f"probabilities must have shape ({self.grid.d}, {self.grid.d}) or "
                f"({self.grid.n_cells},), got {arr.shape}"
            )
        if np.any(arr < -1e-9) or not np.all(np.isfinite(arr)):
            raise ValueError("probabilities must be finite and non-negative")
        total = arr.sum()
        if total <= 0:
            raise ValueError("probabilities must have a positive sum")
        self.probabilities = np.clip(arr, 0.0, None) / np.clip(arr, 0.0, None).sum()

    @property
    def d(self) -> int:
        return self.grid.d

    def flat(self) -> np.ndarray:
        """Row-major flattened probability vector of length ``d*d``."""
        return flatten_grid(self.probabilities)

    def cumulative(self) -> np.ndarray:
        """Zero-padded 2-D prefix sums (summed-area table), shape ``(d+1, d+1)``.

        ``cumulative()[i, j]`` is the total mass of the cell block with rows ``< i``
        and columns ``< j``, so any axis-aligned block sum costs four lookups.  The
        table is computed once and cached; ``probabilities`` is treated as immutable
        after construction (as everywhere else in the library).  This is the substrate
        of the O(1) range-query path in :mod:`repro.queries.engine`.
        """
        if self._cumulative is None:
            table = np.zeros((self.grid.d + 1, self.grid.d + 1))
            np.cumsum(self.probabilities, axis=0, out=table[1:, 1:])
            np.cumsum(table[1:, 1:], axis=1, out=table[1:, 1:])
            self._cumulative = table
        return self._cumulative

    def invalidate_cumulative(self) -> None:
        """Drop the cached summed-area table so the next :meth:`cumulative` rebuilds it.

        Callers that (exceptionally) rewrite ``probabilities`` in place — e.g. a
        long-lived serving buffer refreshed epoch by epoch — must invalidate the
        cache, or every summed-area-table consumer keeps answering from the stale
        window.  The streaming serving path prefers immutable swaps
        (:class:`repro.queries.engine.StreamingQueryEngine` builds a fresh engine per
        epoch and replaces it atomically), but the explicit invalidation keeps the
        in-place route safe too.
        """
        self._cumulative = None

    def expected_counts(self, n: int) -> np.ndarray:
        """Expected per-cell counts when ``n`` users are drawn from this distribution."""
        return self.probabilities * float(n)

    def sample_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points: sample a cell, then a uniform location inside it."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        flat = self.flat()
        cells = rng.choice(self.grid.n_cells, size=n, p=flat / flat.sum())
        rows, cols = self.grid.cell_to_rowcol(cells)
        u = rng.random((n, 2))
        x_min, x_max, y_min, y_max = self.grid.domain.bounds
        xs = x_min + (cols + u[:, 0]) * (x_max - x_min) / self.grid.d
        ys = y_min + (rows + u[:, 1]) * (y_max - y_min) / self.grid.d
        return np.column_stack([xs, ys])

    def total_variation(self, other: "GridDistribution") -> float:
        """Total-variation distance to another distribution on the same grid."""
        self._check_compatible(other)
        return 0.5 * float(np.abs(self.flat() - other.flat()).sum())

    def _check_compatible(self, other: "GridDistribution") -> None:
        if other.grid.d != self.grid.d:
            raise ValueError(
                f"grids are incompatible: {self.grid.d}x{self.grid.d} vs "
                f"{other.grid.d}x{other.grid.d}"
            )

    @staticmethod
    def uniform(grid: GridSpec) -> "GridDistribution":
        return GridDistribution(grid, np.full((grid.d, grid.d), 1.0 / grid.n_cells))

    @staticmethod
    def from_counts(grid: GridSpec, counts: np.ndarray) -> "GridDistribution":
        return GridDistribution(grid, counts_to_distribution(counts))

    @staticmethod
    def from_points(grid: GridSpec, points: np.ndarray) -> "GridDistribution":
        return grid.distribution(points)

    @staticmethod
    def from_flat(grid: GridSpec, flat: np.ndarray) -> "GridDistribution":
        return GridDistribution(grid, unflatten_grid(flat, grid.d))

    @staticmethod
    def from_normalized(
        grid: GridSpec,
        probabilities: np.ndarray,
        *,
        cumulative: np.ndarray | None = None,
    ) -> "GridDistribution":
        """Wrap an already-normalised ``(d, d)`` array without re-normalising it.

        The regular constructor re-normalises (``clip`` + divide by the sum), which
        is the right defence at every untrusted boundary but changes the last bits
        whenever the sum is not exactly ``1.0``.  Consumers that *re-materialise* a
        distribution that was already normalised — the shared-memory snapshot
        reader in :mod:`repro.serving.shm` rebuilding the published posterior —
        need the array back bit-for-bit, or serving answers drift from the serial
        engine.  This constructor trusts its caller: ``probabilities`` must be a
        ``(d, d)`` float64 array that already sums to ~1, and ``cumulative`` (when
        given) must be its ``(d+1, d+1)`` zero-padded prefix-sum table, which is
        installed as the :meth:`cumulative` cache so the summed-area table is not
        recomputed either.  Arrays are adopted as-is (no copy) and treated as
        immutable afterwards, like everywhere else in the library.
        """
        arr = np.asarray(probabilities)
        if arr.shape != (grid.d, grid.d) or arr.dtype != np.float64:
            raise ValueError(
                f"from_normalized needs a ({grid.d}, {grid.d}) float64 array, "
                f"got shape {arr.shape} dtype {arr.dtype}"
            )
        self = object.__new__(GridDistribution)
        self.grid = grid
        self.probabilities = arr
        self._cumulative = None
        if cumulative is not None:
            table = np.asarray(cumulative)
            if table.shape != (grid.d + 1, grid.d + 1):
                raise ValueError(
                    f"cumulative must have shape ({grid.d + 1}, {grid.d + 1}), "
                    f"got {table.shape}"
                )
            self._cumulative = table
        return self


def stack_trajectory_cells(
    grid: GridSpec, trajectories: list
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map a ragged trajectory set to cells in one pass.

    Returns ``(lengths, starts, cells)``: per-trajectory point counts, the offset of
    each trajectory's first point in the stacked array, and the flattened cell index
    of every point.  This is the single place a trajectory list is touched per
    element; the trajectory engine, PivotTrace and the trajectory query engine all
    build on the same whole-array triple.
    """
    if not trajectories:
        raise ValueError("cannot stack an empty trajectory set")
    lengths = np.fromiter(
        (np.shape(t)[0] for t in trajectories), dtype=np.int64, count=len(trajectories)
    )
    if (lengths == 0).any():
        raise ValueError("every trajectory must contain at least one point")
    cells = grid.point_to_cell(np.vstack(trajectories))
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return lengths, starts, cells


def marginals(distribution: GridDistribution) -> tuple[np.ndarray, np.ndarray]:
    """Return the (x-marginal, y-marginal) of a grid distribution.

    The x-marginal sums over rows (y bands), the y-marginal over columns.  Used by
    MDSW, which privatises each axis independently.
    """
    probs = distribution.probabilities
    return probs.sum(axis=0), probs.sum(axis=1)


def outer_product_distribution(
    grid: GridSpec, x_marginal: np.ndarray, y_marginal: np.ndarray
) -> GridDistribution:
    """Recombine independent per-axis marginals into a joint grid distribution.

    This is exactly how MDSW reconstructs the 2-D density from its per-dimension
    estimates, and is why MDSW loses the cross-dimension correlation the paper's DAM
    retains.
    """
    x = np.clip(np.asarray(x_marginal, dtype=float), 0.0, None)
    y = np.clip(np.asarray(y_marginal, dtype=float), 0.0, None)
    if x.shape != (grid.d,) or y.shape != (grid.d,):
        raise ValueError(
            f"marginals must have shape ({grid.d},); got {x.shape} and {y.shape}"
        )
    x = x / x.sum() if x.sum() > 0 else np.full(grid.d, 1.0 / grid.d)
    y = y / y.sum() if y.sum() > 0 else np.full(grid.d, 1.0 / grid.d)
    return GridDistribution(grid, np.outer(y, x))
