"""GridAreaResponse — the paper's Algorithm 2, implemented literally.

:class:`~repro.core.dam.DiscreteDAM` randomises users with one categorical draw from a
precomputed transition row, which is the vectorised equivalent of Algorithm 2.  This
module keeps the *literal* two-stage algorithm as well:

1. split the output domain into four parts — pure-low area, low part of the mixed
   (border) cells, high part of the mixed cells, pure-high area — and pick a part with
   probability proportional to (area x weight), where the weight is ``1`` for low parts
   and ``e^eps`` for high parts (Algorithm 2, line 6);
2. inside the pure parts sample a cell uniformly; inside the mixed parts sample a cell
   proportionally to its weighted area (lines 8, 10, 12–15).

Tests verify that the per-cell response probabilities induced by this procedure match
the DAM transition row exactly, which is the correctness argument for using the
vectorised path in the experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dam import DiskOutputDomain
from repro.core.domain import GridSpec
from repro.core.geometry import CellClass, enumerate_disk_cells
from repro.core.radius import grid_radius
from repro.utils.rng import ensure_rng, sample_grouped_inverse_cdf, weighted_sample_index
from repro.utils.validation import check_epsilon


@dataclass(frozen=True)
class ResponseParts:
    """The four candidate sample parts of Algorithm 2 for one input cell.

    ``pure_low_cells`` etc. hold output-domain indices; the ``*_areas`` entries hold
    the corresponding (possibly fractional) area of each listed cell.
    """

    pure_low_cells: np.ndarray
    pure_high_cells: np.ndarray
    mixed_cells: np.ndarray
    mixed_high_areas: np.ndarray
    mixed_low_areas: np.ndarray


class GridAreaResponse:
    """Literal implementation of Algorithm 2 for the Disk Area Mechanism."""

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        b_hat: int | None = None,
        use_shrinkage: bool = True,
    ) -> None:
        self.grid = grid
        self.epsilon = check_epsilon(epsilon)
        if b_hat is None:
            b_hat = grid_radius(epsilon, grid.d, grid.domain.side_length)
        self.b_hat = int(b_hat)
        if self.b_hat < 1:
            raise ValueError(f"b_hat must be >= 1, got {b_hat}")
        self.use_shrinkage = use_shrinkage
        self.output_domain = DiskOutputDomain.build(grid.d, self.b_hat)
        self._lookup = self.output_domain.index_lookup()
        self._disk_cells = enumerate_disk_cells(self.b_hat, use_shrinkage=use_shrinkage)
        self._parts_cache: dict[int, ResponseParts] = {}
        self._cdf_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ parts
    def parts(self, input_cell: int) -> ResponseParts:
        """The four sampling parts (Algorithm 2, lines 1–3) for one input cell."""
        if input_cell in self._parts_cache:
            return self._parts_cache[input_cell]
        if not 0 <= input_cell < self.grid.n_cells:
            raise ValueError(f"input cell {input_cell} outside [0, {self.grid.n_cells})")
        row, col = input_cell // self.grid.d, input_cell % self.grid.d

        high_cells: list[int] = []
        mixed_cells: list[int] = []
        mixed_high: list[float] = []
        disk_indices: set[int] = set()
        for cell in self._disk_cells:
            out_index = self._lookup[(col + cell.dx, row + cell.dy)]
            disk_indices.add(out_index)
            if cell.cell_class is CellClass.PURE_HIGH:
                high_cells.append(out_index)
            else:
                mixed_cells.append(out_index)
                mixed_high.append(cell.high_area)
        pure_low = np.array(
            sorted(set(range(self.output_domain.size)) - disk_indices), dtype=np.int64
        )
        parts = ResponseParts(
            pure_low_cells=pure_low,
            pure_high_cells=np.array(high_cells, dtype=np.int64),
            mixed_cells=np.array(mixed_cells, dtype=np.int64),
            mixed_high_areas=np.array(mixed_high, dtype=float),
            mixed_low_areas=1.0 - np.array(mixed_high, dtype=float),
        )
        self._parts_cache[input_cell] = parts
        return parts

    # ---------------------------------------------------------------- sampling
    def respond(self, input_cell: int, seed=None) -> int:
        """Randomise one input cell into a noisy output-domain index (Algorithm 2)."""
        rng = ensure_rng(seed)
        parts = self.parts(input_cell)
        e_eps = math.exp(self.epsilon)

        area_low = float(parts.pure_low_cells.size)
        area_mixed_low = float(parts.mixed_low_areas.sum())
        area_mixed_high = float(parts.mixed_high_areas.sum())
        area_high = float(parts.pure_high_cells.size)

        values = [area_low, area_mixed_low, area_mixed_high, area_high]
        weights = [1.0, 1.0, e_eps, e_eps]
        weighted_areas = [v * w for v, w in zip(values, weights)]
        # A part can have zero area — at extreme b_hat no pure-low cell remains, and
        # with shrinkage disabled the mixed-high part vanishes.  Drop empty parts
        # before sampling so we never `rng.choice` from an empty cell array.
        available = [i for i, area in enumerate(weighted_areas) if area > 0.0]
        part_index = available[
            weighted_sample_index(rng, [weighted_areas[i] for i in available])
        ]

        if part_index == 0:
            return int(rng.choice(parts.pure_low_cells))
        if part_index == 3:
            return int(rng.choice(parts.pure_high_cells))
        # Border area (Algorithm 2 lines 12-15): sample a mixed cell proportionally to
        # its weighted area, combining its high part (weight e^eps) and low part (1).
        cell_weights = parts.mixed_high_areas * e_eps + parts.mixed_low_areas
        chosen = weighted_sample_index(rng, cell_weights)
        return int(parts.mixed_cells[chosen])

    def respond_many(self, input_cells: np.ndarray, seed=None) -> np.ndarray:
        """Batch version of :meth:`respond`: one uniform draw and one searchsorted.

        Samples every user from the exact per-cell response distribution that
        Algorithm 2 induces (:meth:`response_probabilities`, cached as a cumulative
        distribution per distinct input cell) instead of replaying the two-stage
        procedure per user — the tests that pin ``response_probabilities`` to the DAM
        transition row are the correctness argument for this equivalence.
        """
        rng = ensure_rng(seed)
        cells = np.asarray(input_cells, dtype=np.int64)
        return sample_grouped_inverse_cdf(rng, cells, self._response_cdf, self.output_domain.size)

    def _response_cdf(self, input_cell: int) -> np.ndarray:
        cdf = self._cdf_cache.get(input_cell)
        if cdf is None:
            cdf = np.cumsum(self.response_probabilities(input_cell))
            self._cdf_cache[input_cell] = cdf
        return cdf

    # -------------------------------------------------------------- diagnostics
    def response_probabilities(self, input_cell: int) -> np.ndarray:
        """Exact per-output-cell response probabilities implied by Algorithm 2.

        Used by tests to check the literal algorithm agrees with the DAM transition
        matrix: both must put probability ``p_hat`` on pure-high cells, ``q_hat`` on
        pure-low cells and the area-weighted blend on mixed cells.
        """
        parts = self.parts(input_cell)
        e_eps = math.exp(self.epsilon)
        total = (
            float(parts.pure_low_cells.size)
            + float(parts.mixed_low_areas.sum())
            + e_eps * float(parts.mixed_high_areas.sum())
            + e_eps * float(parts.pure_high_cells.size)
        )
        probabilities = np.zeros(self.output_domain.size, dtype=float)
        probabilities[parts.pure_low_cells] = 1.0 / total
        probabilities[parts.pure_high_cells] = e_eps / total
        for idx, high, low in zip(parts.mixed_cells, parts.mixed_high_areas, parts.mixed_low_areas):
            probabilities[idx] = (high * e_eps + low) / total
        return probabilities
