"""End-to-end DAM processing — the paper's Algorithm 1 as a user-facing pipeline.

Algorithm 1 takes a raw point set, a square range of side ``L``, a cell side ``g`` and
a privacy budget ``eps``; it bucketises the range into a grid, randomises each point's
cell with ``GridAreaResponse``, accumulates the noisy map and post-processes it into a
distribution estimate.  :class:`DAMPipeline` packages those steps behind a small API so
applications (the examples in ``examples/``) never have to touch transition matrices,
while :func:`estimate_spatial_distribution` is the one-call convenience entry point.

For datasets too large to hold in memory, :meth:`DAMPipeline.run_stream` ingests the
points in shards through a :class:`~repro.core.estimator.StreamingAggregator`; with a
fixed seed the result is identical to the batch :meth:`DAMPipeline.run`.  To spread
the privatization over a process pool — still bit-identical to the serial run — use
:class:`repro.core.parallel.ParallelPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.dam import Backend, DiscreteDAM, PostProcess
from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.core.huem import DiscreteHUEM
from repro.core.radius import grid_radius
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon, check_grid_side

MechanismName = Literal["dam", "dam-ns", "huem"]


@dataclass
class PipelineResult:
    """Everything Algorithm 1 produces, plus bookkeeping useful to applications."""

    #: the reconstructed distribution map ``R`` over the input grid
    estimate: GridDistribution
    #: the true (non-private) empirical distribution, for utility evaluation
    true_distribution: GridDistribution
    #: histogram of noisy reports over the mechanism's output domain
    noisy_counts: np.ndarray
    #: number of users that contributed a report
    n_users: int
    #: the integer high-probability radius actually used
    b_hat: int
    #: name of the mechanism used
    mechanism: str = "DAM"
    #: extra metadata (epsilon, grid side, ...)
    info: dict = field(default_factory=dict)


class DAMPipeline:
    """The DAM Processing Framework (Algorithm 1) wrapped as a reusable object.

    Parameters
    ----------
    domain:
        The square (or rectangular) region covered by the analysis.
    d:
        Number of grid cells per side (the paper's discrete side length).
    epsilon:
        Privacy budget per user report.
    mechanism:
        ``"dam"`` (default), ``"dam-ns"`` (no shrinkage) or ``"huem"``.
    b_hat:
        Optional override of the integer high-probability radius; defaults to the
        mutual-information-optimal choice of Section V-C.
    postprocess:
        Post-processing mode passed through to the mechanism (``"ems"``, ``"em"`` or
        ``"ls"``).
    backend:
        ``"operator"`` (default) for the structured transition-operator engine,
        ``"dense"`` to materialise the classical transition matrix.
    """

    def __init__(
        self,
        domain: SpatialDomain,
        d: int,
        epsilon: float,
        *,
        mechanism: MechanismName = "dam",
        b_hat: int | None = None,
        postprocess: PostProcess = "ems",
        backend: Backend = "operator",
    ) -> None:
        self.domain = domain
        self.d = check_grid_side(d)
        self.epsilon = check_epsilon(epsilon)
        self.grid = GridSpec(domain, self.d)
        if b_hat is None:
            b_hat = grid_radius(self.epsilon, self.d, domain.side_length)
        self.b_hat = int(b_hat)
        if mechanism == "dam":
            self.mechanism = DiscreteDAM(
                self.grid,
                self.epsilon,
                b_hat=self.b_hat,
                postprocess=postprocess,
                backend=backend,
            )
        elif mechanism == "dam-ns":
            self.mechanism = DiscreteDAM(
                self.grid,
                self.epsilon,
                b_hat=self.b_hat,
                use_shrinkage=False,
                postprocess=postprocess,
                backend=backend,
            )
        elif mechanism == "huem":
            self.mechanism = DiscreteHUEM(
                self.grid,
                self.epsilon,
                b_hat=self.b_hat,
                postprocess=postprocess,
                backend=backend,
            )
        else:
            raise ValueError(
                f"unknown mechanism {mechanism!r}; expected 'dam', 'dam-ns' or 'huem'"
            )

    def run(self, points: np.ndarray, seed=None) -> PipelineResult:
        """Execute Algorithm 1 on a raw point set and return the distribution map."""
        rng = ensure_rng(seed)
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
        inside = self.domain.contains(pts)
        pts = pts[inside]
        report = self.mechanism.run(pts, seed=rng)
        return PipelineResult(
            estimate=report.estimate,
            true_distribution=self.grid.distribution(pts),
            noisy_counts=report.noisy_counts,
            n_users=report.n_users,
            b_hat=self.b_hat,
            mechanism=self.mechanism.name,
            info={
                "epsilon": self.epsilon,
                "d": self.d,
                "dropped_points": int((~inside).sum()),
            },
        )

    def run_stream(self, chunks, seed=None) -> PipelineResult:
        """Execute Algorithm 1 over an iterable of point-array shards.

        Memory stays bounded by the shard size plus two histograms, so millions of
        users can be processed without ever holding all points at once.  With a fixed
        seed the result is identical to :meth:`run` on the concatenated shards.
        """
        rng = ensure_rng(seed)
        aggregator = self.mechanism.streaming_aggregator(seed=rng)
        dropped = 0
        for chunk in chunks:
            pts = np.asarray(chunk, dtype=float)
            if pts.ndim != 2 or pts.shape[1] != 2:
                raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
            inside = self.domain.contains(pts)
            dropped += int((~inside).sum())
            aggregator.add_points(pts[inside])
        if aggregator.n_users == 0:
            raise ValueError("no points inside the domain were ingested")
        report = aggregator.finalize()
        return PipelineResult(
            estimate=report.estimate,
            true_distribution=GridDistribution.from_flat(
                self.grid, aggregator.true_cell_counts / aggregator.true_cell_counts.sum()
            ),
            noisy_counts=report.noisy_counts,
            n_users=report.n_users,
            b_hat=self.b_hat,
            mechanism=self.mechanism.name,
            info={
                "epsilon": self.epsilon,
                "d": self.d,
                "dropped_points": dropped,
                "streamed": True,
            },
        )


def estimate_spatial_distribution(
    points: np.ndarray,
    epsilon: float,
    *,
    d: int = 15,
    domain: SpatialDomain | None = None,
    mechanism: MechanismName = "dam",
    backend: Backend = "operator",
    seed=None,
) -> PipelineResult:
    """One-call private spatial distribution estimation.

    This is the quickstart entry point: give it raw ``(n, 2)`` locations and a privacy
    budget and it returns the privately estimated density map together with the true
    empirical map for comparison.  The analysis domain defaults to the bounding box of
    the data (note that deriving the box from the data itself is a convenience for
    experimentation — a production deployment should fix the domain a priori so that it
    does not leak information).
    """
    pts = np.asarray(points, dtype=float)
    if domain is None:
        # Relative pad: an absolute epsilon underflows for projected coordinates
        # (~1e6 m), leaving boundary points on the box edge.
        domain = SpatialDomain.from_points(pts, relative_pad=1e-9)
    pipeline = DAMPipeline(domain, d, epsilon, mechanism=mechanism, backend=backend)
    return pipeline.run(pts, seed=seed)
