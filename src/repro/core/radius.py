"""Choice of the high-probability radius ``b`` — Section V-C of the paper.

The paper picks ``b`` independently of the (unknown) private distribution by
maximising an upper bound on the mutual information between the mechanism's input and
output.  For the unit square the optimiser has the closed form

``b* = (2 m2 + sqrt(4 m2^2 + pi e^eps m1 m2)) / (pi e^eps m1)``

with ``m1 = e^eps - 1 - eps`` and ``m2 = 1 - e^eps + eps e^eps``; for a square of side
``L`` the optimum simply scales by ``L`` (Eq. 12).  This module provides the closed
form, the mutual-information bound itself (Eq. 9 / Eq. 11) for validation and
ablation, and the helper that converts the continuous optimum into the integer grid
radius ``b_hat`` used by the discrete mechanisms.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_epsilon, check_grid_side, check_positive


def _m1(epsilon: float) -> float:
    """``m1 = e^eps - 1 - eps`` (positive for every eps > 0)."""
    return math.exp(epsilon) - 1.0 - epsilon


def _m2(epsilon: float) -> float:
    """``m2 = 1 - e^eps + eps e^eps`` (positive for every eps > 0)."""
    return 1.0 - math.exp(epsilon) + epsilon * math.exp(epsilon)


def optimal_radius(epsilon: float, side: float = 1.0) -> float:
    """Closed-form optimal continuous radius ``b*`` for a square of side ``L``.

    Derived by setting the derivative of the mutual-information bound (Eq. 12) to
    zero.  Limits match the paper's observations: as ``eps -> 0`` the radius tends to
    ``(2 + sqrt(4 + pi)) / pi * L`` and as ``eps -> inf`` it tends to ``0``.
    """
    epsilon = check_epsilon(epsilon)
    side = check_positive(side, "side")
    m1 = _m1(epsilon)
    m2 = _m2(epsilon)
    numerator = 2.0 * m2 + math.sqrt(4.0 * m2 * m2 + math.pi * math.exp(epsilon) * m1 * m2)
    return numerator / (math.pi * math.exp(epsilon) * m1) * side


def small_epsilon_limit_radius(side: float = 1.0) -> float:
    """The ``eps -> 0`` limit of :func:`optimal_radius`: ``(2 + sqrt(4 + pi)) / pi * L``."""
    return (2.0 + math.sqrt(4.0 + math.pi)) / math.pi * check_positive(side, "side")


def mutual_information_bound(epsilon: float, b: float, side: float = 1.0) -> float:
    """Upper bound ``g(b)`` on the DAM input/output mutual information (Eq. 11).

    Expressed in bits.  The closed-form :func:`optimal_radius` maximises this function;
    an ablation benchmark verifies that numerically.
    """
    epsilon = check_epsilon(epsilon)
    b = check_positive(b, "b")
    side = check_positive(side, "side")
    e_eps = math.exp(epsilon)
    flat_area = 4.0 * side * b + side * side
    disk_area = math.pi * b * b
    total_plain = disk_area + flat_area
    total_weighted = disk_area * e_eps + flat_area
    # log(  (pi b^2 + 4Lb + L^2) / (pi b^2 e^eps + 4Lb + L^2) ) + pi b^2 e^eps eps log e / (...)
    return math.log2(total_plain / total_weighted) + (
        disk_area * e_eps * epsilon * math.log2(math.e)
    ) / total_weighted


def mutual_information_bound_curve(
    epsilon: float, b_values: np.ndarray, side: float = 1.0
) -> np.ndarray:
    """Vectorised :func:`mutual_information_bound` over an array of radii."""
    return np.array(
        [mutual_information_bound(epsilon, float(b), side) for b in np.asarray(b_values)]
    )


def numeric_optimal_radius(
    epsilon: float, side: float = 1.0, *, resolution: int = 4000
) -> float:
    """Grid-search maximiser of the mutual-information bound.

    Used by tests and the ablation benchmark to confirm the closed form; it is not on
    the mechanism's hot path.
    """
    epsilon = check_epsilon(epsilon)
    side = check_positive(side, "side")
    upper = max(2.0 * side, 2.0 * optimal_radius(epsilon, side))
    candidates = np.linspace(1e-4 * side, upper, resolution)
    values = mutual_information_bound_curve(epsilon, candidates, side)
    return float(candidates[int(np.argmax(values))])


def grid_radius(epsilon: float, d: int, side: float = 1.0, *, minimum: int = 1) -> int:
    """Integer grid radius ``b_hat`` = optimal continuous radius measured in cells.

    The domain of side ``L`` is split into ``d`` cells per side (cell side ``g = L/d``),
    so the continuous optimum ``b*`` corresponds to ``floor(b* / g)`` cells, clamped to
    at least ``minimum`` (the discrete mechanism needs a non-empty disk).
    """
    epsilon = check_epsilon(epsilon)
    d = check_grid_side(d)
    side = check_positive(side, "side")
    b_star = optimal_radius(epsilon, side)
    cell = side / d
    return max(int(math.floor(b_star / cell)), minimum)


def scaled_grid_radius(
    epsilon: float, d: int, scale: float, side: float = 1.0, *, minimum: int = 1
) -> int:
    """Grid radius scaled by a multiplier, as in the paper's Figure 8 sweep.

    The sweep uses ``b in {0.33, 0.67, 1.0, 1.33, 1.67} * b_check`` where ``b_check`` is
    the optimal grid radius; each value is floored to an integer and kept >= 1.
    """
    check_positive(scale, "scale")
    base = grid_radius(epsilon, d, side, minimum=minimum)
    return max(int(math.floor(scale * base)), minimum)
