"""Frequency-oracle protocol shared by DAM and every baseline mechanism.

The paper frames every mechanism as a Frequency Oracle ``FO = <T, E>``: a randomised
reporting function ``T`` run by each user and an estimation function ``E`` run by the
analyst.  :class:`SpatialMechanism` captures that contract for mechanisms operating on
a :class:`~repro.core.domain.GridSpec`:

* :meth:`SpatialMechanism.privatize_cells` is ``T`` — it maps true cell indices to
  noisy report indices in the mechanism's own output domain;
* :meth:`SpatialMechanism.estimate` is ``E`` — it maps the histogram of noisy reports
  back to a :class:`~repro.core.domain.GridDistribution` over the input grid.

Mechanisms that perturb raw coordinates rather than cells (e.g. the continuous SAM
samplers) can still participate through :meth:`privatize_points`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.domain import GridDistribution, GridSpec
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon


@dataclass
class MechanismReport:
    """The output of one end-to-end mechanism run.

    Attributes
    ----------
    estimate:
        The reconstructed distribution over the input grid.
    noisy_counts:
        Histogram of noisy reports over the mechanism's output domain.
    n_users:
        Number of users that reported.
    """

    estimate: GridDistribution
    noisy_counts: np.ndarray
    n_users: int


class SpatialMechanism(abc.ABC):
    """Base class for ε-LDP (or ε-Geo-I) spatial distribution estimators."""

    #: Short display name used by the experiment runner and benchmark tables.
    name: str = "mechanism"

    def __init__(self, grid: GridSpec, epsilon: float) -> None:
        self.grid = grid
        self.epsilon = check_epsilon(epsilon)

    # ------------------------------------------------------------------ T
    @abc.abstractmethod
    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        """Randomise true (flattened) input-cell indices into noisy report indices.

        ``cells`` is an integer array of length ``n_users``; the return value is an
        integer array of the same length indexing the mechanism's output domain
        (``self.output_domain_size()`` categories).
        """

    # ------------------------------------------------------------------ E
    @abc.abstractmethod
    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        """Reconstruct the input distribution from the noisy-report histogram."""

    @abc.abstractmethod
    def output_domain_size(self) -> int:
        """Number of distinct values a noisy report can take."""

    # ------------------------------------------------------- conveniences
    def privatize_points(self, points: np.ndarray, seed=None) -> np.ndarray:
        """Bucketise raw points onto the grid, then privatise the cell indices."""
        cells = self.grid.point_to_cell(points)
        return self.privatize_cells(cells, seed=seed)

    def aggregate(self, reports: np.ndarray) -> np.ndarray:
        """Histogram of noisy reports over the output domain."""
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size and (reports.min() < 0 or reports.max() >= self.output_domain_size()):
            raise ValueError(
                "reports contain indices outside the output domain "
                f"[0, {self.output_domain_size()})"
            )
        return np.bincount(reports, minlength=self.output_domain_size()).astype(float)

    def run(self, points: np.ndarray, seed=None) -> MechanismReport:
        """End-to-end: bucketise, privatise, aggregate and estimate.

        This is Algorithm 1 of the paper specialised to the mechanism at hand.
        """
        rng = ensure_rng(seed)
        pts = np.asarray(points, dtype=float)
        reports = self.privatize_points(pts, seed=rng)
        noisy_counts = self.aggregate(reports)
        estimate = self.estimate(noisy_counts, n_users=pts.shape[0])
        return MechanismReport(
            estimate=estimate, noisy_counts=noisy_counts, n_users=pts.shape[0]
        )

    def run_cells(self, cells: np.ndarray, seed=None) -> MechanismReport:
        """Like :meth:`run` but for callers that already bucketised their data."""
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        reports = self.privatize_cells(cells, seed=rng)
        noisy_counts = self.aggregate(reports)
        estimate = self.estimate(noisy_counts, n_users=cells.shape[0])
        return MechanismReport(
            estimate=estimate, noisy_counts=noisy_counts, n_users=cells.shape[0]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(d={self.grid.d}, epsilon={self.epsilon}, "
            f"outputs={self.output_domain_size()})"
        )


class TransitionMatrixMechanism(SpatialMechanism):
    """A mechanism fully described by a per-cell transition matrix.

    Subclasses build ``transition[i, j] = Pr(report = j | true cell = i)`` once; this
    base class then provides vectorised sampling (grouping users by their true cell so
    each distinct cell costs one ``Generator.choice`` call) and estimation via
    expectation maximisation over the same matrix.
    """

    def __init__(self, grid: GridSpec, epsilon: float) -> None:
        super().__init__(grid, epsilon)
        self._transition: np.ndarray | None = None

    @property
    def transition(self) -> np.ndarray:
        """The ``(n_input_cells, n_output_cells)`` row-stochastic transition matrix."""
        if self._transition is None:
            raise RuntimeError(
                f"{type(self).__name__} has not built its transition matrix yet"
            )
        return self._transition

    def _set_transition(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != self.grid.n_cells:
            raise ValueError(
                f"transition must have {self.grid.n_cells} rows, got shape {matrix.shape}"
            )
        rows = matrix.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-6):
            raise ValueError("transition rows must sum to 1")
        self._transition = matrix

    def output_domain_size(self) -> int:
        return self.transition.shape[1]

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size and (cells.min() < 0 or cells.max() >= self.grid.n_cells):
            raise ValueError(f"cell indices must lie in [0, {self.grid.n_cells})")
        reports = np.empty(cells.shape[0], dtype=np.int64)
        n_out = self.output_domain_size()
        for cell in np.unique(cells):
            mask = cells == cell
            reports[mask] = rng.choice(n_out, size=int(mask.sum()), p=self.transition[cell])
        return reports

    def ldp_ratio(self) -> float:
        """Worst-case probability ratio between any two rows (the LDP audit value).

        For a correctly built ε-LDP mechanism this is at most ``e^eps`` up to floating
        point noise; tests assert it.
        """
        matrix = self.transition
        positive = matrix[:, matrix.min(axis=0) > 0]
        if positive.size == 0:
            return float("inf")
        return float((positive.max(axis=0) / positive.min(axis=0)).max())
