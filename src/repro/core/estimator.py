"""Frequency-oracle protocol shared by DAM and every baseline mechanism.

The paper frames every mechanism as a Frequency Oracle ``FO = <T, E>``: a randomised
reporting function ``T`` run by each user and an estimation function ``E`` run by the
analyst.  :class:`SpatialMechanism` captures that contract for mechanisms operating on
a :class:`~repro.core.domain.GridSpec`:

* :meth:`SpatialMechanism.privatize_cells` is ``T`` — it maps true cell indices to
  noisy report indices in the mechanism's own output domain;
* :meth:`SpatialMechanism.estimate` is ``E`` — it maps the histogram of noisy reports
  back to a :class:`~repro.core.domain.GridDistribution` over the input grid.

Mechanisms that perturb raw coordinates rather than cells (e.g. the continuous SAM
samplers) can still participate through :meth:`privatize_points`.

Two throughput facilities live here as well:

* :class:`TransitionMatrixMechanism` privatizes whole user batches with per-row
  cumulative distributions and a single ``searchsorted`` over one uniform draw batch
  (or delegates to a structured :class:`~repro.core.operator.DiskTransitionOperator`
  when one is installed), instead of one ``Generator.choice`` call per distinct cell;
* :class:`StreamingAggregator` ingests reports in shards so callers never have to
  hold all points in memory — see :meth:`SpatialMechanism.run_stream`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.domain import GridDistribution, GridSpec
from repro.utils.rng import ensure_rng, sample_grouped_inverse_cdf
from repro.utils.validation import check_epsilon


@dataclass
class MechanismReport:
    """The output of one end-to-end mechanism run.

    Attributes
    ----------
    estimate:
        The reconstructed distribution over the input grid.
    noisy_counts:
        Histogram of noisy reports over the mechanism's output domain.
    n_users:
        Number of users that reported.
    """

    estimate: GridDistribution
    noisy_counts: np.ndarray
    n_users: int


class SpatialMechanism(abc.ABC):
    """Base class for ε-LDP (or ε-Geo-I) spatial distribution estimators."""

    #: Short display name used by the experiment runner and benchmark tables.
    name: str = "mechanism"

    def __init__(self, grid: GridSpec, epsilon: float) -> None:
        self.grid = grid
        self.epsilon = check_epsilon(epsilon)

    # ------------------------------------------------------------------ T
    @abc.abstractmethod
    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        """Randomise true (flattened) input-cell indices into noisy report indices.

        ``cells`` is an integer array of length ``n_users``; the return value is an
        integer array of the same length indexing the mechanism's output domain
        (``self.output_domain_size()`` categories).
        """

    # ------------------------------------------------------------------ E
    @abc.abstractmethod
    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        """Reconstruct the input distribution from the noisy-report histogram."""

    @abc.abstractmethod
    def output_domain_size(self) -> int:
        """Number of distinct values a noisy report can take."""

    # ------------------------------------------------------- conveniences
    def privatize_points(self, points: np.ndarray, seed=None) -> np.ndarray:
        """Bucketise raw points onto the grid, then privatise the cell indices."""
        cells = self.grid.point_to_cell(points)
        return self.privatize_cells(cells, seed=seed)

    def aggregate(self, reports: np.ndarray) -> np.ndarray:
        """Histogram of noisy reports over the output domain."""
        reports = np.asarray(reports, dtype=np.int64)
        if reports.size and (reports.min() < 0 or reports.max() >= self.output_domain_size()):
            raise ValueError(
                "reports contain indices outside the output domain "
                f"[0, {self.output_domain_size()})"
            )
        return np.bincount(reports, minlength=self.output_domain_size()).astype(float)

    def run(self, points: np.ndarray, seed=None) -> MechanismReport:
        """End-to-end: bucketise, privatise, aggregate and estimate.

        This is Algorithm 1 of the paper specialised to the mechanism at hand.
        """
        rng = ensure_rng(seed)
        pts = np.asarray(points, dtype=float)
        reports = self.privatize_points(pts, seed=rng)
        noisy_counts = self.aggregate(reports)
        estimate = self.estimate(noisy_counts, n_users=pts.shape[0])
        return MechanismReport(estimate=estimate, noisy_counts=noisy_counts, n_users=pts.shape[0])

    def run_cells(self, cells: np.ndarray, seed=None) -> MechanismReport:
        """Like :meth:`run` but for callers that already bucketised their data."""
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        reports = self.privatize_cells(cells, seed=rng)
        noisy_counts = self.aggregate(reports)
        estimate = self.estimate(noisy_counts, n_users=cells.shape[0])
        return MechanismReport(estimate=estimate, noisy_counts=noisy_counts, n_users=cells.shape[0])

    def streaming_aggregator(self, seed=None) -> "StreamingAggregator":
        """A chunked-ingestion aggregator bound to this mechanism."""
        return StreamingAggregator(self, seed=seed)

    def run_stream(self, chunks, seed=None) -> MechanismReport:
        """Like :meth:`run` but over an iterable of point-array shards.

        Each shard is privatized and histogrammed as it arrives, so memory stays
        bounded by the shard size plus the output-domain histogram regardless of the
        total number of users.  With a fixed seed the result is identical to one
        :meth:`run` call over the concatenated shards.
        """
        aggregator = self.streaming_aggregator(seed=seed)
        for chunk in chunks:
            aggregator.add_points(chunk)
        return aggregator.finalize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(d={self.grid.d}, epsilon={self.epsilon}, "
            f"outputs={self.output_domain_size()})"
        )


class TransitionMatrixMechanism(SpatialMechanism):
    """A mechanism fully described by a per-cell transition matrix.

    Subclasses install the randomisation either as a dense matrix
    (``transition[i, j] = Pr(report = j | true cell = i)``, via
    :meth:`_set_transition`) or as a structured
    :class:`~repro.core.operator.DiskTransitionOperator` (via :meth:`_set_operator`),
    in which case the dense matrix is only materialised on demand.  Either way this
    base class provides batch sampling — per-row cumulative distributions answered
    with one ``searchsorted`` over a single uniform draw batch — and estimation via
    expectation maximisation.
    """

    def __init__(self, grid: GridSpec, epsilon: float) -> None:
        super().__init__(grid, epsilon)
        self._transition: np.ndarray | None = None
        self._operator = None
        self._row_cdf: np.ndarray | None = None

    @property
    def transition(self) -> np.ndarray:
        """The ``(n_input_cells, n_output_cells)`` row-stochastic transition matrix.

        For operator-backed mechanisms the dense matrix is materialised lazily on
        first access and cached; the hot paths (sampling, EM) never require it.
        """
        if self._transition is None:
            if self._operator is not None:
                self._transition = self._operator.to_dense()
            else:
                raise RuntimeError(
                    f"{type(self).__name__} has not built its transition matrix yet"
                )
        return self._transition

    @property
    def operator(self):
        """The structured transition operator, or ``None`` for dense mechanisms."""
        return self._operator

    def _set_transition(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != self.grid.n_cells:
            raise ValueError(
                f"transition must have {self.grid.n_cells} rows, got shape {matrix.shape}"
            )
        rows = matrix.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-6):
            raise ValueError("transition rows must sum to 1")
        self._transition = matrix
        self._operator = None
        self._row_cdf = None

    def _set_operator(self, operator) -> None:
        if operator.shape[0] != self.grid.n_cells:
            raise ValueError(
                f"operator must have {self.grid.n_cells} rows, got shape {operator.shape}"
            )
        self._operator = operator
        self._transition = None
        self._row_cdf = None

    def _estimation_transition(self):
        """What :func:`expectation_maximization` should consume: operator if present."""
        return self._operator if self._operator is not None else self.transition

    def output_domain_size(self) -> int:
        if self._operator is not None:
            return self._operator.shape[1]
        return self.transition.shape[1]

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size and (cells.min() < 0 or cells.max() >= self.grid.n_cells):
            raise ValueError(f"cell indices must lie in [0, {self.grid.n_cells})")
        if self._operator is not None:
            return self._operator.sample(cells, rng)
        return self._sample_from_rows(cells, rng)

    def _sample_from_rows(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Inverse-CDF sampling over the cached per-row cumulative distributions."""
        if self._row_cdf is None:
            self._row_cdf = np.cumsum(self.transition, axis=1)
        return sample_grouped_inverse_cdf(
            rng, cells, self._row_cdf.__getitem__, self._row_cdf.shape[1]
        )

    def ldp_ratio(self) -> float:
        """Worst-case probability ratio between any two rows (the LDP audit value).

        For a correctly built ε-LDP mechanism this is at most ``e^eps`` up to floating
        point noise; tests assert it.  A column that mixes zero and positive entries
        means some output is possible from one cell and impossible from another — an
        *infinite* ratio, i.e. a hard ε-LDP violation — and audits as ``inf`` (columns
        that are zero everywhere carry no information and are ignored).
        """
        if self._operator is not None and self._transition is None:
            return self._operator.ldp_ratio()
        matrix = self.transition
        col_min = matrix.min(axis=0)
        col_max = matrix.max(axis=0)
        if np.any((col_min <= 0.0) & (col_max > 0.0)):
            return float("inf")
        active = col_min > 0.0
        if not active.any():
            return float("inf")
        return float((col_max[active] / col_min[active]).max())


@dataclass(frozen=True)
class ShardAggregate:
    """The mergeable partial state of a :class:`StreamingAggregator`.

    A plain value object (three arrays/counters, no mechanism reference) so worker
    processes can ship their shard's aggregate back to the coordinator cheaply; the
    coordinator folds any number of these into one aggregator with
    :meth:`StreamingAggregator.merge` before a single estimation solve.

    The class is also the point-mechanism implementation of the *functional*
    mergeable-aggregate protocol (:mod:`repro.streaming.protocol`):
    :meth:`merged` / :meth:`subtracted` return new aggregates and are exact
    inverses of each other (integer-valued float counts below ``2**53`` add and
    subtract exactly), and :meth:`scaled` / :meth:`clamped` supply the decayed
    sliding-window variant.  ``n_users`` stays an ``int`` whenever its value is
    integral and becomes a ``float`` only for decay-weighted aggregates.
    """

    noisy_counts: np.ndarray
    true_cell_counts: np.ndarray
    n_users: int | float

    def __post_init__(self) -> None:
        object.__setattr__(self, "noisy_counts", np.asarray(self.noisy_counts, dtype=float))
        object.__setattr__(self, "true_cell_counts", np.asarray(self.true_cell_counts, dtype=float))
        users = float(self.n_users)
        object.__setattr__(self, "n_users", int(users) if users.is_integer() else users)

    def _check_algebra(self, other: "ShardAggregate", verb: str) -> None:
        if not isinstance(other, ShardAggregate):
            raise TypeError(f"{verb} expects a ShardAggregate, got {type(other).__name__}")
        if other.noisy_counts.shape != self.noisy_counts.shape:
            raise ValueError(
                f"cannot {verb} aggregates: noisy-count histograms have shapes "
                f"{other.noisy_counts.shape} vs {self.noisy_counts.shape} "
                "(different mechanisms or output domains?)"
            )
        if other.true_cell_counts.shape != self.true_cell_counts.shape:
            raise ValueError(
                f"cannot {verb} aggregates: true-cell histograms have shapes "
                f"{other.true_cell_counts.shape} vs {self.true_cell_counts.shape} "
                "(different grids?)"
            )

    def merged(self, other: "ShardAggregate") -> "ShardAggregate":
        """A new aggregate folding ``other``'s counts in (commutative/associative)."""
        self._check_algebra(other, "merge")
        return ShardAggregate(
            noisy_counts=self.noisy_counts + other.noisy_counts,
            true_cell_counts=self.true_cell_counts + other.true_cell_counts,
            n_users=self.n_users + other.n_users,
        )

    def subtracted(self, other: "ShardAggregate") -> "ShardAggregate":
        """The exact inverse of :meth:`merged` — pure count algebra, no guard.

        ``a.merged(b).subtracted(b)`` is bit-identical to ``a``.  Unlike
        :meth:`StreamingAggregator.subtract` this does not reject counts that were
        never merged: the decayed sliding window legitimately subtracts scaled
        epochs from decayed totals, where tiny negative float residues are
        expected and cleaned up by :meth:`clamped`.
        """
        self._check_algebra(other, "subtract")
        return ShardAggregate(
            noisy_counts=self.noisy_counts - other.noisy_counts,
            true_cell_counts=self.true_cell_counts - other.true_cell_counts,
            n_users=self.n_users - other.n_users,
        )

    def scaled(self, factor: float) -> "ShardAggregate":
        """A new aggregate with every count multiplied by ``factor`` (decay weight)."""
        return ShardAggregate(
            noisy_counts=self.noisy_counts * factor,
            true_cell_counts=self.true_cell_counts * factor,
            n_users=self.n_users * factor,
        )

    def clamped(self) -> "ShardAggregate":
        """A new aggregate with negative float-decay residues clamped to zero."""
        return ShardAggregate(
            noisy_counts=np.clip(self.noisy_counts, 0.0, None),
            true_cell_counts=np.clip(self.true_cell_counts, 0.0, None),
            n_users=max(self.n_users, 0),
        )


class StreamingAggregator:
    """Chunked report ingestion — Algorithm 1's aggregate step without the memory.

    The aggregator holds only the running noisy-report histogram, the running true
    cell histogram (for utility evaluation) and a user counter, so arbitrarily many
    reports can be ingested in shards.  All shards share one generator: with a fixed
    seed the accumulated histogram is identical to a single batch run over the
    concatenated shards.

    Aggregators are also *mergeable*: :meth:`state` snapshots the partial counts as a
    :class:`ShardAggregate`, :meth:`merge` folds another aggregator's (or shard's)
    counts into this one and :meth:`subtract` removes them again (the exact inverse;
    the sliding windows in :mod:`repro.streaming` maintain the same count algebra).
    Because all the state is additive histograms, privatizing shards on independent
    workers and merging is exactly equivalent to one sequential pass — the
    foundation of :class:`repro.core.parallel.ParallelPipeline`.

    Examples
    --------
    >>> aggregator = mechanism.streaming_aggregator(seed=0)      # doctest: +SKIP
    >>> for shard in shards:                                     # doctest: +SKIP
    ...     aggregator.add_points(shard)
    >>> report = aggregator.finalize()                           # doctest: +SKIP
    """

    def __init__(self, mechanism: SpatialMechanism, seed=None) -> None:
        self.mechanism = mechanism
        self._rng = ensure_rng(seed)
        self.noisy_counts = np.zeros(mechanism.output_domain_size(), dtype=float)
        self.true_cell_counts = np.zeros(mechanism.grid.n_cells, dtype=float)
        self.n_users = 0

    def add_points(self, points: np.ndarray) -> "StreamingAggregator":
        """Bucketise one shard of raw points and ingest the resulting cells."""
        pts = np.asarray(points, dtype=float)
        return self.add_cells(self.mechanism.grid.point_to_cell(pts))

    def add_cells(self, cells: np.ndarray) -> "StreamingAggregator":
        """Privatize one shard of true cell indices and fold it into the histogram."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return self
        reports = self.mechanism.privatize_cells(cells, seed=self._rng)
        self.noisy_counts += np.bincount(
            reports,
            minlength=self.noisy_counts.shape[0],
        ).astype(float)
        self.true_cell_counts += np.bincount(
            cells,
            minlength=self.true_cell_counts.shape[0],
        ).astype(float)
        self.n_users += int(cells.shape[0])
        return self

    def state(self) -> ShardAggregate:
        """Snapshot the partial counts as a picklable :class:`ShardAggregate`."""
        return ShardAggregate(
            noisy_counts=self.noisy_counts.copy(),
            true_cell_counts=self.true_cell_counts.copy(),
            n_users=self.n_users,
        )

    def _check_mergeable(
        self, other: "StreamingAggregator | ShardAggregate", verb: str
    ) -> ShardAggregate:
        if isinstance(other, StreamingAggregator):
            other = other.state()
        if not isinstance(other, ShardAggregate):
            raise TypeError(
                f"{verb} expects a StreamingAggregator or ShardAggregate, "
                f"got {type(other).__name__}"
            )
        if other.noisy_counts.shape != self.noisy_counts.shape:
            raise ValueError(
                f"cannot {verb}: noisy-count histograms have shapes "
                f"{other.noisy_counts.shape} vs {self.noisy_counts.shape} "
                "(different mechanisms or output domains?)"
            )
        if other.true_cell_counts.shape != self.true_cell_counts.shape:
            raise ValueError(
                f"cannot {verb}: true-cell histograms have shapes "
                f"{other.true_cell_counts.shape} vs {self.true_cell_counts.shape} "
                "(different grids?)"
            )
        return other

    def merge(self, other: "StreamingAggregator | ShardAggregate") -> "StreamingAggregator":
        """Fold another aggregator's (or shard snapshot's) counts into this one.

        Merging is commutative and associative on the counts, so any tree of
        per-shard aggregators collapses to the same histogram a single sequential
        pass over all shards would have produced.
        """
        other = self._check_mergeable(other, "merge")
        self.noisy_counts += other.noisy_counts
        self.true_cell_counts += other.true_cell_counts
        self.n_users += other.n_users
        return self

    def subtract(self, other: "StreamingAggregator | ShardAggregate") -> "StreamingAggregator":
        """Remove a previously merged shard's counts — the exact inverse of :meth:`merge`.

        Because every count is an integer-valued float (``bincount`` output) well
        below 2**53, float addition and subtraction of shard histograms are exact:
        ``merge(s)`` followed by ``subtract(s)`` restores the aggregator's state bit
        for bit.  This is the public inverse for callers retiring a shard from a
        long-lived aggregator; :class:`repro.streaming.WindowedAggregator` applies
        the same exact count algebra internally (on plain arrays, so hard windows
        and exponential decay share one slide path) and property-tests its
        equivalence to ``merge``/``subtract`` round trips.

        Subtracting counts that were never merged is detected (some histogram bin or
        the user counter would go negative) and rejected.
        """
        other = self._check_mergeable(other, "subtract")
        if (
            other.n_users > self.n_users
            or np.any(other.noisy_counts > self.noisy_counts)
            or np.any(other.true_cell_counts > self.true_cell_counts)
        ):
            raise ValueError(
                "cannot subtract counts that were never merged: some bin of the "
                "shard's histograms exceeds the aggregator's running counts"
            )
        self.noisy_counts -= other.noisy_counts
        self.true_cell_counts -= other.true_cell_counts
        self.n_users -= other.n_users
        return self

    def finalize(self) -> MechanismReport:
        """Post-process the accumulated histogram into a distribution estimate.

        The report gets a snapshot of the histogram, so checkpointing mid-stream and
        then ingesting further shards leaves earlier reports untouched.
        """
        noisy_counts = self.noisy_counts.copy()
        estimate = self.mechanism.estimate(noisy_counts, n_users=self.n_users)
        return MechanismReport(estimate=estimate, noisy_counts=noisy_counts, n_users=self.n_users)
