"""The Hybrid Uniform-Exponential Mechanism (HUEM) — Definition 5 and Appendix A.

HUEM is the paper's "direct" SAM: inside the high-probability disk the reporting
density decays exponentially with the distance to the true point,
``W(z) = q * exp((1 - ||z|| / b) * eps)``, and outside it is flat at ``q``.  The
continuous sampler lives in :mod:`repro.core.sam` (:class:`~repro.core.sam.ExponentialWave`);
this module provides the grid-discretised mechanism used in the experiments.

Appendix A discretises HUEM by splitting the disk into ``b_hat`` fan rings, assigning
each ring the wave value at its inner radius, and weighting cells crossed by a ring
boundary by the areas of their two parts.  We implement that as a cell-wise numeric
integration of the continuous wave (a regular sub-sample per cell), which converges to
the same assignment and avoids ring-boundary special cases; the relative cell masses
stay within ``[1, e^eps]`` so ε-LDP is preserved exactly as in the fan-ring scheme.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.dam import (
    Backend,
    DiskOutputDomain,
    PostProcess,
    _build_backend_operator,
)
from repro.core.domain import GridDistribution, GridSpec
from repro.core.estimator import TransitionMatrixMechanism
from repro.core.geometry import (
    enumerate_disk_cells,
    farthest_corner_distance,
    nearest_corner_distance,
    shrunken_rectangle_area,
)
from repro.core.postprocess import (
    adaptive_smoothing_strength,
    expectation_maximization,
    make_grid_smoother,
    matrix_inversion_estimate,
)
from repro.core.radius import grid_radius


def huem_cell_masses(b_hat: int, epsilon: float, *, subsamples: int = 7) -> np.ndarray:
    """Relative reporting mass of every disk-neighbourhood cell under discrete HUEM.

    For each cell of the disk neighbourhood the continuous HUEM wave (relative to the
    baseline ``q``) is averaged over a ``subsamples x subsamples`` midpoint lattice
    inside the cell.  Points farther than ``b_hat`` from the centre contribute the
    baseline value 1, so mixed border cells are weighted by their inside/outside parts
    exactly as in the Appendix-A fan-ring construction.

    Returns an ``(k, 3)`` array of ``(dx, dy, mass)`` with ``mass`` in ``[1, e^eps]``.
    """
    if b_hat < 1:
        raise ValueError(f"b_hat must be >= 1, got {b_hat}")
    if subsamples < 1:
        raise ValueError(f"subsamples must be >= 1, got {subsamples}")
    cells = enumerate_disk_cells(b_hat, use_shrinkage=True)
    # Midpoint lattice offsets inside a unit cell, centred on the cell centre.
    ticks = (np.arange(subsamples) + 0.5) / subsamples - 0.5
    sub_x, sub_y = np.meshgrid(ticks, ticks)
    sub_x = sub_x.reshape(-1)
    sub_y = sub_y.reshape(-1)
    rows = []
    for cell in cells:
        radii = np.hypot(cell.dx + sub_x, cell.dy + sub_y)
        relative = np.where(radii <= b_hat, np.exp((1.0 - radii / b_hat) * epsilon), 1.0)
        rows.append([cell.dx, cell.dy, float(relative.mean())])
    return np.array(rows, dtype=float)


def huem_cell_masses_fan_rings(b_hat: int, epsilon: float) -> np.ndarray:
    """Appendix-A fan-ring discretisation of HUEM.

    The disk is split into ``b_hat`` fan rings by the concentric circles of integer
    radius ``1 .. b_hat``.  A cell lying entirely inside ring ``j`` (between circles
    ``j - 1`` and ``j``) is reported with the relative mass
    ``exp((1 - (j - 1) / b_hat) * eps)``; a cell split by circle ``j`` is weighted by
    the areas of its two parts, with the inner part approximated by the same shrunken
    rectangle as in Theorem VI.1.  Cells split by the outermost circle blend with the
    baseline mass 1.

    Returns an ``(k, 3)`` array of ``(dx, dy, mass)`` compatible with
    :func:`repro.core.dam.build_disk_transition`.
    """
    if b_hat < 1:
        raise ValueError(f"b_hat must be >= 1, got {b_hat}")
    epsilon = float(epsilon)

    def ring_mass(ring_index: int) -> float:
        """Relative reporting mass of ring ``ring_index`` (1-based); beyond the disk -> 1."""
        if ring_index > b_hat:
            return 1.0
        return float(np.exp((1.0 - (ring_index - 1) / b_hat) * epsilon))

    rows = []
    for cell in enumerate_disk_cells(b_hat, use_shrinkage=True):
        near = nearest_corner_distance(cell.dx, cell.dy)
        far = farthest_corner_distance(cell.dx, cell.dy)
        inner_ring = int(np.floor(near)) + 1
        outer_ring = int(np.floor(min(far, b_hat + 0.999))) + 1
        if cell.dx == 0 and cell.dy == 0:
            mass = ring_mass(1)
        elif outer_ring == inner_ring:
            mass = ring_mass(inner_ring)
        else:
            # Split by the circle of radius `inner_ring`: the inner part keeps the
            # inner ring's mass, the remainder the next ring's (or the baseline).
            boundary = float(inner_ring)
            inner_area = shrunken_rectangle_area(cell.dx, cell.dy, boundary)
            mass = inner_area * ring_mass(inner_ring) + (1.0 - inner_area) * ring_mass(
                inner_ring + 1
            )
        rows.append([cell.dx, cell.dy, mass])
    return np.array(rows, dtype=float)


class DiscreteHUEM(TransitionMatrixMechanism):
    """The grid-discretised Hybrid Uniform-Exponential Mechanism.

    Construction mirrors :class:`~repro.core.dam.DiscreteDAM`: a transition matrix over
    the extended output domain is built from per-offset masses, users are randomised by
    one categorical draw from their row, and estimation runs EM (optionally with the
    2-D smoothing step).
    """

    name = "HUEM"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        b_hat: int | None = None,
        postprocess: PostProcess = "ems",
        em_iterations: int = 200,
        smoothing_strength: float | None = None,
        subsamples: int = 7,
        discretisation: str = "integral",
        backend: Backend = "operator",
    ) -> None:
        super().__init__(grid, epsilon)
        if postprocess not in ("ems", "em", "ls"):
            raise ValueError(f"unknown postprocess mode {postprocess!r}")
        if discretisation not in ("integral", "fan-rings"):
            raise ValueError(
                f"discretisation must be 'integral' or 'fan-rings', got {discretisation!r}"
            )
        self.postprocess = postprocess
        self.em_iterations = em_iterations
        self.smoothing_strength = smoothing_strength
        self.discretisation = discretisation
        self.backend = resolve_backend(backend)
        if b_hat is None:
            b_hat = grid_radius(epsilon, grid.d, grid.domain.side_length)
        if b_hat < 1:
            raise ValueError(f"b_hat must be >= 1, got {b_hat}")
        self.b_hat = int(b_hat)

        if discretisation == "fan-rings":
            masses = huem_cell_masses_fan_rings(self.b_hat, self.epsilon)
        else:
            masses = huem_cell_masses(self.b_hat, self.epsilon, subsamples=subsamples)
        operator = _build_backend_operator(backend, grid, self.b_hat, masses)
        if backend == "dense":
            self._set_transition(operator.to_dense())
        else:
            self._set_operator(operator)
        self.kernel_build = operator.kernel_build if backend == "native" else None
        self.output_domain = DiskOutputDomain(
            d=grid.d, b_hat=self.b_hat, cells=operator.output_cells
        )
        self.q_hat = float(1.0 / operator.normaliser)
        self.max_probability = float(masses[:, 2].max() / operator.normaliser)

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        counts = np.asarray(noisy_counts, dtype=float)
        if self.postprocess == "ls":
            theta = matrix_inversion_estimate(self.transition, counts)
        else:
            strength = (
                self.smoothing_strength
                if self.smoothing_strength is not None
                else adaptive_smoothing_strength(self.grid.n_cells, counts.sum())
            )
            smoother = (
                make_grid_smoother(self.grid.d, strength=strength)
                if self.postprocess == "ems" and self.grid.d > 1 and strength > 0
                else None
            )
            result = expectation_maximization(
                self._estimation_transition(),
                counts,
                max_iterations=self.em_iterations,
                smoothing=smoother,
            )
            theta = result.estimate
        return GridDistribution.from_flat(self.grid, theta)
