"""The paper's primary contribution: SAM, HUEM and the Disk Area Mechanism.

Public surface:

* domain model — :class:`SpatialDomain`, :class:`GridSpec`, :class:`GridDistribution`;
* continuous mechanisms — :class:`DiskWave`, :class:`ExponentialWave`,
  :class:`ContinuousSAM`;
* discrete mechanisms — :class:`DiscreteDAM`, :class:`DiscreteDAMNoShrink`,
  :class:`DiscreteHUEM`, :class:`GridAreaResponse`;
* structured engine — :class:`DiskTransitionOperator`, :func:`build_disk_operator`,
  :class:`StreamingAggregator`;
* radius selection — :func:`optimal_radius`, :func:`grid_radius`;
* post-processing — :func:`expectation_maximization`, :func:`matrix_inversion_estimate`;
* end-to-end pipeline — :class:`DAMPipeline`, :func:`estimate_spatial_distribution`,
  and the shard-parallel :class:`ParallelPipeline`.
"""

from repro.core.backend import VALID_BACKENDS, WALK_BACKENDS, resolve_backend
from repro.core.dam import DiscreteDAM, DiscreteDAMNoShrink, DiskOutputDomain
from repro.core.domain import (
    GridDistribution,
    GridSpec,
    SpatialDomain,
    marginals,
    outer_product_distribution,
)
from repro.core.estimator import (
    MechanismReport,
    ShardAggregate,
    SpatialMechanism,
    StreamingAggregator,
    TransitionMatrixMechanism,
)
from repro.core.grid_response import GridAreaResponse
from repro.core.huem import DiscreteHUEM, huem_cell_masses, huem_cell_masses_fan_rings
from repro.core.operator import (
    DenseTransitionOperator,
    DiskTransitionOperator,
    build_disk_operator,
)
from repro.core.parallel import ParallelPipeline
from repro.core.pipeline import DAMPipeline, PipelineResult, estimate_spatial_distribution
from repro.core.postprocess import (
    EMResult,
    adaptive_smoothing_strength,
    expectation_maximization,
    make_grid_smoother,
    make_line_smoother,
    matrix_inversion_estimate,
    project_to_simplex,
)
from repro.core.radius import (
    grid_radius,
    mutual_information_bound,
    numeric_optimal_radius,
    optimal_radius,
    scaled_grid_radius,
    small_epsilon_limit_radius,
)
from repro.core.sam import (
    ContinuousSAM,
    DamProbabilities,
    DiskWave,
    ExponentialWave,
    WaveFunction,
    audit_sam_conditions,
    dam_probabilities,
    huem_base_density,
    rounded_square_area,
)

__all__ = [
    "VALID_BACKENDS",
    "WALK_BACKENDS",
    "resolve_backend",
    "DiscreteDAM",
    "DiscreteDAMNoShrink",
    "DiskOutputDomain",
    "GridDistribution",
    "GridSpec",
    "SpatialDomain",
    "marginals",
    "outer_product_distribution",
    "MechanismReport",
    "ShardAggregate",
    "SpatialMechanism",
    "StreamingAggregator",
    "TransitionMatrixMechanism",
    "DenseTransitionOperator",
    "DiskTransitionOperator",
    "build_disk_operator",
    "GridAreaResponse",
    "DiscreteHUEM",
    "huem_cell_masses",
    "huem_cell_masses_fan_rings",
    "DAMPipeline",
    "ParallelPipeline",
    "PipelineResult",
    "estimate_spatial_distribution",
    "EMResult",
    "adaptive_smoothing_strength",
    "expectation_maximization",
    "make_grid_smoother",
    "make_line_smoother",
    "matrix_inversion_estimate",
    "project_to_simplex",
    "grid_radius",
    "mutual_information_bound",
    "numeric_optimal_radius",
    "optimal_radius",
    "scaled_grid_radius",
    "small_epsilon_limit_radius",
    "ContinuousSAM",
    "DamProbabilities",
    "DiskWave",
    "ExponentialWave",
    "WaveFunction",
    "audit_sam_conditions",
    "dam_probabilities",
    "huem_base_density",
    "rounded_square_area",
]
