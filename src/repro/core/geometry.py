"""Disk-versus-grid geometry: the paper's Theorems VI.1 to VI.4.

When DAM is discretised onto a ``d x d`` grid with integer high-probability radius
``b_hat`` (in cell units), the output cells around an input cell fall into three
classes (Figure 4 of the paper):

* **pure high** (``Ap``)   — the cell centre lies inside or on the circle of radius
  ``b_hat``;
* **mixed** (``Am``)       — the circle crosses the cell but the centre is outside; the
  paper splits such a cell into a high-probability *shrunken rectangle* and a
  low-probability remainder (Theorem VI.1);
* **pure low** (``Aq``)    — every other cell of the output domain.

This module provides both the closed-form counting results of Theorems VI.2–VI.4 and a
direct geometric enumeration (:func:`enumerate_disk_cells`), which the mechanisms use
and which the tests cross-check against the closed forms.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


class CellClass(enum.Enum):
    """Classification of an output cell relative to the high-probability disk."""

    PURE_HIGH = "pure_high"
    MIXED = "mixed"
    PURE_LOW = "pure_low"


@dataclass(frozen=True)
class DiskCell:
    """One output cell of the disk neighbourhood of an input cell.

    Attributes
    ----------
    dx, dy:
        Integer offset of the cell centre from the input cell centre, in cell units.
    cell_class:
        Pure high, mixed, or pure low.
    high_area:
        Fraction of the unit cell reported with the *high* probability density.
        1 for pure-high cells, the shrunken-rectangle area for mixed cells, 0 otherwise.
    """

    dx: int
    dy: int
    cell_class: CellClass
    high_area: float


def center_distance(dx: float, dy: float) -> float:
    """Euclidean distance from the input cell centre to an offset cell centre."""
    return math.hypot(dx, dy)


def nearest_corner_distance(dx: float, dy: float) -> float:
    """Distance from the input cell centre to the closest point of the offset cell.

    The offset cell is the unit square centred at ``(dx, dy)``.
    """
    nx = max(abs(dx) - 0.5, 0.0)
    ny = max(abs(dy) - 0.5, 0.0)
    return math.hypot(nx, ny)


def farthest_corner_distance(dx: float, dy: float) -> float:
    """Distance from the input cell centre to the farthest point of the offset cell."""
    return math.hypot(abs(dx) + 0.5, abs(dy) + 0.5)


def classify_offset(dx: int, dy: int, b_hat: float) -> CellClass:
    """Classify a cell offset relative to the circle of radius ``b_hat``.

    Follows the paper's definitions in Section VI-A: the cell is *pure high* when its
    centre is inside or on the circle, *mixed* when the circle crosses the cell but the
    centre is outside, *pure low* otherwise.
    """
    b_hat = check_positive(b_hat, "b_hat")
    if center_distance(dx, dy) <= b_hat:
        return CellClass.PURE_HIGH
    if nearest_corner_distance(dx, dy) < b_hat:
        return CellClass.MIXED
    return CellClass.PURE_LOW


def shrunken_rectangle_area(x: int, y: int, b_hat: float) -> float:
    """Area of the shrunken high-probability rectangle of a mixed cell (Theorem VI.1).

    ``(x, y)`` is the integer index of the mixed cell relative to the input cell and
    ``b_hat`` the high-probability radius in cell units.  The paper's closed form is

    ``S = 4 (delta*x + 1/2)(delta*y + 1/2)``  with  ``delta = b_hat / sqrt(x^2+y^2) - 1``.

    The value is clipped into ``[0, 1]`` — the approximation can slightly exceed the
    unit-cell area for cells whose centre is barely outside the circle.
    """
    b_hat = check_positive(b_hat, "b_hat")
    r = math.hypot(x, y)
    if r == 0:
        return 1.0
    delta = b_hat / r - 1.0
    area = 4.0 * (delta * abs(x) + 0.5) * (delta * abs(y) + 0.5)
    return float(min(max(area, 0.0), 1.0))


def diagonal_shrunken_area(b_hat: int) -> float:
    """Shrunken area of the diagonal (``pi/4`` direction) border cell — Eq. (14).

    With ``b' = b_hat / sqrt(2) - 1/2`` and ``b_diag = floor(b')``, the diagonal cell at
    index ``(b_diag + 1, b_diag + 1)`` is crossed by the circle.  Its high-probability
    part is ``4 (b' - b_diag)^2`` when ``b' - b_diag < 1/2`` and the whole cell otherwise.
    """
    if b_hat < 1:
        raise ValueError(f"b_hat must be >= 1, got {b_hat}")
    b_prime = b_hat / math.sqrt(2.0) - 0.5
    b_diag = math.floor(b_prime)
    frac = b_prime - b_diag
    if frac < 0.5:
        return float(4.0 * frac * frac)
    return 1.0


def circle_cell_overlap_area(dx: float, dy: float, b: float, *, resolution: int = 400) -> float:
    """Exact (numerically integrated) overlap of the disk of radius ``b`` with a cell.

    The cell is the unit square centred at ``(dx, dy)``.  This is *not* what the paper
    uses (it uses the shrunken-rectangle approximation of Theorem VI.1); it exists so
    tests and ablations can quantify the approximation error.
    """
    b = check_positive(b, "b")
    x_lo, x_hi = dx - 0.5, dx + 0.5
    y_lo, y_hi = dy - 0.5, dy + 0.5
    if nearest_corner_distance(dx, dy) >= b:
        return 0.0
    if farthest_corner_distance(dx, dy) <= b:
        return 1.0
    xs = np.linspace(max(x_lo, -b), min(x_hi, b), resolution)
    if xs.size < 2:
        return 0.0
    half_chord = np.sqrt(np.clip(b * b - xs * xs, 0.0, None))
    upper = np.clip(half_chord, y_lo, y_hi)
    lower = np.clip(-half_chord, y_lo, y_hi)
    return float(np.trapezoid(np.clip(upper - lower, 0.0, None), xs))


def enumerate_disk_cells(b_hat: int, *, use_shrinkage: bool = True) -> list[DiskCell]:
    """Enumerate all cells of the disk neighbourhood of an input cell.

    Returns every offset ``(dx, dy)`` whose cell is pure-high or mixed with respect to
    the circle of radius ``b_hat`` centred at the input cell centre, together with the
    high-probability area of each.  With ``use_shrinkage=False`` (the paper's DAM-NS
    ablation) mixed cells carry zero high-probability area.
    """
    if b_hat < 1:
        raise ValueError(f"b_hat must be a positive integer, got {b_hat}")
    cells: list[DiskCell] = []
    reach = int(math.ceil(b_hat)) + 1
    for dy in range(-reach, reach + 1):
        for dx in range(-reach, reach + 1):
            cls = classify_offset(dx, dy, b_hat)
            if cls is CellClass.PURE_LOW:
                continue
            if cls is CellClass.PURE_HIGH:
                high = 1.0
            elif use_shrinkage:
                if abs(dx) == abs(dy):
                    high = diagonal_shrunken_area(b_hat)
                else:
                    high = shrunken_rectangle_area(dx, dy, b_hat)
            else:
                high = 0.0
            cells.append(DiskCell(dx=dx, dy=dy, cell_class=cls, high_area=high))
    return cells


def disk_high_low_areas(b_hat: int, *, use_shrinkage: bool = True) -> tuple[float, float]:
    """Total high-probability area ``SH`` and in-disk low-probability area.

    ``SH`` counts pure-high cells at area 1 plus mixed cells at their shrunken area; the
    second return value is the low-probability remainder of the mixed cells (the part
    of the disk neighbourhood reported with probability ``q_hat``).
    """
    cells = enumerate_disk_cells(b_hat, use_shrinkage=use_shrinkage)
    high = sum(c.high_area for c in cells)
    low_in_disk = sum(1.0 - c.high_area for c in cells if c.cell_class is CellClass.MIXED)
    return float(high), float(low_in_disk)


# ---------------------------------------------------------------------------
# Closed-form counting results (Theorems VI.2 - VI.4)
# ---------------------------------------------------------------------------


def pure_low_cell_count(d: int, b_hat: int) -> int:
    """Number of pure-low-probability cells ``|Aq|`` — Theorem VI.2.

    For a square ``d x d`` input grid and integer radius ``b_hat``, the count is
    ``d^2 + 4*b_hat*d - 4*b_hat - 1`` and is the same for every input cell.
    """
    if d < 1 or b_hat < 1:
        raise ValueError(f"d and b_hat must be >= 1, got d={d}, b_hat={b_hat}")
    return d * d + 4 * b_hat * d - 4 * b_hat - 1


def octant_mixed_cell_count(b_hat: int) -> int:
    """Number of strict-octant mixed cells ``|E^(m)_{b,(0, pi/4)}|`` — Theorem VI.3."""
    if b_hat < 1:
        raise ValueError(f"b_hat must be >= 1, got {b_hat}")
    height = math.ceil(b_hat / math.sqrt(2.0) - 0.5)
    r1 = math.floor(b_hat / math.sqrt(2.0) - 0.5) * math.sqrt(2.0) + 1.0 / math.sqrt(2.0)
    r = math.sqrt(r1 * r1 + 1.0 + math.sqrt(2.0) * r1)
    return int(height - math.floor(r / b_hat))


def octant_mixed_cell_indices(b_hat: int) -> list[tuple[int, int]]:
    """Indices ``(x, y)`` of the strict-octant mixed cells — Theorem VI.3.

    The i-th mixed cell (``i`` starting at 1) has index
    ``(ceil(sqrt(b^2 - (i - 1/2)^2) - 1/2), i)``.
    """
    count = octant_mixed_cell_count(b_hat)
    indices = []
    for i in range(1, count + 1):
        x = math.ceil(math.sqrt(max(b_hat * b_hat - (i - 0.5) ** 2, 0.0)) - 0.5)
        indices.append((int(x), int(i)))
    return indices


def octant_pure_high_cell_count(b_hat: int) -> int:
    """Number of strict-octant pure-high cells ``|E^(p)_{b,(0, pi/4)}|`` — Theorem VI.4.

    The formula printed in the arXiv version of the paper counts the quarter region
    *including* the diagonal cells, which double-counts them against the explicit
    ``4 * (b_hat + b_diag + ...)`` diagonal term of the ``S_H`` expression (it yields 17
    instead of the 13 of the paper's own ``b_hat = 7`` worked example).  We therefore
    subtract the ``floor(b_hat / sqrt(2))`` pure-high diagonal cells so the closed form
    agrees with the paper's example and with the direct enumeration in
    :func:`enumerate_disk_cells`; the correction is asserted by the geometry tests.
    """
    if b_hat < 1:
        raise ValueError(f"b_hat must be >= 1, got {b_hat}")
    height = math.ceil(b_hat / math.sqrt(2.0) - 0.5)
    mixed = octant_mixed_cell_count(b_hat)
    total = 0.5 * height * (height - 2 * mixed - 1)
    for i in range(1, mixed + 1):
        total += math.ceil(math.sqrt(max(b_hat * b_hat - (i - 0.5) ** 2, 0.0)) - 0.5)
    diagonal_pure_high = math.floor(b_hat / math.sqrt(2.0))
    return int(round(total)) - diagonal_pure_high


def closed_form_high_low_areas(d: int, b_hat: int) -> tuple[float, float]:
    """Closed-form ``(SH, SL)`` built from Theorems VI.1–VI.4 (Section VI-A).

    ``SH`` is the total area reported at high probability, ``SL`` the total area
    reported at low probability (pure-low cells plus the low remainder of mixed cells).
    The direct enumeration in :func:`disk_high_low_areas` must agree with this; tests
    assert the two paths match.
    """
    diag_area = diagonal_shrunken_area(b_hat)
    b_prime = b_hat / math.sqrt(2.0) - 0.5
    b_diag = math.floor(b_prime)
    octant_indices = octant_mixed_cell_indices(b_hat)
    octant_shrunk = [shrunken_rectangle_area(x, y, b_hat) for x, y in octant_indices]
    pure_high_octant = octant_pure_high_cell_count(b_hat)

    s_high = (
        1.0
        + 4.0 * (b_hat + b_diag + diag_area)
        + 8.0 * (pure_high_octant + sum(octant_shrunk))
    )
    pure_low = pure_low_cell_count(d, b_hat)
    s_low = (
        float(pure_low)
        + 4.0 * (1.0 - diag_area if diag_area < 1.0 else 0.0)
        + 8.0 * sum(1.0 - s for s in octant_shrunk)
    )
    return float(s_high), float(s_low)


# ---------------------------------------------------------------------------
# Output-domain construction
# ---------------------------------------------------------------------------


def disk_offset_array(b_hat: int, *, use_shrinkage: bool = True) -> np.ndarray:
    """Disk-neighbourhood offsets as a structured float array ``(n, 3)``.

    Columns are ``dx``, ``dy`` and ``high_area``; used by the vectorised transition
    matrix builder in :mod:`repro.core.dam`.
    """
    cells = enumerate_disk_cells(b_hat, use_shrinkage=use_shrinkage)
    return np.array([[c.dx, c.dy, c.high_area] for c in cells], dtype=float)


def output_domain_cells(d: int, b_hat: int) -> np.ndarray:
    """All output-grid cells of the (extended) noisy domain.

    The noisy output domain is the union, over every input cell, of that cell's disk
    neighbourhood — a "rounded square" ``b_hat`` cells wider than the input grid on each
    side (Section VI-A, Figure 2).  Returns an ``(m, 2)`` integer array of
    ``(col, row)`` indices; indices may be negative or ``>= d`` for the extension ring.
    """
    if d < 1 or b_hat < 1:
        raise ValueError(f"d and b_hat must be >= 1, got d={d}, b_hat={b_hat}")
    offsets = disk_offset_array(b_hat)
    lo, hi = -b_hat - 1, d + b_hat
    cols, rows = np.meshgrid(np.arange(lo, hi + 1), np.arange(lo, hi + 1))
    cols = cols.reshape(-1)
    rows = rows.reshape(-1)
    # A candidate cell belongs to the output domain iff it lies in the disk
    # neighbourhood of its *nearest* input cell (the union over translates of a
    # column/row-convex shape).
    nearest_col = np.clip(cols, 0, d - 1)
    nearest_row = np.clip(rows, 0, d - 1)
    d_col = cols - nearest_col
    d_row = rows - nearest_row
    offset_set = {(int(o[0]), int(o[1])) for o in offsets}
    keep = np.array([(int(dc), int(dr)) in offset_set for dc, dr in zip(d_col, d_row)], dtype=bool)
    return np.column_stack([cols[keep], rows[keep]]).astype(np.int64)


def output_domain_cell_count(d: int, b_hat: int) -> int:
    """Size of the noisy output domain (consistency target for Theorem VI.2)."""
    return int(output_domain_cells(d, b_hat).shape[0])
