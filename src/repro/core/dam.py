"""The Disk Area Mechanism (DAM) — Definitions 8 and Eq. (13), plus DAM-NS.

The continuous DAM reports a point inside the disk of radius ``b`` around the true
location with constant density ``p`` and any other point of the output domain with
density ``q`` (Definition 8); it is the SAM that maximises the sliced Wasserstein
distance between the output distributions of any two inputs (Theorem V.2) and hence
the paper's headline mechanism.

The discrete DAM of Section VI works on a ``d x d`` grid with an integer radius
``b_hat``: cells whose centre falls inside the disk are reported with probability
``p_hat``, border ("mixed") cells are split into a high-probability *shrunken
rectangle* and a low-probability remainder (Theorem VI.1), and every other cell of the
extended output domain is reported with probability ``q_hat``.  Disabling shrinkage
gives the paper's DAM-NS ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.domain import GridDistribution, GridSpec
from repro.core.estimator import TransitionMatrixMechanism
from repro.core.geometry import disk_offset_array, output_domain_cells
from repro.core.operator import build_disk_operator
from repro.core.postprocess import (
    adaptive_smoothing_strength,
    expectation_maximization,
    make_grid_smoother,
    matrix_inversion_estimate,
)
from repro.core.radius import grid_radius
from repro.utils.validation import check_epsilon

PostProcess = Literal["ems", "em", "ls"]
#: Type of the ``backend=`` kwarg; the runtime gate is
#: :func:`repro.core.backend.resolve_backend` (one validator, one error message).
Backend = Literal["operator", "dense", "native"]


def _build_backend_operator(backend: str, grid: GridSpec, b_hat: int, masses: np.ndarray):
    """Build the transition operator a mechanism's ``backend`` asks for."""
    if backend == "native":
        # Imported lazily: repro.kernels sits on top of repro.core.operator.
        from repro.kernels import build_native_operator

        return build_native_operator(grid, b_hat, masses)
    return build_disk_operator(grid, b_hat, masses)


@dataclass(frozen=True)
class DiskOutputDomain:
    """The extended ("rounded square") output grid of a disk mechanism.

    The output domain is the union of disk neighbourhoods of every input cell, so its
    cells may have negative indices or indices ``>= d`` (the ``b_hat``-wide extension
    ring around the input grid).
    """

    d: int
    b_hat: int
    cells: np.ndarray  # (m, 2) integer (col, row) pairs

    @staticmethod
    def build(d: int, b_hat: int) -> "DiskOutputDomain":
        cells = output_domain_cells(d, b_hat)
        return DiskOutputDomain(d=d, b_hat=b_hat, cells=cells)

    @property
    def size(self) -> int:
        return int(self.cells.shape[0])

    def index_lookup(self) -> dict[tuple[int, int], int]:
        """Mapping from ``(col, row)`` to the flat output index."""
        return {(int(c), int(r)): i for i, (c, r) in enumerate(self.cells)}

    def contains_input_grid(self) -> bool:
        """Sanity check: every input cell must be part of the output domain."""
        lookup = self.index_lookup()
        return all(
            (col, row) in lookup for col in range(self.d) for row in range(self.d)
        )


def build_disk_transition(
    grid: GridSpec,
    b_hat: int,
    offset_masses: np.ndarray,
    *,
    low_mass: float = 1.0,
) -> tuple[np.ndarray, DiskOutputDomain, float]:
    """Build the row-stochastic transition matrix of a disk-shaped mechanism.

    Parameters
    ----------
    grid:
        Input grid specification.
    b_hat:
        Integer high-probability radius in cell units.
    offset_masses:
        ``(k, 3)`` array of ``(dx, dy, mass)`` where ``mass`` is the *relative*
        probability mass (in units of the baseline ``q``) placed on the cell at that
        offset from the true cell.  Cells of the output domain not listed here receive
        ``low_mass``.
    low_mass:
        Relative mass of a pure-low-probability cell (1.0 for DAM and HUEM).

    Returns
    -------
    (transition, output_domain, normaliser)
        ``transition`` has shape ``(d*d, m)``; ``normaliser`` is the common row
        normalisation constant (so ``q_hat = low_mass / normaliser``).

    Notes
    -----
    Because the offset masses and the output-domain size are identical for every input
    cell, all rows share one normalisation constant; this is exactly why the discrete
    mechanism keeps the ``e^eps`` probability ratio of the continuous one and therefore
    satisfies ε-LDP.

    This is the dense materialisation of the structured
    :class:`~repro.core.operator.DiskTransitionOperator`, kept for callers (ablation
    code, tests) that genuinely want the matrix; the mechanisms themselves default to
    the operator backend and never build it on the hot path.
    """
    operator = build_disk_operator(grid, b_hat, offset_masses, low_mass=low_mass)
    domain = DiskOutputDomain(d=grid.d, b_hat=b_hat, cells=operator.output_cells)
    return operator.to_dense(), domain, operator.normaliser


class DiscreteDAM(TransitionMatrixMechanism):
    """The grid-discretised Disk Area Mechanism (Algorithm 1 + Eq. 13).

    Parameters
    ----------
    grid:
        The ``d x d`` input grid.
    epsilon:
        Privacy budget.
    b_hat:
        Integer high-probability radius in cells.  Defaults to the paper's
        mutual-information-optimal radius converted to grid units
        (:func:`repro.core.radius.grid_radius`).
    use_shrinkage:
        ``True`` for the full DAM of Section VI, ``False`` for the DAM-NS ablation in
        which border cells are treated as entirely low-probability.
    postprocess:
        ``"ems"`` (EM with 2-D smoothing, the default and the paper's choice),
        ``"em"`` (plain EM) or ``"ls"`` (least squares + simplex projection).
    smoothing_strength:
        EMS smoothing strength in ``[0, 1]``; ``None`` (default) picks it adaptively
        from the report density (see
        :func:`repro.core.postprocess.adaptive_smoothing_strength`).
    backend:
        ``"operator"`` (default) keeps the randomisation as a structured
        :class:`~repro.core.operator.DiskTransitionOperator` — ``O(d^2 * k)``
        sampling and EM, no dense matrix on the hot path; ``"dense"`` materialises
        the classical ``(d^2, m)`` matrix up front (ablations, diagnostics);
        ``"native"`` installs the :class:`repro.kernels.NativeDiskOperator`
        kernel tier (fused stencil-convolution EM, whole-batch background
        sampling) — same protocol, kernel selection recorded in
        :attr:`kernel_build`.
    """

    name = "DAM"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        b_hat: int | None = None,
        use_shrinkage: bool = True,
        postprocess: PostProcess = "ems",
        em_iterations: int = 200,
        smoothing_strength: float | None = None,
        backend: Backend = "operator",
    ) -> None:
        super().__init__(grid, epsilon)
        if postprocess not in ("ems", "em", "ls"):
            raise ValueError(f"unknown postprocess mode {postprocess!r}")
        self.use_shrinkage = use_shrinkage
        self.postprocess = postprocess
        self.em_iterations = em_iterations
        self.smoothing_strength = smoothing_strength
        self.backend = resolve_backend(backend)
        if not use_shrinkage:
            self.name = "DAM-NS"
        if b_hat is None:
            b_hat = grid_radius(epsilon, grid.d, grid.domain.side_length)
        if b_hat < 1:
            raise ValueError(f"b_hat must be >= 1, got {b_hat}")
        self.b_hat = int(b_hat)

        offsets = disk_offset_array(self.b_hat, use_shrinkage=use_shrinkage)
        e_eps = np.exp(check_epsilon(epsilon))
        # Relative mass of each disk cell: high fraction at e^eps, remainder at 1.
        masses = offsets.copy()
        masses[:, 2] = offsets[:, 2] * e_eps + (1.0 - offsets[:, 2])
        operator = _build_backend_operator(backend, grid, self.b_hat, masses)
        domain = DiskOutputDomain(d=grid.d, b_hat=self.b_hat, cells=operator.output_cells)
        normaliser = operator.normaliser
        if backend == "dense":
            self._set_transition(operator.to_dense())
        else:
            self._set_operator(operator)
        #: native-tier build metadata (:class:`repro.kernels.KernelBuild`), or
        #: ``None`` for the operator/dense backends
        self.kernel_build = operator.kernel_build if backend == "native" else None
        self.output_domain = domain
        #: high/low report probabilities of Eq. (13)
        self.p_hat = float(e_eps / normaliser)
        self.q_hat = float(1.0 / normaliser)
        #: total high- and low-probability areas S_H and S_L (Section VI-A)
        self.s_high = float(offsets[:, 2].sum())
        self.s_low = float(domain.size - offsets.shape[0] + (1.0 - offsets[:, 2]).sum())

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        counts = np.asarray(noisy_counts, dtype=float)
        if self.postprocess == "ls":
            theta = matrix_inversion_estimate(self.transition, counts)
        else:
            strength = (
                self.smoothing_strength
                if self.smoothing_strength is not None
                else adaptive_smoothing_strength(self.grid.n_cells, counts.sum())
            )
            smoother = (
                make_grid_smoother(self.grid.d, strength=strength)
                if self.postprocess == "ems" and self.grid.d > 1 and strength > 0
                else None
            )
            result = expectation_maximization(
                self._estimation_transition(),
                counts,
                max_iterations=self.em_iterations,
                smoothing=smoother,
            )
            theta = result.estimate
        return GridDistribution.from_flat(self.grid, theta)


class DiscreteDAMNoShrink(DiscreteDAM):
    """Convenience subclass for the DAM-NS ablation (no border-cell shrinkage)."""

    name = "DAM-NS"

    def __init__(self, grid: GridSpec, epsilon: float, **kwargs) -> None:
        kwargs.pop("use_shrinkage", None)
        super().__init__(grid, epsilon, use_shrinkage=False, **kwargs)
