"""Parallel sharded execution of the DAM pipeline.

:class:`~repro.core.pipeline.DAMPipeline` processes every user in one process.  This
module scales the privatization stage across a process pool while keeping the result
*bit-identical* to the serial path:

* the user population is split into shards;
* each worker privatizes its shards with a deterministically derived per-shard
  generator and returns only the additive partial state (a
  :class:`~repro.core.estimator.ShardAggregate` — two histograms and a counter);
* the coordinator merges the shard aggregates in shard order and runs a single EM
  solve on the combined histogram, exactly as the serial pipeline would.

Two per-shard RNG derivations are supported:

``"stream"`` (default)
    Every worker rebuilds the *same* base generator state and advances it by the
    number of users in all preceding shards.  Since every batch sampler in the
    library consumes exactly one ``rng.random()`` double per user in input order
    (see :meth:`repro.core.operator.DiskTransitionOperator.sample`), the shards
    jointly consume the very stream a serial pass would have — so the reports, the
    histograms and therefore the estimate are bit-identical to
    :meth:`DAMPipeline.run` / :meth:`DAMPipeline.run_stream` with the same seed,
    for any shard size and any worker count.  Requires a bit generator with
    ``advance`` (PCG64/Philox — i.e. everything ``default_rng`` produces).

``"spawn"``
    Each shard gets an independent child of the master :class:`numpy.random.SeedSequence`
    (via :func:`repro.utils.rng.spawn_seed_sequences`).  The result is deterministic
    in the seed and the shard plan and invariant to the worker count, but not equal
    to the serial shared-stream result.  Works with any bit generator.

Workers are plain processes (``concurrent.futures.ProcessPoolExecutor``); each builds
its mechanism once from a small picklable spec in the pool initializer, so shipping
work to a shard costs one point array and one RNG payload, and shipping the result
back costs two histograms.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.core.dam import Backend, PostProcess
from repro.core.domain import GridDistribution, SpatialDomain
from repro.core.estimator import ShardAggregate
from repro.core.pipeline import DAMPipeline, MechanismName, PipelineResult
from repro.utils.rng import (
    ensure_rng,
    generator_from_state,
    generator_state,
    spawn_seed_sequences,
    supports_stream_splitting,
)

RngMode = Literal["stream", "spawn"]

#: Default number of users per shard.  Large enough that per-shard Python overhead
#: (pickling, one bincount) is negligible, small enough that a handful of shards
#: exist even for modest datasets so every worker gets something to do.
DEFAULT_SHARD_SIZE = 50_000


@dataclass(frozen=True)
class _PipelineSpec:
    """Everything a worker needs to rebuild the pipeline — tiny and picklable."""

    bounds: tuple[float, float, float, float]
    domain_name: str
    d: int
    epsilon: float
    mechanism: MechanismName
    b_hat: int | None
    postprocess: PostProcess
    backend: Backend

    def build(self) -> "_PipelineShardRunner":
        domain = SpatialDomain(*self.bounds, name=self.domain_name)
        return _PipelineShardRunner(
            DAMPipeline(
                domain,
                self.d,
                self.epsilon,
                mechanism=self.mechanism,
                b_hat=self.b_hat,
                postprocess=self.postprocess,
                backend=self.backend,
            )
        )


@dataclass(frozen=True)
class _ShardTask:
    """One unit of work: a filtered point shard plus its RNG derivation payload."""

    points: np.ndarray
    #: ``("stream", base_state, offset)`` or ``("spawn", seed_sequence)``.
    rng_payload: tuple


def _shard_rng(payload: tuple) -> np.random.Generator:
    if payload[0] == "stream":
        _, base_state, offset = payload
        return generator_from_state(base_state, advance_by=offset)
    _, child = payload
    return np.random.default_rng(child)


def _privatize_shard(pipeline: DAMPipeline, task: _ShardTask) -> ShardAggregate:
    """Privatize one shard and return its additive partial state."""
    aggregator = pipeline.mechanism.streaming_aggregator(seed=_shard_rng(task.rng_payload))
    aggregator.add_points(task.points)
    return aggregator.state()


@dataclass
class _PipelineShardRunner:
    """Worker context of the DAM pipeline: one built pipeline, one shard at a time."""

    pipeline: DAMPipeline

    def run_shard(self, task: _ShardTask) -> ShardAggregate:
        return _privatize_shard(self.pipeline, task)


# Worker-process global, installed once per worker by the pool initializer so the
# (comparatively expensive) per-worker context construction is not repeated per shard.
_WORKER_CONTEXT = None


def _shard_worker_init(spec) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = spec.build()


def _shard_worker_run(task):
    assert _WORKER_CONTEXT is not None, "shard pool initializer did not run"
    return _WORKER_CONTEXT.run_shard(task)


def run_sharded(spec, tasks: Sequence, workers: int, *, inline_context=None) -> list:
    """Map shard tasks to their mergeable aggregates, optionally on a process pool.

    The generic fan-out protocol shared by :class:`ParallelPipeline` and the
    trajectory engine (:class:`repro.trajectory.engine.TrajectoryEngine`):

    * ``spec`` is a small picklable value object whose ``build()`` constructs the
      per-worker context exactly once (in the pool initializer);
    * the context's ``run_shard(task)`` maps one task to its additive partial
      state (a :class:`~repro.core.estimator.ShardAggregate` or any other
      mergeable aggregate), which is all that travels back to the coordinator.

    With ``workers <= 1`` or a single task the same plan runs inline without
    subprocesses; ``inline_context`` lets callers reuse an already-built context
    on that path instead of paying ``spec.build()`` again.
    """
    if not tasks:
        return []
    n_workers = min(int(workers), len(tasks))
    if n_workers <= 1:
        context = inline_context if inline_context is not None else spec.build()
        return [context.run_shard(task) for task in tasks]
    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_shard_worker_init,
        initargs=(spec,),
    ) as pool:
        return list(pool.map(_shard_worker_run, tasks))


class ParallelPipeline:
    """Shard-parallel Algorithm 1: privatize on a worker pool, solve EM once.

    Parameters
    ----------
    domain, d, epsilon, mechanism, b_hat, postprocess, backend:
        Exactly as for :class:`~repro.core.pipeline.DAMPipeline`.
    workers:
        Size of the process pool.  ``None`` uses ``os.cpu_count()``; ``1`` executes
        the same sharded plan inline (no subprocesses), which is useful for tests
        and single-core machines.
    shard_size:
        Number of users per shard for :meth:`run`.  :meth:`run_stream` shards at
        the caller's chunk boundaries instead.
    rng_mode:
        ``"stream"`` (bit-identical to the serial pipeline, default) or ``"spawn"``
        (independent per-shard streams) — see the module docstring.
    """

    def __init__(
        self,
        domain: SpatialDomain,
        d: int,
        epsilon: float,
        *,
        mechanism: MechanismName = "dam",
        b_hat: int | None = None,
        postprocess: PostProcess = "ems",
        backend: Backend = "operator",
        workers: int | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        rng_mode: RngMode = "stream",
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if rng_mode not in ("stream", "spawn"):
            raise ValueError(f"rng_mode must be 'stream' or 'spawn', got {rng_mode!r}")
        self.workers = int(workers)
        self.shard_size = int(shard_size)
        self.rng_mode: RngMode = rng_mode
        self.pipeline = DAMPipeline(
            domain,
            d,
            epsilon,
            mechanism=mechanism,
            b_hat=b_hat,
            postprocess=postprocess,
            backend=backend,
        )
        self._spec = _PipelineSpec(
            bounds=domain.bounds,
            domain_name=domain.name,
            d=d,
            epsilon=epsilon,
            mechanism=mechanism,
            b_hat=self.pipeline.b_hat,
            postprocess=postprocess,
            backend=backend,
        )

    # ------------------------------------------------------------ public API
    @property
    def domain(self) -> SpatialDomain:
        return self.pipeline.domain

    @property
    def grid(self):
        return self.pipeline.grid

    @property
    def b_hat(self) -> int:
        return self.pipeline.b_hat

    def run(self, points: np.ndarray, seed=None) -> PipelineResult:
        """Parallel Algorithm 1 over one point set.

        In ``"stream"`` mode the result is bit-identical to
        ``DAMPipeline.run(points, seed=seed)`` regardless of ``workers`` and
        ``shard_size``.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
        inside = self.domain.contains(pts)
        dropped = int((~inside).sum())
        pts = pts[inside]
        n_shards = max(1, -(-pts.shape[0] // self.shard_size))
        shards = np.array_split(pts, n_shards)
        return self._execute(shards, dropped, seed)

    def run_stream(self, chunks: Iterable[np.ndarray], seed=None) -> PipelineResult:
        """Parallel Algorithm 1 over an iterable of point-array shards.

        Each chunk becomes one shard.  In ``"stream"`` mode the result is
        bit-identical to ``DAMPipeline.run_stream(chunks, seed=seed)``; note that
        unlike the serial version the chunks are materialised into a shard list
        before dispatch, so peak memory is the total filtered point count.
        """
        shards: list[np.ndarray] = []
        dropped = 0
        for chunk in chunks:
            pts = np.asarray(chunk, dtype=float)
            if pts.ndim != 2 or pts.shape[1] != 2:
                raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
            inside = self.domain.contains(pts)
            dropped += int((~inside).sum())
            shards.append(pts[inside])
        return self._execute(shards, dropped, seed)

    # -------------------------------------------------------------- plumbing
    def _rng_payloads(self, shards: Sequence[np.ndarray], seed) -> list[tuple]:
        if self.rng_mode == "spawn":
            children = spawn_seed_sequences(seed, len(shards))
            return [("spawn", child) for child in children]
        rng = ensure_rng(seed)
        if not supports_stream_splitting(rng):
            raise ValueError(
                f"bit generator {type(rng.bit_generator).__name__} does not support "
                "advance(); pass rng_mode='spawn' or a PCG64-backed seed"
            )
        base_state = generator_state(rng)
        sizes = [int(shard.shape[0]) for shard in shards]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        # Leave the caller's generator exactly where a serial pass (one double per
        # user) would have left it, so downstream draws match the serial schedule.
        rng.bit_generator.advance(int(offsets[-1]))
        return [("stream", base_state, int(offset)) for offset in offsets[:-1]]

    def aggregate(self, points: np.ndarray, seed=None):
        """Privatize one point set on the pool and return only the merged counts.

        Same sharded fan-out as :meth:`run` (and the same bit-identical RNG
        guarantees), but the result is the additive
        :class:`~repro.core.estimator.ShardAggregate` *before* any estimation solve.
        This is the ingestion primitive of the streaming service
        (:class:`repro.streaming.StreamingEstimationService`), which folds each
        epoch's aggregate into its window and runs its own warm-started solve —
        solving here per epoch would throw the warm start away.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
        pts = pts[self.domain.contains(pts)]
        n_shards = max(1, -(-pts.shape[0] // self.shard_size))
        shards = np.array_split(pts, n_shards)
        return self._merge_shards(shards, seed).state()

    def _merge_shards(self, shards: list[np.ndarray], seed):
        """Fan the shards out, merge the partial states into one fresh aggregator."""
        tasks = [
            _ShardTask(points=shard, rng_payload=payload)
            for shard, payload in zip(shards, self._rng_payloads(shards, seed))
        ]
        aggregates = run_sharded(
            self._spec,
            tasks,
            min(self.workers, len(tasks)),
            inline_context=_PipelineShardRunner(self.pipeline),
        )
        aggregator = self.pipeline.mechanism.streaming_aggregator()
        for aggregate in aggregates:
            aggregator.merge(aggregate)
        return aggregator

    def _execute(self, shards: list[np.ndarray], dropped: int, seed) -> PipelineResult:
        if sum(shard.shape[0] for shard in shards) == 0:
            raise ValueError("no points inside the domain were ingested")
        n_workers = min(self.workers, len(shards))
        aggregator = self._merge_shards(shards, seed)
        report = aggregator.finalize()
        return PipelineResult(
            estimate=report.estimate,
            true_distribution=GridDistribution.from_flat(
                self.grid, aggregator.true_cell_counts / aggregator.true_cell_counts.sum()
            ),
            noisy_counts=report.noisy_counts,
            n_users=report.n_users,
            b_hat=self.b_hat,
            mechanism=self.pipeline.mechanism.name,
            info={
                "epsilon": self.pipeline.epsilon,
                "d": self.pipeline.d,
                "dropped_points": dropped,
                "streamed": True,
                "parallel": True,
                "workers": n_workers if shards else 0,
                "n_shards": len(shards),
                "rng_mode": self.rng_mode,
            },
        )
