"""One home for transition-backend validation.

Before this module, the ``backend=`` kwarg was validated independently by
``DiscreteDAM``, ``DiscreteDAMNoShrink`` (via inheritance), ``DiscreteHUEM``,
``TrajectoryEngine`` and the CLI's argparse ``choices`` — five places to drift
when a backend is added.  :func:`resolve_backend` is the single gate: every
entry point calls it, every caller gets the same error message listing the
valid names, and the CLI sources its ``choices`` from the same tuples.
"""

from __future__ import annotations

#: Transition backends of the disk mechanisms: ``"operator"`` — the structured
#: scatter/gather operator; ``"dense"`` — the materialised matrix (ablations);
#: ``"native"`` — the :mod:`repro.kernels` tier (stencil-convolution EM matvecs
#: with numba-or-FFT selection, whole-batch background sampling).
VALID_BACKENDS: tuple[str, ...] = ("operator", "dense", "native")

#: Backends of the trajectory synthesis walk — no dense tier exists there (the
#: Markov model is already materialised; "dense" would alias "operator").
WALK_BACKENDS: tuple[str, ...] = ("operator", "native")


def resolve_backend(
    backend: str, *, allowed: tuple[str, ...] = VALID_BACKENDS, what: str = "backend"
) -> str:
    """Validate a ``backend=`` kwarg; the one unknown-backend error in the repo.

    Returns the backend unchanged when valid so call sites can write
    ``self.backend = resolve_backend(backend)``.
    """
    if backend not in allowed:
        raise ValueError(
            f"unknown {what} {backend!r}; valid backends: {', '.join(allowed)}"
        )
    return backend
