"""Structured transition operators — the high-throughput privatization engine.

Every disk-shaped mechanism (DAM, DAM-NS, HUEM) has a transition matrix with a very
particular structure: each row places a constant background probability ``q_hat`` on
all ``m`` output cells except the ``k`` cells of the disk neighbourhood of the input
cell, which receive the same ``k`` offset-specific values in every row (just shifted
to a different position).  Materialising that as a dense ``(d^2, m)`` matrix costs
``O(d^2 * m)`` memory and makes every EM iteration an ``O(d^2 * m)`` matmul, which
collapses at fine grid resolutions.

:class:`DiskTransitionOperator` exploits the structure directly:

* **matvecs** (``forward``/``backward``, the E- and M-step products of EM) run in
  ``O(d^2 * k)`` via shifted scatter/gather instead of dense matmuls;
* **sampling** (:meth:`DiskTransitionOperator.sample`) answers a whole batch of users
  from a single uniform draw: the disk part through one ``searchsorted`` on the
  cumulative offset masses, the background part through an order-statistics mapping
  onto the complement of the disk — no per-user Python loop and no dense row in sight;
* **auditing** (:meth:`DiskTransitionOperator.ldp_ratio`) reproduces the worst-case
  column ratio of the dense audit, including the ``inf`` verdict for columns that mix
  zero and positive probabilities (a hard ε-LDP violation);
* ``to_dense()`` materialises the classical matrix when a caller genuinely needs it
  (least-squares post-processing, diagnostics) — it is never required on the hot path.

:func:`expectation_maximization <repro.core.postprocess.expectation_maximization>`
accepts either a dense matrix or any object implementing the small
``shape``/``forward``/``backward`` protocol, so mechanisms switch backends freely.
Property tests assert the operator is numerically indistinguishable from the dense
matrix it represents.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridSpec
from repro.core.geometry import output_domain_cells
from repro.utils.rng import iter_value_groups


class DenseTransitionOperator:
    """Adapter giving a dense row-stochastic matrix the operator protocol.

    Used internally by :func:`repro.core.postprocess.expectation_maximization` so the
    EM loop is written once against ``forward``/``backward`` regardless of backend.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = np.asarray(matrix, dtype=float)

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def forward(self, theta: np.ndarray) -> np.ndarray:
        """``theta @ matrix`` — predicted output distribution under ``theta``."""
        return theta @ self.matrix

    def backward(self, weights: np.ndarray) -> np.ndarray:
        """``matrix @ weights`` — per-input aggregation of output weights."""
        return self.matrix @ weights

    def to_dense(self) -> np.ndarray:
        return self.matrix


class DiskTransitionOperator:
    """A disk-structured transition matrix stored as background + offsets.

    Parameters
    ----------
    grid:
        Input grid specification (``d x d`` cells, row-major flattening).
    b_hat:
        Integer high-probability radius in cell units.
    offsets:
        ``(k, 2)`` integer array of ``(dx, dy)`` disk-neighbourhood offsets.
    values:
        ``(k,)`` reporting probability of each offset cell (identical in every row).
    background:
        The probability ``q_hat`` of every output cell not in the row's disk.
    output_cells:
        ``(m, 2)`` integer ``(col, row)`` coordinates of the extended output domain.
    normaliser:
        The common row normalisation constant (``q_hat = low_mass / normaliser``),
        kept for mechanism bookkeeping (``p_hat``/``q_hat`` of Eq. 13).

    Notes
    -----
    The operator precomputes ``out_indices[j, i]`` — the flat output index that offset
    ``j`` of input cell ``i`` lands on — as a ``(k, d^2)`` int32 array.  That is the
    ``O(d^2 * k)`` footprint everything else builds on; the dense matrix would be
    ``O(d^2 * m)`` with ``m ~ (d + 2*b_hat)^2``.
    """

    def __init__(
        self,
        grid: GridSpec,
        b_hat: int,
        offsets: np.ndarray,
        values: np.ndarray,
        background: float,
        output_cells: np.ndarray,
        normaliser: float,
    ) -> None:
        self.grid = grid
        self.b_hat = int(b_hat)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.values = np.asarray(values, dtype=float)
        self.background = float(background)
        self.output_cells = np.asarray(output_cells, dtype=np.int64)
        self.normaliser = float(normaliser)
        if self.offsets.ndim != 2 or self.offsets.shape[1] != 2:
            raise ValueError(f"offsets must have shape (k, 2), got {self.offsets.shape}")
        if self.values.shape != (self.offsets.shape[0],):
            raise ValueError("values must have one entry per offset")
        if np.any(self.values < 0) or self.background < 0:
            raise ValueError("transition probabilities must be non-negative")
        self._out_indices = self._build_out_indices()
        self._deltas = self.values - self.background
        # Row-sum sanity: background everywhere + offset corrections must give 1.
        # The tolerance scales with the output-domain size: `background * m` and
        # the k-term delta sum each accumulate rounding proportional to the
        # number of summands, so a fixed 1e-6 that is generous at d=16 would
        # false-positive at planet-scale domains (d >= 256) — especially once
        # the float32 native tier rounds the per-offset values to ~1e-7.
        row_sum = self.background * self.n_outputs + float(self._deltas.sum())
        atol = max(1e-6, 1e-9 * self.n_outputs)
        if not np.isclose(row_sum, 1.0, atol=atol):
            raise ValueError(
                f"operator rows must sum to 1, got {row_sum} "
                f"(tolerance {atol} at {self.n_outputs} outputs)"
            )
        # Sampling caches, built lazily on the first sample() call.
        self._cum_values: np.ndarray | None = None
        self._sorted_disk: np.ndarray | None = None
        self._rank_shift: np.ndarray | None = None

    # ------------------------------------------------------------- structure
    @property
    def n_inputs(self) -> int:
        return self.grid.n_cells

    @property
    def n_outputs(self) -> int:
        return int(self.output_cells.shape[0])

    @property
    def n_offsets(self) -> int:
        return int(self.offsets.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_inputs, self.n_outputs)

    def _build_out_indices(self) -> np.ndarray:
        """``(k, d^2)`` flat output index of every (offset, input cell) pair."""
        cols = self.output_cells[:, 0]
        rows = self.output_cells[:, 1]
        col_lo, row_lo = int(cols.min()), int(rows.min())
        index_map = np.full(
            (int(rows.max()) - row_lo + 1, int(cols.max()) - col_lo + 1), -1, dtype=np.int32
        )
        index_map[rows - row_lo, cols - col_lo] = np.arange(self.n_outputs, dtype=np.int32)

        d = self.grid.d
        in_rows, in_cols = np.divmod(np.arange(self.grid.n_cells), d)
        dx = self.offsets[:, 0][:, None]
        dy = self.offsets[:, 1][:, None]
        out = index_map[in_rows[None, :] + dy - row_lo, in_cols[None, :] + dx - col_lo]
        if np.any(out < 0):
            raise ValueError("an offset maps outside the output domain")
        return out

    # --------------------------------------------------------------- matvecs
    def forward(self, theta: np.ndarray) -> np.ndarray:
        """``theta @ T`` in ``O(d^2 * k)``: uniform background plus offset scatter."""
        theta = np.asarray(theta, dtype=float).reshape(-1)
        if theta.shape[0] != self.n_inputs:
            raise ValueError(f"theta must have length {self.n_inputs}, got {theta.shape[0]}")
        out = np.full(self.n_outputs, self.background * theta.sum())
        out += np.bincount(
            self._out_indices.ravel(),
            weights=(self._deltas[:, None] * theta[None, :]).ravel(),
            minlength=self.n_outputs,
        )
        return out

    def backward(self, weights: np.ndarray) -> np.ndarray:
        """``T @ w`` in ``O(d^2 * k)``: uniform background plus offset gather."""
        weights = np.asarray(weights, dtype=float).reshape(-1)
        if weights.shape[0] != self.n_outputs:
            raise ValueError(
                f"weights must have length {self.n_outputs}, got {weights.shape[0]}"
            )
        return self.background * weights.sum() + self._deltas @ weights[self._out_indices]

    def to_dense(self) -> np.ndarray:
        """Materialise the classical ``(d^2, m)`` transition matrix."""
        matrix = np.full((self.n_inputs, self.n_outputs), self.background)
        matrix[np.arange(self.n_inputs)[None, :], self._out_indices] = self.values[:, None]
        return matrix

    def row(self, input_cell: int) -> np.ndarray:
        """One dense transition row (diagnostics only)."""
        row = np.full(self.n_outputs, self.background)
        row[self._out_indices[:, input_cell]] = self.values
        return row

    # -------------------------------------------------------------- sampling
    def _build_sampling_caches(self) -> None:
        self._cum_values = np.cumsum(self.values)
        # Per input cell: the disk's output indices in sorted order, and the
        # order-statistics shift t[j] = sorted_disk[j] - j.  The r-th background
        # (complement) index of a row is then r + searchsorted(t, r, 'right').
        self._sorted_disk = np.sort(self._out_indices, axis=0)
        self._rank_shift = self._sorted_disk - np.arange(self.n_offsets, dtype=np.int32)[:, None]

    def sample(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Randomise a batch of input cells with one uniform draw per user.

        Each user consumes exactly one ``rng.random()`` double, in input order, so
        chunked (streaming) privatization with a shared generator reproduces the
        single-batch reports bit for bit.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if self._cum_values is None:
            self._build_sampling_caches()
        n = cells.shape[0]
        reports = np.empty(n, dtype=np.int64)
        if n == 0:
            return reports
        u = rng.random(n)

        special_mass = float(self._cum_values[-1])
        n_background = self.n_outputs - self.n_offsets
        if n_background > 0 and self.background > 0:
            in_disk = u < special_mass
        else:
            # No background cells (or they carry zero mass): every draw is a disk draw.
            in_disk = np.ones(n, dtype=bool)

        if in_disk.any():
            j = np.searchsorted(self._cum_values, u[in_disk], side="right")
            np.clip(j, 0, self.n_offsets - 1, out=j)
            reports[in_disk] = self._out_indices[j, cells[in_disk]]

        outside = ~in_disk
        if outside.any():
            # Background rank in [0, m - k), then mapped onto the complement of the
            # row's disk via the cached order-statistics shift.
            rank = ((u[outside] - special_mass) / self.background).astype(np.int64)
            np.clip(rank, 0, n_background - 1, out=rank)
            reports[outside] = self._background_reports(cells[outside], rank)
        return reports

    def _background_reports(self, cells: np.ndarray, rank: np.ndarray) -> np.ndarray:
        """Map background ranks to output indices: ``r + #(disk cells <= r)``.

        One grouped ``searchsorted`` per distinct true cell.  The hook the
        native tier overrides with the whole-batch bisection kernel
        (:func:`repro.kernels.sampler.background_rank_map`) — both are exact
        integer order statistics, so the two paths are bit-identical.
        """
        out_reports = np.empty(rank.shape[0], dtype=np.int64)
        for cell, group in iter_value_groups(cells):
            r = rank[group]
            shift = np.searchsorted(self._rank_shift[:, cell], r, side="right")
            out_reports[group] = r + shift
        return out_reports

    # -------------------------------------------------------------- auditing
    def ldp_ratio(self) -> float:
        """Worst-case column probability ratio, computed without the dense matrix.

        Matches :meth:`repro.core.estimator.TransitionMatrixMechanism.ldp_ratio`:
        a column mixing zero and positive entries is an infinite ratio (a hard ε-LDP
        violation), and all-zero columns are ignored.
        """
        m = self.n_outputs
        flat = self._out_indices.ravel()
        per_entry = np.broadcast_to(self.values[:, None], self._out_indices.shape).ravel()
        col_max = np.full(m, -np.inf)
        col_min = np.full(m, np.inf)
        np.maximum.at(col_max, flat, per_entry)
        np.minimum.at(col_min, flat, per_entry)
        covered = np.bincount(flat, minlength=m)
        # Columns not covered by every row also contain the background value.
        partial = covered < self.n_inputs
        col_max[partial] = np.maximum(col_max[partial], self.background)
        col_min[partial] = np.minimum(col_min[partial], self.background)
        if np.any((col_min <= 0.0) & (col_max > 0.0)):
            return float("inf")
        active = col_min > 0.0
        if not active.any():
            return float("inf")
        return float((col_max[active] / col_min[active]).max())


def build_disk_operator(
    grid: GridSpec,
    b_hat: int,
    offset_masses: np.ndarray,
    *,
    low_mass: float = 1.0,
    operator_cls: type[DiskTransitionOperator] | None = None,
    **operator_kwargs,
) -> DiskTransitionOperator:
    """Build a :class:`DiskTransitionOperator` from relative per-offset masses.

    The inputs mirror :func:`repro.core.dam.build_disk_transition`: ``offset_masses``
    is a ``(k, 3)`` array of ``(dx, dy, mass)`` in units of the baseline ``q`` and
    ``low_mass`` the relative mass of a pure-low cell.  Because the offsets and the
    output-domain size are identical for every input cell, all rows share one
    normalisation constant — the argument for why the discretisation preserves ε-LDP.

    ``operator_cls`` lets backend builders substitute a subclass (the native
    kernel tier's :class:`repro.kernels.NativeDiskOperator`); extra keyword
    arguments are forwarded to its constructor.
    """
    masses = np.asarray(offset_masses, dtype=float)
    if masses.ndim != 2 or masses.shape[1] != 3:
        raise ValueError(f"offset_masses must have shape (k, 3), got {masses.shape}")
    output_cells = output_domain_cells(grid.d, b_hat)
    total_offsets_mass = float(masses[:, 2].sum())
    normaliser = total_offsets_mass + low_mass * (output_cells.shape[0] - masses.shape[0])
    cls = DiskTransitionOperator if operator_cls is None else operator_cls
    return cls(
        grid=grid,
        b_hat=b_hat,
        offsets=masses[:, :2].astype(np.int64),
        values=masses[:, 2] / normaliser,
        background=low_mass / normaliser,
        output_cells=output_cells,
        normaliser=normaliser,
        **operator_kwargs,
    )
