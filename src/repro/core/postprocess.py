"""Post-processing of noisy report histograms — Algorithm 1's ``PostProcess`` step.

The analyst observes a histogram of noisy reports over the mechanism's output domain
and must invert the known randomisation to recover the input distribution.  The paper
uses the Expectation-Maximisation (EM) estimator of Li et al. (SW-EMS), optionally with
a smoothing step between iterations that regularises the reconstruction on fine grids.
Both variants are provided here, together with the simpler matrix-inversion estimator
with simplex projection ("norm-sub") that is common in the LDP literature and is used
as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_probability_matrix


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM run: the estimate, iterations used and final log-likelihood.

    ``kernel`` records which native kernel (``"numba/float64"``,
    ``"fft/float32"``, ...) ran the fused iteration loop, or ``None`` for the
    plain operator/dense path — the breadcrumb that makes backend selection
    auditable from result metadata alone.
    """

    estimate: np.ndarray
    iterations: int
    log_likelihood: float
    converged: bool
    kernel: str | None = None


def expectation_maximization(
    transition,
    noisy_counts: np.ndarray,
    *,
    max_iterations: int = 1000,
    tolerance: float = 1e-9,
    initial: np.ndarray | None = None,
    smoothing=None,
    kernel="auto",
) -> EMResult:
    """Maximum-likelihood estimate of the input distribution via EM.

    Parameters
    ----------
    transition:
        Either a dense ``(n_in, n_out)`` row-stochastic matrix with
        ``transition[i, j]`` the probability that input cell ``i`` is reported as
        output ``j``, or any structured operator implementing the
        ``shape``/``forward``/``backward`` protocol of
        :class:`repro.core.operator.DiskTransitionOperator`.  The structured form
        runs each iteration in ``O(d^2 * k)`` instead of ``O(d^2 * m)``.
    noisy_counts:
        Length ``n_out`` histogram of observed reports.
    max_iterations, tolerance:
        Convergence controls; iteration stops when the L1 change of the estimate drops
        below ``tolerance``.
    initial:
        Optional starting distribution over input cells (defaults to uniform).
    smoothing:
        Optional callable applied to the estimate after each M-step (the "S" in EMS);
        see :func:`make_grid_smoother`.
    kernel:
        ``"auto"`` (default) runs the fused, buffer-reusing iteration loop when
        ``transition`` carries a native EM kernel (an ``em_kernel`` attribute —
        :class:`repro.kernels.NativeDiskOperator` under ``backend="native"``);
        pass an explicit :class:`repro.kernels.em.EMKernel` to force one, or
        ``None`` to force the plain per-iteration matvec loop.

    Returns
    -------
    EMResult
        The estimated input distribution (length ``n_in``, sums to one) plus metadata.
    """
    if hasattr(transition, "forward") and hasattr(transition, "backward"):
        operator = transition
    else:
        from repro.core.operator import DenseTransitionOperator

        operator = DenseTransitionOperator(
            check_probability_matrix(transition, name="transition")
        )
    em_kernel = getattr(operator, "em_kernel", None) if kernel == "auto" else kernel
    if em_kernel is not None and em_kernel.n_outputs != operator.shape[1]:
        raise ValueError(
            f"kernel answers {em_kernel.n_outputs} outputs but the transition "
            f"has {operator.shape[1]}"
        )
    n_in, n_out = operator.shape
    counts = np.asarray(noisy_counts, dtype=float).reshape(-1)
    if counts.shape[0] != n_out:
        raise ValueError(
            f"noisy_counts has length {counts.shape[0]} but transition has "
            f"{n_out} output columns"
        )
    if np.any(counts < 0):
        raise ValueError("noisy_counts must be non-negative")
    total = counts.sum()
    if total <= 0:
        uniform = np.full(n_in, 1.0 / n_in)
        return EMResult(estimate=uniform, iterations=0, log_likelihood=0.0, converged=True)

    theta = np.full(n_in, 1.0 / n_in) if initial is None else np.asarray(initial, dtype=float)
    theta = np.clip(theta, 1e-15, None)
    theta = theta / theta.sum()

    if em_kernel is not None:

        def em_step(current: np.ndarray) -> np.ndarray:
            # Fused path: E-step, overflow-guarded ratio, M-step, clip and
            # normalise all run on the kernel's preallocated double buffers.
            return em_kernel.em_step(current, counts)

        forward = em_kernel.forward
    else:

        def em_step(current: np.ndarray) -> np.ndarray:
            # E-step: predicted probability of each output under the current
            # estimate.
            predicted = np.clip(operator.forward(current), 1e-300, None)
            # A count on an output the current estimate gives (clipped) zero
            # mass overflows `counts / predicted` to inf, which the backward
            # matvec turns into NaN (0 * inf) and the normalisation spreads
            # everywhere.  Rescaling the numerator by its max keeps the ratio
            # finite and cancels in the final normalisation; the well-conditioned
            # path is untouched (bit-preserved — asserted in the tests).
            with np.errstate(over="ignore"):
                ratio = counts / predicted
            if not np.isfinite(ratio).all():
                ratio = (counts / counts.max()) / predicted
            # M-step: redistribute observed counts back over input cells.  The
            # classical responsibility form `(T * theta / predicted) @ counts`
            # factorises into a single backward matvec, which is what makes the
            # structured path O(d^2 * k).
            new = current * operator.backward(ratio)
            new = np.clip(new, 0.0, None)
            return new / new.sum()

        forward = operator.forward

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_theta = em_step(theta)
        if smoothing is not None:
            new_theta = smoothing(new_theta)
            new_theta = np.clip(new_theta, 0.0, None)
            new_theta = new_theta / new_theta.sum()
        change = float(np.abs(new_theta - theta).sum())
        theta = new_theta
        if change < tolerance:
            converged = True
            break
    if em_kernel is not None:
        # The fused loop hands out one of the kernel's double buffers; detach the
        # estimate so the next solve on the same kernel cannot overwrite it.
        theta = np.array(theta, dtype=float)
    # The log-likelihood is only reported, never used for convergence, so computing
    # it once on the final estimate (one extra forward matvec) instead of every
    # iteration halves the per-iteration cost of the loop above.
    log_likelihood = float(counts @ np.log(np.clip(forward(theta), 1e-300, None)))
    return EMResult(
        estimate=theta,
        iterations=iterations,
        log_likelihood=log_likelihood,
        converged=converged,
        kernel=em_kernel.build.describe() if em_kernel is not None else None,
    )


def adaptive_smoothing_strength(
    n_cells: int, n_reports: float, *, cap: float = 0.5
) -> float:
    """Pick an EMS smoothing strength from the report density.

    Smoothing trades variance for bias: it helps when the per-cell report counts are
    sparse (fine grids, few users) and hurts when they are abundant.  The rule
    ``min(cap, n_cells / n_reports)`` makes the smoothing vanish as data accumulates —
    the estimator stays asymptotically unbiased — while regularising heavily-noised
    sparse histograms, which is the regime SW-EMS introduced the smoothing step for.
    """
    if n_cells <= 0:
        raise ValueError(f"n_cells must be positive, got {n_cells}")
    if n_reports <= 0:
        return cap
    return float(min(cap, n_cells / n_reports))


def make_grid_smoother(d: int, *, strength: float = 1.0):
    """Build the 2-D smoothing operator used by the EMS variant.

    The smoother convolves the ``d x d`` estimate with a 3x3 binomial kernel
    (``[1, 2, 1]`` outer ``[1, 2, 1]``, normalised) blended with the identity according
    to ``strength`` in ``[0, 1]``.  ``strength=0`` disables smoothing; ``strength=1``
    applies the full kernel — the 2-D analogue of the averaging step in SW-EMS.
    """
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    kernel_1d = np.array([1.0, 2.0, 1.0]) / 4.0

    def smooth(theta: np.ndarray) -> np.ndarray:
        grid = np.asarray(theta, dtype=float).reshape(d, d)
        # Separable convolution with edge replication so mass is not pushed outward.
        padded = np.pad(grid, 1, mode="edge")
        horizontal = (
            kernel_1d[0] * padded[1:-1, :-2]
            + kernel_1d[1] * padded[1:-1, 1:-1]
            + kernel_1d[2] * padded[1:-1, 2:]
        )
        padded_h = np.pad(horizontal, ((1, 1), (0, 0)), mode="edge")
        smoothed = (
            kernel_1d[0] * padded_h[:-2, :]
            + kernel_1d[1] * padded_h[1:-1, :]
            + kernel_1d[2] * padded_h[2:, :]
        )
        blended = (1.0 - strength) * grid + strength * smoothed
        return blended.reshape(-1)

    return smooth


def make_line_smoother(size: int, *, strength: float = 1.0):
    """1-D analogue of :func:`make_grid_smoother`, used by the Square Wave baseline."""
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    kernel = np.array([1.0, 2.0, 1.0]) / 4.0

    def smooth(theta: np.ndarray) -> np.ndarray:
        vec = np.asarray(theta, dtype=float).reshape(-1)
        if vec.shape[0] != size:
            raise ValueError(f"expected a vector of length {size}, got {vec.shape[0]}")
        padded = np.pad(vec, 1, mode="edge")
        smoothed = kernel[0] * padded[:-2] + kernel[1] * padded[1:-1] + kernel[2] * padded[2:]
        return (1.0 - strength) * vec + strength * smoothed

    return smooth


def matrix_inversion_estimate(
    transition: np.ndarray,
    noisy_counts: np.ndarray,
    *,
    ridge: float = 1e-8,
) -> np.ndarray:
    """Least-squares inversion of the randomisation followed by simplex projection.

    The classical unbiased LDP estimator: solve ``theta @ transition ~= observed`` in
    the least-squares sense (with a small ridge term for rank-deficient matrices) and
    project the result onto the probability simplex.  Used as an ablation against EM.
    """
    matrix = check_probability_matrix(transition, name="transition")
    counts = np.asarray(noisy_counts, dtype=float).reshape(-1)
    if counts.shape[0] != matrix.shape[1]:
        raise ValueError("noisy_counts length must match the transition's output size")
    total = counts.sum()
    if total <= 0:
        return np.full(matrix.shape[0], 1.0 / matrix.shape[0])
    observed = counts / total
    check_positive(ridge, "ridge", allow_zero=True)
    gram = matrix @ matrix.T + ridge * np.eye(matrix.shape[0])
    rhs = matrix @ observed
    raw = np.linalg.solve(gram, rhs)
    return project_to_simplex(raw)


def sanitize_probability_vector(vector: np.ndarray) -> np.ndarray:
    """Coerce an estimated frequency vector into a safe sampling distribution.

    Unbiased LDP frequency estimates can dip below zero (small ``n``, large domains)
    and, in the extreme, clip to nothing at all; feeding such a vector to
    ``rng.choice(p=...)`` or ``searchsorted`` sampling crashes or mis-samples.  This
    helper clips negatives (and non-finite entries) to zero and renormalises, falling
    back to the uniform distribution when no positive mass survives — the standard
    consistency repair applied right before sampling from an estimate.
    """
    v = np.asarray(vector, dtype=float).reshape(-1)
    if v.size == 0:
        raise ValueError("cannot sanitize an empty probability vector")
    v = np.where(np.isfinite(v), v, 0.0)
    v = np.clip(v, 0.0, None)
    total = v.sum()
    if total <= 0:
        return np.full(v.size, 1.0 / v.size)
    return v / total


def project_to_simplex(vector: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Standard sorting-based algorithm (Duchi et al. 2008); the go-to "norm-sub" style
    consistency step for LDP frequency estimates.
    """
    v = np.asarray(vector, dtype=float).reshape(-1)
    if v.size == 0:
        raise ValueError("cannot project an empty vector")
    sorted_v = np.sort(v)[::-1]
    cumulative = np.cumsum(sorted_v) - 1.0
    indices = np.arange(1, v.size + 1)
    candidates = sorted_v - cumulative / indices
    rho = np.nonzero(candidates > 0)[0][-1]
    tau = cumulative[rho] / (rho + 1.0)
    return np.clip(v - tau, 0.0, None)
