"""The :class:`Finding` value object and its text/JSON renderings.

Every rule reports violations as a flat list of findings — one per (rule, file,
line) — so the engine can sort, filter (inline suppressions) and render them
uniformly.  The JSON rendering is stable and machine-readable for CI tooling;
the text rendering is the one-line-per-finding format familiar from compilers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis violation.

    Attributes
    ----------
    path:
        Path of the offending module, as given to the engine (kept relative when
        the linted root was relative, so output is stable across machines).
    line:
        1-based line number the finding anchors to.
    rule_id:
        Identifier of the rule that fired (e.g. ``priv-flow``); also the token
        accepted by ``# repro-lint: disable=<rule-id>`` suppressions.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


def render_text(findings: list[Finding]) -> str:
    """Compiler-style rendering: one line per finding plus a count footer."""
    lines = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Stable machine-readable rendering (a JSON array of finding objects)."""
    return json.dumps([asdict(finding) for finding in findings], indent=2) + "\n"
