"""Lint driver: discover files, run rules, filter suppressions, sort findings."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, get_rules

#: Directories never descended into when expanding a directory argument.
_SKIP_DIRS = {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build", "dist"}


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated list of ``.py`` files."""
    seen: set[Path] = set()
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def lint_contexts(contexts: list[ModuleContext], rules: list[Rule]) -> list[Finding]:
    """Run ``rules`` over prepared contexts; drop suppressed findings; sort."""
    findings: list[Finding] = []
    for context in contexts:
        for rule in rules:
            for finding in rule.check(context):
                if not context.is_suppressed(finding):
                    findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: list[Path | str],
    rule_ids: list[str] | None = None,
) -> list[Finding]:
    """Lint files/directories with the selected rules (all registered by default).

    Files that fail to parse produce a single ``parse-error`` finding rather
    than aborting the run, so one syntax error cannot mask every other finding.
    """
    rules = get_rules(rule_ids)
    contexts: list[ModuleContext] = []
    findings: list[Finding] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            contexts.append(ModuleContext.from_file(file_path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=file_path.as_posix(),
                    line=int(exc.lineno or 1),
                    rule_id="parse-error",
                    message=f"could not parse module: {exc.msg}",
                )
            )
    findings.extend(lint_contexts(contexts, rules))
    return sorted(findings)
