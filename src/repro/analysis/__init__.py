"""Static analysis for the repro codebase (``repro lint``).

AST-based lint rules that make the repo's two statically-checkable invariant
classes — privacy flow in mechanisms and RNG determinism — fail at lint time
instead of (probabilistically) at audit time, plus conformance checks for the
mergeable-aggregate protocol and the benchmark-metrics convention.

Public surface:

* :func:`repro.analysis.engine.lint_paths` — run rules over files/directories,
* :class:`repro.analysis.findings.Finding` and the text/JSON renderers,
* :data:`repro.analysis.registry.RULES` — the rule-plugin table.

Inline suppression: ``# repro-lint: disable=<rule-id>[,<rule-id>...]`` on the
line a finding anchors to (``disable=all`` silences every rule there).
"""

from repro.analysis.context import ModuleContext
from repro.analysis.engine import lint_contexts, lint_paths
from repro.analysis.findings import Finding, render_json, render_text
from repro.analysis.registry import RULES, Rule, get_rules, register

__all__ = [
    "Finding",
    "ModuleContext",
    "RULES",
    "Rule",
    "get_rules",
    "lint_contexts",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
]
