"""Relative-link checker for the repository's markdown documentation.

The docs reference files (``docs/ARCHITECTURE.md``, ``benchmarks/baselines/``)
and section anchors (``ARCHITECTURE.md#the-window-protocol``) that refactors
silently invalidate: a renamed heading or moved file leaves a dead link that no
test imports and no linter parses.  This module closes that gap with a small,
dependency-free checker that CI runs over ``README.md`` and ``docs/``:

* every *relative* link target (``docs/BENCHMARKS.md``, ``../benchmarks``)
  must exist on disk, resolved against the linking file's directory;
* every anchor (``#layer-map``, ``ARCHITECTURE.md#laws``) must match a heading
  in the target document under GitHub's slug rules;
* absolute URLs (``https://``, ``mailto:``) are out of scope — external
  availability is not a property of this repository — and so are
  *site-relative* targets that climb out of the checked tree entirely (the
  ``../../actions/workflows`` CI badge resolves on github.com, not on disk).

Links inside fenced code blocks are ignored, matching how renderers treat them.

Run it directly::

    python -m repro.analysis.doclinks README.md docs

Directories are walked for ``*.md``; the process exits non-zero when any link
is broken, printing one ``path:line: message`` finding per defect.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["DocLinkFinding", "check_documents", "collect_markdown", "main"]

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target "title")``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
#: Schemes whose targets live outside the repository.
_EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


@dataclass(frozen=True)
class DocLinkFinding:
    """One broken link: ``path:line`` plus a human-readable reason."""

    path: Path
    line: int
    target: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, spaces to hyphens."""
    # Emphasis markers are markup only outside inline code spans: a literal
    # underscore in `BENCH_*.json` survives into the slug, a *bold* star does not.
    parts = re.split(r"`([^`]*)`", heading)  # odd indices are code-span contents
    for index in range(0, len(parts), 2):
        text = _LINK_RE.sub(
            lambda m: m.group(0).split("](")[0].lstrip("!["), parts[index]
        )
        parts[index] = re.sub(r"[*_]", "", text)
    text = "".join(parts).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _document_lines(path: Path) -> list[tuple[int, str]]:
    """(line number, text) pairs with fenced code blocks blanked out."""
    lines: list[tuple[int, str]] = []
    in_fence = False
    for number, text in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE_RE.match(text):
            in_fence = not in_fence
            continue
        lines.append((number, "" if in_fence else text))
    return lines


def _anchors(path: Path) -> set[str]:
    """Every heading anchor the document exposes, with GitHub dedup suffixes."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    for _, text in _document_lines(path):
        match = _HEADING_RE.match(text)
        if not match:
            continue
        slug = _github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _check_document(
    path: Path, root: Path, anchor_cache: dict[Path, set[str]]
) -> list[DocLinkFinding]:
    findings: list[DocLinkFinding] = []
    for number, text in _document_lines(path):
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if _EXTERNAL_RE.match(target):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.is_relative_to(root):
                    continue  # site-relative route (e.g. the CI badge), not a file
                if not resolved.exists():
                    findings.append(
                        DocLinkFinding(
                            path,
                            number,
                            target,
                            f"broken link '{target}': {file_part} does not exist "
                            f"relative to {path.parent}",
                        )
                    )
                    continue
            else:
                resolved = path.resolve()
            if not anchor:
                continue
            if resolved.suffix.lower() != ".md" or resolved.is_dir():
                continue  # anchors into non-markdown targets are not checkable
            if resolved not in anchor_cache:
                anchor_cache[resolved] = _anchors(resolved)
            if anchor.lower() not in anchor_cache[resolved]:
                findings.append(
                    DocLinkFinding(
                        path,
                        number,
                        target,
                        f"broken anchor '{target}': no heading in "
                        f"{resolved.name} slugs to '#{anchor}'",
                    )
                )
    return findings


def collect_markdown(inputs: list[str | Path]) -> list[Path]:
    """Expand files and directories (walked recursively for ``*.md``)."""
    documents: list[Path] = []
    for raw in inputs:
        path = Path(raw)
        if path.is_dir():
            documents.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            documents.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return documents


def check_documents(
    inputs: list[str | Path], *, root: str | Path | None = None
) -> list[DocLinkFinding]:
    """Check every markdown document reachable from ``inputs``; return findings.

    ``root`` bounds the checkable tree — relative targets resolving outside it
    are treated as site-relative web routes and skipped.  It defaults to the
    deepest common directory of ``inputs`` (the repository root when invoked as
    ``python -m repro.analysis.doclinks README.md docs`` from a checkout).
    """
    documents = collect_markdown(inputs)
    if root is None:
        directories = [
            path if path.is_dir() else path.parent
            for path in (Path(raw).resolve() for raw in inputs)
        ]
        root = Path(os.path.commonpath([str(directory) for directory in directories]))
    root = Path(root).resolve()
    anchor_cache: dict[Path, set[str]] = {}
    findings: list[DocLinkFinding] = []
    for document in documents:
        findings.extend(_check_document(document, root, anchor_cache))
    return findings


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if not arguments:
        print("usage: python -m repro.analysis.doclinks <file-or-directory> ...")
        return 2
    try:
        findings = check_documents(list(arguments))
    except FileNotFoundError as error:
        print(str(error))
        return 2
    for finding in findings:
        print(finding.format())
    n_documents = len(collect_markdown(list(arguments)))
    status = f"{len(findings)} broken link(s)" if findings else "all links resolve"
    print(f"doclinks: {n_documents} document(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
