"""Rule plugins.  Importing this package registers every built-in rule."""

from repro.analysis.rules import bench, determinism, privacy, protocol, surface

__all__ = ["bench", "determinism", "privacy", "protocol", "surface"]
