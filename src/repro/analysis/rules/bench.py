"""Benchmark-convention rules.

The standing convention (top of ROADMAP.md): every benchmark records a
machine-readable metrics dict via ``record_result(name, text, metrics=...)``,
and any throughput ratio the benchmark *asserts* on must also be gated in
``benchmarks/baselines/smoke.json`` so the CI regression compare actually
tracks it.  Until now this was enforced only by reviewer memory.

``bench-metrics``
    Every ``record_result`` call passes a metrics dict (third positional or
    ``metrics=``).  A benchmark that writes text only is invisible to the
    baseline compare.
``bench-baseline``
    In ``*throughput*`` benchmark modules, a ``_speedup``/``_ratio`` metric
    whose value is asserted in the same function must appear under
    ``gated.<bench-name>`` in the committed smoke baseline.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register


def _record_result_calls(tree: ast.Module) -> list[ast.Call]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "record_result"
    ]


def _metrics_arg(call: ast.Call) -> ast.expr | None:
    if len(call.args) >= 3:
        return call.args[2]
    for keyword in call.keywords:
        if keyword.arg == "metrics":
            return keyword.value
    return None


def _is_bench_module(context: ModuleContext) -> bool:
    return context.in_directory("benchmarks") and context.path.name.startswith("test_")


@register
class BenchMetricsRule:
    rule_id = "bench-metrics"
    description = "every record_result call must pass a machine-readable metrics dict"

    def check(self, context: ModuleContext) -> list[Finding]:
        if not _is_bench_module(context):
            return []
        findings = []
        for call in _record_result_calls(context.tree):
            if _metrics_arg(call) is None:
                findings.append(
                    context.finding(
                        self.rule_id,
                        call,
                        "record_result without metrics=: this benchmark is invisible "
                        "to the CI baseline compare; pass its measured numbers",
                    )
                )
        return findings


@register
class BenchBaselineRule:
    rule_id = "bench-baseline"
    description = (
        "asserted throughput ratios must be gated in benchmarks/baselines/smoke.json"
    )

    def check(self, context: ModuleContext) -> list[Finding]:
        if not _is_bench_module(context) or "throughput" not in context.path.name:
            return []
        gated = self._load_gated(context.path)
        if gated is None:
            return [
                context.finding(
                    self.rule_id,
                    1,
                    "benchmarks/baselines/smoke.json is missing or unreadable; the "
                    "CI regression compare has no baseline to diff against",
                )
            ]
        findings: list[Finding] = []
        for func in ast.walk(context.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            asserted = self._asserted_names(func)
            for call in _record_result_calls(func):
                findings.extend(self._check_call(context, call, asserted, gated))
        return findings

    @staticmethod
    def _load_gated(bench_path: Path) -> dict | None:
        baseline_path = bench_path.parent / "baselines" / "smoke.json"
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        gated = baseline.get("gated")
        return gated if isinstance(gated, dict) else None

    @staticmethod
    def _asserted_names(func: ast.AST) -> set[str]:
        """Names compared inside assert statements of this function."""
        names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assert):
                for name in ast.walk(node.test):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
        return names

    def _check_call(
        self,
        context: ModuleContext,
        call: ast.Call,
        asserted: set[str],
        gated: dict,
    ) -> list[Finding]:
        if not call.args or not isinstance(call.args[0], ast.Constant):
            return []
        bench_name = call.args[0].value
        metrics = _metrics_arg(call)
        if not isinstance(metrics, ast.Dict):
            return []
        gated_metrics = gated.get(bench_name, {})
        findings = []
        for key_node, value_node in zip(metrics.keys, metrics.values):
            if not isinstance(key_node, ast.Constant) or not isinstance(key_node.value, str):
                continue
            key = key_node.value
            if not key.endswith(("_speedup", "_ratio")):
                continue
            if not (isinstance(value_node, ast.Name) and value_node.id in asserted):
                continue
            if key not in gated_metrics:
                findings.append(
                    context.finding(
                        self.rule_id,
                        key_node,
                        f"metric {key!r} of benchmark {bench_name!r} is asserted here "
                        "but not gated in benchmarks/baselines/smoke.json — the CI "
                        "regression compare will never track it",
                    )
                )
        return findings
