"""``query-surface``: new code speaks the unified query surface.

PR 10 collapsed the three divergent per-engine spellings (``answer`` /
``answer_many`` / ``answer_batch``) into one :class:`repro.queries.QuerySurface`
protocol.  ``answer_many`` survives only as a deprecated alias so external
callers get a ``DeprecationWarning`` instead of an ``AttributeError`` — but new
code inside the repo must not reintroduce it, or the serving/replay layers end
up written against two spellings again.  This rule flags every
``*.answer_many(...)`` call site in ``src`` and ``benchmarks``; the alias's own
definition (an attribute *def*, not a call) is not flagged, and tests that pin
the deprecation behaviour carry a line-level suppression.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register


@register
class QuerySurfaceRule:
    rule_id = "query-surface"
    description = (
        "answer_many() is the deprecated pre-protocol spelling; call "
        "answer_batch() (repro.queries.QuerySurface) instead"
    )

    def check(self, context: ModuleContext) -> list[Finding]:
        in_scope = context.in_directory("repro") or context.in_directory("benchmarks")
        if not in_scope or context.in_directory("tests") or context.in_directory("fixtures"):
            return []
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "answer_many"
            ):
                findings.append(
                    context.finding(
                        self.rule_id,
                        node,
                        "call answer_batch() instead of the deprecated answer_many() "
                        "alias — every engine conforms to repro.queries.QuerySurface",
                    )
                )
        return findings
