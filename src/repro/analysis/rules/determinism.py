"""RNG determinism rules.

The repo's parallel/streaming bit-identity guarantees (PR 2/4/5) hold only if
every source of randomness is an explicitly threaded
:class:`numpy.random.Generator`.  These rules make the convention static:

``rng-ambient``
    No module-level ``np.random.<dist>()`` calls — ambient global-state draws
    are invisible to seed threading.
``rng-argless``
    No argless ``default_rng()`` / ``SeedSequence()`` outside the sanctioned
    construction site ``utils/rng.py`` (where ``seed=None`` → OS entropy is the
    one documented escape hatch).
``rng-entropy``
    No stdlib ``random`` module and no wall-clock/OS entropy
    (``time.time()``/``os.urandom()``...) feeding seed material in ``src/repro``.
``rng-missing-seed``
    Every function that draws randomness must accept a generator/seed
    parameter (or draw from generator state it owns) so callers can thread
    determinism through it.
``rng-doc-example``
    Docstring examples must not model ambient/hard-coded generator usage —
    examples are what users copy.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register
from repro.analysis.rules.privacy import RNG_DRAW_ATTRS, RNG_NAME_RE

#: ``np.random.<attr>`` attributes that are constructors, not global-state draws.
_CONSTRUCTOR_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_SEEDISH_PARAM_RE = re.compile(
    r"^(seed|rng|generator|seed_sequence|seeds)$|_seed$|_rng$|_sequences?$"
)

_ENTROPY_CALL_QNAMES = frozenset(
    {"time.time", "time.time_ns", "time.monotonic", "os.urandom", "os.getpid", "uuid.uuid4"}
)

_DOC_EXAMPLE_RE = re.compile(r"\b(?:np|numpy)\.random\.(\w+)\(")
_DOC_ALLOWED = frozenset({"Generator", "SeedSequence"})


def _qualified_name(node: ast.expr) -> str | None:
    """Dotted name of an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_np_random_call(node: ast.Call) -> str | None:
    """The ``<attr>`` of an ``np.random.<attr>(...)`` call, else None."""
    qname = _qualified_name(node.func)
    if qname is None:
        return None
    parts = qname.split(".")
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
        return parts[2]
    return None


def _in_library_scope(context: ModuleContext) -> bool:
    """src/repro and benchmarks, but never test code or the linter's fixtures."""
    if context.in_directory("tests") or context.in_directory("fixtures"):
        return False
    return context.in_directory("repro") or context.in_directory("benchmarks")


@register
class AmbientRngRule:
    """No ``np.random.<dist>()`` global-state draws."""

    rule_id = "rng-ambient"
    description = "no np.random module-level draws; thread a numpy Generator instead"

    def check(self, context: ModuleContext) -> list[Finding]:
        if not _in_library_scope(context):
            return []
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _is_np_random_call(node)
            if attr is not None and attr not in _CONSTRUCTOR_ATTRS:
                findings.append(
                    context.finding(
                        self.rule_id,
                        node,
                        f"ambient np.random.{attr}() draws from hidden global state; "
                        "use an explicitly threaded numpy Generator",
                    )
                )
        return findings


@register
class ArglessRngRule:
    """Argless ``default_rng()``/``SeedSequence()`` only inside ``utils/rng.py``."""

    rule_id = "rng-argless"
    description = (
        "argless default_rng()/SeedSequence() (fresh OS entropy) is only allowed "
        "in the sanctioned construction site utils/rng.py"
    )

    def check(self, context: ModuleContext) -> list[Finding]:
        if not _in_library_scope(context) or context.is_module("utils", "rng.py"):
            return []
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            qname = _qualified_name(node.func) or ""
            tail = qname.rsplit(".", 1)[-1]
            if tail in ("default_rng", "SeedSequence"):
                findings.append(
                    context.finding(
                        self.rule_id,
                        node,
                        f"argless {tail}() pulls fresh OS entropy; construct "
                        "generators through repro.utils.rng (ensure_rng/spawn_rngs)",
                    )
                )
        return findings


@register
class EntropySourceRule:
    """No stdlib ``random`` and no wall-clock/OS entropy as seed material."""

    rule_id = "rng-entropy"
    description = "no stdlib random module or time/os entropy feeding seeds in src/repro"

    def check(self, context: ModuleContext) -> list[Finding]:
        if not _in_library_scope(context) or context.in_directory("benchmarks"):
            return []
        findings = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            context.finding(
                                self.rule_id,
                                node,
                                "stdlib random module is unseedable from the repro "
                                "seed-threading convention; use numpy Generators",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        context.finding(
                            self.rule_id,
                            node,
                            "stdlib random module is unseedable from the repro "
                            "seed-threading convention; use numpy Generators",
                        )
                    )
            elif isinstance(node, ast.Call):
                qname = _qualified_name(node.func) or ""
                tail = qname.rsplit(".", 1)[-1]
                if tail not in ("default_rng", "SeedSequence", "ensure_rng"):
                    continue
                for arg in ast.walk(node):
                    if arg is node or not isinstance(arg, ast.Call):
                        continue
                    inner = _qualified_name(arg.func)
                    if inner in _ENTROPY_CALL_QNAMES:
                        findings.append(
                            context.finding(
                                self.rule_id,
                                node,
                                f"{inner}() as seed material is irreproducible; "
                                "accept a seed/Generator parameter instead",
                            )
                        )
        return findings


@register
class MissingSeedParamRule:
    """Functions that draw randomness must be seedable by their caller."""

    rule_id = "rng-missing-seed"
    description = (
        "a function that draws randomness must accept a generator/seed parameter "
        "or draw from generator state it owns"
    )

    def check(self, context: ModuleContext) -> list[Finding]:
        if not context.in_directory("repro") or context.in_directory("tests"):
            return []
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            findings.extend(self._check_function(context, node))
        return findings

    def _check_function(
        self, context: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        args = func.args
        param_names = {
            arg.arg
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *filter(None, [args.vararg, args.kwarg]),
            ]
        }
        if any(_SEEDISH_PARAM_RE.search(name) for name in param_names):
            return []

        # Names bound from parameters/self keep draws traceable to the caller.
        traceable = set(param_names) | {"self", "cls"}
        bound: set[str] = set(param_names)
        draw_calls: list[tuple[ast.Call, ast.expr]] = []
        for inner in ast.walk(func):
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)) and inner is not func:
                continue
            if isinstance(inner, ast.Assign):
                value_names = {
                    n.id for n in ast.walk(inner.value) if isinstance(n, ast.Name)
                }
                for target in inner.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            bound.add(name_node.id)
                            if value_names & traceable:
                                traceable.add(name_node.id)
            elif isinstance(inner, ast.Call) and isinstance(inner.func, ast.Attribute):
                if inner.func.attr in RNG_DRAW_ATTRS:
                    draw_calls.append((inner, inner.func.value))

        findings = []
        for call, receiver in draw_calls:
            root = receiver
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in traceable:
                continue
            if isinstance(root, ast.Name) and root.id[:1].isupper():
                continue  # classmethod/constructor (GridDistribution.uniform, ...)
            if (
                isinstance(root, ast.Name)
                and root.id not in bound
                and RNG_NAME_RE.search(root.id)
            ):
                continue  # closure over an rng threaded by the enclosing scope
            if any(
                keyword.arg and _SEEDISH_PARAM_RE.search(keyword.arg)
                for keyword in call.keywords
            ):
                continue  # the call itself is explicitly seeded
            if _is_np_random_receiver(receiver):
                continue  # already reported by rng-ambient
            findings.append(
                context.finding(
                    self.rule_id,
                    call,
                    f"{func.name} draws randomness from a source its caller cannot "
                    "seed; accept a seed/rng parameter and thread it through",
                )
            )
        return findings


def _is_np_random_receiver(node: ast.expr) -> bool:
    qname = _qualified_name(node)
    return qname in ("np.random", "numpy.random")


@register
class DocExampleRule:
    """Docstring examples must model the seed-threading convention."""

    rule_id = "rng-doc-example"
    description = (
        "docstring examples must thread seeds through repro APIs, not call "
        "np.random directly"
    )

    def check(self, context: ModuleContext) -> list[Finding]:
        if not context.in_directory("repro") or context.in_directory("tests"):
            return []
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            docstring_node = self._docstring_node(node)
            if docstring_node is None or not isinstance(docstring_node.value, str):
                continue
            start = docstring_node.lineno
            for offset, line in enumerate(docstring_node.value.splitlines()):
                for match in _DOC_EXAMPLE_RE.finditer(line):
                    if match.group(1) in _DOC_ALLOWED:
                        continue
                    findings.append(
                        context.finding(
                            self.rule_id,
                            start + offset,
                            f"docstring example calls np.random.{match.group(1)}(); "
                            "examples should pass seed= through repro APIs instead",
                        )
                    )
        return findings

    @staticmethod
    def _docstring_node(node: ast.AST) -> ast.Constant | None:
        body = getattr(node, "body", [])
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
        ):
            return body[0].value
        return None
