"""``agg-protocol``: mergeable-aggregate protocol conformance.

The sharded execution engine (``run_sharded``) and the sliding-window service
(``WindowedAggregator``) drive aggregate classes through a small structural
protocol:

* mutable aggregates: ``merge(self, other)``, ``subtract(self, other)`` and a
  ``state(self)`` snapshot — ``subtract`` without ``merge`` (or ``merge``
  without ``state``) means the window algebra silently cannot retire or
  checkpoint the class;
* functional aggregates (the generic-window protocol of
  :mod:`repro.streaming.protocol`): ``merged(self, other)`` and its exact inverse
  ``subtracted(self, other)``, plus the decay pair ``scaled(self, factor)`` /
  ``clamped(self)`` — ``subtracted`` without ``merged`` means a
  ``SlidingAggregateWindow`` can never have merged what it is asked to retire;
* shard runners: ``run_shard(self, task)``; spec classes (``*Spec``) build one
  via ``build(self)``.

Signature drift here does not fail fast — it surfaces later as a bit-identity
break between serial and sharded runs (or a window whose slide silently stops
being the exact inverse of its merge) — so the exact shapes are linted.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: method name -> exact positional parameter names required.
_EXACT_SIGNATURES = {
    "merge": ("self", "other"),
    "subtract": ("self", "other"),
    "merged": ("self", "other"),
    "subtracted": ("self", "other"),
    "scaled": ("self", "factor"),
    "clamped": ("self",),
    "run_shard": ("self", "task"),
}


def _positional_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    return tuple(arg.arg for arg in [*func.args.posonlyargs, *func.args.args])


def _has_star_args(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return func.args.vararg is not None or func.args.kwarg is not None


@register
class AggregateProtocolRule:
    rule_id = "agg-protocol"
    description = (
        "merge/subtract/state and merged/subtracted/scaled/clamped signatures "
        "must match the sharded-execution and generic-window protocols exactly"
    )

    def check(self, context: ModuleContext) -> list[Finding]:
        if not context.in_directory("repro") or context.in_directory("tests"):
            return []
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(context, node))
        return findings

    def _check_class(self, context: ModuleContext, cls: ast.ClassDef) -> list[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        findings: list[Finding] = []

        for name, expected in _EXACT_SIGNATURES.items():
            method = methods.get(name)
            if method is None:
                continue
            required = expected
            actual = _positional_names(method)
            if actual != required or _has_star_args(method) or method.args.kwonlyargs:
                findings.append(
                    context.finding(
                        self.rule_id,
                        method,
                        f"{cls.name}.{name} must have the exact signature "
                        f"({', '.join(required)}) to satisfy the aggregate protocol; "
                        f"found ({', '.join(actual)})",
                    )
                )

        if "subtract" in methods and "merge" not in methods:
            findings.append(
                context.finding(
                    self.rule_id,
                    methods["subtract"],
                    f"{cls.name} defines subtract() without merge(): the windowed "
                    "aggregator cannot retire shards it never merged",
                )
            )
        if "subtracted" in methods and "merged" not in methods:
            findings.append(
                context.finding(
                    self.rule_id,
                    methods["subtracted"],
                    f"{cls.name} defines subtracted() without merged(): a sliding "
                    "window can never have merged the epoch it is asked to retire",
                )
            )
        if "merge" in methods and "state" not in methods:
            findings.append(
                context.finding(
                    self.rule_id,
                    methods["merge"],
                    f"{cls.name} defines merge() without state(): sharded runs "
                    "cannot snapshot/compare this aggregate for bit-identity checks",
                )
            )
        state = methods.get("state")
        if state is not None and "merge" in methods:
            if _positional_names(state) != ("self",) or _has_star_args(state):
                findings.append(
                    context.finding(
                        self.rule_id,
                        state,
                        f"{cls.name}.state must take no arguments beyond self "
                        "(it is a pure snapshot of the aggregate)",
                    )
                )

        build = methods.get("build")
        if build is not None and cls.name.endswith("Spec"):
            if _positional_names(build) != ("self",) or _has_star_args(build):
                findings.append(
                    context.finding(
                        self.rule_id,
                        build,
                        f"{cls.name}.build must take no arguments beyond self "
                        "(run_sharded calls spec.build() once per worker)",
                    )
                )
        return findings
