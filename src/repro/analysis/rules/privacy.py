"""``priv-flow``: privacy-flow taint analysis for mechanism and oracle methods.

The invariant: inside a privatization entry point (``privatize*``/``respond*``/
``collect*``), the raw user data parameter must not flow to a ``return`` unless
it passed through a sanctioned randomization step.  This is exactly the bug
class of the PR 3 ``HDG.privatize_cells`` leak, where the TRUE coarse cell of a
random *subpopulation* of users was returned verbatim — the selection was
random, the reported values were not.

The analysis is a single forward pass over each checked function with a small
abstract value per name:

``tainted``
    May contain raw input data.
``random``
    Value of (or derived from) a sanctioned random draw.  Randomness *clears*
    taint when values are combined arithmetically (``values + noise``) but a
    random **mask** does not: selecting a subpopulation is not randomization.
``mask``
    Boolean array obtained by comparing a random draw (``rng.random(n) < p``).
``hard``
    Sticky taint a later random store cannot wash out — set when raw values are
    written into a slice/position of an output buffer (the HDG leak shape) or
    when raw values are revealed through a position leak (tainted index with a
    deterministic payload).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Parameter names that carry raw (pre-randomization) user data.
RAW_PARAM_NAMES = frozenset(
    {
        "values",
        "value",
        "cells",
        "input_cell",
        "input_cells",
        "points",
        "point",
        "buckets",
        "trajectories",
        "trajectory",
    }
)

#: Entry points subject to the taint check.
CHECKED_METHOD_RE = re.compile(r"^(privatize|respond|collect)")

#: Method calls that count as sanctioned randomization of their inputs: other
#: privatization entry points, and mechanism/operator ``sample`` methods.
SANCTIONED_METHOD_RE = re.compile(r"^(privatize|respond|collect)\w*$|^sample$")

#: Names whose call result is sanctioned randomness (helpers from utils/rng.py).
SANCTIONED_FUNCTIONS = frozenset(
    {
        "ensure_rng",
        "sample_categorical",
        "sample_grouped_inverse_cdf",
        "weighted_sample_index",
        "spawn_rngs",
        "generator_from_state",
    }
)

#: numpy.random.Generator drawing methods.
RNG_DRAW_ATTRS = frozenset(
    {
        "random",
        "choice",
        "integers",
        "uniform",
        "normal",
        "standard_normal",
        "laplace",
        "exponential",
        "gamma",
        "beta",
        "binomial",
        "multinomial",
        "poisson",
        "geometric",
        "shuffle",
        "permutation",
        "permuted",
        "dirichlet",
    }
)

#: Attribute reads that never carry data (metadata only).
CLEAN_ATTRS = frozenset({"shape", "ndim", "size", "dtype", "itemsize", "nbytes"})

RNG_NAME_RE = re.compile(r"^rng$|_rng$|^generator$|^parent$")

_MUTATING_METHODS = frozenset({"append", "extend", "insert", "add"})


@dataclass(frozen=True)
class Flags:
    """Abstract value attached to every expression and local name."""

    tainted: bool = False
    random: bool = False
    mask: bool = False
    hard: bool = False

    @property
    def leaks(self) -> bool:
        return self.hard or (self.tainted and not self.random)


CLEAN = Flags()


def _is_rng_expr(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and RNG_NAME_RE.search(node.id) is not None


class _FunctionTaint:
    """One forward taint pass over one checked function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.env: dict[str, Flags] = {}
        self.leaky_returns: list[ast.Return] = []
        args = func.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, [args.vararg, args.kwarg]),
        ]:
            if arg.arg in RAW_PARAM_NAMES:
                self.env[arg.arg] = Flags(tainted=True)
            elif RNG_NAME_RE.search(arg.arg):
                self.env[arg.arg] = Flags(random=True)

    # ------------------------------------------------------------------ driver
    def run(self) -> list[ast.Return]:
        self._visit_body(self.func.body)
        return self.leaky_returns

    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            flags = self._eval(stmt.value)
            for target in stmt.targets:
                self._store(target, flags)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._store(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._store_partial(stmt.target, self._eval(stmt.value), CLEAN)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            if self._eval(stmt.value).leaks:
                self.leaky_returns.append(stmt)
        elif isinstance(stmt, ast.Expr):
            self._visit_expr_stmt(stmt.value)
        elif isinstance(stmt, ast.For):
            self._store(stmt.target, replace(self._eval(stmt.iter), mask=False))
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._eval(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                flags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._store(item.optional_vars, flags)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
        # Nested function/class definitions are not followed.

    def _visit_expr_stmt(self, node: ast.expr) -> None:
        # list.append(x) and friends behave like a partial store into the receiver.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.args
        ):
            value_flags = self._eval(node.args[-1])
            self._merge_partial(node.func.value.id, value_flags, CLEAN)
        else:
            self._eval(node)

    # ------------------------------------------------------------------ stores
    def _store(self, target: ast.expr, flags: Flags) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = flags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, flags)
        elif isinstance(target, ast.Starred):
            self._store(target.value, flags)
        elif isinstance(target, ast.Subscript):
            self._store_partial(target, flags, self._eval(target.slice))
        # Attribute targets (self.x = ...) are untracked.

    def _store_partial(self, target: ast.expr, value: Flags, index: Flags) -> None:
        """A write into part of an existing value (``out[idx] = x``, ``x += y``)."""
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name):
            self._merge_partial(base.id, value, index)

    def _merge_partial(self, name: str, value: Flags, index: Flags) -> None:
        state = self.env.get(name, CLEAN)
        random = state.random or value.random
        tainted = state.tainted
        hard = state.hard
        if value.tainted and not value.random:
            # Raw values written into some positions of the output: sticky.
            tainted = hard = True
        elif index.tainted and not value.random:
            # Position of the write encodes the raw value (one-hot style leak).
            tainted = hard = True
        self.env[name] = Flags(tainted=tainted, random=random, hard=hard)

    # -------------------------------------------------------------- expressions
    def _eval(self, node: ast.expr) -> Flags:
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            if node.attr in CLEAN_ATTRS:
                return CLEAN
            return replace(self._eval(node.value), mask=False)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value)
            index = self._eval(node.slice)
            return Flags(
                tainted=value.tainted or index.tainted,
                random=value.random or (index.random and not index.mask),
                hard=value.hard,
            )
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._combine_arith([self._eval(node.left), self._eval(node.right)])
        if isinstance(node, ast.BoolOp):
            return self._combine_arith([self._eval(value) for value in node.values])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            operands = [self._eval(node.left)] + [self._eval(c) for c in node.comparators]
            if any(f.random for f in operands):
                return Flags(random=True, mask=True)
            if any(f.tainted for f in operands):
                return Flags(tainted=True, mask=True)
            return CLEAN
        if isinstance(node, ast.IfExp):
            return self._select(
                self._eval(node.test), self._eval(node.body), self._eval(node.orelse)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._union([self._eval(element) for element in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self._eval(v) for v in node.values if v is not None]
            parts += [self._eval(k) for k in node.keys if k is not None]
            return self._union(parts)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        # Fallback (comprehensions, f-strings, lambdas...): union over children.
        children = [child for child in ast.iter_child_nodes(node) if isinstance(child, ast.expr)]
        return self._union([self._eval(child) for child in children])

    def _eval_call(self, node: ast.Call) -> Flags:
        arg_nodes = list(node.args) + [kw.value for kw in node.keywords]
        arg_flags = [self._eval(arg) for arg in arg_nodes]
        func = node.func

        if isinstance(func, ast.Attribute):
            # np.where(test, a, b): values come from a/b; a random *test* does
            # not randomize them (subpopulation selection is not randomization).
            if (
                func.attr == "where"
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
                and len(node.args) >= 3
            ):
                test, a, b = (self._eval(arg) for arg in node.args[:3])
                return self._select(test, a, b)
            if func.attr in RNG_DRAW_ATTRS:
                # rng.choice(domain) over an input-derived candidate set is the
                # sanctioned randomization itself (DAM Algorithm 2 draws output
                # cells from geometry derived from the input cell), so draws
                # clear taint even when their domain argument is tainted.
                return Flags(random=True)
            if SANCTIONED_METHOD_RE.match(func.attr):
                return Flags(random=True)
            if func.attr in _MUTATING_METHODS:
                return CLEAN
            receiver = self._eval(func.value)
            return self._generic_call([receiver] + arg_flags, arg_nodes)

        if isinstance(func, ast.Name):
            if func.id in SANCTIONED_FUNCTIONS:
                return Flags(random=True)
            if func.id == "len":
                return CLEAN

        return self._generic_call(arg_flags, arg_nodes)

    def _generic_call(self, flags: list[Flags], arg_nodes: list[ast.expr]) -> Flags:
        """Unknown call: an rng-like/random argument makes the result random
        (perturbation helpers take the generator as an argument); otherwise
        taint and hardness propagate through."""
        if any(f.hard for f in flags):
            return Flags(tainted=True, hard=True)
        if any(f.random and not f.mask for f in flags) or any(
            _is_rng_expr(arg) for arg in arg_nodes
        ):
            return Flags(random=True)
        if any(f.tainted for f in flags):
            return Flags(tainted=True)
        return CLEAN

    @staticmethod
    def _combine_arith(flags: list[Flags]) -> Flags:
        """Arithmetic combination: adding/multiplying in a random term genuinely
        randomizes the result, so randomness wins over plain taint.  Hard taint
        (raw values sitting verbatim in some positions) is only cleared when the
        combination itself is random everywhere."""
        if any(f.random and not f.mask for f in flags):
            return Flags(random=True)
        return Flags(tainted=any(f.tainted for f in flags), hard=any(f.hard for f in flags))

    @staticmethod
    def _select(test: Flags, a: Flags, b: Flags) -> Flags:
        return Flags(
            tainted=a.tainted or b.tainted or test.tainted,
            random=a.random or b.random,
            hard=a.hard or b.hard,
        )

    @staticmethod
    def _union(flags: list[Flags]) -> Flags:
        return Flags(
            tainted=any(f.tainted for f in flags),
            random=any(f.random for f in flags),
            hard=any(f.hard for f in flags),
        )


@register
class PrivacyFlowRule:
    """Raw inputs of privatization entry points must be randomized before return."""

    rule_id = "priv-flow"
    description = (
        "raw input data of privatize*/respond*/collect* methods must pass through "
        "sanctioned randomization before being returned"
    )

    def _in_scope(self, context: ModuleContext) -> bool:
        if context.in_directory("tests"):
            return False
        return (
            context.in_directory("mechanisms")
            or context.in_directory("trajectory")
            or context.is_module("core", "estimator.py")
            or context.is_module("core", "grid_response.py")
            or context.is_module("core", "sam.py")
        )

    def check(self, context: ModuleContext) -> list[Finding]:
        if not self._in_scope(context):
            return []
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not CHECKED_METHOD_RE.match(node.name):
                continue
            tracker = _FunctionTaint(node)
            if not any(f.tainted for f in tracker.env.values()):
                continue  # no raw-data parameter to track
            for leaky in tracker.run():
                findings.append(
                    context.finding(
                        self.rule_id,
                        leaky,
                        f"{node.name}: raw input data may reach this return without "
                        "sanctioned randomization (random subpopulation selection "
                        "does not randomize the reported values)",
                    )
                )
        return findings
