"""Rule protocol and registry.

A rule is any object with a ``rule_id``, a one-line ``description`` and a
``check(context) -> list[Finding]`` method.  Rules register themselves into
:data:`RULES` at import time via the :func:`register` decorator; the engine and
the CLI discover them exclusively through this table, so adding a check is:
write a class, decorate it, done (~50 LoC per rule).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import ModuleContext
    from repro.analysis.findings import Finding


@runtime_checkable
class Rule(Protocol):
    """The plugin interface every lint rule implements."""

    rule_id: str
    description: str

    def check(self, context: "ModuleContext") -> "list[Finding]": ...


#: rule_id -> rule instance.  Populated by :func:`register` at import time.
RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate the rule and add it to :data:`RULES`."""
    rule = cls()
    if not isinstance(rule, Rule):
        raise TypeError(f"{cls.__name__} does not implement the Rule protocol")
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    RULES[rule.rule_id] = rule
    return cls


def get_rules(rule_ids: "list[str] | None" = None) -> "list[Rule]":
    """Resolve a rule-id selection (``None`` means every registered rule)."""
    # Import for the registration side effect; deferred to avoid an import cycle.
    import repro.analysis.rules  # noqa: F401

    if rule_ids is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    unknown = sorted(set(rule_ids) - set(RULES))
    if unknown:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule id(s) {', '.join(unknown)}; known rules: {known}")
    return [RULES[rule_id] for rule_id in sorted(set(rule_ids))]
