"""Per-module analysis context shared by every rule.

A :class:`ModuleContext` is built once per linted file and handed to each rule:
it owns the parsed AST, the raw source, the repo-relative path (for scoping
decisions such as "is this a mechanism module?") and the parsed inline
suppressions (``# repro-lint: disable=<rule-id>[,<rule-id>...]`` comments).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

#: Inline suppression syntax.  ``disable=all`` silences every rule on the line.
_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of rule ids suppressed on that line.

    Comments are found with :mod:`tokenize` (never by regexing raw source), so a
    suppression-looking string literal does not silence anything.  A comment
    suppresses findings anchored to its own line; multi-line statements carry
    the comment on the line the finding anchors to (the statement's first line).
    """
    suppressed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            rule_ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            suppressed.setdefault(token.start[0], set()).update(rule_ids)
    except tokenize.TokenizeError:  # pragma: no cover - unparseable files are skipped
        pass
    return suppressed


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one Python module."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, path: Path, display_path: str | None = None
    ) -> "ModuleContext":
        return cls(
            path=path,
            display_path=display_path if display_path is not None else path.as_posix(),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            suppressions=parse_suppressions(source),
        )

    @classmethod
    def from_file(cls, path: Path, display_path: str | None = None) -> "ModuleContext":
        return cls.from_source(path.read_text(encoding="utf-8"), path, display_path=display_path)

    # ------------------------------------------------------------------ helpers
    @property
    def parts(self) -> tuple[str, ...]:
        return self.path.parts

    def in_directory(self, name: str) -> bool:
        """Whether any path component equals ``name`` (e.g. ``"mechanisms"``)."""
        return name in self.parts

    def is_module(self, *trailing: str) -> bool:
        """Whether the path ends with the given components (e.g. ``"utils", "rng.py"``)."""
        return self.parts[-len(trailing) :] == trailing

    def finding(self, rule_id: str, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=self.display_path, line=int(line), rule_id=rule_id, message=message)

    def is_suppressed(self, finding: Finding) -> bool:
        rule_ids = self.suppressions.get(finding.line)
        if not rule_ids:
            return False
        return finding.rule_id in rule_ids or "all" in rule_ids
