"""Command-line interface: quick private estimation and figure regeneration.

Two subcommands cover the common workflows without writing Python:

``python -m repro estimate``
    Read ``x,y`` locations from a CSV file (or generate a synthetic dataset), run the
    DAM pipeline at a chosen budget and grid size, and print the estimated density map
    (optionally as an ASCII heat map) together with the Wasserstein error against the
    non-private histogram.  ``--backend`` switches between the structured
    transition-operator engine, the dense matrix and the ``native``
    :mod:`repro.kernels` tier; ``--chunk-size`` streams the
    points through the pipeline in bounded-memory shards; ``--workers`` privatizes
    the shards on a process pool (bit-identical to the serial run).

``python -m repro figure``
    Regenerate one of the paper's figures (``fig8``, ``fig9-small-d``, ``fig9-large-d``,
    ``fig9-small-eps``, ``fig9-large-eps``, ``fig13``) at laptop or smoke scale and
    print/export the series.  ``--workers`` fans the sweep cells out to a process
    pool and ``--cache-dir`` memoises every cell on disk, so repeated or
    interrupted sweeps only compute what is missing.

``python -m repro query``
    Serve a query workload from a private estimate: run the chosen mechanism once,
    then answer a batched range-query workload (plus top-k hotspots and quantile
    contours) through the summed-area-table :class:`~repro.queries.engine.QueryEngine`
    and report accuracy against the raw points together with serving throughput.
    ``--save-log``/``--replay`` persist and replay workloads; ``--workers`` fans the
    range batch out to a process pool.

``python -m repro trajectory``
    The trajectory workload at scale: generate an Appendix-D trajectory set from a
    point cloud, then ``--mode fit`` (sharded LDP report collection over a process
    pool, printing the estimated model), ``--mode synthesize`` (batched Markov-walk
    synthesis through :class:`~repro.trajectory.engine.TrajectoryEngine`, with
    point-density W2, OD/transition hotspots and optional CSV export) or
    ``--mode compare`` (the seven-step LDPTrace / PivotTrace / DAM comparison of
    Figure 14).  ``--workers`` shards the fit's report collection.

``python -m repro stream``
    The streaming session: generate a drifting scenario and run a sliding-window
    service over its epochs.  ``--workload point`` (default) streams point reports
    (shifting hotspot, appearing/vanishing cluster or diurnal mixture) through the
    :class:`~repro.streaming.StreamingEstimationService` — sharded per-epoch
    privatization (``--workers``), O(one epoch) window slides (``--window``,
    ``--decay``) and warm-started EM re-solves — reporting the per-epoch
    drift-tracking error, iteration counts and timings.  ``--workload trajectory``
    streams whole trajectories (commute shift, event surge or route closure)
    through the :class:`~repro.streaming.StreamingTrajectoryService`, refreshing
    the LDPTrace Markov model from the slid window's counts and publishing a fresh
    synthetic release each epoch, reporting the per-epoch point-density W2 against
    the surviving input window.  ``--save-log`` persists either session as a
    replayable JSON log; ``--replay`` re-runs a saved log's exact configuration
    and diffs the two sessions.

``python -m repro serve``
    Sustained concurrent ingest+serve: the streaming ingest loop publishes each
    epoch's window snapshot through shared memory
    (:class:`~repro.serving.shm.SnapshotWriter`) while a pool of
    ``--serve-workers`` processes answers a range-query workload against it
    (:class:`~repro.serving.ServingServer`) — reporting per-epoch throughput and
    p50/p99 batch latency, and verifying at the end that the workers' answers
    are bit-identical to the in-process serial engine.

``python -m repro lint``
    Run the :mod:`repro.analysis` static-analysis rules (privacy-flow taint, RNG
    determinism, aggregate-protocol conformance, benchmark conventions) over the
    given paths and print findings as text or JSON.  Exits non-zero when findings
    remain, which is how CI gates on it.

The CLI is intentionally thin: every subcommand delegates to the same public API the
examples and benchmarks use.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.backend import VALID_BACKENDS, WALK_BACKENDS
from repro.core.domain import GridSpec, SpatialDomain
from repro.core.parallel import DEFAULT_SHARD_SIZE, ParallelPipeline
from repro.core.pipeline import DAMPipeline, estimate_spatial_distribution
from repro.datasets.loader import DATASET_NAMES, load_dataset
from repro.datasets.synthetic import DRIFT_SCENARIOS
from repro.datasets.trajectories import TRAJECTORY_DRIFT_SCENARIOS, generate_trajectories
from repro.experiments.config import laptop_config, smoke_config
from repro.experiments.export import sweep_to_csv, sweep_to_json, sweep_to_markdown
from repro.experiments.figures import (
    figure8_radius_sweep,
    figure9_large_d,
    figure9_large_epsilon,
    figure9_small_d,
    figure9_small_epsilon,
    figure13_full_domain,
)
from repro.experiments.reporting import format_sweep
from repro.metrics.wasserstein import wasserstein2_auto
from repro.queries.engine import (
    QueryEngine,
    QueryLog,
    TrajectoryQueryEngine,
    WorkloadReplay,
)
from repro.queries.range_query import RangeQuery, RangeQueryWorkload
from repro.streaming import StreamingEstimationService, StreamingTrajectoryService
from repro.trajectory.adapter import (
    compare_trajectory_mechanism,
    trajectory_point_distribution,
)
from repro.trajectory.engine import TrajectoryEngine
from repro.utils.visual import ascii_heatmap, side_by_side

_FIGURES = {
    "fig8": figure8_radius_sweep,
    "fig9-small-d": figure9_small_d,
    "fig9-large-d": figure9_large_d,
    "fig9-small-eps": figure9_small_epsilon,
    "fig9-large-eps": figure9_large_epsilon,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Private spatial distribution estimation (Disk Area Mechanism reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    estimate = subparsers.add_parser("estimate", help="run the DAM pipeline on a point set")
    estimate.add_argument(
        "--input", type=Path, default=None, help="CSV file with one 'x,y' pair per line (no header)"
    )
    estimate.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default=None,
        help="use a built-in dataset surrogate instead of --input",
    )
    estimate.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="dataset scale when --dataset is used (default 0.02)",
    )
    estimate.add_argument("--epsilon", type=float, default=3.5, help="privacy budget")
    estimate.add_argument("--d", type=int, default=12, help="grid side length")
    estimate.add_argument("--mechanism", choices=("dam", "dam-ns", "huem"), default="dam")
    estimate.add_argument(
        "--backend",
        choices=VALID_BACKENDS,
        default="operator",
        help="transition backend: structured operator engine (default), "
             "the dense matrix, or the native kernel tier",
    )
    estimate.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="stream the points through the pipeline in shards of this "
             "size (bounded memory; same result as one batch)",
    )
    estimate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="privatize shards on this many worker processes "
             "(bit-identical to the serial run; default 1)",
    )
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument("--heatmap", action="store_true", help="print ASCII heat maps")

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("name", choices=sorted([*_FIGURES, "fig13"]))
    figure.add_argument(
        "--profile",
        choices=("laptop", "smoke"),
        default="smoke",
        help="experiment scale (default: smoke, for quick runs)",
    )
    figure.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan sweep cells out to this many worker processes "
             "(same numbers as the serial run; default 1)",
    )
    figure.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-addressed result cache directory; re-runs and "
             "interrupted sweeps only compute missing cells",
    )
    figure.add_argument("--csv", type=Path, default=None, help="write the series to a CSV file")
    figure.add_argument("--json", type=Path, default=None, help="write the series to a JSON file")
    figure.add_argument("--markdown", action="store_true", help="print a markdown table")

    query = subparsers.add_parser(
        "query", help="serve a range/hotspot query workload from a private estimate"
    )
    query.add_argument(
        "--input", type=Path, default=None, help="CSV file with one 'x,y' pair per line (no header)"
    )
    query.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default=None,
        help="use a built-in dataset surrogate instead of --input",
    )
    query.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="dataset scale when --dataset is used (default 0.02)",
    )
    query.add_argument("--epsilon", type=float, default=3.5, help="privacy budget")
    query.add_argument("--d", type=int, default=16, help="grid side length")
    query.add_argument("--mechanism", choices=("dam", "dam-ns", "huem"), default="dam")
    query.add_argument("--backend", choices=VALID_BACKENDS, default="operator")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--n-queries",
        type=int,
        default=2000,
        help="size of the generated range-query workload (default 2000)",
    )
    query.add_argument(
        "--min-fraction",
        type=float,
        default=0.05,
        help="smallest query side as a fraction of the domain",
    )
    query.add_argument(
        "--max-fraction",
        type=float,
        default=0.5,
        help="largest query side as a fraction of the domain",
    )
    query.add_argument(
        "--top-k", type=int, default=5, help="number of hotspot cells to report (0 disables)"
    )
    query.add_argument(
        "--quantiles",
        type=str,
        default="0.5,0.9",
        help="comma-separated quantile-contour levels ('' disables)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan the range batch out to this many worker processes",
    )
    query.add_argument(
        "--save-log",
        type=Path,
        default=None,
        help="persist the served workload as a .npz query log",
    )
    query.add_argument(
        "--replay",
        type=Path,
        default=None,
        help="replay a previously saved query log instead of generating one",
    )

    trajectory = subparsers.add_parser(
        "trajectory", help="fit, synthesize or compare private trajectory mechanisms"
    )
    trajectory.add_argument(
        "--mode",
        choices=("compare", "fit", "synthesize"),
        default="compare",
        help="compare mechanisms (default), fit the LDPTrace model, "
             "or fit + batched synthesis",
    )
    trajectory.add_argument(
        "--backend",
        choices=WALK_BACKENDS,
        default="operator",
        help="walk backend for --mode fit/synthesize: whole-array numpy "
             "(default) or the native kernel tier (bit-identical draws)",
    )
    trajectory.add_argument(
        "--input",
        type=Path,
        default=None,
        help="CSV file with one 'x,y' pair per line that seeds the "
             "trajectory workload",
    )
    trajectory.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default=None,
        help="use a built-in dataset surrogate instead of --input",
    )
    trajectory.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="dataset scale when --dataset is used (default 0.02)",
    )
    trajectory.add_argument(
        "--routing-d", type=int, default=60, help="side of the Appendix-D routing grid (default 60)"
    )
    trajectory.add_argument(
        "--n-trajectories",
        type=int,
        default=200,
        help="number of generated input trajectories (default 200)",
    )
    trajectory.add_argument(
        "--max-length", type=int, default=40, help="maximum trajectory length (default 40)"
    )
    trajectory.add_argument("--epsilon", type=float, default=1.5, help="privacy budget")
    trajectory.add_argument("--d", type=int, default=12, help="analysis grid side length")
    trajectory.add_argument(
        "--mechanism",
        choices=("ldptrace", "pivottrace", "dam", "all"),
        default="all",
        help="mechanism(s) for --mode compare (default all)",
    )
    trajectory.add_argument(
        "--n-output",
        type=int,
        default=None,
        help="number of synthesized trajectories "
             "(default: same as the input set)",
    )
    trajectory.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard LDP report collection over this many worker "
             "processes (default 1; numbers are worker-invariant)",
    )
    trajectory.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="OD/transition hotspots printed after synthesis "
             "(0 disables)",
    )
    trajectory.add_argument(
        "--save-output",
        type=Path,
        default=None,
        help="write synthesized trajectories as CSV rows of "
             "'trajectory_id,x,y'",
    )
    trajectory.add_argument("--seed", type=int, default=0)

    stream = subparsers.add_parser(
        "stream", help="run the sliding-window streaming service on a drifting scenario"
    )
    stream.add_argument(
        "--workload",
        choices=("point", "trajectory"),
        default="point",
        help="stream point reports through the EM service or trajectory "
             "reports through the LDPTrace service (default point)",
    )
    stream.add_argument(
        "--scenario",
        choices=sorted(DRIFT_SCENARIOS) + sorted(TRAJECTORY_DRIFT_SCENARIOS),
        default=None,
        help="drift shape of the generated stream (default shifting-hotspot "
             "for --workload point, commute-shift for --workload trajectory)",
    )
    stream.add_argument(
        "--epochs",
        type=int,
        default=20,
        help="number of collection epochs in the stream (default 20)",
    )
    stream.add_argument(
        "--users-per-epoch",
        type=int,
        default=2000,
        help="reports arriving per epoch (point workload; default 2000)",
    )
    stream.add_argument(
        "--trajectories-per-epoch",
        type=int,
        default=500,
        help="trajectories arriving per epoch (trajectory workload; default 500)",
    )
    stream.add_argument(
        "--max-length",
        type=int,
        default=30,
        help="maximum trajectory length in the generated stream "
             "(trajectory workload; default 30)",
    )
    stream.add_argument(
        "--n-synthetic",
        type=int,
        default=500,
        help="synthetic trajectories published per epoch "
             "(trajectory workload; default 500)",
    )
    stream.add_argument(
        "--window", type=int, default=8, help="sliding-window length in epochs (default 8)"
    )
    stream.add_argument(
        "--decay",
        type=float,
        default=None,
        help="optional exponential decay in (0, 1] applied per slide "
             "(default: hard window, no decay)",
    )
    stream.add_argument("--epsilon", type=float, default=3.5, help="privacy budget")
    stream.add_argument("--d", type=int, default=16, help="grid side length")
    stream.add_argument("--mechanism", choices=("dam", "dam-ns", "huem"), default="dam")
    stream.add_argument("--backend", choices=VALID_BACKENDS, default="operator")
    stream.add_argument(
        "--workers",
        type=int,
        default=1,
        help="privatize each epoch's shards on this many worker "
             "processes (bit-identical to the serial run; default 1)",
    )
    stream.add_argument(
        "--cold-start", action="store_true", help="disable the warm-started re-solve (ablation)"
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--save-log",
        type=Path,
        default=None,
        help="persist the session (config + per-epoch records) as a "
             "replayable JSON log",
    )
    stream.add_argument(
        "--replay",
        type=Path,
        default=None,
        help="re-run the exact configuration of a saved session log "
             "and diff the two sessions",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run sustained concurrent ingest+serve over a shared-memory snapshot",
    )
    serve.add_argument(
        "--scenario",
        choices=sorted(DRIFT_SCENARIOS),
        default="shifting-hotspot",
        help="drift shape of the generated stream (default shifting-hotspot)",
    )
    serve.add_argument(
        "--epochs",
        type=int,
        default=6,
        help="number of ingest epochs to serve through (default 6)",
    )
    serve.add_argument(
        "--users-per-epoch",
        type=int,
        default=2000,
        help="reports arriving per epoch (default 2000)",
    )
    serve.add_argument(
        "--window", type=int, default=4, help="sliding-window length in epochs (default 4)"
    )
    serve.add_argument(
        "--decay",
        type=float,
        default=None,
        help="optional exponential decay in (0, 1] applied per slide",
    )
    serve.add_argument("--epsilon", type=float, default=3.5, help="privacy budget")
    serve.add_argument("--d", type=int, default=16, help="grid side length")
    serve.add_argument("--mechanism", choices=("dam", "dam-ns", "huem"), default="dam")
    serve.add_argument("--backend", choices=VALID_BACKENDS, default="operator")
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="serving worker processes answering queries (default 2)",
    )
    serve.add_argument(
        "--queries-per-epoch",
        type=int,
        default=20_000,
        help="range queries served between consecutive publishes (default 20000)",
    )
    serve.add_argument(
        "--batch-rows",
        type=int,
        default=4096,
        help="rows per admitted query batch / coalesced worker task (default 4096)",
    )
    serve.add_argument(
        "--min-fraction",
        type=float,
        default=0.05,
        help="smallest query side as a fraction of the domain",
    )
    serve.add_argument(
        "--max-fraction",
        type=float,
        default=0.5,
        help="largest query side as a fraction of the domain",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--http",
        default=None,
        metavar="HOST:PORT",
        help="expose the serving tier over HTTP/1.1 at this address and route "
             "the query workload through it (port 0 picks a free port)",
    )

    lint = subparsers.add_parser(
        "lint", help="run the repro.analysis static-analysis rules over source paths"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src benchmarks)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE_ID",
        help="run only this rule id (repeatable); default: all rules",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format (default text)"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the registered rule ids and exit"
    )
    return parser


def _load_points(args) -> np.ndarray:
    if args.input is not None and args.dataset is not None:
        raise SystemExit("use either --input or --dataset, not both")
    if args.input is not None:
        points = np.loadtxt(args.input, delimiter=",", ndmin=2)
        if points.shape[1] != 2:
            raise SystemExit(f"expected two columns (x,y) in {args.input}")
        return points
    dataset_name = args.dataset or "Normal"
    dataset = load_dataset(dataset_name, scale=args.scale, seed=args.seed)
    return np.vstack([points for _, points, _ in dataset.parts])


def _run_estimate(args) -> int:
    points = _load_points(args)
    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if args.chunk_size is not None and args.chunk_size < 1:
        raise SystemExit("--chunk-size must be a positive integer")
    if args.workers > 1:
        domain = SpatialDomain.from_points(points, relative_pad=1e-9)
        pipeline = ParallelPipeline(
            domain,
            args.d,
            args.epsilon,
            mechanism=args.mechanism,
            backend=args.backend,
            workers=args.workers,
            shard_size=args.chunk_size or DEFAULT_SHARD_SIZE,
        )
        result = pipeline.run(points, seed=args.seed)
    elif args.chunk_size is not None:
        domain = SpatialDomain.from_points(points, relative_pad=1e-9)
        pipeline = DAMPipeline(
            domain, args.d, args.epsilon, mechanism=args.mechanism, backend=args.backend
        )
        n_chunks = max(1, -(-points.shape[0] // args.chunk_size))
        result = pipeline.run_stream(np.array_split(points, n_chunks), seed=args.seed)
    else:
        result = estimate_spatial_distribution(
            points,
            epsilon=args.epsilon,
            d=args.d,
            mechanism=args.mechanism,
            backend=args.backend,
            seed=args.seed,
        )
    error = wasserstein2_auto(result.true_distribution, result.estimate)
    print(f"users: {result.n_users}   mechanism: {result.mechanism}   "
          f"epsilon: {args.epsilon}   d: {args.d}   b_hat: {result.b_hat}")
    print(f"W2(true, estimate) = {error:.4f}")
    if args.heatmap:
        print(
            side_by_side(
                ascii_heatmap(result.true_distribution.probabilities, title="true"),
                ascii_heatmap(result.estimate.probabilities, title="estimated"),
            )
        )
    else:
        np.set_printoptions(precision=4, suppress=True)
        print(result.estimate.probabilities)
    return 0


def _run_query(args) -> int:
    points = _load_points(args)
    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if args.n_queries < 1:
        raise SystemExit("--n-queries must be a positive integer")
    result = estimate_spatial_distribution(
        points,
        epsilon=args.epsilon,
        d=args.d,
        mechanism=args.mechanism,
        backend=args.backend,
        seed=args.seed,
    )
    engine = QueryEngine(result.estimate)
    domain = result.estimate.grid.domain
    if args.replay is not None:
        log = QueryLog.load(args.replay)
    else:
        levels = [float(v) for v in args.quantiles.split(",") if v.strip()]
        log = QueryLog.random(
            domain,
            n_range=args.n_queries,
            n_top_k=1 if args.top_k > 0 else 0,
            n_quantiles=len(levels),
            n_marginals=1,
            min_fraction=args.min_fraction,
            max_fraction=args.max_fraction,
            seed=args.seed,
        )
        if levels:
            log.quantile_levels = np.asarray(levels, dtype=float)
        if args.top_k > 0:
            log.top_k = np.asarray([args.top_k], dtype=np.int64)
    if args.save_log is not None:
        log.save(args.save_log)
        print(f"wrote {args.save_log}")

    with WorkloadReplay(engine, workers=args.workers) as replay:
        report, answers = replay.replay(log)
    print(f"users: {result.n_users}   mechanism: {result.mechanism}   "
          f"epsilon: {args.epsilon}   d: {args.d}")
    print(report.format())

    if "range_mass" in answers:
        # Accuracy against the raw (pre-privatization) points, the range-query metric
        # of the HIO/HDG/AHEAD literature.
        in_domain = points[domain.contains(points)]
        workload = RangeQueryWorkload(
            queries=[RangeQuery(*row) for row in log.range_queries]
        )
        errors = np.abs(answers["range_mass"] - workload.true_answers(in_domain))
        print(f"range-query MAE vs raw points: {errors.mean():.4f}   "
              f"p95: {np.quantile(errors, 0.95):.4f}")
    if "top_k" in answers and answers["top_k"]:
        hotspots = answers["top_k"][-1]
        print("hotspots (mass @ centre):")
        for mass, centre in zip(hotspots.masses, hotspots.centers):
            print(f"  {mass:.4f} @ ({centre[0]:.3f}, {centre[1]:.3f})")
    if "quantiles" in answers:
        for contour in answers["quantiles"]:
            print(f"{contour.level:.0%} of mass concentrates in {contour.n_cells} "
                  f"of {engine.grid.n_cells} cells")
    return 0


def _generate_trajectory_workload(args):
    points = _load_points(args)
    domain = SpatialDomain.from_points(points, relative_pad=1e-9)
    dataset = generate_trajectories(
        points,
        domain,
        routing_d=args.routing_d,
        n_trajectories=args.n_trajectories,
        max_length=args.max_length,
        seed=args.seed,
    )
    lengths = dataset.lengths()
    print(f"workload: {dataset.size} trajectories   "
          f"lengths {lengths.min()}..{lengths.max()} (mean {lengths.mean():.1f})   "
          f"points: {dataset.all_points().shape[0]}")
    return dataset, domain


def _print_model_summary(model, grid) -> None:
    lengths = model.length_distribution
    starts = model.start_distribution
    directions = model.direction_distribution
    print(f"length distribution over {lengths.shape[0]} buckets "
          f"(spanning [{model.length_buckets[0]:.0f}, {model.length_buckets[-1]:.0f}]):")
    print("  " + " ".join(f"{p:.3f}" for p in lengths))
    top = np.argsort(starts)[::-1][:5]
    print("top start cells (mass @ row,col):")
    for cell in top:
        print(f"  {starts[cell]:.4f} @ ({cell // grid.d}, {cell % grid.d})")
    print("direction distribution (row-major 3x3, centre = stay):")
    for row in range(3):
        print("  " + " ".join(f"{directions[row * 3 + col]:.3f}" for col in range(3)))


def _run_trajectory(args) -> int:
    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if args.n_trajectories < 1:
        raise SystemExit("--n-trajectories must be a positive integer")
    if args.n_output is not None and args.n_output < 0:
        raise SystemExit("--n-output must be non-negative")
    dataset, domain = _generate_trajectory_workload(args)

    if args.mode == "compare":
        names = (
            ("ldptrace", "pivottrace", "dam")
            if args.mechanism == "all"
            else (args.mechanism,)
        )
        print(f"epsilon: {args.epsilon}   d: {args.d}   "
              f"(trajectory point-density W2, lower is better)")
        for name in names:
            start = time.perf_counter()
            result = compare_trajectory_mechanism(
                name,
                dataset.trajectories,
                domain,
                args.d,
                args.epsilon,
                seed=args.seed,
                workers=args.workers,
            )
            elapsed = time.perf_counter() - start
            print(f"  {result.mechanism:<11} W2 = {result.w2:.4f}   ({elapsed:.2f} s)")
        return 0

    grid = GridSpec(domain, args.d)
    engine = TrajectoryEngine.build(
        grid, args.epsilon, max_length=args.max_length, backend=args.backend
    )
    start = time.perf_counter()
    model = engine.fit(dataset.trajectories, seed=args.seed, workers=args.workers)
    fit_seconds = time.perf_counter() - start
    fit_rate = dataset.size / fit_seconds if fit_seconds > 0 else float("inf")
    print(f"fit: {dataset.size} trajectories in {fit_seconds:.3f} s "
          f"({fit_rate:,.0f} trajectories/s)   "
          f"epsilon: {args.epsilon}   d: {args.d}   workers: {args.workers}")
    if args.mode == "fit":
        _print_model_summary(model, grid)
        return 0

    count = dataset.size if args.n_output is None else args.n_output
    start = time.perf_counter()
    synthetic = engine.synthesize(model, count, seed=args.seed + 1)
    synth_seconds = time.perf_counter() - start
    rate = count / synth_seconds if synth_seconds > 0 else float("inf")
    print(f"synthesized {count} trajectories in {synth_seconds:.3f} s "
          f"({rate:,.0f} trajectories/s)")
    if synthetic:
        true_distribution = trajectory_point_distribution(dataset.trajectories, grid)
        serving = TrajectoryQueryEngine(synthetic, grid)
        w2 = wasserstein2_auto(true_distribution, serving.estimate)
        print(f"point-density W2 vs input trajectories: {w2:.4f}")
        if args.top_k > 0:
            od = serving.od_top_k(args.top_k)
            print("top origin->destination cells (count: row,col -> row,col):")
            for from_cell, to_cell, n in zip(od.from_cells, od.to_cells, od.counts):
                print(f"  {n:5.0f}: ({from_cell // grid.d}, {from_cell % grid.d}) -> "
                      f"({to_cell // grid.d}, {to_cell % grid.d})")
            counts, edges = serving.length_histogram(bins=8)
            print("length histogram: " + " ".join(
                f"[{lo:.0f},{hi:.0f}):{n}"
                for lo, hi, n in zip(edges[:-1], edges[1:], counts)
            ))
    if args.save_output is not None:
        rows = np.vstack([
            np.column_stack([np.full(t.shape[0], i, dtype=float), t])
            for i, t in enumerate(synthetic)
        ]) if synthetic else np.empty((0, 3))
        np.savetxt(args.save_output, rows, delimiter=",", fmt="%.10g")
        print(f"wrote {args.save_output}")
    return 0


def _stream_session(config: dict) -> tuple[dict, list[dict]]:
    """Run one streaming session from a plain config dict; return (config, records).

    The config is everything needed to reproduce the session exactly (scenario,
    sizes, budget, seed, ...), which is what makes the JSON logs replayable.
    """
    stream = DRIFT_SCENARIOS[config["scenario"]](
        n_epochs=config["epochs"],
        users_per_epoch=config["users_per_epoch"],
        seed=config["seed"],
    )
    service = StreamingEstimationService.build(
        stream.domain,
        config["d"],
        config["epsilon"],
        mechanism=config["mechanism"],
        backend=config["backend"],
        workers=config["workers"],
        window_epochs=config["window"],
        decay=config["decay"],
        warm_start=config["warm_start"],
        seed=config["seed"] + 1,
    )
    records = []
    for points in stream.epochs:
        update = service.ingest_epoch(points)
        truth = service.window.true_distribution()
        mae = float(np.abs(update.estimate.flat() - truth.flat()).mean())
        records.append(
            {
                "epoch": update.epoch,
                "n_users_epoch": update.n_users_epoch,
                "n_users_window": update.n_users_window,
                "iterations": update.iterations,
                "log_likelihood": update.log_likelihood,
                "mae": mae,
                "slide_ms": (update.slide_seconds + update.solve_seconds) * 1e3,
            }
        )
    return config, records


def _stream_trajectory_session(config: dict) -> tuple[dict, list[dict]]:
    """Run one trajectory streaming session from a plain config dict.

    The trajectory twin of :func:`_stream_session`: drives the
    :class:`~repro.streaming.StreamingTrajectoryService` over a drifting movement
    scenario and scores each published release's point density against the
    (non-private) surviving window of input trajectories.
    """
    stream = TRAJECTORY_DRIFT_SCENARIOS[config["scenario"]](
        n_epochs=config["epochs"],
        trajectories_per_epoch=config["trajectories_per_epoch"],
        max_length=config["max_length"],
        seed=config["seed"],
    )
    service = StreamingTrajectoryService.build(
        stream.domain,
        config["d"],
        config["epsilon"],
        max_length=config["max_length"],
        window_epochs=config["window"],
        decay=config["decay"],
        n_synthetic=config["n_synthetic"],
        workers=config["workers"],
        seed=config["seed"] + 1,
    )
    records = []
    for epoch_index, trajectories in enumerate(stream.epochs):
        update = service.ingest_epoch(trajectories)
        truth = trajectory_point_distribution(
            stream.window_trajectories(epoch_index, config["window"]), service.grid
        )
        w2 = wasserstein2_auto(service.serving.estimate, truth)
        records.append(
            {
                "epoch": update.epoch,
                "n_users_epoch": update.n_users_epoch,
                "n_users_window": update.n_users_window,
                "w2": float(w2),
                "slide_ms": (update.slide_seconds + update.refresh_seconds) * 1e3,
                "publish_ms": update.publish_seconds * 1e3,
            }
        )
    return config, records


def _run_stream(args) -> int:
    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if args.epochs < 1:
        raise SystemExit("--epochs must be a positive integer")
    if args.users_per_epoch < 1:
        raise SystemExit("--users-per-epoch must be a positive integer")
    if args.trajectories_per_epoch < 1:
        raise SystemExit("--trajectories-per-epoch must be a positive integer")
    if args.n_synthetic < 1:
        raise SystemExit("--n-synthetic must be a positive integer")
    if args.window < 1:
        raise SystemExit("--window must be a positive integer")
    if args.decay is not None and not 0.0 < args.decay <= 1.0:
        raise SystemExit("--decay must lie in (0, 1]")
    scenarios = DRIFT_SCENARIOS if args.workload == "point" else TRAJECTORY_DRIFT_SCENARIOS
    scenario = args.scenario
    if scenario is None:
        scenario = "shifting-hotspot" if args.workload == "point" else "commute-shift"
    if scenario not in scenarios:
        raise SystemExit(
            f"--scenario {scenario} belongs to the other workload; "
            f"--workload {args.workload} offers: {', '.join(sorted(scenarios))}"
        )
    if args.replay is not None:
        config = json.loads(Path(args.replay).read_text())["config"]
    elif args.workload == "point":
        config = {
            "workload": "point",
            "scenario": scenario,
            "epochs": args.epochs,
            "users_per_epoch": args.users_per_epoch,
            "window": args.window,
            "decay": args.decay,
            "epsilon": args.epsilon,
            "d": args.d,
            "mechanism": args.mechanism,
            "backend": args.backend,
            "workers": args.workers,
            "warm_start": not args.cold_start,
            "seed": args.seed,
        }
    else:
        config = {
            "workload": "trajectory",
            "scenario": scenario,
            "epochs": args.epochs,
            "trajectories_per_epoch": args.trajectories_per_epoch,
            "max_length": args.max_length,
            "n_synthetic": args.n_synthetic,
            "window": args.window,
            "decay": args.decay,
            "epsilon": args.epsilon,
            "d": args.d,
            "workers": args.workers,
            "seed": args.seed,
        }
    # Logs written before the trajectory workload existed carry no key: point.
    workload = config.get("workload", "point")
    if workload == "point":
        size = f"{config['epochs']} x {config['users_per_epoch']} users"
    else:
        size = f"{config['epochs']} x {config['trajectories_per_epoch']} trajectories"
    print(f"workload: {workload}   scenario: {config['scenario']}   epochs: {size}"
          f"   window: {config['window']} epochs"
          + (f"   decay: {config['decay']}" if config["decay"] else "")
          + f"   epsilon: {config['epsilon']}   d: {config['d']}   "
          f"workers: {config['workers']}")
    start = time.perf_counter()
    if workload == "point":
        config, records = _stream_session(config)
    else:
        config, records = _stream_trajectory_session(config)
    elapsed = time.perf_counter() - start
    if workload == "point":
        print(f"{'epoch':>5} {'users(win)':>11} {'EM iters':>8} {'MAE':>9} {'slide ms':>9}")
        for record in records:
            print(f"{record['epoch']:>5} {record['n_users_window']:>11.0f} "
                  f"{record['iterations']:>8} {record['mae']:>9.5f} "
                  f"{record['slide_ms']:>9.2f}")
        mean_mae = float(np.mean([r["mae"] for r in records]))
        total_iterations = sum(r["iterations"] for r in records)
        print(f"mean MAE: {mean_mae:.5f}   total EM iterations: {total_iterations}   "
              f"{len(records) / elapsed:.1f} epochs/s")
    else:
        print(f"{'epoch':>5} {'users(win)':>11} {'W2':>9} {'slide ms':>9} {'publish ms':>10}")
        for record in records:
            print(f"{record['epoch']:>5} {record['n_users_window']:>11.0f} "
                  f"{record['w2']:>9.4f} {record['slide_ms']:>9.2f} "
                  f"{record['publish_ms']:>10.2f}")
        mean_w2 = float(np.mean([r["w2"] for r in records]))
        print(f"mean W2: {mean_w2:.4f}   {len(records) / elapsed:.1f} epochs/s")
    if args.replay is not None:
        logged = json.loads(Path(args.replay).read_text())["epochs"]
        if len(logged) != len(records):
            raise SystemExit(
                f"replay mismatch: log has {len(logged)} epochs, session produced "
                f"{len(records)}"
            )
        if workload == "point":
            max_drift = max(
                abs(new["mae"] - old["mae"]) for new, old in zip(records, logged)
            )
            iterations_match = all(
                new["iterations"] == old["iterations"]
                for new, old in zip(records, logged)
            )
            print(f"replay of {args.replay}: max |MAE - logged| = {max_drift:.2e}   "
                  f"iterations {'identical' if iterations_match else 'DIFFER'}")
        else:
            max_drift = max(
                abs(new["w2"] - old["w2"]) for new, old in zip(records, logged)
            )
            print(f"replay of {args.replay}: max |W2 - logged| = {max_drift:.2e}")
    if args.save_log is not None:
        args.save_log.write_text(
            json.dumps({"config": config, "epochs": records}, indent=2) + "\n"
        )
        print(f"wrote {args.save_log}")
    return 0


def _run_figure(args) -> int:
    config = smoke_config() if args.profile == "smoke" else laptop_config()
    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    config = config.with_overrides(
        workers=args.workers,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
    )
    if args.name == "fig13":
        sweeps = figure13_full_domain(config)
        for key, sweep in sweeps.items():
            print(f"\n[{key}]")
            print(format_sweep(sweep))
        return 0
    sweep = _FIGURES[args.name](config)
    print(format_sweep(sweep))
    if args.markdown:
        print()
        print(sweep_to_markdown(sweep))
    if args.csv is not None:
        sweep_to_csv(sweep, args.csv)
        print(f"wrote {args.csv}")
    if args.json is not None:
        sweep_to_json(sweep, args.json)
        print(f"wrote {args.json}")
    return 0


def _run_serve(args) -> int:
    # Imported here: the serving tier pulls in multiprocessing machinery that
    # the other (single-process) subcommands never need.
    from repro.serving import ServingServer

    if args.serve_workers < 1:
        raise SystemExit("--serve-workers must be a positive integer")
    if args.epochs < 1:
        raise SystemExit("--epochs must be a positive integer")
    if args.users_per_epoch < 1:
        raise SystemExit("--users-per-epoch must be a positive integer")
    if args.queries_per_epoch < 1:
        raise SystemExit("--queries-per-epoch must be a positive integer")
    if args.batch_rows < 1:
        raise SystemExit("--batch-rows must be a positive integer")
    if args.window < 1:
        raise SystemExit("--window must be a positive integer")
    if args.decay is not None and not 0.0 < args.decay <= 1.0:
        raise SystemExit("--decay must lie in (0, 1]")
    http_host = http_port = None
    if args.http is not None:
        http_host, _, port_text = args.http.rpartition(":")
        if not http_host or not port_text.isdigit():
            raise SystemExit("--http must be HOST:PORT (e.g. 127.0.0.1:8080)")
        http_port = int(port_text)

    stream = DRIFT_SCENARIOS[args.scenario](
        n_epochs=args.epochs,
        users_per_epoch=args.users_per_epoch,
        seed=args.seed,
    )
    grid = GridSpec(stream.domain, args.d)
    print(f"scenario: {args.scenario}   epochs: {args.epochs} x "
          f"{args.users_per_epoch} users   window: {args.window} epochs   "
          f"epsilon: {args.epsilon}   d: {args.d}   "
          f"serve workers: {args.serve_workers}   "
          f"queries/epoch: {args.queries_per_epoch}")
    with ServingServer(
        grid, workers=args.serve_workers, coalesce_rows=args.batch_rows
    ) as server:
        service = StreamingEstimationService.build(
            stream.domain,
            args.d,
            args.epsilon,
            mechanism=args.mechanism,
            backend=args.backend,
            window_epochs=args.window,
            decay=args.decay,
            seed=args.seed + 1,
            snapshot_writer=server.writer,
        )
        server.start()
        front = client = None
        if args.http is not None:
            from repro.serving import HttpQueryClient, HttpServingFront
            from repro.serving.wire import QueryKind, QueryRequest

            front = HttpServingFront(server, host=http_host, port=http_port).start()
            client = HttpQueryClient(front.host, front.port)
            print(f"HTTP front listening on {front.address}")

        def serve_rows(rows: np.ndarray) -> np.ndarray:
            """One served batch — over HTTP when a front is up, else in-process."""
            if client is None:
                return server.range_mass(rows)
            response = client.query(
                QueryRequest(QueryKind.RANGE_MASS, {"queries": rows.tolist()})
            )
            return np.asarray(response.result)

        try:
            workload_rng = np.random.default_rng(args.seed + 2)
            print(f"{'epoch':>5} {'EM iters':>8} {'queries/s':>12} "
                  f"{'p50 ms':>9} {'p99 ms':>9} {'gen':>5}")
            total_queries = 0
            total_seconds = 0.0
            last_log = None
            for points in stream.epochs:
                update = service.ingest_epoch(points)
                log = QueryLog.random(
                    stream.domain,
                    n_range=args.queries_per_epoch,
                    min_fraction=args.min_fraction,
                    max_fraction=args.max_fraction,
                    seed=workload_rng,
                )
                last_log = log
                batches = np.array_split(
                    log.range_queries,
                    max(1, -(-log.range_queries.shape[0] // args.batch_rows)),
                )
                latencies = np.empty(len(batches))
                for index, batch in enumerate(batches):
                    start = time.perf_counter()
                    serve_rows(batch)
                    latencies[index] = time.perf_counter() - start
                elapsed = float(latencies.sum())
                total_queries += log.range_queries.shape[0]
                total_seconds += elapsed
                rate = (
                    log.range_queries.shape[0] / elapsed if elapsed > 0 else float("inf")
                )
                print(f"{update.epoch:>5} {update.iterations:>8} {rate:>12,.0f} "
                      f"{np.quantile(latencies, 0.5) * 1e3:>9.3f} "
                      f"{np.quantile(latencies, 0.99) * 1e3:>9.3f} "
                      f"{server.generation:>5}")
            # Verification: re-serve the final epoch's workload and diff against
            # the in-process serial engine on the same published window.
            served = serve_rows(last_log.range_queries)
            serial = service.serving.snapshot().range_mass(last_log.range_queries)
            identical = bool(np.array_equal(served, serial))
            rate = total_queries / total_seconds if total_seconds > 0 else float("inf")
            surface = "HTTP front" if client is not None else "worker"
            print(f"served {total_queries} queries across {args.epochs} publishes "
                  f"at {rate:,.0f} queries/s aggregate")
            print(f"{surface} answers bit-identical to in-process engine: "
                  f"{'yes' if identical else 'NO'}")
            if not identical:
                return 1
        finally:
            if client is not None:
                client.close()
            if front is not None:
                front.stop()
    return 0


def _run_lint(args) -> int:
    # Imported lazily: linting is a dev workflow and the analysis package pulls
    # in nothing heavy, but keeping it out of the hot CLI paths is free.
    from repro.analysis import get_rules, lint_paths, render_json, render_text

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.rule_id:<18} {rule.description}")
        return 0
    paths = args.paths or [Path("src"), Path("benchmarks")]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        raise SystemExit(f"no such path(s): {', '.join(missing)}")
    try:
        findings = lint_paths(paths, rule_ids=args.rule)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    if args.format == "json":
        sys.stdout.write(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the tests."""
    args = build_parser().parse_args(argv)
    if args.command == "estimate":
        return _run_estimate(args)
    if args.command == "figure":
        return _run_figure(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "trajectory":
        return _run_trajectory(args)
    if args.command == "stream":
        return _run_stream(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "lint":
        return _run_lint(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
