"""repro — a reproduction of "Numerical Estimation of Spatial Distributions under
Differential Privacy" (ICDE 2025).

The library implements the paper's Disk Area Mechanism (DAM) for private spatial
distribution estimation under Local Differential Privacy, together with every substrate
and baseline its evaluation depends on:

* ``repro.core`` — SAM / HUEM / DAM (continuous and grid-discretised), radius selection,
  shrinkage geometry, GridAreaResponse, EM post-processing and the end-to-end pipeline;
* ``repro.mechanisms`` — the baselines: categorical frequency oracles, Square Wave /
  MDSW, Geo-I, SEM-Geo-I, SR/PM and HDG;
* ``repro.metrics`` — exact and Sinkhorn Wasserstein distances, sliced Wasserstein /
  Radon transforms, divergences and the Local Privacy calibration;
* ``repro.datasets`` — the synthetic datasets and surrogates for Chicago Crime / NYC
  Taxi, plus the Appendix-D trajectory generator;
* ``repro.queries`` — the range-query engines and the summed-area-table serving
  subsystem (``QueryEngine``, ``TrajectoryQueryEngine``, ``WorkloadReplay``);
* ``repro.trajectory`` — LDPTrace, PivotTrace, the vectorized batch engine
  (``TrajectoryEngine``) and the trajectory-to-point adapter;
* ``repro.streaming`` — the generic sliding window over the mergeable-aggregate
  protocol (``SlidingAggregateWindow``) and the long-lived sessions built on it:
  ``StreamingEstimationService`` (point estimates, warm-started EM) and
  ``StreamingTrajectoryService`` (LDPTrace under movement drift), both publishing
  through atomic serving swaps;
* ``repro.serving`` — the concurrent serving tier: window snapshots published
  zero-copy through shared memory behind a seqlock generation counter
  (``SnapshotWriter``/``SnapshotReader``) and a multi-process worker pool with a
  bounded admission/batching front-end (``ServingServer``);
* ``repro.kernels`` — the native kernel tier behind ``backend="native"``: fused
  stencil-convolution EM matvecs (numba JIT when importable, recorded pure-numpy
  FFT fallback), the bisection order-statistics sampler and the batched Markov
  walk, all drop-in replacements validated by a differential parity suite;
* ``repro.experiments`` — the parameter grids, the sweep runner and one entry point per
  table/figure of the evaluation.

Quickstart::

    from repro import estimate_spatial_distribution
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(0)                        # one threaded Generator, end to end
    locations = rng.normal(0.5, 0.1, size=(10_000, 2))
    result = estimate_spatial_distribution(locations, epsilon=2.0, d=10, seed=rng)
    print(result.estimate.probabilities)       # the privately estimated density map
"""

from repro.core import (
    DAMPipeline,
    DiscreteDAM,
    DiscreteDAMNoShrink,
    DiscreteHUEM,
    GridDistribution,
    GridSpec,
    ParallelPipeline,
    PipelineResult,
    SpatialDomain,
    estimate_spatial_distribution,
    grid_radius,
    optimal_radius,
)
from repro.metrics import sliced_wasserstein, wasserstein2_auto, wasserstein2_grid
from repro.queries import (
    QueryEngine,
    QueryLog,
    RangeQuery,
    RangeQueryWorkload,
    StreamingQueryEngine,
    StreamingTrajectoryQueryEngine,
    SummedAreaTable,
    TrajectoryQueryEngine,
    WorkloadReplay,
)
from repro.serving import (
    HttpQueryClient,
    HttpServingFront,
    ServingServer,
    SnapshotReader,
    SnapshotWriter,
)
from repro.streaming import (
    SlidingAggregateWindow,
    StreamingEstimationService,
    StreamingTrajectoryService,
    WindowedAggregator,
)
from repro.trajectory import TrajectoryEngine

__version__ = "1.9.0"

__all__ = [
    "DAMPipeline",
    "ParallelPipeline",
    "DiscreteDAM",
    "DiscreteDAMNoShrink",
    "DiscreteHUEM",
    "GridDistribution",
    "GridSpec",
    "PipelineResult",
    "SpatialDomain",
    "estimate_spatial_distribution",
    "grid_radius",
    "optimal_radius",
    "QueryEngine",
    "HttpQueryClient",
    "HttpServingFront",
    "QueryLog",
    "RangeQuery",
    "RangeQueryWorkload",
    "ServingServer",
    "SlidingAggregateWindow",
    "SnapshotReader",
    "SnapshotWriter",
    "StreamingEstimationService",
    "StreamingQueryEngine",
    "StreamingTrajectoryQueryEngine",
    "StreamingTrajectoryService",
    "SummedAreaTable",
    "TrajectoryEngine",
    "TrajectoryQueryEngine",
    "WindowedAggregator",
    "WorkloadReplay",
    "sliced_wasserstein",
    "wasserstein2_auto",
    "wasserstein2_grid",
    "__version__",
]
