"""Private spatial range queries on top of the distribution estimators.

The paper's related-work section points out that DAM "can combine with the methods of
HIO, HDG and AHEAD to further improve the accuracy in private range query".  This
module implements that combination:

* :class:`FlatRangeQueryEngine` — answer rectangular range queries directly from any
  mechanism's estimated grid distribution (the obvious baseline: sum the estimated cell
  masses inside the rectangle).
* :class:`HierarchicalRangeQueryEngine` — an HIO/AHEAD-style hierarchy: user groups
  report at different granularities (coarse to fine) through DAM, the analyst keeps one
  estimate per level and answers a query from the coarsest cells that fit inside it,
  refining only along the query border.  This reduces the number of noisy cells a
  long-range query has to sum — exactly the error/length trade-off the hierarchical
  range-query literature exploits.
* :class:`RangeQueryWorkload` — random rectangular workloads plus the error metrics
  used by that literature (mean absolute error, relative error at a threshold).

Summation is delegated to the summed-area-table engine
(:class:`repro.queries.engine.SummedAreaTable`): instead of an O(d^2) dense overlap
pass per query, each answer costs four O(1) corner lookups, and
``answer_many``/``answer_batch`` answer a whole workload with a handful of vectorised
operations.  The dense path is kept as :func:`dense_range_answer` — it is the
reference implementation the property tests compare the SAT path against.

Boundary convention
-------------------
``RangeQuery.true_answer`` counts raw points on the *closed* rectangle
``[x_lo, x_hi] x [y_lo, y_hi]`` by default, matching the inclusive cell bucketisation
of :meth:`repro.core.domain.GridSpec.point_to_cell`.  Estimated answers
(:func:`_cell_overlap_fractions` and the SAT path) use continuous area overlap, for
which boundaries are measure-zero — so a *single* query agrees with the closed
convention, but two queries sharing an edge both count the points sitting exactly on
it.  Workloads that tile the domain should pass ``closed="left"`` to
``true_answer`` (half-open ``[lo, hi)`` intervals, upper domain boundary included) so
every point is counted exactly once.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.queries.engine import SummedAreaTable, queries_to_array
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_epsilon, check_grid_side


@dataclass(frozen=True)
class RangeQuery:
    """A rectangular query in domain coordinates: ``[x_lo, x_hi] x [y_lo, y_hi]``."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    def __post_init__(self) -> None:
        if not (self.x_lo < self.x_hi and self.y_lo < self.y_hi):
            raise ValueError(f"degenerate range query {self!r}")

    def area_fraction(self, domain: SpatialDomain) -> float:
        """Fraction of the domain the query covers.

        The query is clipped against the domain on *all four* sides, so a rectangle
        overhanging any boundary (below ``x_min``/``y_min`` just as much as beyond
        ``x_max``/``y_max``) only counts the part it actually covers, and a query
        entirely outside the domain covers nothing.
        """
        width = max(min(self.x_hi, domain.x_max) - max(self.x_lo, domain.x_min), 0.0)
        height = max(min(self.y_hi, domain.y_max) - max(self.y_lo, domain.y_min), 0.0)
        return width * height / domain.area

    def true_answer(
        self,
        points: np.ndarray,
        *,
        closed: str = "both",
        domain: SpatialDomain | None = None,
    ) -> float:
        """Fraction of the raw points inside the query rectangle.

        ``closed`` makes the boundary convention explicit (see the module docstring):

        * ``"both"`` (default) — the closed rectangle ``[lo, hi]`` on both axes, the
          paper's convention for a single query.  Points exactly on a shared edge of
          two adjacent queries are counted by *both*.
        * ``"left"`` — half-open ``[lo, hi)`` intervals, so edge-sharing queries that
          tile the domain count every point exactly once.  When ``domain`` is given,
          a query edge lying exactly on the domain's upper boundary stays inclusive
          there (mirroring how :meth:`~repro.core.domain.GridSpec.point_to_cell`
          clamps the last cell), so a tiling of the full domain still sums to 1.
        """
        if closed not in ("both", "left"):
            raise ValueError(f"closed must be 'both' or 'left', got {closed!r}")
        pts = np.asarray(points, dtype=float)
        if pts.shape[0] == 0:
            return 0.0
        inside = (pts[:, 0] >= self.x_lo) & (pts[:, 1] >= self.y_lo)
        if closed == "both":
            inside &= (pts[:, 0] <= self.x_hi) & (pts[:, 1] <= self.y_hi)
        else:
            x_inclusive = domain is not None and self.x_hi >= domain.x_max
            y_inclusive = domain is not None and self.y_hi >= domain.y_max
            inside &= pts[:, 0] <= self.x_hi if x_inclusive else pts[:, 0] < self.x_hi
            inside &= pts[:, 1] <= self.y_hi if y_inclusive else pts[:, 1] < self.y_hi
        return float(inside.mean())


def _cell_overlap_fractions(grid: GridSpec, query: RangeQuery) -> np.ndarray:
    """Fraction of each grid cell's area covered by the query rectangle, shape (d, d).

    Continuous area-overlap convention (the clip handles overhanging and outside
    rectangles on every side).  This is the seed O(d^2) reference path; the serving
    engines answer through :class:`repro.queries.engine.SummedAreaTable`, which must
    reproduce ``(probabilities * _cell_overlap_fractions(...)).sum()`` to ~1e-12 —
    the hypothesis equivalence property in ``tests/queries/test_engine.py`` pins the
    two paths together.
    """
    d = grid.d
    x_edges = np.linspace(grid.domain.x_min, grid.domain.x_max, d + 1)
    y_edges = np.linspace(grid.domain.y_min, grid.domain.y_max, d + 1)
    x_overlap = np.clip(
        np.minimum(x_edges[1:], query.x_hi) - np.maximum(x_edges[:-1], query.x_lo),
        0.0,
        None,
    ) / np.diff(x_edges)
    y_overlap = np.clip(
        np.minimum(y_edges[1:], query.y_hi) - np.maximum(y_edges[:-1], query.y_lo),
        0.0,
        None,
    ) / np.diff(y_edges)
    return np.outer(y_overlap, x_overlap)


def dense_range_answer(estimate: GridDistribution, query: RangeQuery) -> float:
    """Reference answer via the dense per-cell overlap pass (O(d^2) per query)."""
    return float(
        (estimate.probabilities * _cell_overlap_fractions(estimate.grid, query)).sum()
    )


class FlatRangeQueryEngine:
    """Answer range queries by summing one estimated grid distribution.

    Works with any estimate (DAM, MDSW, ...); border cells are included proportionally
    to their geometric overlap with the query (uniformity assumption within a cell).
    Summation runs on the cached summed-area table — O(1) per query instead of the
    dense O(d^2) pass — and :meth:`answer_batch` takes a structured ``(n, 4)`` array
    without ever looping in Python.
    """

    def __init__(self, estimate: GridDistribution) -> None:
        self.estimate = estimate
        self._sat = SummedAreaTable(estimate)

    def answer(self, query: RangeQuery) -> float:
        return self._sat.answer(query)

    def answer_batch(self, queries) -> np.ndarray:
        """Batched answers for an ``(n, 4)`` array of ``[x_lo, x_hi, y_lo, y_hi]``."""
        return self._sat.answer_batch(queries)

    def answer_many(self, queries: Sequence[RangeQuery]) -> np.ndarray:
        """Deprecated alias of :meth:`answer_batch` (the unified query surface)."""
        warnings.warn(
            "answer_many() is deprecated; use answer_batch() — the "
            "repro.queries.QuerySurface spelling every engine shares",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.answer_batch(queries)


@dataclass
class _HierarchyLevel:
    grid: GridSpec
    estimate: GridDistribution
    n_users: int
    #: Summed-area table over this level's estimate, built once in ``fit``.
    sat: SummedAreaTable | None = None


class HierarchicalRangeQueryEngine:
    """HIO/AHEAD-style hierarchy of DAM estimates for range queries.

    The user population is split evenly across ``levels`` granularities
    ``d_0 < d_1 < ... `` (each a factor ``branching`` finer than the previous).  Each
    group reports through DAM on its own grid; a query is answered greedily from the
    coarsest level whose cells fit entirely inside the rectangle, with the uncovered
    border delegated to finer levels (and the finest level handling the remainder
    proportionally).

    This is a deliberately simplified hierarchy — enough to demonstrate the combination
    the paper proposes and to measure when it beats the flat engine (long-range queries
    on fine grids), without reproducing the full AHEAD adaptivity machinery.
    """

    def __init__(
        self,
        domain: SpatialDomain,
        epsilon: float,
        *,
        levels: int = 3,
        base_d: int = 2,
        branching: int = 2,
        seed=None,
    ) -> None:
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        check_grid_side(base_d)
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        self.domain = domain
        self.epsilon = check_epsilon(epsilon)
        self.levels_spec = [base_d * branching**i for i in range(levels)]
        self.branching = branching
        self._seed = seed
        self.levels: list[_HierarchyLevel] = []

    def fit(self, points: np.ndarray, seed=None) -> "HierarchicalRangeQueryEngine":
        """Split users across levels and run DAM on each level's group."""
        rng = ensure_rng(seed if seed is not None else self._seed)
        pts = np.asarray(points, dtype=float)
        pts = pts[self.domain.contains(pts)]
        assignments = rng.integers(0, len(self.levels_spec), pts.shape[0])
        level_rngs = spawn_rngs(rng, len(self.levels_spec))
        self.levels = []
        for index, (d, level_rng) in enumerate(zip(self.levels_spec, level_rngs)):
            group = pts[assignments == index]
            grid = GridSpec(self.domain, d)
            mechanism = DiscreteDAM(grid, self.epsilon)
            if group.shape[0] == 0:
                estimate = GridDistribution.uniform(grid)
            else:
                estimate = mechanism.run(group, seed=level_rng).estimate
            self.levels.append(
                _HierarchyLevel(
                    grid=grid,
                    estimate=estimate,
                    n_users=int(group.shape[0]),
                    sat=SummedAreaTable(estimate),
                )
            )
        return self

    def _require_fitted(self) -> None:
        if not self.levels:
            raise RuntimeError("call fit() before answering queries")

    def answer(self, query: RangeQuery) -> float:
        """Answer one query by combining levels from coarse to fine."""
        self._require_fitted()
        total = 0.0
        remaining = query
        # Greedy decomposition: take the fully covered cells of each level in turn,
        # shrink the remaining rectangle to the uncovered border strip, and let the
        # finest level absorb whatever is left with proportional overlap.
        for level in self.levels[:-1]:
            covered, remaining = self._consume_level(level, remaining)
            total += covered
            if remaining is None:
                return float(np.clip(total, 0.0, 1.0))
        total += self.levels[-1].sat.answer(remaining)
        return float(np.clip(total, 0.0, 1.0))

    def _consume_level(
        self, level: _HierarchyLevel, query: RangeQuery
    ) -> tuple[float, RangeQuery | None]:
        """Sum the level's cells fully inside the query; return the uncovered remainder.

        To keep the decomposition rectangular (and therefore cheap), the covered region
        is the largest axis-aligned block of whole cells inside the query; the
        remainder is the query minus that block, re-approximated as the smallest
        rectangle containing it (which the next, finer, level then handles).  When no
        whole cell fits, everything is delegated to the finer levels.
        """
        grid = level.grid
        x_edges = np.linspace(grid.domain.x_min, grid.domain.x_max, grid.d + 1)
        y_edges = np.linspace(grid.domain.y_min, grid.domain.y_max, grid.d + 1)
        col_lo = int(np.searchsorted(x_edges, query.x_lo, side="left"))
        col_hi = int(np.searchsorted(x_edges, query.x_hi, side="right") - 1)
        row_lo = int(np.searchsorted(y_edges, query.y_lo, side="left"))
        row_hi = int(np.searchsorted(y_edges, query.y_hi, side="right") - 1)
        if col_hi <= col_lo or row_hi <= row_lo:
            return 0.0, query
        block = level.estimate.probabilities[row_lo:row_hi, col_lo:col_hi]
        covered = float(block.sum())
        inner = RangeQuery(
            x_lo=float(x_edges[col_lo]),
            x_hi=float(x_edges[col_hi]),
            y_lo=float(y_edges[row_lo]),
            y_hi=float(y_edges[row_hi]),
        )
        if (
            inner.x_lo <= query.x_lo
            and inner.x_hi >= query.x_hi
            and inner.y_lo <= query.y_lo
            and inner.y_hi >= query.y_hi
        ):
            return covered, None
        # Remainder: the border strip between the query and the consumed inner block.
        # Representing it exactly needs up to four rectangles; we keep the widest strip
        # and fold the rest back into it so finer levels see a single rectangle.
        strips = []
        if query.x_lo < inner.x_lo:
            strips.append(RangeQuery(query.x_lo, inner.x_lo, query.y_lo, query.y_hi))
        if inner.x_hi < query.x_hi:
            strips.append(RangeQuery(inner.x_hi, query.x_hi, query.y_lo, query.y_hi))
        if query.y_lo < inner.y_lo:
            strips.append(RangeQuery(inner.x_lo, inner.x_hi, query.y_lo, inner.y_lo))
        if inner.y_hi < query.y_hi:
            strips.append(RangeQuery(inner.x_lo, inner.x_hi, inner.y_hi, query.y_hi))
        if not strips:
            return covered, None
        remainder = RangeQuery(
            x_lo=min(s.x_lo for s in strips),
            x_hi=max(s.x_hi for s in strips),
            y_lo=min(s.y_lo for s in strips),
            y_hi=max(s.y_hi for s in strips),
        )
        # Avoid double counting: subtract the inner block's overlap with the remainder
        # rectangle when the finer level integrates it.  The overlap of two rectangles
        # is a rectangle, so the correction is one O(1) summed-area-table evaluation.
        ox_lo, ox_hi = max(remainder.x_lo, inner.x_lo), min(remainder.x_hi, inner.x_hi)
        oy_lo, oy_hi = max(remainder.y_lo, inner.y_lo), min(remainder.y_hi, inner.y_hi)
        if ox_lo < ox_hi and oy_lo < oy_hi:
            covered -= float(level.sat.rectangle_mass(ox_lo, ox_hi, oy_lo, oy_hi))
        return covered, remainder

    def answer_batch(self, queries) -> np.ndarray:
        """Batched answers; accepts ``(n, 4)`` rows or a sequence of queries.

        The hierarchy's greedy decomposition is inherently per-query, so the
        batch is a Python loop — the method exists for surface uniformity
        (:class:`repro.queries.QuerySurface`), not vectorisation.
        """
        arr = queries_to_array(queries)
        return np.array([self.answer(RangeQuery(*row)) for row in arr])

    def answer_many(self, queries: Sequence[RangeQuery]) -> np.ndarray:
        """Deprecated alias of :meth:`answer_batch` (the unified query surface)."""
        warnings.warn(
            "answer_many() is deprecated; use answer_batch() — the "
            "repro.queries.QuerySurface spelling every engine shares",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.answer_batch(queries)


@dataclass
class RangeQueryWorkload:
    """A random workload of rectangular queries plus its evaluation metrics."""

    queries: list[RangeQuery] = field(default_factory=list)

    @staticmethod
    def random(
        domain: SpatialDomain,
        n_queries: int,
        *,
        min_fraction: float = 0.05,
        max_fraction: float = 0.5,
        seed=None,
    ) -> "RangeQueryWorkload":
        """Random queries whose side lengths cover the given fraction range."""
        if n_queries < 0:
            raise ValueError(f"n_queries must be non-negative, got {n_queries}")
        if not 0 < min_fraction <= max_fraction <= 1.0:
            raise ValueError("require 0 < min_fraction <= max_fraction <= 1")
        rng = ensure_rng(seed)
        queries = []
        for _ in range(n_queries):
            width = domain.width * rng.uniform(min_fraction, max_fraction)
            height = domain.height * rng.uniform(min_fraction, max_fraction)
            x_lo = rng.uniform(domain.x_min, domain.x_max - width)
            y_lo = rng.uniform(domain.y_min, domain.y_max - height)
            queries.append(RangeQuery(x_lo, x_lo + width, y_lo, y_lo + height))
        return RangeQueryWorkload(queries=queries)

    def as_array(self) -> np.ndarray:
        """The workload as an ``(n, 4)`` ``[x_lo, x_hi, y_lo, y_hi]`` array.

        This is the structured serving format :meth:`FlatRangeQueryEngine.answer_batch`
        and :class:`repro.queries.engine.QueryEngine` consume without per-query
        Python overhead.
        """
        return queries_to_array(self.queries)

    def true_answers(self, points: np.ndarray) -> np.ndarray:
        return np.array([query.true_answer(points) for query in self.queries])

    def mean_absolute_error(self, answers: np.ndarray, points: np.ndarray) -> float:
        truth = self.true_answers(points)
        answers = np.asarray(answers, dtype=float)
        if answers.shape != truth.shape:
            raise ValueError("answers must match the workload size")
        return float(np.abs(answers - truth).mean())

    def mean_relative_error(
        self, answers: np.ndarray, points: np.ndarray, *, floor: float = 0.01
    ) -> float:
        """Relative error with the usual small-answer floor used in the range-query papers."""
        truth = self.true_answers(points)
        answers = np.asarray(answers, dtype=float)
        return float((np.abs(answers - truth) / np.maximum(truth, floor)).mean())
