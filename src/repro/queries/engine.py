"""High-throughput query serving on top of estimated grid distributions.

The paper's related-work section positions DAM's estimated grid as the substrate for
private range queries (the HIO/HDG/AHEAD combinations sketched in
:mod:`repro.queries.range_query`).  That module's engines price every query at an
O(d^2) dense overlap pass — fine for a figure, hopeless for a serving workload.  This
module is the serving path:

* :class:`SummedAreaTable` — a 2-D prefix sum (integral image) over a
  :class:`~repro.core.domain.GridDistribution`.  The mass of any axis-aligned
  rectangle, *including* fractional border coverage, is an inclusion-exclusion of four
  corner evaluations, each O(1): the interior block comes straight from the table and
  the border corrections are bilinear terms recovered from adjacent table entries.
  :meth:`SummedAreaTable.answer_batch` evaluates thousands-to-millions of queries as a
  handful of vectorised array operations and never drops into per-query Python.
* :class:`QueryEngine` — the façade an analyst actually serves from: rectangular range
  mass, point density lookups, top-k hotspot cells, axis marginals and grid-quantile
  contours (highest-density regions), all backed by the same table.
* :class:`StreamingQueryEngine` — the façade's long-lived sibling for the sliding
  windows of :mod:`repro.streaming`: each epoch's re-estimate becomes a complete new
  engine (summed-area table included) published by one atomic reference swap, so
  mid-stream queries never observe a half-updated window.
* :class:`QueryLog` / :class:`WorkloadReplay` — persistable mixed workloads and a
  replay driver that reports per-operation latency and queries/second (optionally
  fanning range batches out to a process pool).

Everything here is exact: the SAT path reproduces the dense
``_cell_overlap_fractions`` summation to ~1e-12 (asserted by the hypothesis
equivalence property in ``tests/queries/test_engine.py``), it is just a few orders of
magnitude cheaper per query.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.domain import GridDistribution, marginals, stack_trajectory_cells
from repro.utils.rng import ensure_rng


def queries_to_array(queries) -> np.ndarray:
    """Normalise a query workload to a float array of shape ``(n, 4)``.

    Accepts an ``(n, 4)`` array of ``[x_lo, x_hi, y_lo, y_hi]`` rows (the structured
    serving format — already validated by the caller), a single
    :class:`~repro.queries.range_query.RangeQuery`, or any sequence of them.
    """
    if isinstance(queries, np.ndarray):
        arr = np.asarray(queries, dtype=float)
        if arr.ndim == 1 and arr.shape[0] == 4:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != 4:
            raise ValueError(f"query array must have shape (n, 4), got {arr.shape}")
        return arr
    if hasattr(queries, "x_lo"):  # a single RangeQuery
        queries = [queries]
    return np.array([[q.x_lo, q.x_hi, q.y_lo, q.y_hi] for q in queries], dtype=float).reshape(-1, 4)


class SummedAreaTable:
    """O(1) rectangle-mass evaluation over one grid distribution.

    The continuous cumulative ``F(x, y)`` — the estimate's mass on
    ``[x_min, x] x [y_min, y]`` under the per-cell-uniform density — decomposes into
    the prefix-sum block below-left of the containing cell plus two partial-row/column
    strips and one bilinear corner term, all of which are differences of adjacent
    summed-area-table entries.  A rectangle is then the usual four-corner
    inclusion-exclusion ``F(xh,yh) - F(xl,yh) - F(xh,yl) + F(xl,yl)``, which matches
    the dense per-cell overlap summation exactly (continuous area-overlap convention;
    see ``RangeQuery.true_answer`` for how this relates to point counting on closed
    rectangles).
    """

    def __init__(self, estimate: GridDistribution) -> None:
        self.estimate = estimate
        self.grid = estimate.grid
        self.table = estimate.cumulative()
        x_min, x_max, y_min, y_max = self.grid.domain.bounds
        self._x_min, self._x_max = x_min, x_max
        self._y_min, self._y_max = y_min, y_max
        self._x_scale = self.grid.d / (x_max - x_min)
        self._y_scale = self.grid.d / (y_max - y_min)

    def cumulative_at(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised ``F(x, y)`` for coordinate arrays of any common shape.

        Coordinates are clipped onto the domain, so overhanging and fully-outside
        rectangles resolve to the mass they actually cover.
        """
        d = self.grid.d
        tx = (np.clip(xs, self._x_min, self._x_max) - self._x_min) * self._x_scale
        ty = (np.clip(ys, self._y_min, self._y_max) - self._y_min) * self._y_scale
        cols = np.minimum(tx.astype(np.int64), d - 1)
        rows = np.minimum(ty.astype(np.int64), d - 1)
        fx = tx - cols
        fy = ty - rows
        table = self.table
        s00 = table[rows, cols]
        s01 = table[rows, cols + 1]
        s10 = table[rows + 1, cols]
        s11 = table[rows + 1, cols + 1]
        return (
            s00
            + fx * (s01 - s00)
            + fy * (s10 - s00)
            + fx * fy * (s11 - s10 - s01 + s00)
        )

    def rectangle_mass(
        self,
        x_lo: np.ndarray,
        x_hi: np.ndarray,
        y_lo: np.ndarray,
        y_hi: np.ndarray,
    ) -> np.ndarray:
        """Mass of each ``[x_lo, x_hi] x [y_lo, y_hi]`` rectangle (vectorised)."""
        return (
            self.cumulative_at(x_hi, y_hi)
            - self.cumulative_at(x_lo, y_hi)
            - self.cumulative_at(x_hi, y_lo)
            + self.cumulative_at(x_lo, y_lo)
        )

    def answer_batch(self, queries) -> np.ndarray:
        """Answer a whole workload in one shot.

        ``queries`` is an ``(n, 4)`` float array of ``[x_lo, x_hi, y_lo, y_hi]`` rows
        or a sequence of :class:`~repro.queries.range_query.RangeQuery`.  The answers
        come back in workload order; the whole batch is four corner evaluations over
        the stacked coordinate arrays.
        """
        arr = queries_to_array(queries)
        return self.rectangle_mass(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])

    def answer(self, query) -> float:
        """Answer one query (convenience wrapper over :meth:`answer_batch`)."""
        return float(self.answer_batch(query)[0])


@dataclass(frozen=True)
class HotspotCells:
    """Top-k densest cells of an estimate, sorted by decreasing mass."""

    flat_indices: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    masses: np.ndarray
    centers: np.ndarray  # (k, 2) domain coordinates


@dataclass(frozen=True)
class QuantileContour:
    """Smallest set of highest-density cells holding at least ``level`` mass.

    ``mask`` is a boolean ``(d, d)`` highest-density-region indicator; ``threshold``
    is the mass of the lightest included cell (the contour's density level) and
    ``covered_mass`` the total mass actually enclosed (>= ``level``).
    """

    level: float
    mask: np.ndarray
    threshold: float
    covered_mass: float
    n_cells: int


class QueryEngine:
    """Serve a mixed analyst workload from one estimated grid distribution.

    All operations are vectorised and share the cached summed-area table, so the
    engine can absorb the query traffic of a deployed estimate: range mass
    (:meth:`range_mass`), point density (:meth:`point_density`), top-k hotspots
    (:meth:`top_k_cells`), axis marginals (:meth:`axis_marginals`) and grid-quantile
    contours (:meth:`quantile_contours`).
    """

    def __init__(self, estimate: GridDistribution) -> None:
        self.estimate = estimate
        self.grid = estimate.grid
        self.sat = SummedAreaTable(estimate)

    # ------------------------------------------------------------- range mass
    def range_mass(self, queries) -> np.ndarray:
        """Estimated population fraction inside each rectangle (batched, O(1)/query)."""
        return self.sat.answer_batch(queries)

    # The unified query surface (:class:`repro.queries.QuerySurface`): every
    # engine in the library answers one query via ``answer`` and a workload via
    # ``answer_batch``, so serving code is written once against the protocol.
    def answer(self, query) -> float:
        """Answer one range query (:class:`~repro.queries.QuerySurface`)."""
        return self.sat.answer(query)

    def answer_batch(self, queries) -> np.ndarray:
        """Answer a range-query workload (:class:`~repro.queries.QuerySurface`)."""
        return self.sat.answer_batch(queries)

    # ---------------------------------------------------------- point density
    def point_density(self, points: np.ndarray) -> np.ndarray:
        """Estimated probability density at each ``(x, y)`` location.

        The density is the containing cell's mass divided by the cell area (the
        per-cell-uniform model every engine in the library shares).  Points outside
        the domain have zero density.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        inside = self.grid.domain.contains(pts)
        cells = self.grid.point_to_cell(self.grid.domain.clip(pts))
        cell_area = self.grid.cell_width * self.grid.cell_height
        densities = self.estimate.flat()[cells] / cell_area
        return np.where(inside, densities, 0.0)

    # --------------------------------------------------------------- hotspots
    def top_k_cells(self, k: int) -> HotspotCells:
        """The ``k`` densest cells, sorted by decreasing estimated mass."""
        if not 1 <= k <= self.grid.n_cells:
            raise ValueError(f"k must lie in [1, {self.grid.n_cells}], got {k}")
        flat = self.estimate.flat()
        top = np.argpartition(flat, -k)[-k:]
        top = top[np.argsort(flat[top])[::-1]]
        rows, cols = self.grid.cell_to_rowcol(top)
        return HotspotCells(
            flat_indices=top,
            rows=rows,
            cols=cols,
            masses=flat[top],
            centers=self.grid.cell_centers()[top],
        )

    # -------------------------------------------------------------- marginals
    def axis_marginals(self) -> tuple[np.ndarray, np.ndarray]:
        """The (x-marginal, y-marginal) of the estimate (length-``d`` each)."""
        return marginals(self.estimate)

    # ------------------------------------------------------ quantile contours
    def quantile_contours(self, levels: Sequence[float]) -> list[QuantileContour]:
        """Highest-density regions covering each requested mass quantile.

        For every ``level`` in ``(0, 1]`` the contour is the smallest set of cells,
        taken in decreasing density order, whose total mass reaches the level — the
        grid analogue of a density contour line (e.g. "where do 50% / 90% of users
        concentrate?").
        """
        flat = self.estimate.flat()
        order = np.argsort(flat)[::-1]
        csum = np.cumsum(flat[order])
        contours = []
        for level in levels:
            if not 0.0 < level <= 1.0:
                raise ValueError(f"quantile levels must lie in (0, 1], got {level}")
            n_cells = int(np.searchsorted(csum, level * (1.0 - 1e-12)) + 1)
            n_cells = min(n_cells, flat.shape[0])
            chosen = order[:n_cells]
            mask = np.zeros(flat.shape[0], dtype=bool)
            mask[chosen] = True
            contours.append(
                QuantileContour(
                    level=float(level),
                    mask=mask.reshape(self.grid.d, self.grid.d),
                    threshold=float(flat[chosen[-1]]),
                    covered_mass=float(csum[n_cells - 1]),
                    n_cells=n_cells,
                )
            )
        return contours


class StreamingQueryEngine:
    """Serve a continuously re-estimated distribution without torn reads.

    A long-lived deployment re-estimates its distribution every epoch while
    analysts keep querying.  Rebuilding a :class:`QueryEngine` *in place* would let
    a query observe a half-updated window (new probabilities, stale summed-area
    table).  This façade makes the refresh safe:

    * :meth:`refresh` builds a complete new :class:`QueryEngine` — estimate,
      summed-area table and all — **before** publishing it, and publishes the
      engine *together with its epoch* as one immutable tuple behind a single
      attribute store (atomic under both the GIL and free-threaded CPython's
      per-object locks: readers see either the old pair or the new pair, never a
      mix and never a new engine with a stale epoch);
    * every query method grabs one local reference, so even a batch that straddles
      a refresh is answered entirely by one window;
    * :meth:`snapshot` hands out the current engine — and :meth:`published` the
      consistent ``(engine, epoch)`` pair — for longer units of work (e.g. a
      whole :class:`WorkloadReplay` run) that must stay on one window.

    The façade exposes the full point-query surface of :class:`QueryEngine`, so
    ``WorkloadReplay`` drives it unchanged mid-stream.
    """

    def __init__(self, estimate: GridDistribution | None = None) -> None:
        # The engine and its epoch label travel in ONE immutable tuple replaced by
        # a single attribute store.  Publishing them as two separate stores (the
        # original implementation) let a concurrent reader interleave between the
        # stores and pair the new engine with the stale epoch.
        self._published: tuple[QueryEngine | None, int | None] = (None, None)
        if estimate is not None:
            self.refresh(estimate)

    # ---------------------------------------------------------------- refresh
    def refresh(self, estimate: GridDistribution, *, epoch: int | None = None) -> QueryEngine:
        """Publish a new estimate; returns the engine that now serves.

        The summed-area table is materialised inside the new engine before the
        swap, and the engine is published together with its epoch in one store,
        so no caller can ever observe a partial rebuild or a torn
        ``(engine, epoch)`` pair.
        """
        engine = QueryEngine(estimate)
        self._published = (engine, epoch)
        return engine

    @property
    def ready(self) -> bool:
        """Whether an estimate has been published yet."""
        return self._published[0] is not None

    @property
    def epoch(self) -> int | None:
        """Epoch label of the currently published engine (``None`` before any)."""
        return self._published[1]

    def published(self) -> tuple[QueryEngine, int | None]:
        """The current ``(engine, epoch)`` pair from one atomic tuple load.

        Reading ``snapshot()`` and ``epoch`` as two attribute accesses can
        straddle a concurrent :meth:`refresh`; this accessor can not.
        """
        engine, epoch = self._published
        if engine is None:
            raise RuntimeError(
                "no estimate has been published yet; call refresh() first"
            )
        return engine, epoch

    def snapshot(self) -> QueryEngine:
        """The currently published engine — pin it to stay on one window."""
        engine = self._published[0]
        if engine is None:
            raise RuntimeError(
                "no estimate has been published yet; call refresh() first"
            )
        return engine

    # ------------------------------------------------------------- delegation
    @property
    def estimate(self) -> GridDistribution:
        return self.snapshot().estimate

    @property
    def grid(self):
        return self.snapshot().grid

    def range_mass(self, queries) -> np.ndarray:
        return self.snapshot().range_mass(queries)

    def answer(self, query) -> float:
        return self.snapshot().answer(query)

    def answer_batch(self, queries) -> np.ndarray:
        return self.snapshot().answer_batch(queries)

    def point_density(self, points: np.ndarray) -> np.ndarray:
        return self.snapshot().point_density(points)

    def top_k_cells(self, k: int) -> HotspotCells:
        return self.snapshot().top_k_cells(k)

    def axis_marginals(self) -> tuple[np.ndarray, np.ndarray]:
        return self.snapshot().axis_marginals()

    def quantile_contours(self, levels: Sequence[float]) -> list[QuantileContour]:
        return self.snapshot().quantile_contours(levels)


class StreamingTrajectoryQueryEngine(StreamingQueryEngine):
    """Atomic-swap serving for trajectory sessions.

    The trajectory twin of :class:`StreamingQueryEngine`:
    :meth:`refresh_trajectories` builds a complete
    :class:`TrajectoryQueryEngine` — point mass, summed-area table, OD and
    transition pair tables — from a fresh synthetic trajectory set *before*
    publishing it with a single attribute store, so analyst queries running
    mid-stream never observe a half-updated window.  On top of the full point
    surface it delegates the three sequence-aware operations, which is what lets
    :class:`WorkloadReplay` drive a mixed point+trajectory log against a live
    :class:`repro.streaming.trajectory.StreamingTrajectoryService` unchanged.
    """

    def refresh_trajectories(
        self, trajectories: list, grid, *, epoch: int | None = None
    ) -> TrajectoryQueryEngine:
        """Publish a new synthetic trajectory set; returns the engine now serving.

        Same single-store discipline as :meth:`StreamingQueryEngine.refresh`: the
        engine and its epoch are swapped in as one immutable tuple.
        """
        engine = TrajectoryQueryEngine(trajectories, grid)
        self._published = (engine, epoch)
        return engine

    def od_top_k(self, k: int) -> "TrajectoryTopK":
        return self.snapshot().od_top_k(k)

    def transition_top_k(self, k: int) -> "TrajectoryTopK":
        return self.snapshot().transition_top_k(k)

    def length_histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        return self.snapshot().length_histogram(bins)

    def snapshot(self) -> "TrajectoryQueryEngine":
        engine = super().snapshot()
        if not isinstance(engine, TrajectoryQueryEngine):
            raise RuntimeError(
                "the published engine is not a TrajectoryQueryEngine; publish "
                "through refresh_trajectories() rather than refresh()"
            )
        return engine


# ------------------------------------------------------------------ trajectory
@dataclass(frozen=True)
class TrajectoryTopK:
    """Top-k (from-cell, to-cell) pairs by count, sorted by decreasing weight.

    Serves both the origin–destination view (first cell → last cell of each
    trajectory) and the transition view (every consecutive cell step); ``fractions``
    are the counts normalised by the total number of pairs observed.
    """

    from_cells: np.ndarray
    to_cells: np.ndarray
    counts: np.ndarray
    fractions: np.ndarray


class TrajectoryQueryEngine(QueryEngine):
    """Serve trajectory workloads from one trajectory set on an analysis grid.

    Extends :class:`QueryEngine` — the per-cell *point mass* of the trajectory set is
    the estimate being served, so range mass, point density, hotspots, marginals and
    contours all work unchanged — with the sequence-aware statistics a trajectory
    analyst asks for: origin–destination top-k (:meth:`od_top_k`), transition top-k
    (:meth:`transition_top_k`) and length histograms (:meth:`length_histogram`).

    The trajectory set is reduced to flat arrays once at construction (stack, one
    cell mapping, ``np.unique`` over encoded pairs); every query afterwards is an
    array lookup, so the engine absorbs workload replay at the same rates as the
    point engines.  Typically built over the *synthetic* output of
    :class:`~repro.trajectory.engine.TrajectoryEngine` (the private release), with a
    twin over the raw input for accuracy comparisons.
    """

    def __init__(self, trajectories: list, grid) -> None:
        if not trajectories:
            raise ValueError("cannot serve queries over an empty trajectory set")
        lengths, starts, cells = stack_trajectory_cells(grid, trajectories)
        counts = np.bincount(cells, minlength=grid.n_cells).astype(float)
        super().__init__(GridDistribution.from_flat(grid, counts / counts.sum()))

        ends = starts + lengths - 1
        self.lengths = lengths
        self.n_trajectories = int(lengths.shape[0])
        self._od_pairs = self._pair_counts(cells[starts], cells[ends])
        # Consecutive steps: position i -> i+1 for every i that is not a trajectory
        # end (the last trajectory's end is already outside the step range).
        step_mask = np.ones(max(cells.shape[0] - 1, 0), dtype=bool)
        interior_ends = ends[ends < cells.shape[0] - 1]
        step_mask[interior_ends] = False
        self._transition_pairs = self._pair_counts(cells[:-1][step_mask], cells[1:][step_mask])

    @classmethod
    def from_tables(
        cls,
        grid,
        probabilities: np.ndarray,
        lengths: np.ndarray,
        od_pairs: tuple[np.ndarray, np.ndarray, np.ndarray],
        transition_pairs: tuple[np.ndarray, np.ndarray, np.ndarray],
        *,
        cumulative: np.ndarray | None = None,
    ) -> "TrajectoryQueryEngine":
        """Rebuild an engine from its published flat tables (the shm serving path).

        The inverse of construction: ``__init__`` reduces a trajectory set to the
        per-cell mass, the length array and the two presorted ``(from, to, count)``
        pair tables — this adopts those tables verbatim (no re-stacking, no
        ``np.unique``), so a :class:`~repro.serving.shm.TrajectorySnapshotReader`
        serves bit-identically to the publisher's engine without ever shipping
        the trajectories themselves.  ``cumulative`` installs a precomputed
        summed-area table exactly like
        :meth:`~repro.core.domain.GridDistribution.from_normalized`.
        """
        engine = cls.__new__(cls)
        QueryEngine.__init__(
            engine,
            GridDistribution.from_normalized(grid, probabilities, cumulative=cumulative),
        )
        engine.lengths = np.asarray(lengths, dtype=np.int64)
        engine.n_trajectories = int(engine.lengths.shape[0])
        engine._od_pairs = tuple(od_pairs)
        engine._transition_pairs = tuple(transition_pairs)
        return engine

    def _pair_counts(
        self, from_cells: np.ndarray, to_cells: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unique (from, to) pairs with counts, pre-sorted by decreasing count."""
        if from_cells.shape[0] == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        codes = from_cells.astype(np.int64) * self.grid.n_cells + to_cells.astype(np.int64)
        unique, counts = np.unique(codes, return_counts=True)
        order = np.argsort(counts, kind="stable")[::-1]
        unique, counts = unique[order], counts[order]
        return unique // self.grid.n_cells, unique % self.grid.n_cells, counts.astype(float)

    def _top_k(self, pairs, k: int) -> TrajectoryTopK:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        from_cells, to_cells, counts = pairs
        k = min(k, counts.shape[0])
        total = counts.sum()
        return TrajectoryTopK(
            from_cells=from_cells[:k],
            to_cells=to_cells[:k],
            counts=counts[:k],
            fractions=counts[:k] / total if total > 0 else counts[:k],
        )

    def od_top_k(self, k: int) -> TrajectoryTopK:
        """The ``k`` most frequent origin–destination (first cell, last cell) pairs."""
        return self._top_k(self._od_pairs, k)

    def transition_top_k(self, k: int) -> TrajectoryTopK:
        """The ``k`` most frequent consecutive cell-to-cell steps."""
        return self._top_k(self._transition_pairs, k)

    def length_histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of trajectory lengths: ``(counts, bin_edges)``."""
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        return np.histogram(self.lengths, bins=bins)


# --------------------------------------------------------------------- replay
@dataclass
class QueryLog:
    """A persistable mixed query workload (the serving traffic of one estimate).

    ``range_queries`` is an ``(n, 4)`` array of ``[x_lo, x_hi, y_lo, y_hi]`` rows,
    ``density_points`` an ``(m, 2)`` array of lookup locations, ``top_k`` the
    requested hotspot sizes and ``quantile_levels`` the requested contour levels.
    The trajectory operations (requested sizes of origin–destination and transition
    top-k queries plus length-histogram bin counts) are only servable by a
    :class:`TrajectoryQueryEngine`; logs containing them replay against point-only
    engines with a clear error.
    """

    range_queries: np.ndarray = field(default_factory=lambda: np.empty((0, 4)))
    density_points: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))
    top_k: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    quantile_levels: np.ndarray = field(default_factory=lambda: np.empty(0))
    n_marginal_requests: int = 0
    od_top_k: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    transition_top_k: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    length_histogram_bins: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    def __post_init__(self) -> None:
        self.range_queries = np.asarray(self.range_queries, dtype=float).reshape(-1, 4)
        self.density_points = np.asarray(self.density_points, dtype=float).reshape(-1, 2)
        self.top_k = np.asarray(self.top_k, dtype=np.int64).reshape(-1)
        self.quantile_levels = np.asarray(self.quantile_levels, dtype=float).reshape(-1)
        self.od_top_k = np.asarray(self.od_top_k, dtype=np.int64).reshape(-1)
        self.transition_top_k = np.asarray(self.transition_top_k, dtype=np.int64).reshape(-1)
        self.length_histogram_bins = np.asarray(
            self.length_histogram_bins,
            dtype=np.int64,
        ).reshape(-1)

    @property
    def size(self) -> int:
        """Total number of logged operations."""
        return (
            self.range_queries.shape[0]
            + self.density_points.shape[0]
            + self.top_k.shape[0]
            + self.quantile_levels.shape[0]
            + self.n_marginal_requests
            + self.od_top_k.shape[0]
            + self.transition_top_k.shape[0]
            + self.length_histogram_bins.shape[0]
        )

    @property
    def trajectory_operation_counts(self) -> dict[str, int]:
        """Per-kind counts of the log's trajectory operations (zero kinds omitted).

        Feeds the replay fail-fast message, so a mixed point+trajectory session
        log rejected by a point-only engine says exactly which op kinds need the
        trajectory surface.
        """
        counts = {
            "od_top_k": int(self.od_top_k.shape[0]),
            "transition_top_k": int(self.transition_top_k.shape[0]),
            "length_histogram": int(self.length_histogram_bins.shape[0]),
        }
        return {kind: count for kind, count in counts.items() if count}

    @property
    def has_trajectory_operations(self) -> bool:
        """Whether the log needs a :class:`TrajectoryQueryEngine` to replay fully."""
        return bool(self.trajectory_operation_counts)

    def save(self, path) -> None:
        """Persist the log as a compressed ``.npz`` archive."""
        np.savez_compressed(
            Path(path),
            range_queries=self.range_queries,
            density_points=self.density_points,
            top_k=self.top_k,
            quantile_levels=self.quantile_levels,
            n_marginal_requests=np.int64(self.n_marginal_requests),
            od_top_k=self.od_top_k,
            transition_top_k=self.transition_top_k,
            length_histogram_bins=self.length_histogram_bins,
        )

    @staticmethod
    def load(path) -> "QueryLog":
        with np.load(Path(path)) as archive:
            # Trajectory operations were added after the first on-disk format;
            # archives written by older versions simply lack the keys.
            def optional(key: str) -> np.ndarray:
                return archive[key] if key in archive.files else np.empty(0, dtype=np.int64)

            return QueryLog(
                range_queries=archive["range_queries"],
                density_points=archive["density_points"],
                top_k=archive["top_k"],
                quantile_levels=archive["quantile_levels"],
                n_marginal_requests=int(archive["n_marginal_requests"]),
                od_top_k=optional("od_top_k"),
                transition_top_k=optional("transition_top_k"),
                length_histogram_bins=optional("length_histogram_bins"),
            )

    @staticmethod
    def random(
        domain,
        *,
        n_range: int = 1000,
        n_density: int = 0,
        n_top_k: int = 0,
        n_quantiles: int = 0,
        n_marginals: int = 0,
        n_od_top_k: int = 0,
        n_transition_top_k: int = 0,
        n_length_histograms: int = 0,
        min_fraction: float = 0.05,
        max_fraction: float = 0.5,
        max_k: int = 10,
        seed=None,
    ) -> "QueryLog":
        """A random mixed workload over a :class:`~repro.core.domain.SpatialDomain`."""
        rng = ensure_rng(seed)
        widths = domain.width * rng.uniform(min_fraction, max_fraction, n_range)
        heights = domain.height * rng.uniform(min_fraction, max_fraction, n_range)
        x_lo = domain.x_min + rng.random(n_range) * (domain.width - widths)
        y_lo = domain.y_min + rng.random(n_range) * (domain.height - heights)
        ranges = np.column_stack([x_lo, x_lo + widths, y_lo, y_lo + heights])
        points = domain.denormalise(rng.random((n_density, 2)))
        return QueryLog(
            range_queries=ranges,
            density_points=points,
            top_k=rng.integers(1, max_k + 1, n_top_k),
            quantile_levels=rng.uniform(0.1, 0.95, n_quantiles),
            n_marginal_requests=n_marginals,
            od_top_k=rng.integers(1, max_k + 1, n_od_top_k),
            transition_top_k=rng.integers(1, max_k + 1, n_transition_top_k),
            length_histogram_bins=rng.integers(4, 33, n_length_histograms),
        )


def latency_stats(count: int, latencies) -> dict:
    """The per-kind stats record of a :class:`ReplayReport`.

    ``count`` operations took the given per-dispatch ``latencies`` (seconds);
    the record carries totals plus the 50th/99th percentile dispatch latency.
    Shared by :class:`WorkloadReplay` and the HTTP front-end's ``/metrics``
    endpoint so both report latency through one formula.
    """
    latencies = np.asarray(latencies, dtype=float)
    elapsed = float(latencies.sum())
    return {
        "count": count,
        "seconds": elapsed,
        "ops_per_second": count / elapsed if elapsed > 0 else float("inf"),
        "latency_p50": float(np.quantile(latencies, 0.50)),
        "latency_p99": float(np.quantile(latencies, 0.99)),
    }


@dataclass(frozen=True)
class ReplayReport:
    """Latency/throughput summary of one :class:`WorkloadReplay` run.

    ``per_kind`` maps each operation kind to ``count`` / ``seconds`` /
    ``ops_per_second`` plus ``latency_p50`` / ``latency_p99``: the 50th and 99th
    percentile latency (seconds) over the individual dispatches the replay issued
    for that kind — per item for the looped kinds (top-k, contours, marginals,
    trajectory statistics), per batch slice for the vectorised array kinds.
    """

    n_operations: int
    elapsed_seconds: float
    operations_per_second: float
    per_kind: dict = field(compare=False)

    def format(self) -> str:
        lines = [
            f"{'operation':<14} {'count':>9} {'seconds':>10} {'ops/sec':>14} "
            f"{'p50 ms':>9} {'p99 ms':>9}",
        ]
        for kind, stats in self.per_kind.items():
            lines.append(
                f"{kind:<14} {stats['count']:>9} {stats['seconds']:>10.4f} "
                f"{stats['ops_per_second']:>14.0f} "
                f"{stats['latency_p50'] * 1e3:>9.3f} "
                f"{stats['latency_p99'] * 1e3:>9.3f}"
            )
        lines.append(
            f"{'total':<14} {self.n_operations:>9} {self.elapsed_seconds:>10.4f} "
            f"{self.operations_per_second:>14.0f} {'-':>9} {'-':>9}"
        )
        return "\n".join(lines)


# Worker-process global for the replay pool: the engine ships once per worker via the
# pool initializer (same pattern as repro.core.parallel / the repetition pool).
_REPLAY_ENGINE: QueryEngine | None = None


def _replay_worker_init(engine: QueryEngine) -> None:
    global _REPLAY_ENGINE
    _REPLAY_ENGINE = engine


def _replay_range_chunk(chunk: np.ndarray) -> np.ndarray:
    assert _REPLAY_ENGINE is not None, "replay pool initializer did not run"
    return _REPLAY_ENGINE.range_mass(chunk)


def _replay_worker_ready(_: int) -> bool:
    """Warm-up probe: round-tripping it proves a worker is up and initialized."""
    return _REPLAY_ENGINE is not None


class WorkloadReplay:
    """Replay a saved :class:`QueryLog` against a :class:`QueryEngine`.

    Measures wall-clock latency and throughput per operation kind — the serving-side
    companion of the accuracy benchmarks.  ``workers > 1`` always fans the
    range-query batch out to a process pool (answers are identical to the serial
    replay; the batch is embarrassingly parallel): the batch is split evenly across
    the workers, with ``chunk_size`` as an upper bound on any single slice.

    The pool is created once and kept warm across replays.  Spawning workers and
    shipping the engine into them is a deployment cost, not query latency, so
    :meth:`replay` warms the pool *before* its timed sections — the original
    implementation built the pool inside the timed range pass, billing pool
    startup (easily hundreds of milliseconds) to the range-query figures.  Call
    :meth:`close` — or use the replay as a context manager — to release the
    workers.
    """

    #: how many same-sized slices the vectorised batch kinds are cut into so the
    #: latency percentiles have per-dispatch samples (slicing a row-wise batch
    #: and concatenating the slice answers is bitwise identical to one call)
    LATENCY_SLICES = 32

    def __init__(
        self, engine: QueryEngine, *, workers: int = 1, chunk_size: int = 100_000
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.engine = engine
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------- pool
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent fan-out pool, created and warmed on first use.

        Warm-up round-trips one probe per worker so the processes are spawned
        and the initializer (the one-time engine transfer) has run before any
        timed section starts.
        """
        if self._pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_replay_worker_init,
                initargs=(self.engine,),
            )
            if not all(pool.map(_replay_worker_ready, range(self.workers))):
                pool.shutdown()
                raise RuntimeError("replay pool initializer did not run")
            self._pool = pool
        return self._pool

    @property
    def pool_warm(self) -> bool:
        """Whether the persistent pool is already up (no startup left to bill)."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the persistent pool down (idempotent; reopens on next use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "WorkloadReplay":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _range_mass(self, queries: np.ndarray) -> np.ndarray:
        n = queries.shape[0]
        if self.workers <= 1 or n < 2:
            return self.engine.range_mass(queries)
        chunk = min(self.chunk_size, -(-n // self.workers))
        n_chunks = -(-n // chunk)
        chunks = np.array_split(queries, n_chunks)
        pool = self._ensure_pool()
        return np.concatenate(list(pool.map(_replay_range_chunk, chunks)))

    def replay(self, log: QueryLog) -> tuple[ReplayReport, dict]:
        """Run every logged operation; return the report and the raw answers.

        The answers dictionary maps operation kind to its results so replays can be
        compared across engine versions (regression harnesses diff them).  The
        report's ``per_kind`` uses the same kind strings as ``answers`` — in
        particular point-density lookups are keyed ``"point_density"`` in both.
        (Releases before 1.7 reported them under ``"density"``, so answer/report
        diffs mismatched; saved ``.npz`` query logs never stored kind strings and
        are unaffected by the rename.)
        """
        # Fail fast: a log that needs sequence statistics must not burn through the
        # whole point workload before discovering the engine cannot serve it.  The
        # check is structural (not an isinstance) so the streaming swap façade —
        # which delegates rather than subclasses TrajectoryQueryEngine — replays
        # mixed workloads mid-stream.
        if log.has_trajectory_operations:
            required = ("od_top_k", "transition_top_k", "length_histogram")
            if not all(callable(getattr(self.engine, op, None)) for op in required):
                kinds = ", ".join(
                    f"{kind} x{count}"
                    for kind, count in log.trajectory_operation_counts.items()
                )
                raise TypeError(
                    f"this query log contains trajectory operations ({kinds}) that "
                    f"{type(self.engine).__name__} cannot serve; replay it against "
                    "a TrajectoryQueryEngine (or the StreamingTrajectoryQueryEngine "
                    "serving façade)"
                )
        # Warm the fan-out pool before anything is timed: pool spawn and the
        # engine transfer must not be billed as range-query latency.
        if self.workers > 1 and log.range_queries.shape[0] >= 2:
            self._ensure_pool()
        per_kind: dict = {}
        answers: dict = {}

        def timed(kind: str, dispatches: list) -> list:
            """Run ``(n_ops, fn)`` dispatches; record totals and p50/p99 latency."""
            latencies = np.empty(len(dispatches))
            outputs = []
            count = 0
            for i, (n_ops, fn) in enumerate(dispatches):
                start = time.perf_counter()
                outputs.append(fn())
                latencies[i] = time.perf_counter() - start
                count += n_ops
            per_kind[kind] = latency_stats(count, latencies)
            return outputs

        def sliced(array: np.ndarray, fn) -> list:
            """Per-slice dispatches for a row-wise batch kind.

            range_mass and point_density answer each row independently, so the
            concatenated slice answers are bitwise identical to one full-batch
            call — slicing only adds timing points for the percentiles.
            """
            pieces = np.array_split(array, min(self.LATENCY_SLICES, array.shape[0]))
            return [(piece.shape[0], lambda p=piece: fn(p)) for piece in pieces]

        if log.range_queries.shape[0]:
            answers["range_mass"] = np.concatenate(
                timed("range_mass", sliced(log.range_queries, self._range_mass))
            )
        if log.density_points.shape[0]:
            answers["point_density"] = np.concatenate(
                timed(
                    "point_density",
                    sliced(log.density_points, self.engine.point_density),
                )
            )
        if log.top_k.shape[0]:
            answers["top_k"] = timed(
                "top_k",
                [(1, lambda k=int(k): self.engine.top_k_cells(k)) for k in log.top_k],
            )
        if log.quantile_levels.shape[0]:
            contour_lists = timed(
                "quantiles",
                [
                    (1, lambda lv=float(level): self.engine.quantile_contours([lv]))
                    for level in log.quantile_levels
                ],
            )
            answers["quantiles"] = [contours[0] for contours in contour_lists]
        if log.n_marginal_requests:
            answers["marginals"] = timed(
                "marginals",
                [
                    (1, self.engine.axis_marginals)
                    for _ in range(log.n_marginal_requests)
                ],
            )
        if log.od_top_k.shape[0]:
            answers["od_top_k"] = timed(
                "od_top_k",
                [(1, lambda k=int(k): self.engine.od_top_k(k)) for k in log.od_top_k],
            )
        if log.transition_top_k.shape[0]:
            answers["transition_top_k"] = timed(
                "transition_top_k",
                [
                    (1, lambda k=int(k): self.engine.transition_top_k(k))
                    for k in log.transition_top_k
                ],
            )
        if log.length_histogram_bins.shape[0]:
            answers["length_histogram"] = timed(
                "length_histogram",
                [
                    (1, lambda b=int(bins): self.engine.length_histogram(b))
                    for bins in log.length_histogram_bins
                ],
            )

        total_ops = sum(stats["count"] for stats in per_kind.values())
        total_seconds = sum(stats["seconds"] for stats in per_kind.values())
        report = ReplayReport(
            n_operations=total_ops,
            elapsed_seconds=total_seconds,
            operations_per_second=(
                total_ops / total_seconds if total_seconds > 0 else float("inf")
            ),
            per_kind=per_kind,
        )
        return report, answers
