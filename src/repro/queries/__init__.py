"""Private spatial range queries built on the distribution estimators.

The paper's stated extension: combining DAM with hierarchical range-query methods
(HIO / HDG / AHEAD).  :class:`FlatRangeQueryEngine` answers queries from a single
estimate; :class:`HierarchicalRangeQueryEngine` spreads users over a coarse-to-fine
hierarchy of DAM estimates; :class:`RangeQueryWorkload` generates workloads and scores
answers.

The serving path lives in :mod:`repro.queries.engine`: a
:class:`SummedAreaTable` gives every engine O(1) rectangle sums, the
:class:`QueryEngine` façade serves the mixed analyst workload (range mass, point
density, top-k hotspots, marginals, quantile contours),
:class:`StreamingQueryEngine` and :class:`StreamingTrajectoryQueryEngine` swap in
each epoch's fresh estimate atomically for mid-stream serving, and
:class:`WorkloadReplay` replays persisted :class:`QueryLog` traffic while
measuring latency and throughput.
"""

from repro.queries.engine import (
    HotspotCells,
    QuantileContour,
    QueryEngine,
    QueryLog,
    ReplayReport,
    StreamingQueryEngine,
    StreamingTrajectoryQueryEngine,
    SummedAreaTable,
    TrajectoryQueryEngine,
    TrajectoryTopK,
    WorkloadReplay,
    queries_to_array,
)
from repro.queries.range_query import (
    FlatRangeQueryEngine,
    HierarchicalRangeQueryEngine,
    RangeQuery,
    RangeQueryWorkload,
    dense_range_answer,
)

__all__ = [
    "FlatRangeQueryEngine",
    "HierarchicalRangeQueryEngine",
    "HotspotCells",
    "QuantileContour",
    "QueryEngine",
    "QueryLog",
    "RangeQuery",
    "RangeQueryWorkload",
    "ReplayReport",
    "StreamingQueryEngine",
    "StreamingTrajectoryQueryEngine",
    "SummedAreaTable",
    "TrajectoryQueryEngine",
    "TrajectoryTopK",
    "WorkloadReplay",
    "dense_range_answer",
    "queries_to_array",
]
