"""Private spatial range queries built on the distribution estimators.

The paper's stated extension: combining DAM with hierarchical range-query methods
(HIO / HDG / AHEAD).  :class:`FlatRangeQueryEngine` answers queries from a single
estimate; :class:`HierarchicalRangeQueryEngine` spreads users over a coarse-to-fine
hierarchy of DAM estimates; :class:`RangeQueryWorkload` generates workloads and scores
answers.

The serving path lives in :mod:`repro.queries.engine`: a
:class:`SummedAreaTable` gives every engine O(1) rectangle sums, the
:class:`QueryEngine` façade serves the mixed analyst workload (range mass, point
density, top-k hotspots, marginals, quantile contours),
:class:`StreamingQueryEngine` and :class:`StreamingTrajectoryQueryEngine` swap in
each epoch's fresh estimate atomically for mid-stream serving, and
:class:`WorkloadReplay` replays persisted :class:`QueryLog` traffic while
measuring latency and throughput.

Every engine speaks one query surface — :class:`QuerySurface` — so serving
code (the worker pool, the HTTP front, the replay harness) is written once
against ``answer`` / ``answer_batch`` instead of per-engine spellings.
"""

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.queries.engine import (
    HotspotCells,
    QuantileContour,
    QueryEngine,
    QueryLog,
    ReplayReport,
    StreamingQueryEngine,
    StreamingTrajectoryQueryEngine,
    SummedAreaTable,
    TrajectoryQueryEngine,
    TrajectoryTopK,
    WorkloadReplay,
    queries_to_array,
)
from repro.queries.range_query import (
    FlatRangeQueryEngine,
    HierarchicalRangeQueryEngine,
    RangeQuery,
    RangeQueryWorkload,
    dense_range_answer,
)


@runtime_checkable
class QuerySurface(Protocol):
    """The unified query surface every engine in the library exposes.

    ``answer`` takes one query (a :class:`RangeQuery` or an ``[x_lo, x_hi,
    y_lo, y_hi]`` row) and returns its scalar answer; ``answer_batch`` takes a
    workload — anything :func:`queries_to_array` accepts — and returns the
    ``(n,)`` answer vector.  ``answer_many`` is the deprecated pre-protocol
    spelling; new code (and the ``query-surface`` lint rule) uses
    ``answer_batch``.
    """

    def answer(self, query) -> float: ...

    def answer_batch(self, queries: Sequence | np.ndarray) -> np.ndarray: ...


__all__ = [
    "FlatRangeQueryEngine",
    "HierarchicalRangeQueryEngine",
    "HotspotCells",
    "QuantileContour",
    "QueryEngine",
    "QueryLog",
    "QuerySurface",
    "RangeQuery",
    "RangeQueryWorkload",
    "ReplayReport",
    "StreamingQueryEngine",
    "StreamingTrajectoryQueryEngine",
    "SummedAreaTable",
    "TrajectoryQueryEngine",
    "TrajectoryTopK",
    "WorkloadReplay",
    "dense_range_answer",
    "queries_to_array",
]
