"""Private spatial range queries built on the distribution estimators.

The paper's stated extension: combining DAM with hierarchical range-query methods
(HIO / HDG / AHEAD).  :class:`FlatRangeQueryEngine` answers queries from a single
estimate; :class:`HierarchicalRangeQueryEngine` spreads users over a coarse-to-fine
hierarchy of DAM estimates; :class:`RangeQueryWorkload` generates workloads and scores
answers.
"""

from repro.queries.range_query import (
    FlatRangeQueryEngine,
    HierarchicalRangeQueryEngine,
    RangeQuery,
    RangeQueryWorkload,
)

__all__ = [
    "FlatRangeQueryEngine",
    "HierarchicalRangeQueryEngine",
    "RangeQuery",
    "RangeQueryWorkload",
]
