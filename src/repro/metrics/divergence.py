"""Classical distribution-comparison metrics: KL, JS, total variation, MAE, MSE.

Section I of the paper argues that these metrics ignore the spatial ordinal
relationship between cells, which is why the evaluation uses the Wasserstein distance
instead.  They are still implemented here because (a) downstream users routinely want
them, and (b) the ablation benchmarks use them to demonstrate the paper's point — two
estimates can have identical total variation but very different ``W2``.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridDistribution
from repro.utils.validation import check_probability_vector


def _flatten_pair(
    dist_a: GridDistribution | np.ndarray, dist_b: GridDistribution | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    a = dist_a.flat() if isinstance(dist_a, GridDistribution) else np.asarray(dist_a, float).ravel()
    b = dist_b.flat() if isinstance(dist_b, GridDistribution) else np.asarray(dist_b, float).ravel()
    a = check_probability_vector(a, name="first distribution")
    b = check_probability_vector(b, name="second distribution")
    if a.shape != b.shape:
        raise ValueError(f"distributions must have equal size, got {a.shape} vs {b.shape}")
    return a, b


def kl_divergence(
    dist_a: GridDistribution | np.ndarray,
    dist_b: GridDistribution | np.ndarray,
    *,
    epsilon: float = 1e-12,
) -> float:
    """Kullback-Leibler divergence ``KL(A || B)`` in nats, with additive smoothing.

    Cells where ``B`` is zero but ``A`` is not would make the divergence infinite;
    ``epsilon`` smoothing keeps the value finite, which is the standard practice when
    comparing empirical histograms.
    """
    a, b = _flatten_pair(dist_a, dist_b)
    a = (a + epsilon) / (a + epsilon).sum()
    b = (b + epsilon) / (b + epsilon).sum()
    return float(np.sum(a * np.log(a / b)))


def js_divergence(
    dist_a: GridDistribution | np.ndarray, dist_b: GridDistribution | np.ndarray
) -> float:
    """Jensen-Shannon divergence (symmetric, bounded by ``ln 2``)."""
    a, b = _flatten_pair(dist_a, dist_b)
    mid = (a + b) / 2.0
    return 0.5 * kl_divergence(a, mid) + 0.5 * kl_divergence(b, mid)


def total_variation(
    dist_a: GridDistribution | np.ndarray, dist_b: GridDistribution | np.ndarray
) -> float:
    """Total-variation distance ``0.5 * ||A - B||_1``."""
    a, b = _flatten_pair(dist_a, dist_b)
    return 0.5 * float(np.abs(a - b).sum())


def mean_absolute_error(
    dist_a: GridDistribution | np.ndarray, dist_b: GridDistribution | np.ndarray
) -> float:
    """Per-cell mean absolute error between two distributions."""
    a, b = _flatten_pair(dist_a, dist_b)
    return float(np.abs(a - b).mean())


def mean_squared_error(
    dist_a: GridDistribution | np.ndarray, dist_b: GridDistribution | np.ndarray
) -> float:
    """Per-cell mean squared error between two distributions."""
    a, b = _flatten_pair(dist_a, dist_b)
    return float(((a - b) ** 2).mean())


def chi_square_statistic(
    observed_counts: np.ndarray, expected_counts: np.ndarray, *, epsilon: float = 1e-12
) -> float:
    """Pearson chi-square statistic between observed and expected cell counts.

    Used by tests to check that a mechanism's sampled reports match the probabilities
    declared by its transition matrix.
    """
    observed = np.asarray(observed_counts, dtype=float).ravel()
    expected = np.asarray(expected_counts, dtype=float).ravel()
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must have equal size")
    if np.any(expected < 0) or np.any(observed < 0):
        raise ValueError("counts must be non-negative")
    return float(np.sum((observed - expected) ** 2 / np.clip(expected, epsilon, None)))
