"""Local Privacy (LP) — Section VII-B's common yardstick for LDP and Geo-I mechanisms.

DAM satisfies ε-LDP while SEM-Geo-I satisfies ε-Geo-I, so their ε values are not
directly comparable.  The paper follows Shokri et al. and measures both through the
*Local Privacy* of Eq. (15)/(16): the expected distance between a user's true location
and a Bayes-adversary's estimate of it after observing the mechanism's output, under a
uniform prior over locations.

``LP = sum_{i'} 1/(n * sum_j Pr(i'|j)) * sum_{i, i_hat} Pr(i'|i) Pr(i'|i_hat) d(i_hat, i)``

Given the transition matrix of any mechanism over the same cell grid this is a pure
matrix computation; :func:`calibrate_epsilon` then finds, by bisection, the budget a
second mechanism needs to match a reference mechanism's LP — exactly how the paper sets
SEM-Geo-I's ε′ for each DAM ε.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.histogram import pairwise_cell_distances
from repro.utils.validation import check_probability_matrix


def local_privacy(
    transition: np.ndarray,
    distances: np.ndarray,
    *,
    prior: np.ndarray | None = None,
) -> float:
    """Local Privacy of a mechanism given its transition matrix (Eq. 16).

    Parameters
    ----------
    transition:
        ``(n, m)`` row-stochastic matrix ``Pr(output | input cell)``.  The output domain
        may be larger than the input domain (e.g. DAM's extended grid); the adversary's
        estimate is always an *input* cell, matching the paper's ``I_hat = I``.
    distances:
        ``(n, n)`` matrix of distances ``d_p(i_hat, i)`` between input cells (2-norm
        between cell centres in the paper).
    prior:
        Prior over input cells ``Pr(i)``; defaults to uniform, as in the paper.

    Returns
    -------
    float
        The expected adversary-to-truth distance.  Larger values mean more privacy.
    """
    matrix = check_probability_matrix(transition, name="transition")
    n = matrix.shape[0]
    dist = np.asarray(distances, dtype=float)
    if dist.shape != (n, n):
        raise ValueError(f"distances must have shape ({n}, {n}), got {dist.shape}")
    if prior is None:
        prior = np.full(n, 1.0 / n)
    prior = np.asarray(prior, dtype=float)
    if prior.shape != (n,):
        raise ValueError(f"prior must have shape ({n},), got {prior.shape}")
    prior = prior / prior.sum()

    total = 0.0
    # Column j of `matrix` is Pr(output=j | input=i) over inputs i.
    column_mass = matrix.sum(axis=0)  # sum_j Pr(i'|j) under the paper's uniform prior
    for output in range(matrix.shape[1]):
        column = matrix[:, output]
        mass = column_mass[output]
        if mass <= 0:
            continue
        # sum_{i, i_hat} Pr(i'|i) Pr(i'|i_hat) d(i_hat, i) = column^T D column
        pairwise = float(column @ dist @ column)
        total += pairwise / (n * mass)
    return total


def local_privacy_of_mechanism(mechanism, *, prior: np.ndarray | None = None) -> float:
    """Local Privacy of a :class:`~repro.core.estimator.TransitionMatrixMechanism`.

    Distances are Euclidean between input-cell centres in domain coordinates.
    """
    grid = mechanism.grid
    distances = pairwise_cell_distances(grid.d, grid.domain.bounds)
    return local_privacy(mechanism.transition, distances, prior=prior)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of matching one mechanism's Local Privacy to a reference value."""

    epsilon: float
    local_privacy: float
    target_local_privacy: float
    iterations: int
    converged: bool


def calibrate_epsilon(
    build_mechanism: Callable[[float], "object"],
    target_lp: float,
    *,
    epsilon_low: float = 0.05,
    epsilon_high: float = 50.0,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
) -> CalibrationResult:
    """Find the budget at which ``build_mechanism(eps)`` attains a target Local Privacy.

    Local Privacy decreases monotonically in the budget (more budget, less privacy), so
    a simple bisection suffices.  ``build_mechanism`` must return an object accepted by
    :func:`local_privacy_of_mechanism`.

    Typical use — match SEM-Geo-I to DAM as in Section VII-B::

        dam = DiscreteDAM(grid, epsilon)
        target = local_privacy_of_mechanism(dam)
        result = calibrate_epsilon(lambda e: SEMGeoI(grid, e), target)
        sem = SEMGeoI(grid, result.epsilon)
    """
    if target_lp <= 0:
        raise ValueError(f"target_lp must be positive, got {target_lp}")

    def lp_at(eps: float) -> float:
        return local_privacy_of_mechanism(build_mechanism(eps))

    low, high = epsilon_low, epsilon_high
    lp_low = lp_at(low)  # most privacy
    lp_high = lp_at(high)  # least privacy
    # Clamp to the achievable range rather than failing: very small/large targets are
    # matched as closely as the mechanism family allows.
    if target_lp >= lp_low:
        return CalibrationResult(low, lp_low, target_lp, 0, converged=False)
    if target_lp <= lp_high:
        return CalibrationResult(high, lp_high, target_lp, 0, converged=False)

    iterations = 0
    mid = (low + high) / 2.0
    lp_mid = lp_at(mid)
    for iterations in range(1, max_iterations + 1):
        mid = (low + high) / 2.0
        lp_mid = lp_at(mid)
        if abs(lp_mid - target_lp) <= tolerance * max(target_lp, 1e-12):
            return CalibrationResult(mid, lp_mid, target_lp, iterations, converged=True)
        if lp_mid > target_lp:
            # Too much privacy — increase the budget.
            low = mid
        else:
            high = mid
    return CalibrationResult(mid, lp_mid, target_lp, iterations, converged=False)
