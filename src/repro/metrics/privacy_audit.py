"""Empirical privacy auditing of LDP mechanisms.

The analytical guarantee (Theorem IV.1) bounds the probability ratio of any two inputs
producing the same output by ``e^eps``.  This module audits that bound *empirically*,
the way a privacy red-team would: run the mechanism many times on a pair of inputs,
estimate the per-output report probabilities, and compute confidence-aware bounds on
the realised privacy loss.  The audit catches implementation bugs (a mis-normalised
transition row, an off-by-one in the disk geometry) that unit tests on the closed forms
can miss, and it is exercised by both the test suite and an ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PrivacyAuditResult:
    """Outcome of an empirical LDP audit on one pair of inputs.

    Attributes
    ----------
    epsilon_declared:
        The budget the mechanism claims.
    epsilon_measured:
        The largest empirical log-probability ratio observed over outputs (a point
        estimate of the realised privacy loss for this input pair).
    epsilon_lower_confidence:
        A conservative lower confidence bound on the realised loss (Clopper-Pearson
        style, via a normal approximation with continuity floor).  A *violation* is
        only flagged when this bound exceeds the declared budget.
    n_trials:
        Number of mechanism invocations per input.
    violated:
        Whether the audit found statistically significant evidence that the mechanism
        exceeds its declared budget.
    """

    epsilon_declared: float
    epsilon_measured: float
    epsilon_lower_confidence: float
    n_trials: int
    violated: bool


def audit_pairwise_privacy(
    mechanism,
    cell_a: int,
    cell_b: int,
    *,
    n_trials: int = 20_000,
    confidence_z: float = 3.0,
    seed=None,
) -> PrivacyAuditResult:
    """Empirically audit the ε-LDP bound for one pair of input cells.

    The mechanism must follow the :class:`~repro.core.estimator.SpatialMechanism`
    protocol (``privatize_cells`` + ``output_domain_size``).  Outputs that were never
    observed for one of the two inputs are smoothed with a +1 pseudo-count, which keeps
    the estimate finite and biases it *against* finding false violations.
    """
    check_positive(n_trials, "n_trials")
    rng = ensure_rng(seed)
    n_outputs = mechanism.output_domain_size()
    reports_a = mechanism.privatize_cells(np.full(n_trials, cell_a, dtype=np.int64), seed=rng)
    reports_b = mechanism.privatize_cells(np.full(n_trials, cell_b, dtype=np.int64), seed=rng)
    counts_a = np.bincount(np.asarray(reports_a, dtype=np.int64), minlength=n_outputs) + 1.0
    counts_b = np.bincount(np.asarray(reports_b, dtype=np.int64), minlength=n_outputs) + 1.0
    prob_a = counts_a / counts_a.sum()
    prob_b = counts_b / counts_b.sum()

    log_ratio = np.log(prob_a) - np.log(prob_b)
    worst_index = int(np.argmax(np.abs(log_ratio)))
    measured = float(np.abs(log_ratio[worst_index]))

    # Normal-approximation standard error of the log ratio at the worst output.
    se = float(
        np.sqrt(
            (1.0 - prob_a[worst_index]) / counts_a[worst_index]
            + (1.0 - prob_b[worst_index]) / counts_b[worst_index]
        )
    )
    lower = max(measured - confidence_z * se, 0.0)
    declared = float(mechanism.epsilon)
    return PrivacyAuditResult(
        epsilon_declared=declared,
        epsilon_measured=measured,
        epsilon_lower_confidence=lower,
        n_trials=int(n_trials),
        violated=lower > declared * (1.0 + 1e-9),
    )


def audit_mechanism(
    mechanism,
    *,
    n_pairs: int = 5,
    n_trials: int = 20_000,
    confidence_z: float = 3.0,
    seed=None,
) -> list[PrivacyAuditResult]:
    """Audit several randomly chosen input pairs, always including the two far corners.

    The far-corner pair maximises the distance between the two inputs' high-probability
    disks and is where a broken disk mechanism is most likely to overshoot its budget.

    Because the audit takes the *maximum* log-ratio over all outputs, ``n_trials``
    should scale with :meth:`output_domain_size` (a few hundred trials per output is a
    good rule of thumb): with too few trials per output, the max-selection inflates
    the point estimate faster than the per-output confidence bound can compensate,
    and the audit starts flagging correct mechanisms.
    """
    rng = ensure_rng(seed)
    n_cells = mechanism.grid.n_cells
    pairs = [(0, n_cells - 1)]
    for _ in range(max(n_pairs - 1, 0)):
        a, b = rng.choice(n_cells, size=2, replace=False)
        pairs.append((int(a), int(b)))
    return [
        audit_pairwise_privacy(
            mechanism, a, b, n_trials=n_trials, confidence_z=confidence_z, seed=rng
        )
        for a, b in pairs
    ]


def worst_case_epsilon(results: list[PrivacyAuditResult]) -> float:
    """The largest measured privacy loss across audited pairs."""
    if not results:
        raise ValueError("no audit results supplied")
    return max(result.epsilon_measured for result in results)
