"""Exact Wasserstein distances: 1-D closed form and 2-D linear programming (Eq. 17).

The paper evaluates every mechanism by the 2-norm Wasserstein distance
``W2 = sqrt(W_2^2)`` between the true and the recovered grid distribution.  For finite
grid distributions the optimal-transport problem is the linear program of Eq. (17):
minimise ``<M, R>`` over joint distributions ``R`` with the two distributions as
marginals, where ``M`` holds the pairwise ``p``-norm costs to the ``p``-th power.

Small grids are solved exactly with ``scipy.optimize.linprog`` (HiGHS); for larger
grids the paper (and this library, see :mod:`repro.metrics.sinkhorn`) switches to the
Sinkhorn approximation.  The 1-D case has the classic quantile-coupling closed form and
is used heavily by the sliced Wasserstein distance.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.domain import GridDistribution
from repro.utils.histogram import pairwise_cell_distances
from repro.utils.validation import check_positive, check_probability_vector


def wasserstein_1d(
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    positions: np.ndarray | None = None,
    *,
    p: float = 2.0,
) -> float:
    """``p``-Wasserstein distance between two 1-D discrete distributions.

    Uses the quantile-function coupling, which is optimal in one dimension for any
    convex cost.  ``positions`` are the support points (defaults to ``0..n-1``); the
    two weight vectors must share that support.  Returns ``W_p`` (the ``p``-th root),
    not ``W_p^p``.
    """
    check_positive(p, "p")
    a = check_probability_vector(np.asarray(weights_a, dtype=float), name="weights_a")
    b = check_probability_vector(np.asarray(weights_b, dtype=float), name="weights_b")
    if a.shape != b.shape:
        raise ValueError(f"weight vectors must share a support, got {a.shape} vs {b.shape}")
    if positions is None:
        positions = np.arange(a.shape[0], dtype=float)
    positions = np.asarray(positions, dtype=float).reshape(-1)
    if positions.shape != a.shape:
        raise ValueError("positions must have the same length as the weights")
    order = np.argsort(positions)
    positions = positions[order]
    a = a[order]
    b = b[order]
    return _wasserstein_1d_sorted(a, b, positions, p)


def _wasserstein_1d_sorted(a: np.ndarray, b: np.ndarray, positions: np.ndarray, p: float) -> float:
    """Quantile-coupling W_p for weights already sorted by position."""
    cdf_a = np.cumsum(a)
    cdf_b = np.cumsum(b)
    # Merge both quantile levels, then integrate |F_a^{-1}(u) - F_b^{-1}(u)|^p du.
    levels = np.concatenate([[0.0], np.sort(np.concatenate([cdf_a, cdf_b]))])
    levels = np.clip(levels, 0.0, 1.0)
    deltas = np.diff(levels)
    mids = (levels[:-1] + levels[1:]) / 2.0
    inv_a = positions[np.searchsorted(cdf_a, mids, side="left").clip(0, len(positions) - 1)]
    inv_b = positions[np.searchsorted(cdf_b, mids, side="left").clip(0, len(positions) - 1)]
    cost = float(np.sum(deltas * np.abs(inv_a - inv_b) ** p))
    return cost ** (1.0 / p)


def wasserstein_1d_general(
    positions_a: np.ndarray,
    weights_a: np.ndarray,
    positions_b: np.ndarray,
    weights_b: np.ndarray,
    *,
    p: float = 1.0,
) -> float:
    """W_p between two 1-D distributions on *different* supports.

    Needed by the sliced Wasserstein distance, whose Radon projections generally do not
    share support points.
    """
    check_positive(p, "p")
    pa = np.asarray(positions_a, dtype=float).reshape(-1)
    pb = np.asarray(positions_b, dtype=float).reshape(-1)
    wa = check_probability_vector(np.asarray(weights_a, dtype=float), name="weights_a")
    wb = check_probability_vector(np.asarray(weights_b, dtype=float), name="weights_b")
    if pa.shape != wa.shape or pb.shape != wb.shape:
        raise ValueError("positions and weights must have matching lengths")
    order_a = np.argsort(pa)
    order_b = np.argsort(pb)
    pa, wa = pa[order_a], wa[order_a]
    pb, wb = pb[order_b], wb[order_b]
    cdf_a = np.cumsum(wa)
    cdf_b = np.cumsum(wb)
    levels = np.concatenate([[0.0], np.sort(np.concatenate([cdf_a, cdf_b]))])
    levels = np.clip(levels, 0.0, 1.0)
    deltas = np.diff(levels)
    mids = (levels[:-1] + levels[1:]) / 2.0
    inv_a = pa[np.searchsorted(cdf_a, mids, side="left").clip(0, len(pa) - 1)]
    inv_b = pb[np.searchsorted(cdf_b, mids, side="left").clip(0, len(pb) - 1)]
    cost = float(np.sum(deltas * np.abs(inv_a - inv_b) ** p))
    return cost ** (1.0 / p)


def wasserstein_exact(
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    cost_matrix: np.ndarray,
) -> float:
    """Exact optimal-transport cost ``min <M, R>`` by linear programming (Eq. 17).

    Returns the optimal objective value (i.e. ``W_p^p`` if ``cost_matrix`` holds
    ``p``-th powers of distances).  The LP has ``m * n`` variables and ``m + n``
    equality constraints and is handed to the HiGHS solver in sparse form.
    """
    a = check_probability_vector(np.asarray(weights_a, dtype=float), name="weights_a")
    b = check_probability_vector(np.asarray(weights_b, dtype=float), name="weights_b")
    cost = np.asarray(cost_matrix, dtype=float)
    if cost.shape != (a.shape[0], b.shape[0]):
        raise ValueError(
            f"cost matrix shape {cost.shape} does not match weights "
            f"({a.shape[0]}, {b.shape[0]})"
        )
    m, n = cost.shape
    # Re-normalise exactly so the two marginals carry identical total mass (tiny
    # floating-point drift otherwise makes the equality system infeasible).
    a = a / a.sum()
    b = b / b.sum()
    # Row-marginal constraints then column-marginal constraints.  The final column
    # constraint is redundant (total mass is fixed by the others) and dropping it keeps
    # the equality system full-rank, which HiGHS prefers.
    row_indices = np.repeat(np.arange(m), n)
    col_indices = np.tile(np.arange(n), m) + m
    variable_indices = np.arange(m * n)
    data = np.ones(2 * m * n)
    rows = np.concatenate([row_indices, col_indices])
    cols = np.concatenate([variable_indices, variable_indices])
    keep = rows < m + n - 1
    constraints = sparse.coo_matrix(
        (data[keep], (rows[keep], cols[keep])), shape=(m + n - 1, m * n)
    )
    rhs = np.concatenate([a, b])[: m + n - 1]
    result = linprog(
        cost.reshape(-1),
        A_eq=constraints.tocsr(),
        b_eq=rhs,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:  # pragma: no cover - linprog failure is exceptional
        raise RuntimeError(f"optimal transport LP failed: {result.message}")
    return float(result.fun)


def wasserstein2_grid(
    dist_a: GridDistribution,
    dist_b: GridDistribution,
    *,
    p: float = 2.0,
) -> float:
    """``W_p`` between two grid distributions using the exact LP solver.

    Distances between cells are Euclidean distances between cell centres in domain
    coordinates; the returned value is ``W_p`` (the ``p``-th root of the optimal cost),
    matching the ``W2`` reported in the paper's figures.
    """
    if dist_a.grid.d != dist_b.grid.d:
        raise ValueError("grid distributions must live on grids of equal side")
    check_positive(p, "p")
    distances = pairwise_cell_distances(dist_a.grid.d, dist_a.grid.domain.bounds)
    cost = distances**p
    value = wasserstein_exact(dist_a.flat(), dist_b.flat(), cost)
    return value ** (1.0 / p)


def wasserstein2_auto(
    dist_a: GridDistribution,
    dist_b: GridDistribution,
    *,
    p: float = 2.0,
    exact_cell_limit: int = 144,
    sinkhorn_reg: float = 0.01,
) -> float:
    """``W_p`` with the paper's solver switch: exact LP for small grids, Sinkhorn above.

    The paper solves Eq. (17) exactly for ``d <= 5`` and switches to Sinkhorn's
    algorithm for the ``d`` up to 20 sweeps; ``exact_cell_limit`` (default 144 cells,
    i.e. ``d = 12``) reproduces that behaviour while keeping runtimes laptop-friendly.
    """
    if dist_a.grid.n_cells <= exact_cell_limit:
        return wasserstein2_grid(dist_a, dist_b, p=p)
    from repro.metrics.sinkhorn import sinkhorn_wasserstein  # local import, no cycle

    return sinkhorn_wasserstein(dist_a, dist_b, p=p, reg=sinkhorn_reg)
