"""Radon transforms and the sliced Wasserstein distance (Definitions 6 and 7).

The paper sidesteps the lack of a closed form for the 2-D Wasserstein distance by
projecting both distributions onto lines (the Radon transform) and integrating the 1-D
Wasserstein distance of the projections over all directions — the *sliced* Wasserstein
distance.  DAM's optimality proof (Theorem V.2) maximises exactly this quantity between
the output distributions of any two inputs.

For discrete grid distributions the Radon transform of a direction ``theta`` is simply
the 1-D distribution of the cell centres projected onto the unit vector
``(cos theta, sin theta)`` with the cell masses as weights.  The sliced distance is then
a (uniform or fixed-grid) average of 1-D Wasserstein distances over directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.domain import GridDistribution
from repro.metrics.wasserstein import wasserstein_1d_general
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RadonProjection:
    """A 1-D projected distribution: support positions and their weights."""

    positions: np.ndarray
    weights: np.ndarray
    theta: float


def radon_projection(distribution: GridDistribution, theta: float) -> RadonProjection:
    """Radon transform of a grid distribution along direction ``theta``.

    Each cell's mass is placed at the signed projection of its centre onto the unit
    vector ``(cos theta, sin theta)``.  Cells that project to (numerically) the same
    coordinate are merged so downstream 1-D solvers see a clean support.
    """
    direction = np.array([math.cos(theta), math.sin(theta)])
    centers = distribution.grid.cell_centers()
    projected = centers @ direction
    weights = distribution.flat()
    # Merge duplicate projected positions (within a tolerance tied to the cell size).
    resolution = distribution.grid.cell_side * 1e-9 + 1e-12
    keys = np.round(projected / resolution).astype(np.int64)
    order = np.argsort(keys)
    keys = keys[order]
    projected = projected[order]
    weights = weights[order]
    unique_keys, start_indices = np.unique(keys, return_index=True)
    merged_positions = np.add.reduceat(projected * weights, start_indices)
    merged_weights = np.add.reduceat(weights, start_indices)
    safe = merged_weights > 0
    positions = np.where(
        safe, merged_positions / np.clip(merged_weights, 1e-300, None), projected[start_indices]
    )
    return RadonProjection(positions=positions, weights=merged_weights, theta=float(theta))


def projected_wasserstein(
    dist_a: GridDistribution,
    dist_b: GridDistribution,
    theta: float,
    *,
    p: float = 1.0,
) -> float:
    """1-D ``W_p`` between the Radon projections of two grid distributions."""
    proj_a = radon_projection(dist_a, theta)
    proj_b = radon_projection(dist_b, theta)
    weights_a = proj_a.weights / proj_a.weights.sum()
    weights_b = proj_b.weights / proj_b.weights.sum()
    return wasserstein_1d_general(proj_a.positions, weights_a, proj_b.positions, weights_b, p=p)


def sliced_wasserstein(
    dist_a: GridDistribution,
    dist_b: GridDistribution,
    *,
    p: float = 1.0,
    n_projections: int = 32,
    random_directions: bool = False,
    seed=None,
) -> float:
    """Sliced ``L^p`` Wasserstein distance between two grid distributions.

    Parameters
    ----------
    p:
        The norm of the 1-D transport cost (the paper's optimality analysis uses
        ``p = 1``, i.e. ``SW^1_2``).
    n_projections:
        Number of directions used to approximate the integral over the unit circle.
    random_directions:
        ``False`` (default) integrates over an evenly spaced grid of angles in
        ``[0, pi)``, which is deterministic and the natural quadrature for the circle
        integral; ``True`` samples directions uniformly (Monte-Carlo slicing).
    seed:
        Randomness source when ``random_directions=True``.

    Returns
    -------
    float
        ``( (1/K) * sum_k W_p(proj_k A, proj_k B)^p )^(1/p)`` — the normalised sliced
        distance.  Normalising by the number of directions (instead of multiplying by
        ``2 pi``) keeps values comparable across ``n_projections``.
    """
    if dist_a.grid.d != dist_b.grid.d:
        raise ValueError("grid distributions must live on grids of equal side")
    check_positive(p, "p")
    if n_projections < 1:
        raise ValueError(f"n_projections must be >= 1, got {n_projections}")
    if random_directions:
        rng = ensure_rng(seed)
        thetas = rng.uniform(0.0, math.pi, n_projections)
    else:
        thetas = np.linspace(0.0, math.pi, n_projections, endpoint=False)
    total = 0.0
    for theta in thetas:
        total += projected_wasserstein(dist_a, dist_b, float(theta), p=p) ** p
    return (total / n_projections) ** (1.0 / p)


def sliced_wasserstein_lower_bounds_w2(
    dist_a: GridDistribution, dist_b: GridDistribution, *, n_projections: int = 64
) -> tuple[float, float]:
    """Return ``(SW_2, W2-style scale)`` — a helper for tests of the SW/W relationship.

    Each 1-D projection is a 1-Lipschitz map, so the per-direction transport cost never
    exceeds the full 2-D cost; averaging preserves the inequality.  Tests use this to
    check ``SW_2 <= W_2`` numerically, which validates both implementations at once.
    """
    sw2 = sliced_wasserstein(dist_a, dist_b, p=2.0, n_projections=n_projections)
    from repro.metrics.wasserstein import wasserstein2_auto  # local import, no cycle

    w2 = wasserstein2_auto(dist_a, dist_b, p=2.0)
    return sw2, w2
