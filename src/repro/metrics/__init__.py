"""Distance metrics and privacy yardsticks used by the paper's evaluation.

* Exact Wasserstein distances (1-D closed form, 2-D linear program — Eq. 17).
* Sinkhorn approximation for fine grids (Cuturi 2013).
* Radon transform and sliced Wasserstein distance (Definitions 6 and 7).
* Classical divergences (KL, JS, TV, MAE, MSE) for comparison.
* Local Privacy (Eq. 15/16) and the ε-calibration that makes LDP and Geo-I mechanisms
  comparable.
"""

from repro.metrics.divergence import (
    chi_square_statistic,
    js_divergence,
    kl_divergence,
    mean_absolute_error,
    mean_squared_error,
    total_variation,
)
from repro.metrics.local_privacy import (
    CalibrationResult,
    calibrate_epsilon,
    local_privacy,
    local_privacy_of_mechanism,
)
from repro.metrics.privacy_audit import (
    PrivacyAuditResult,
    audit_mechanism,
    audit_pairwise_privacy,
    worst_case_epsilon,
)
from repro.metrics.sinkhorn import (
    SinkhornResult,
    sinkhorn_distance,
    sinkhorn_plan,
    sinkhorn_wasserstein,
)
from repro.metrics.sliced import (
    RadonProjection,
    projected_wasserstein,
    radon_projection,
    sliced_wasserstein,
)
from repro.metrics.wasserstein import (
    wasserstein2_auto,
    wasserstein2_grid,
    wasserstein_1d,
    wasserstein_1d_general,
    wasserstein_exact,
)

__all__ = [
    "chi_square_statistic",
    "js_divergence",
    "kl_divergence",
    "mean_absolute_error",
    "mean_squared_error",
    "total_variation",
    "CalibrationResult",
    "calibrate_epsilon",
    "local_privacy",
    "local_privacy_of_mechanism",
    "PrivacyAuditResult",
    "audit_mechanism",
    "audit_pairwise_privacy",
    "worst_case_epsilon",
    "SinkhornResult",
    "sinkhorn_distance",
    "sinkhorn_plan",
    "sinkhorn_wasserstein",
    "RadonProjection",
    "projected_wasserstein",
    "radon_projection",
    "sliced_wasserstein",
    "wasserstein2_auto",
    "wasserstein2_grid",
    "wasserstein_1d",
    "wasserstein_1d_general",
    "wasserstein_exact",
]
