"""Entropic optimal transport (Sinkhorn's algorithm, Cuturi 2013).

The paper uses Sinkhorn's algorithm to approximate the 2-D Wasserstein distance when
the grid is too fine for the exact linear program (Section VII-C2).  This module
implements the log-domain (stabilised) Sinkhorn iteration, which stays numerically
sound for the small regularisation values needed to track the exact distance closely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.domain import GridDistribution
from repro.utils.histogram import pairwise_cell_distances
from repro.utils.validation import check_positive, check_probability_vector


@dataclass(frozen=True)
class SinkhornResult:
    """Transport cost plus convergence diagnostics of a Sinkhorn run."""

    cost: float
    iterations: int
    marginal_error: float
    converged: bool


def sinkhorn_plan(
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    cost_matrix: np.ndarray,
    *,
    reg: float = 0.01,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
) -> tuple[np.ndarray, SinkhornResult]:
    """Entropy-regularised optimal transport plan via log-domain Sinkhorn iterations.

    Parameters
    ----------
    weights_a, weights_b:
        Source and target distributions (must sum to one).
    cost_matrix:
        ``(m, n)`` ground-cost matrix (typically squared Euclidean distances).
    reg:
        Entropic regularisation strength; smaller values approximate the unregularised
        optimum more closely at the price of more iterations.
    max_iterations, tolerance:
        Convergence controls on the marginal violation.

    Returns
    -------
    (plan, result)
        The transport plan and a :class:`SinkhornResult` with the entropic transport
        cost ``<plan, cost>`` (excluding the entropy term, which is what the paper
        reports).
    """
    a = check_probability_vector(np.asarray(weights_a, dtype=float), name="weights_a")
    b = check_probability_vector(np.asarray(weights_b, dtype=float), name="weights_b")
    cost = np.asarray(cost_matrix, dtype=float)
    if cost.shape != (a.shape[0], b.shape[0]):
        raise ValueError(
            f"cost matrix shape {cost.shape} does not match weights "
            f"({a.shape[0]}, {b.shape[0]})"
        )
    check_positive(reg, "reg")

    # Zero-mass bins would produce -inf potentials; drop them and reinsert at the end.
    support_a = a > 0
    support_b = b > 0
    a_pos = a[support_a]
    b_pos = b[support_b]
    kernel = -cost[np.ix_(support_a, support_b)] / reg
    log_a = np.log(a_pos)
    log_b = np.log(b_pos)
    f = np.zeros_like(a_pos)
    g = np.zeros_like(b_pos)

    def _logsumexp(matrix: np.ndarray, axis: int) -> np.ndarray:
        peak = matrix.max(axis=axis, keepdims=True)
        return (peak + np.log(np.exp(matrix - peak).sum(axis=axis, keepdims=True))).squeeze(axis)

    converged = False
    iterations = 0
    marginal_error = np.inf
    for iterations in range(1, max_iterations + 1):
        f = reg * (log_a - _logsumexp((kernel + g[None, :] / reg), axis=1))
        g = reg * (log_b - _logsumexp((kernel + f[:, None] / reg).T, axis=1))
        if iterations % 10 == 0 or iterations == max_iterations:
            log_plan = kernel + f[:, None] / reg + g[None, :] / reg
            plan_pos = np.exp(log_plan)
            marginal_error = float(
                np.abs(plan_pos.sum(axis=1) - a_pos).sum()
                + np.abs(plan_pos.sum(axis=0) - b_pos).sum()
            )
            if marginal_error < tolerance:
                converged = True
                break

    log_plan = kernel + f[:, None] / reg + g[None, :] / reg
    plan_pos = np.exp(log_plan)
    plan = np.zeros_like(cost)
    plan[np.ix_(support_a, support_b)] = plan_pos
    transport_cost = float((plan * cost).sum())
    return plan, SinkhornResult(
        cost=transport_cost,
        iterations=iterations,
        marginal_error=marginal_error,
        converged=converged,
    )


def sinkhorn_distance(
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    cost_matrix: np.ndarray,
    *,
    reg: float = 0.01,
    max_iterations: int = 2000,
) -> float:
    """Entropic transport cost ``<plan, cost>`` (no root applied)."""
    _, result = sinkhorn_plan(
        weights_a, weights_b, cost_matrix, reg=reg, max_iterations=max_iterations
    )
    return result.cost


def sinkhorn_wasserstein(
    dist_a: GridDistribution,
    dist_b: GridDistribution,
    *,
    p: float = 2.0,
    reg: float = 0.01,
    max_iterations: int = 2000,
) -> float:
    """Approximate ``W_p`` between grid distributions using Sinkhorn's algorithm.

    The ground cost is the ``p``-th power of the Euclidean distance between cell
    centres; the returned value is the ``p``-th root of the entropic transport cost, so
    it is directly comparable to :func:`repro.metrics.wasserstein.wasserstein2_grid`.
    The regularisation is scaled by the maximum ground cost so one ``reg`` value
    behaves consistently across domains of different physical size.
    """
    if dist_a.grid.d != dist_b.grid.d:
        raise ValueError("grid distributions must live on grids of equal side")
    check_positive(p, "p")
    distances = pairwise_cell_distances(dist_a.grid.d, dist_a.grid.domain.bounds)
    cost = distances**p
    scale = float(cost.max()) if cost.max() > 0 else 1.0
    _, result = sinkhorn_plan(
        dist_a.flat(),
        dist_b.flat(),
        cost,
        reg=reg * scale,
        max_iterations=max_iterations,
    )
    return result.cost ** (1.0 / p)
