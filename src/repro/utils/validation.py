"""Argument validation helpers shared across the library.

Each helper raises ``ValueError`` (or ``TypeError``) with an actionable message and
returns the validated, possibly coerced, value so call sites can write

``epsilon = check_epsilon(epsilon)``

in one line.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def check_positive(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a finite positive (or non-negative) number."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_epsilon(epsilon: float) -> float:
    """Validate a privacy budget.

    The paper's mechanisms are defined for ``epsilon > 0``; extremely large budgets
    (> 100) almost always indicate a unit mistake (e.g. passing ``e^eps``) and
    overflow ``exp``, so they are rejected too.
    """
    epsilon = check_positive(epsilon, "epsilon")
    if epsilon > 100:
        raise ValueError(
            f"epsilon={epsilon} is implausibly large; budgets in the paper range "
            "from 0.5 to 9 — did you pass exp(epsilon) by mistake?"
        )
    return epsilon


def check_grid_side(d: int) -> int:
    """Validate a grid side length ``d`` (number of cells along one axis)."""
    if isinstance(d, bool) or not isinstance(d, (int, np.integer)):
        raise TypeError(f"grid side d must be an integer, got {type(d).__name__}")
    d = int(d)
    if d < 1:
        raise ValueError(f"grid side d must be >= 1, got {d}")
    if d > 4096:
        raise ValueError(f"grid side d={d} is too large; the estimator is O(d^4) in memory")
    return d


def check_radius(b: float, *, name: str = "b", allow_zero: bool = False) -> float:
    """Validate a (continuous or discrete) high-probability radius."""
    return check_positive(b, name, allow_zero=allow_zero)


def check_probability_vector(
    vector: np.ndarray,
    *,
    name: str = "distribution",
    atol: float = 1e-6,
    require_normalised: bool = True,
) -> np.ndarray:
    """Validate (and return as float array) a 1-D probability vector."""
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(arr < -atol):
        raise ValueError(f"{name} contains negative entries")
    if require_normalised and not math.isclose(float(arr.sum()), 1.0, abs_tol=1e-4):
        raise ValueError(f"{name} must sum to 1, got sum={arr.sum():.6f}")
    return np.clip(arr, 0.0, None)


def check_probability_matrix(
    matrix: np.ndarray,
    *,
    name: str = "transition matrix",
    axis: int = 1,
    atol: float = 1e-6,
) -> np.ndarray:
    """Validate a stochastic matrix whose rows (``axis=1``) sum to one."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(arr < -atol):
        raise ValueError(f"{name} contains negative entries")
    sums = arr.sum(axis=axis)
    if not np.allclose(sums, 1.0, atol=1e-4):
        worst = float(np.abs(sums - 1.0).max())
        raise ValueError(f"{name} rows must sum to 1 (worst deviation {worst:.2e})")
    return np.clip(arr, 0.0, None)


def check_bounds(
    low: float,
    high: float,
    *,
    name: str = "bounds",
) -> tuple[float, float]:
    """Validate an interval ``(low, high)`` with ``low < high``."""
    low = float(low)
    high = float(high)
    if not (math.isfinite(low) and math.isfinite(high)):
        raise ValueError(f"{name} must be finite, got ({low}, {high})")
    if low >= high:
        raise ValueError(f"{name} must satisfy low < high, got ({low}, {high})")
    return low, high


def check_points(
    points: np.ndarray, *, name: str = "points", dims: Optional[int] = 2
) -> np.ndarray:
    """Validate an ``(n, dims)`` array of coordinates and return it as float."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 1 and dims == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array of shape (n, {dims}), got shape {arr.shape}")
    if dims is not None and arr.shape[1] != dims:
        raise ValueError(f"{name} must have {dims} columns, got {arr.shape[1]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite coordinates")
    return arr
