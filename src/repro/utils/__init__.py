"""Shared utilities: RNG handling, argument validation and histogram helpers.

These helpers keep the rest of the library free of repetitive bookkeeping:
every stochastic component accepts either a seed or a :class:`numpy.random.Generator`
and converts it through :func:`ensure_rng`, every user-facing parameter is checked
through the validators in :mod:`repro.utils.validation`, and the 2-D histogram
plumbing shared by datasets, mechanisms and metrics lives in
:mod:`repro.utils.histogram`.
"""

from repro.utils.histogram import (
    counts_to_distribution,
    distribution_to_counts,
    flatten_grid,
    grid_cell_centers,
    points_to_grid_counts,
    unflatten_grid,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_epsilon,
    check_grid_side,
    check_positive,
    check_probability_matrix,
    check_probability_vector,
    check_radius,
)
from repro.utils.visual import ascii_heatmap, side_by_side, sparkline

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_epsilon",
    "check_grid_side",
    "check_positive",
    "check_probability_matrix",
    "check_probability_vector",
    "check_radius",
    "ascii_heatmap",
    "side_by_side",
    "sparkline",
    "counts_to_distribution",
    "distribution_to_counts",
    "flatten_grid",
    "grid_cell_centers",
    "points_to_grid_counts",
    "unflatten_grid",
]
