"""Random-number-generator plumbing.

All stochastic code in the library takes a ``seed`` argument that may be

* ``None`` — fresh OS entropy,
* an ``int`` — deterministic seed,
* an existing :class:`numpy.random.Generator` — used as-is (shared state), or
* a :class:`numpy.random.SeedSequence`.

:func:`ensure_rng` normalises all four into a :class:`numpy.random.Generator` so the
rest of the code never branches on the seed type.  :func:`spawn_rngs` derives
statistically independent child generators, which the experiment runner uses to give
each repetition of an experiment its own stream.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None``, an integer, a ``Generator`` or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
        A generator.  If ``seed`` is already a generator it is returned unchanged,
        so callers can deliberately share one stream across components.

    Raises
    ------
    TypeError
        If ``seed`` is of an unsupported type (e.g. a float or a legacy
        ``RandomState``).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, a numpy Generator or a SeedSequence; "
        f"got {type(seed).__name__}"
    )


def spawn_seed_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent child :class:`~numpy.random.SeedSequence` objects.

    This is the picklable half of :func:`spawn_rngs`: a ``SeedSequence`` travels
    across process boundaries, so the parallel execution engine ships one child per
    shard to its worker pool and every worker builds its own generator locally.
    The derivation is exactly the one :func:`spawn_rngs` uses, so a serial run over
    ``spawn_rngs(seed, count)`` and a parallel run over
    ``spawn_seed_sequences(seed, count)`` consume identical random streams.

    Parameters
    ----------
    seed:
        Any accepted seed form (see :func:`ensure_rng`).
    count:
        Number of child sequences, must be positive.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence deterministically from the parent generator.
        entropy = int(seed.integers(0, 2**63 - 1))
        sequence = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif seed is None:
        sequence = np.random.SeedSequence()
    else:
        sequence = np.random.SeedSequence(int(seed))
    return sequence.spawn(count)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    The child streams are produced with :meth:`numpy.random.SeedSequence.spawn` (via
    :func:`spawn_seed_sequences`), so they are statistically independent regardless of
    ``count``.  When ``seed`` is a ``Generator``, children are derived from fresh
    entropy drawn from it, which keeps the call deterministic for a seeded parent.

    Parameters
    ----------
    seed:
        Any accepted seed form (see :func:`ensure_rng`).
    count:
        Number of child generators, must be positive.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)]


def supports_stream_splitting(rng: np.random.Generator) -> bool:
    """Whether ``rng``'s bit generator can be split positionally with ``advance``.

    PCG64 (the ``default_rng`` family), PCG64DXSM and Philox expose ``advance``;
    MT19937 does not.  The parallel engine's ``"stream"`` RNG mode needs it.
    """
    return hasattr(rng.bit_generator, "advance")


def generator_state(rng: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state (a picklable plain dict)."""
    return rng.bit_generator.state


def generator_from_state(state: dict, advance_by: int = 0) -> np.random.Generator:
    """Rebuild a generator from a :func:`generator_state` snapshot, optionally advanced.

    ``advance_by`` is measured in 64-bit draws.  Because every batch sampler in this
    library consumes exactly one ``rng.random()`` double (one 64-bit draw) per user in
    input order, a worker that advances a shared base state by the number of users in
    all preceding shards reproduces, bit for bit, the uniforms a serial pass would
    have handed to its shard — this is what makes the parallel pipeline's ``"stream"``
    mode exactly equivalent to the serial one.
    """
    name = state["bit_generator"]
    try:
        bit_generator = getattr(np.random, name)()
    except AttributeError as exc:  # pragma: no cover - exotic third-party bit generators
        raise ValueError(f"unknown bit generator {name!r} in state snapshot") from exc
    bit_generator.state = state
    if advance_by:
        if not hasattr(bit_generator, "advance"):
            raise ValueError(
                f"bit generator {name!r} does not support advance(); "
                "use the 'spawn' RNG mode for parallel execution instead"
            )
        bit_generator.advance(int(advance_by))
    return np.random.Generator(bit_generator)


def sample_categorical(
    rng: np.random.Generator,
    probabilities: np.ndarray,
    size: Optional[int] = None,
) -> Union[int, np.ndarray]:
    """Draw indices from a categorical distribution given by ``probabilities``.

    A thin wrapper over ``rng.choice`` that first re-normalises the vector to guard
    against tiny floating-point drift (sums such as 0.999999999 would otherwise raise
    inside NumPy).

    Parameters
    ----------
    rng:
        Source of randomness.
    probabilities:
        1-D non-negative array.  Must have a strictly positive sum.
    size:
        ``None`` for a single integer draw, otherwise the number of i.i.d. draws.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ValueError(f"probabilities must be 1-D, got shape {probs.shape}")
    if np.any(probs < 0):
        raise ValueError("probabilities must be non-negative")
    total = probs.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("probabilities must have a positive finite sum")
    probs = probs / total
    return rng.choice(len(probs), size=size, p=probs)


def weighted_sample_index(rng: np.random.Generator, weights: Sequence[float]) -> int:
    """Sample one index proportionally to ``weights`` (Algorithm 2, lines 6 and 14)."""
    return int(sample_categorical(rng, np.asarray(list(weights), dtype=float)))


def iter_value_groups(values: np.ndarray):
    """Yield ``(value, index_array)`` for each distinct value of an integer array.

    One stable argsort groups all occurrences; the index arrays partition
    ``arange(len(values))``.  Shared by the batch samplers so per-distinct-cell work
    (one ``searchsorted`` per row) is paid once regardless of batch size.
    """
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_values)) + 1
    for group in np.split(order, boundaries):
        yield int(values[group[0]]), group


def sample_grouped_inverse_cdf(
    rng: np.random.Generator,
    cells: np.ndarray,
    cdf_for_cell,
    n_out: int,
) -> np.ndarray:
    """Batch inverse-CDF sampling: one uniform per user, one searchsorted per row.

    ``cdf_for_cell(cell)`` must return the cumulative distribution of that cell's
    response row.  Each user consumes exactly one ``rng.random()`` double in input
    order, which is what makes chunked (streaming) privatization with a shared
    generator bit-identical to one batch call.  Results are clipped into
    ``[0, n_out)`` to guard against a final CDF entry just below 1.
    """
    reports = np.empty(cells.shape[0], dtype=np.int64)
    if cells.shape[0] == 0:
        return reports
    u = rng.random(cells.shape[0])
    for cell, group in iter_value_groups(cells):
        reports[group] = np.searchsorted(cdf_for_cell(cell), u[group], side="right")
    np.clip(reports, 0, n_out - 1, out=reports)
    return reports
