"""2-D histogram helpers shared by datasets, mechanisms and metrics.

The library's common currency is a ``d x d`` grid of cell probabilities (row index =
y/"row" cell, column index = x/"column" cell).  These helpers convert between point
clouds, count grids, probability grids and the flattened vectors used by the linear
algebra in the estimators and the optimal-transport solvers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_grid_side, check_points


def points_to_grid_counts(
    points: np.ndarray,
    bounds: tuple[float, float, float, float],
    d: int,
) -> np.ndarray:
    """Histogram 2-D points into a ``d x d`` integer count grid.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of ``(x, y)`` coordinates.
    bounds:
        ``(x_min, x_max, y_min, y_max)`` of the domain.  Points outside are clipped
        onto the boundary (the paper extracts rectangular parts first, so boundary
        points are legitimate data, not errors).
    d:
        Grid side length.

    Returns
    -------
    numpy.ndarray
        ``(d, d)`` array of counts with ``counts[row, col]`` covering the cell whose
        x-range is ``col`` and y-range is ``row``.
    """
    d = check_grid_side(d)
    pts = check_points(points)
    x_min, x_max, y_min, y_max = bounds
    if x_min >= x_max or y_min >= y_max:
        raise ValueError(f"invalid bounds {bounds}: expected x_min < x_max and y_min < y_max")
    cols = cell_index(pts[:, 0], x_min, x_max, d)
    rows = cell_index(pts[:, 1], y_min, y_max, d)
    counts = np.zeros((d, d), dtype=np.int64)
    np.add.at(counts, (rows, cols), 1)
    return counts


def cell_index(values: np.ndarray, low: float, high: float, d: int) -> np.ndarray:
    """Map coordinates to cell indices in ``[0, d)``, clipping out-of-range values."""
    span = high - low
    idx = np.floor((np.asarray(values, dtype=float) - low) / span * d).astype(np.int64)
    return np.clip(idx, 0, d - 1)


def counts_to_distribution(counts: np.ndarray) -> np.ndarray:
    """Normalise a count grid into a probability grid.

    An all-zero grid maps to the uniform distribution, which is the conventional
    non-informative fallback used by the estimators.
    """
    arr = np.asarray(counts, dtype=float)
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    total = arr.sum()
    if total <= 0:
        return np.full(arr.shape, 1.0 / arr.size)
    return arr / total


def distribution_to_counts(distribution: np.ndarray, n: int) -> np.ndarray:
    """Scale a probability grid back into expected counts for ``n`` users."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return np.asarray(distribution, dtype=float) * float(n)


def flatten_grid(grid: np.ndarray) -> np.ndarray:
    """Flatten a ``(d, d)`` grid into a length ``d*d`` vector in row-major order."""
    arr = np.asarray(grid, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"grid must be square 2-D, got shape {arr.shape}")
    return arr.reshape(-1)


def unflatten_grid(vector: np.ndarray, d: int | None = None) -> np.ndarray:
    """Reshape a flat vector back into a square ``(d, d)`` grid."""
    arr = np.asarray(vector, dtype=float).reshape(-1)
    if d is None:
        d = int(round(np.sqrt(arr.size)))
    if d * d != arr.size:
        raise ValueError(f"vector of size {arr.size} is not a {d}x{d} grid")
    return arr.reshape(d, d)


def grid_cell_centers(
    d: int,
    bounds: tuple[float, float, float, float] = (0.0, 1.0, 0.0, 1.0),
) -> np.ndarray:
    """Return the ``(d*d, 2)`` array of cell-centre coordinates in row-major order.

    Row-major means the first ``d`` rows of the result are the cells of grid row 0
    (lowest y band), scanning x from left to right — matching :func:`flatten_grid`.
    """
    d = check_grid_side(d)
    x_min, x_max, y_min, y_max = bounds
    xs = x_min + (np.arange(d) + 0.5) * (x_max - x_min) / d
    ys = y_min + (np.arange(d) + 0.5) * (y_max - y_min) / d
    grid_x, grid_y = np.meshgrid(xs, ys)  # shape (d, d): rows vary y, cols vary x
    return np.column_stack([grid_x.reshape(-1), grid_y.reshape(-1)])


def pairwise_cell_distances(
    d: int,
    bounds: tuple[float, float, float, float] = (0.0, 1.0, 0.0, 1.0),
    *,
    ord: float = 2.0,
) -> np.ndarray:
    """Pairwise distances between cell centres of a ``d x d`` grid.

    Returns an ``(d*d, d*d)`` matrix; used both by the optimal-transport metrics and
    by the Geo-I style mechanisms whose privacy loss scales with distance.
    """
    centers = grid_cell_centers(d, bounds)
    diff = centers[:, None, :] - centers[None, :, :]
    if ord == 2.0:
        return np.sqrt((diff**2).sum(axis=-1))
    if ord == 1.0:
        return np.abs(diff).sum(axis=-1)
    return np.linalg.norm(diff, ord=ord, axis=-1)
