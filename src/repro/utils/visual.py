"""Terminal visualisation helpers: ASCII heat maps and sparklines.

The examples and the benchmark reports need a dependency-free way to show a density
map; these helpers render a :class:`~repro.core.domain.GridDistribution` (or a raw
probability grid) as an ASCII heat map, and short numeric series as unicode sparklines
for the experiment summaries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_SHADES = " .:-=+*#%@"
_SPARK_BARS = "▁▂▃▄▅▆▇█"


def ascii_heatmap(
    grid: np.ndarray,
    *,
    title: str | None = None,
    shades: str = _SHADES,
    flip_vertical: bool = True,
) -> str:
    """Render a 2-D non-negative array as an ASCII heat map string.

    ``flip_vertical`` puts the highest row (largest y) on top, matching the usual map
    orientation of the grid convention used throughout the library.
    """
    if hasattr(grid, "probabilities"):
        values = np.asarray(grid.probabilities, dtype=float)
    else:
        values = np.asarray(grid, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {values.shape}")
    if np.any(values < 0):
        raise ValueError("heat map values must be non-negative")
    if len(shades) < 2:
        raise ValueError("need at least two shade characters")
    scale = values.max()
    lines = []
    if title:
        lines.append(title)
    rows = values[::-1] if flip_vertical else values
    for row in rows:
        if scale > 0:
            indices = np.minimum((row / scale * (len(shades) - 1)).astype(int), len(shades) - 1)
        else:
            indices = np.zeros(row.shape, dtype=int)
        lines.append("".join(shades[i] for i in indices))
    return "\n".join(lines)


def sparkline(values: Sequence[float] | Iterable[float]) -> str:
    """Render a numeric series as a unicode sparkline (e.g. for W2-versus-eps trends)."""
    series = np.asarray(list(values), dtype=float)
    if series.size == 0:
        return ""
    if not np.all(np.isfinite(series)):
        raise ValueError("sparkline values must be finite")
    low, high = float(series.min()), float(series.max())
    if high == low:
        return _SPARK_BARS[0] * series.size
    normalised = (series - low) / (high - low)
    indices = np.minimum(
        (normalised * (len(_SPARK_BARS) - 1)).round().astype(int), len(_SPARK_BARS) - 1
    )
    return "".join(_SPARK_BARS[i] for i in indices)


def side_by_side(left: str, right: str, *, gap: int = 4) -> str:
    """Place two multi-line blocks next to each other (true map vs estimated map)."""
    if gap < 0:
        raise ValueError("gap must be non-negative")
    left_lines = left.splitlines() or [""]
    right_lines = right.splitlines() or [""]
    height = max(len(left_lines), len(right_lines))
    width = max((len(line) for line in left_lines), default=0)
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{l.ljust(width)}{' ' * gap}{r}" for l, r in zip(left_lines, right_lines)
    )
