"""LDPTrace — locally differentially private trajectory synthesis (Du et al., VLDB 2023).

Simplified re-implementation of the Appendix-D baseline.  LDPTrace learns three
ingredients of a trajectory model under LDP and then synthesises an entirely synthetic
trajectory dataset from them:

1. the distribution of trajectory *lengths* (bucketised),
2. the distribution of *start cells* on a coarse grid, and
3. a Markov *transition model* over (cell, direction) pairs describing how trajectories
   move between neighbouring cells.

Each user spends one third of the privacy budget on each ingredient, reporting through
the categorical frequency oracles of :mod:`repro.mechanisms.cfo`.  Synthesis draws a
length, a start cell and then walks the estimated Markov model.  As the paper observes,
most of the budget goes to directionality rather than density, which is why LDPTrace
trails DAM on the point-density Wasserstein metric that Figure 14 reports.

The production ``fit``/``synthesize`` paths delegate to the vectorized batch engine in
:mod:`repro.trajectory.engine`; the original per-trajectory/per-step loops are retained
verbatim as :meth:`LDPTrace.fit_reference` / :meth:`LDPTrace.synthesize_reference` and
serve as the ground truth of the differential tests in ``tests/trajectory/``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.domain import GridSpec
from repro.core.postprocess import sanitize_probability_vector
from repro.mechanisms.cfo import GeneralizedRandomizedResponse, OptimizedUnaryEncoding
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon

#: The 8-connected movement directions plus "stay" used by the Markov model.
DIRECTIONS: tuple[tuple[int, int], ...] = (
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 0),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
)


@dataclass
class LDPTraceModel:
    """The three estimated ingredients of the LDPTrace generative model."""

    length_distribution: np.ndarray
    start_distribution: np.ndarray
    direction_distribution: np.ndarray
    length_buckets: np.ndarray


class LDPTrace:
    """Simplified LDPTrace: learn length/start/transition under LDP, then synthesise.

    Parameters
    ----------
    grid:
        The analysis grid trajectories are mapped onto.
    epsilon:
        Total per-user budget, split evenly across the three reports.
    n_length_buckets:
        Number of buckets used for the length distribution.
    max_length:
        Upper bound of the length domain (paper's trajectories go up to 200).
    """

    name = "LDPTrace"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        n_length_buckets: int = 10,
        max_length: int = 200,
    ) -> None:
        self.grid = grid
        self.epsilon = check_epsilon(epsilon)
        if n_length_buckets < 1 or max_length < 2:
            raise ValueError("n_length_buckets must be >= 1 and max_length >= 2")
        self.n_length_buckets = n_length_buckets
        self.max_length = max_length
        share = epsilon / 3.0
        self.length_oracle = GeneralizedRandomizedResponse(n_length_buckets, share)
        self.start_oracle = OptimizedUnaryEncoding(grid.n_cells, share)
        self.direction_oracle = GeneralizedRandomizedResponse(len(DIRECTIONS), share)
        self.length_buckets = np.linspace(2, max_length, n_length_buckets + 1)

    # ------------------------------------------------------------------ fitting
    def _length_bucket(self, lengths: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.length_buckets[1:-1], lengths, side="right")
        return np.clip(idx, 0, self.n_length_buckets - 1)

    def _trajectory_cells(self, trajectory: np.ndarray) -> np.ndarray:
        return self.grid.point_to_cell(trajectory)

    def _sample_direction(self, cells: np.ndarray, rng: np.random.Generator) -> int:
        """One uniformly sampled movement of a trajectory, encoded as a direction index."""
        if cells.shape[0] < 2:
            return DIRECTIONS.index((0, 0))
        pick = rng.integers(0, cells.shape[0] - 1)
        row_a, col_a = cells[pick] // self.grid.d, cells[pick] % self.grid.d
        row_b, col_b = cells[pick + 1] // self.grid.d, cells[pick + 1] % self.grid.d
        step = (int(np.clip(row_b - row_a, -1, 1)), int(np.clip(col_b - col_a, -1, 1)))
        return DIRECTIONS.index(step)

    def fit(self, trajectories: list[np.ndarray], seed=None) -> LDPTraceModel:
        """Collect the three LDP reports from every trajectory owner and estimate.

        Delegates to the vectorized :class:`~repro.trajectory.engine.TrajectoryEngine`
        (report collection in whole-array operations); use
        :meth:`TrajectoryEngine.fit` directly for multi-worker sharded collection.
        """
        from repro.trajectory.engine import TrajectoryEngine

        return TrajectoryEngine(self).fit(trajectories, seed=seed)

    def fit_reference(self, trajectories: list[np.ndarray], seed=None) -> LDPTraceModel:
        """The seed per-trajectory fitting loop, retained for differential testing."""
        rng = ensure_rng(seed)
        if not trajectories:
            raise ValueError("cannot fit LDPTrace on an empty trajectory set")
        lengths = np.array([t.shape[0] for t in trajectories])
        cell_sequences = [self._trajectory_cells(t) for t in trajectories]
        start_cells = np.array([c[0] for c in cell_sequences])
        directions = np.array(
            [self._sample_direction(c, rng) for c in cell_sequences], dtype=np.int64
        )

        n = len(trajectories)
        length_reports = self.length_oracle.privatize(self._length_bucket(lengths), seed=rng)
        start_reports = self.start_oracle.privatize(start_cells, seed=rng)
        direction_reports = self.direction_oracle.privatize(directions, seed=rng)

        model = LDPTraceModel(
            length_distribution=self.length_oracle.estimate_frequencies(length_reports, n),
            start_distribution=self.start_oracle.estimate_frequencies(start_reports, n),
            direction_distribution=self.direction_oracle.estimate_frequencies(direction_reports, n),
            length_buckets=self.length_buckets,
        )
        return model

    # ---------------------------------------------------------------- synthesis
    def synthesize(
        self, model: LDPTraceModel, n_trajectories: int, seed=None
    ) -> list[np.ndarray]:
        """Generate synthetic trajectories (as point sequences) from a fitted model.

        Delegates to the batched Markov walk of
        :class:`~repro.trajectory.engine.TrajectoryEngine`: all lengths, start cells
        and direction matrices are drawn in whole-array operations.
        """
        from repro.trajectory.engine import TrajectoryEngine

        return TrajectoryEngine(self).synthesize(model, n_trajectories, seed=seed)

    def synthesize_reference(
        self, model: LDPTraceModel, n_trajectories: int, seed=None
    ) -> list[np.ndarray]:
        """The seed per-step synthesis loop, retained for differential testing."""
        rng = ensure_rng(seed)
        if n_trajectories < 0:
            raise ValueError(f"n_trajectories must be non-negative, got {n_trajectories}")
        trajectories: list[np.ndarray] = []
        d = self.grid.d
        # Unbiased frequency estimates can be negative (or degenerate) when the model
        # was built from raw inverse-perturbation estimates; sanitize before sampling.
        start_probs = sanitize_probability_vector(model.start_distribution)
        length_probs = sanitize_probability_vector(model.length_distribution)
        direction_probs = sanitize_probability_vector(model.direction_distribution)
        for _ in range(n_trajectories):
            bucket = rng.choice(self.n_length_buckets, p=length_probs)
            lo = model.length_buckets[bucket]
            hi = model.length_buckets[bucket + 1]
            length = int(max(2, round(rng.uniform(lo, hi))))
            cell = int(rng.choice(self.grid.n_cells, p=start_probs))
            row, col = cell // d, cell % d
            cells = [cell]
            for _ in range(length - 1):
                direction = DIRECTIONS[int(rng.choice(len(DIRECTIONS), p=direction_probs))]
                row = int(np.clip(row + direction[0], 0, d - 1))
                col = int(np.clip(col + direction[1], 0, d - 1))
                cells.append(row * d + col)
            trajectories.append(self._cells_to_points(np.array(cells), rng))
        return trajectories

    def _cells_to_points(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rows, cols = cells // self.grid.d, cells % self.grid.d
        u = rng.random((cells.shape[0], 2))
        x_min, x_max, y_min, y_max = self.grid.domain.bounds
        xs = x_min + (cols + u[:, 0]) * (x_max - x_min) / self.grid.d
        ys = y_min + (rows + u[:, 1]) * (y_max - y_min) / self.grid.d
        return np.column_stack([xs, ys])

    def fit_synthesize(
        self, trajectories: list[np.ndarray], seed=None, n_output: int | None = None
    ) -> list[np.ndarray]:
        """Convenience: fit the model and synthesise a same-sized trajectory set."""
        rng = ensure_rng(seed)
        model = self.fit(trajectories, seed=rng)
        count = len(trajectories) if n_output is None else n_output
        return self.synthesize(model, count, seed=rng)
