"""Trajectory mechanisms and the Appendix-D trajectory-to-point comparison harness."""

from repro.trajectory.adapter import (
    TrajectoryComparisonResult,
    compare_all_trajectory_mechanisms,
    compare_trajectory_mechanism,
    trajectory_point_distribution,
)
from repro.trajectory.engine import (
    DEFAULT_TRAJECTORY_SHARD_SIZE,
    TrajectoryEngine,
    TrajectoryReports,
    TrajectoryShardAggregate,
    merge_trajectory_aggregates,
)
from repro.trajectory.ldptrace import DIRECTIONS, LDPTrace, LDPTraceModel
from repro.trajectory.pivottrace import PivotTrace

__all__ = [
    "TrajectoryComparisonResult",
    "compare_all_trajectory_mechanisms",
    "compare_trajectory_mechanism",
    "trajectory_point_distribution",
    "DEFAULT_TRAJECTORY_SHARD_SIZE",
    "TrajectoryEngine",
    "TrajectoryReports",
    "TrajectoryShardAggregate",
    "merge_trajectory_aggregates",
    "DIRECTIONS",
    "LDPTrace",
    "LDPTraceModel",
    "PivotTrace",
]
