"""PivotTrace — trajectory collection with LDP via pivot points (Zhang et al., VLDB 2023).

Simplified re-implementation of the second Appendix-D baseline.  Instead of learning a
generative model, each user selects a small number of *pivot* points of their
trajectory (first, middle(s) and last), perturbs each pivot's grid cell independently
under its share of the budget, and reports the perturbed pivots together with the
(bucketised) trajectory length.  The analyst reconstructs each trajectory by connecting
consecutive reported pivots with straight-line interpolation across the grid.

Pivot perturbation uses the exponential Geo-I-style kernel over cells (distance-aware,
like the original paper's optimised perturbation), and the per-pivot budget is the
total budget divided by the number of pivots so sequential composition holds.

:meth:`PivotTrace.collect` batches the oracle side — every pivot of every trajectory
is perturbed through one grouped inverse-CDF pass and all length reports travel
through one GRR call — leaving only the per-trajectory polyline interpolation as a
loop.  The seed per-trajectory loop is retained as :meth:`PivotTrace.collect_reference`
for differential testing.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridSpec, stack_trajectory_cells
from repro.mechanisms.cfo import GeneralizedRandomizedResponse
from repro.utils.histogram import pairwise_cell_distances
from repro.utils.rng import ensure_rng, sample_grouped_inverse_cdf
from repro.utils.validation import check_epsilon


class PivotTrace:
    """Simplified PivotTrace: report perturbed pivot cells, reconstruct by interpolation.

    Parameters
    ----------
    grid:
        Analysis grid.
    epsilon:
        Total per-user budget, split evenly over the pivot reports and the length
        report.
    n_pivots:
        Number of pivot points per trajectory (>= 2: start and end are always pivots).
    """

    name = "PivotTrace"

    def __init__(self, grid: GridSpec, epsilon: float, *, n_pivots: int = 3) -> None:
        self.grid = grid
        self.epsilon = check_epsilon(epsilon)
        if n_pivots < 2:
            raise ValueError(f"n_pivots must be >= 2, got {n_pivots}")
        self.n_pivots = n_pivots
        # One budget share per pivot plus one for the length report.
        self.share = epsilon / (n_pivots + 1)
        self.length_oracle = GeneralizedRandomizedResponse(32, self.share)
        distances = pairwise_cell_distances(grid.d, grid.domain.bounds) / grid.cell_side
        kernel = np.exp(-self.share * distances / 2.0)
        # Each diagonal entry is exp(0) = 1, so rows cannot collapse to zero; the
        # guard still covers pathological inputs (uniform fallback, no-op otherwise).
        row_sums = kernel.sum(axis=1, keepdims=True)
        self._pivot_kernel = np.where(
            row_sums > 0, kernel / np.maximum(row_sums, 1e-300), 1.0 / grid.n_cells
        )
        self._pivot_kernel_cdf = np.cumsum(self._pivot_kernel, axis=1)
        self._length_buckets = np.linspace(2, 200, 33)

    # ------------------------------------------------------------------ reporting
    def _pivot_indices(self, length: int) -> np.ndarray:
        return np.unique(np.linspace(0, length - 1, self.n_pivots).round().astype(int))

    def _perturb_cells(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Batch pivot perturbation: one grouped inverse-CDF pass over kernel rows."""
        return sample_grouped_inverse_cdf(
            rng,
            np.asarray(cells, dtype=np.int64),
            self._pivot_kernel_cdf.__getitem__,
            self.grid.n_cells,
        )

    def _perturb_cells_reference(
        self, cells: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """The seed per-pivot ``rng.choice`` loop, retained for differential tests."""
        noisy = np.empty_like(cells)
        for i, cell in enumerate(cells):
            noisy[i] = rng.choice(self.grid.n_cells, p=self._pivot_kernel[cell])
        return noisy

    def _length_bucket(self, length: int) -> int:
        idx = int(np.searchsorted(self._length_buckets[1:-1], length, side="right"))
        return min(idx, self.length_oracle.domain_size - 1)

    def _bucket_length(self, bucket: int, rng: np.random.Generator) -> int:
        lo = self._length_buckets[bucket]
        hi = self._length_buckets[bucket + 1]
        return int(max(2, round(rng.uniform(lo, hi))))

    # ------------------------------------------------------------- reconstruction
    def collect(self, trajectories: list[np.ndarray], seed=None) -> list[np.ndarray]:
        """Report pivots for every trajectory and reconstruct the noisy trajectories.

        The oracle side is fully batched: the trajectory set is stacked and mapped to
        cells once, every pivot cell of every trajectory is perturbed in one grouped
        inverse-CDF pass, and all length buckets travel through one GRR batch call.
        Only the polyline interpolation (pure arithmetic) remains per trajectory.
        """
        rng = ensure_rng(seed)
        if not trajectories:
            raise ValueError("cannot collect an empty trajectory set")
        lengths, starts, cells = stack_trajectory_cells(self.grid, trajectories)

        # Pivot positions: round(linspace(0, len-1, p)) per trajectory, deduplicated
        # exactly as the reference's np.unique (the rounded sequence is already
        # sorted, so "first occurrence" is the same set in the same order).
        fractions = np.linspace(0.0, 1.0, self.n_pivots)
        pivot_idx = np.round(fractions[None, :] * (lengths - 1)[:, None]).astype(np.int64)
        valid = np.ones_like(pivot_idx, dtype=bool)
        valid[:, 1:] = pivot_idx[:, 1:] != pivot_idx[:, :-1]
        pivot_cells = cells[(starts[:, None] + pivot_idx)[valid]]
        pivots_per_trajectory = valid.sum(axis=1)

        noisy_pivots = self._perturb_cells(pivot_cells, rng)
        bucket_edges = self._length_buckets
        true_buckets = np.minimum(
            np.searchsorted(bucket_edges[1:-1], lengths, side="right"),
            self.length_oracle.domain_size - 1,
        )
        noisy_buckets = self.length_oracle.privatize(true_buckets, seed=rng)
        lo = bucket_edges[noisy_buckets]
        hi = bucket_edges[noisy_buckets + 1]
        target_lengths = np.maximum(
            2, np.round(lo + rng.random(lengths.shape[0]) * (hi - lo)).astype(np.int64)
        )

        pivot_offsets = np.concatenate([[0], np.cumsum(pivots_per_trajectory)])
        return [
            self._interpolate(
                noisy_pivots[pivot_offsets[i] : pivot_offsets[i + 1]],
                int(target_lengths[i]),
                rng,
            )
            for i in range(lengths.shape[0])
        ]

    def collect_reference(self, trajectories: list[np.ndarray], seed=None) -> list[np.ndarray]:
        """The seed per-trajectory collection loop, retained for differential testing."""
        rng = ensure_rng(seed)
        if not trajectories:
            raise ValueError("cannot collect an empty trajectory set")
        reconstructed: list[np.ndarray] = []
        for trajectory in trajectories:
            cells = self.grid.point_to_cell(trajectory)
            pivots = cells[self._pivot_indices(cells.shape[0])]
            noisy_pivots = self._perturb_cells_reference(pivots, rng)
            noisy_length_bucket = int(
                self.length_oracle.privatize(
                    np.array([self._length_bucket(cells.shape[0])]),
                    seed=rng,
                )[0]
            )
            target_length = self._bucket_length(noisy_length_bucket, rng)
            reconstructed.append(self._interpolate(noisy_pivots, target_length, rng))
        return reconstructed

    def _interpolate(
        self, pivot_cells: np.ndarray, target_length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Connect consecutive pivots with straight segments resampled to the length."""
        d = self.grid.d
        rows, cols = pivot_cells // d, pivot_cells % d
        # Parametrise the pivot polyline and resample it at `target_length` points.
        if pivot_cells.shape[0] == 1:
            rows = np.repeat(rows, 2)
            cols = np.repeat(cols, 2)
        t_pivots = np.linspace(0.0, 1.0, rows.shape[0])
        t_samples = np.linspace(0.0, 1.0, max(target_length, 2))
        sample_rows = np.interp(t_samples, t_pivots, rows.astype(float))
        sample_cols = np.interp(t_samples, t_pivots, cols.astype(float))
        u = rng.random((t_samples.shape[0], 2))
        x_min, x_max, y_min, y_max = self.grid.domain.bounds
        xs = x_min + (sample_cols + u[:, 0]) * (x_max - x_min) / d
        ys = y_min + (sample_rows + u[:, 1]) * (y_max - y_min) / d
        return np.column_stack([xs, ys])
