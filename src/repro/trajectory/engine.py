"""Vectorized, batched trajectory privatization and synthesis engine.

The seed implementation of LDPTrace (:mod:`repro.trajectory.ldptrace`) collects its
three per-user LDP reports in a per-trajectory Python loop and synthesises one
trajectory at a time, one step at a time — fine for a figure, hopeless for the
ROADMAP's production-scale trajectory workloads.  This module is the scaled path:

* :meth:`TrajectoryEngine.collect_reports` gathers all three report streams (length /
  start cell / movement direction) with zero per-trajectory Python beyond the cell
  mapping: the trajectory set is stacked once, mapped to cells once, and every
  uniformly-sampled movement is computed in whole-array operations.
* :meth:`TrajectoryEngine.fit` shards report collection over a process pool using the
  same mergeable-aggregate protocol as :class:`repro.core.parallel.ParallelPipeline`
  (:func:`repro.core.parallel.run_sharded`): each shard reduces its reports to the
  additive :class:`TrajectoryShardAggregate` sufficient statistic, the coordinator
  merges and runs the oracle estimators once.  Results are deterministic in the seed
  and the shard plan and invariant to the worker count.
* :meth:`TrajectoryEngine.synthesize` replaces the per-step walk with a batched Markov
  walk: all length buckets, start cells and direction matrices are drawn in
  whole-array operations (pad-to-max-length, then mask); the only remaining loop is
  over time steps, each a vectorised update of every trajectory at once.

The seed loops survive as ``fit_reference`` / ``synthesize_reference`` and back the
differential tests in ``tests/trajectory/test_trajectory_engine.py``: estimates from merged
aggregates are bit-identical to oracle estimates over the raw concatenated reports,
and batched synthesis matches the reference walk's point density to W2 tolerance
(gated at serving scale by ``benchmarks/test_trajectory_throughput.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Literal

import numpy as np

from repro.core.backend import WALK_BACKENDS, resolve_backend
from repro.core.domain import GridSpec, SpatialDomain, stack_trajectory_cells
from repro.core.parallel import run_sharded
from repro.core.postprocess import sanitize_probability_vector
from repro.trajectory.ldptrace import DIRECTIONS, LDPTrace, LDPTraceModel
from repro.utils.rng import ensure_rng, spawn_seed_sequences

#: Default number of trajectories per shard for the sharded fit.  Small enough that a
#: 10k-trajectory workload spreads over several workers, large enough that per-shard
#: overhead (pickling the shard, three oracle calls) stays negligible.
DEFAULT_TRAJECTORY_SHARD_SIZE = 2048

#: Row/column steps of each direction index, vectorised lookup tables for the walk.
_DIR_ROW_STEPS = np.array([step[0] for step in DIRECTIONS], dtype=np.int64)
_DIR_COL_STEPS = np.array([step[1] for step in DIRECTIONS], dtype=np.int64)
# int8 copies for the native walk kernel (steps are always in {-1, 0, 1}).
_DIR_ROW_STEPS_NARROW = _DIR_ROW_STEPS.astype(np.int8)
_DIR_COL_STEPS_NARROW = _DIR_COL_STEPS.astype(np.int8)

#: Synthesis backends: ``"operator"`` is the whole-array numpy walk this module
#: introduced; ``"native"`` routes the walk through :mod:`repro.kernels.walk`
#: (time-major layout, narrow dtypes, optional numba loop) — bit-identical
#: trajectories, same RNG consumption, less memory traffic per step.
WalkBackend = Literal["operator", "native"]


@dataclass(frozen=True)
class TrajectoryReports:
    """The raw per-user LDP report streams of one trajectory set."""

    length_reports: np.ndarray
    start_reports: np.ndarray
    direction_reports: np.ndarray
    n_users: int


@dataclass(frozen=True)
class TrajectoryShardAggregate:
    """Additive sufficient statistic of one shard's trajectory reports.

    The trajectory analogue of :class:`repro.core.estimator.ShardAggregate`: three
    per-category support-count histograms plus a user counter.  Summing any number of
    these (in any order) and estimating once is exactly equivalent to estimating over
    the concatenated raw reports — the property the differential tests pin bit-for-bit.

    The class conforms to the functional mergeable-aggregate protocol
    (:mod:`repro.streaming.protocol`): :meth:`subtracted` is the **exact inverse**
    of :meth:`merged` (every count is an integer-valued float far below ``2**53``,
    so the algebra is bit-exact), which is what lets
    :class:`repro.streaming.trajectory.StreamingTrajectoryService` slide a
    trajectory window in O(one epoch) instead of re-scanning surviving reports.
    :meth:`scaled` / :meth:`clamped` supply the exponentially-decayed window
    variant; ``n_users`` stays an ``int`` whenever integral and becomes a
    ``float`` only for decay-weighted aggregates.
    """

    length_counts: np.ndarray
    start_counts: np.ndarray
    direction_counts: np.ndarray
    n_users: int | float

    def __post_init__(self) -> None:
        object.__setattr__(self, "length_counts", np.asarray(self.length_counts, dtype=float))
        object.__setattr__(self, "start_counts", np.asarray(self.start_counts, dtype=float))
        object.__setattr__(self, "direction_counts", np.asarray(self.direction_counts, dtype=float))
        users = float(self.n_users)
        object.__setattr__(self, "n_users", int(users) if users.is_integer() else users)

    def _check_domains(self, other: "TrajectoryShardAggregate", verb: str) -> None:
        if not isinstance(other, TrajectoryShardAggregate):
            raise TypeError(
                f"{verb} expects a TrajectoryShardAggregate, got {type(other).__name__}"
            )
        if (
            other.length_counts.shape != self.length_counts.shape
            or other.start_counts.shape != self.start_counts.shape
            or other.direction_counts.shape != self.direction_counts.shape
        ):
            raise ValueError(
                f"cannot {verb} trajectory aggregates with different report domains "
                "(different grids or length bucketisations?)"
            )

    def merged(self, other: "TrajectoryShardAggregate") -> "TrajectoryShardAggregate":
        """Fold another shard's counts into a new aggregate (commutative/associative)."""
        self._check_domains(other, "merge")
        return TrajectoryShardAggregate(
            length_counts=self.length_counts + other.length_counts,
            start_counts=self.start_counts + other.start_counts,
            direction_counts=self.direction_counts + other.direction_counts,
            n_users=self.n_users + other.n_users,
        )

    def subtracted(self, other: "TrajectoryShardAggregate") -> "TrajectoryShardAggregate":
        """The exact inverse of :meth:`merged`: retire an epoch's counts bit-exactly.

        ``a.merged(b).subtracted(b)`` returns an aggregate bit-identical to ``a``
        (integer count algebra — see the class docstring).  Like
        :meth:`repro.core.estimator.ShardAggregate.subtracted` this is pure
        algebra without a never-merged guard, because the decayed window subtracts
        scaled epochs from decayed totals where tiny negative float residues are
        expected and cleaned up by :meth:`clamped`.
        """
        self._check_domains(other, "subtract")
        return TrajectoryShardAggregate(
            length_counts=self.length_counts - other.length_counts,
            start_counts=self.start_counts - other.start_counts,
            direction_counts=self.direction_counts - other.direction_counts,
            n_users=self.n_users - other.n_users,
        )

    def scaled(self, factor: float) -> "TrajectoryShardAggregate":
        """A new aggregate with every count multiplied by ``factor`` (decay weight)."""
        return TrajectoryShardAggregate(
            length_counts=self.length_counts * factor,
            start_counts=self.start_counts * factor,
            direction_counts=self.direction_counts * factor,
            n_users=self.n_users * factor,
        )

    def clamped(self) -> "TrajectoryShardAggregate":
        """A new aggregate with negative float-decay residues clamped to zero."""
        return TrajectoryShardAggregate(
            length_counts=np.clip(self.length_counts, 0.0, None),
            start_counts=np.clip(self.start_counts, 0.0, None),
            direction_counts=np.clip(self.direction_counts, 0.0, None),
            n_users=max(self.n_users, 0),
        )


def merge_trajectory_aggregates(
    aggregates: list[TrajectoryShardAggregate],
) -> TrajectoryShardAggregate:
    """Merge shard aggregates into the whole-population sufficient statistic."""
    if not aggregates:
        raise ValueError("no trajectory aggregates to merge")
    return reduce(lambda a, b: a.merged(b), aggregates)


@dataclass(frozen=True)
class _EngineSpec:
    """Everything a worker needs to rebuild the engine — tiny and picklable."""

    bounds: tuple[float, float, float, float]
    domain_name: str
    d: int
    epsilon: float
    n_length_buckets: int
    max_length: int

    def build(self) -> "_EngineShardRunner":
        grid = GridSpec(SpatialDomain(*self.bounds, name=self.domain_name), self.d)
        mechanism = LDPTrace(
            grid,
            self.epsilon,
            n_length_buckets=self.n_length_buckets,
            max_length=self.max_length,
        )
        return _EngineShardRunner(TrajectoryEngine(mechanism))


@dataclass(frozen=True)
class _ShardTask:
    """One unit of work: a slice of the trajectory list plus its child seed."""

    trajectories: list
    seed: np.random.SeedSequence


@dataclass
class _EngineShardRunner:
    """Worker context: one built engine, one trajectory shard at a time."""

    engine: "TrajectoryEngine"

    def run_shard(self, task: _ShardTask) -> TrajectoryShardAggregate:
        return self.engine.collect_aggregate(
            task.trajectories, seed=np.random.default_rng(task.seed)
        )


class TrajectoryEngine:
    """Batched LDPTrace: vectorized report collection, sharded fit, batched synthesis.

    Wraps an :class:`~repro.trajectory.ldptrace.LDPTrace` mechanism (which carries the
    grid, the budget split and the three frequency oracles) and provides the
    production-scale execution paths.  Build one directly over an existing mechanism
    or with :meth:`TrajectoryEngine.build` from grid parameters.
    """

    def __init__(self, mechanism: LDPTrace, *, backend: WalkBackend = "operator") -> None:
        self.mechanism = mechanism
        self.backend = resolve_backend(
            backend, allowed=WALK_BACKENDS, what="trajectory backend"
        )

    @classmethod
    def build(
        cls,
        grid: GridSpec,
        epsilon: float,
        *,
        n_length_buckets: int = 10,
        max_length: int = 200,
        backend: WalkBackend = "operator",
    ) -> "TrajectoryEngine":
        return cls(
            LDPTrace(grid, epsilon, n_length_buckets=n_length_buckets, max_length=max_length),
            backend=backend,
        )

    # ------------------------------------------------------------- conveniences
    @property
    def grid(self) -> GridSpec:
        return self.mechanism.grid

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    def _spec(self) -> _EngineSpec:
        domain = self.grid.domain
        return _EngineSpec(
            bounds=domain.bounds,
            domain_name=domain.name,
            d=self.grid.d,
            epsilon=self.epsilon,
            n_length_buckets=self.mechanism.n_length_buckets,
            max_length=self.mechanism.max_length,
        )

    # ----------------------------------------------------------------- fitting
    def collect_reports(self, trajectories: list[np.ndarray], seed=None) -> TrajectoryReports:
        """Collect the three per-user LDP report streams in whole-array operations.

        Matches the reference loop's sampling semantics (one uniformly chosen
        movement per trajectory; single-point trajectories report "stay") without its
        per-trajectory Python.
        """
        rng = ensure_rng(seed)
        mech = self.mechanism
        if not trajectories:
            raise ValueError("cannot fit LDPTrace on an empty trajectory set")
        lengths, starts, cells = stack_trajectory_cells(self.grid, trajectories)
        n = lengths.shape[0]
        d = self.grid.d

        start_cells = cells[starts]
        # One uniformly sampled movement per trajectory: floor(u * (len - 1)) is
        # uniform over the len-1 steps; single-point trajectories keep pick = 0 and
        # compare a cell against itself, encoding the "stay" direction.
        movable = lengths > 1
        pick = np.zeros(n, dtype=np.int64)
        u = rng.random(n)
        pick[movable] = np.floor(u[movable] * (lengths[movable] - 1)).astype(np.int64)
        idx_a = starts + pick
        idx_b = idx_a + movable.astype(np.int64)
        drow = np.clip(cells[idx_b] // d - cells[idx_a] // d, -1, 1)
        dcol = np.clip(cells[idx_b] % d - cells[idx_a] % d, -1, 1)
        directions = (drow + 1) * 3 + (dcol + 1)

        return TrajectoryReports(
            length_reports=mech.length_oracle.privatize(mech._length_bucket(lengths), seed=rng),
            start_reports=mech.start_oracle.privatize(start_cells, seed=rng),
            direction_reports=mech.direction_oracle.privatize(directions, seed=rng),
            n_users=n,
        )

    def aggregate_reports(self, reports: TrajectoryReports) -> TrajectoryShardAggregate:
        """Reduce raw report streams to their additive sufficient statistic."""
        mech = self.mechanism
        return TrajectoryShardAggregate(
            length_counts=mech.length_oracle.support_counts(reports.length_reports),
            start_counts=mech.start_oracle.support_counts(reports.start_reports),
            direction_counts=mech.direction_oracle.support_counts(
                reports.direction_reports
            ),
            n_users=reports.n_users,
        )

    def collect_aggregate(
        self, trajectories: list[np.ndarray], seed=None
    ) -> TrajectoryShardAggregate:
        """One shard's work: collect reports and reduce them immediately."""
        return self.aggregate_reports(self.collect_reports(trajectories, seed=seed))

    def estimate(self, aggregate: TrajectoryShardAggregate) -> LDPTraceModel:
        """Run the three oracle estimators once over merged aggregate counts.

        Bit-identical to ``oracle.estimate_frequencies`` over the raw concatenated
        reports (the counts are the estimators' sufficient statistic).
        """
        mech = self.mechanism
        return LDPTraceModel(
            length_distribution=mech.length_oracle.estimate_from_counts(
                aggregate.length_counts, aggregate.n_users
            ),
            start_distribution=mech.start_oracle.estimate_from_counts(
                aggregate.start_counts, aggregate.n_users
            ),
            direction_distribution=mech.direction_oracle.estimate_from_counts(
                aggregate.direction_counts, aggregate.n_users
            ),
            length_buckets=mech.length_buckets,
        )

    def collect_aggregate_sharded(
        self,
        trajectories: list[np.ndarray],
        seed=None,
        *,
        workers: int = 1,
        shard_size: int = DEFAULT_TRAJECTORY_SHARD_SIZE,
    ) -> TrajectoryShardAggregate:
        """Collect one epoch's merged aggregate, sharding over the process pool.

        The trajectory list is split into shards of ``shard_size``; each shard draws
        an independent child stream of ``seed`` (``SeedSequence.spawn``), privatizes
        its reports and ships back only its :class:`TrajectoryShardAggregate`; the
        shards are merged into one sufficient statistic.  The result is
        deterministic in ``(seed, shard_size)`` and invariant to ``workers`` —
        the property that makes sharded epochs of a streaming session bit-identical
        at any worker count.
        """
        if not trajectories:
            raise ValueError("cannot fit LDPTrace on an empty trajectory set")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        n_shards = -(-len(trajectories) // shard_size)
        children = spawn_seed_sequences(seed, n_shards)
        tasks = [
            _ShardTask(
                trajectories=trajectories[index * shard_size : (index + 1) * shard_size],
                seed=child,
            )
            for index, child in enumerate(children)
        ]
        aggregates = run_sharded(
            self._spec(), tasks, workers, inline_context=_EngineShardRunner(self)
        )
        # Privatization happens inside each worker's run_shard -> collect_aggregate,
        # which module-local taint analysis cannot see across the process boundary.
        return merge_trajectory_aggregates(aggregates)  # repro-lint: disable=priv-flow

    def fit(
        self,
        trajectories: list[np.ndarray],
        seed=None,
        *,
        workers: int = 1,
        shard_size: int = DEFAULT_TRAJECTORY_SHARD_SIZE,
    ) -> LDPTraceModel:
        """Fit the LDPTrace model, optionally sharding collection over a process pool.

        :meth:`collect_aggregate_sharded` followed by a single :meth:`estimate`
        over the merged counts — deterministic in ``(seed, shard_size)`` and
        invariant to ``workers``.
        """
        return self.estimate(
            self.collect_aggregate_sharded(
                trajectories, seed=seed, workers=workers, shard_size=shard_size
            )
        )

    def fit_reference(self, trajectories: list[np.ndarray], seed=None) -> LDPTraceModel:
        """The retained seed loop (see :meth:`LDPTrace.fit_reference`)."""
        return self.mechanism.fit_reference(trajectories, seed=seed)

    # --------------------------------------------------------------- synthesis
    def _check_model(self, model: LDPTraceModel) -> None:
        if np.shape(model.start_distribution)[0] != self.grid.n_cells:
            raise ValueError(
                f"model start distribution has "
                f"{np.shape(model.start_distribution)[0]} cells but the grid has "
                f"{self.grid.n_cells}"
            )
        if np.shape(model.length_buckets)[0] != np.shape(model.length_distribution)[0] + 1:
            raise ValueError("model length_buckets must have one more edge than buckets")
        if np.shape(model.direction_distribution)[0] != len(DIRECTIONS):
            raise ValueError(
                f"model direction distribution must have {len(DIRECTIONS)} entries"
            )

    def synthesize(
        self, model: LDPTraceModel, n_trajectories: int, seed=None
    ) -> list[np.ndarray]:
        """Batched Markov walk: draw everything in whole-array operations.

        All ``n_trajectories`` length buckets, start cells and per-step direction
        indices are drawn up front (inverse-CDF ``searchsorted`` over the sanitized
        model distributions, padded to the maximum drawn length); the walk itself is
        one vectorised clip-and-step update per time step over every trajectory at
        once, and the final cell-to-point jitter is a single uniform block over the
        masked (valid) positions.
        """
        rng = ensure_rng(seed)
        if n_trajectories < 0:
            raise ValueError(f"n_trajectories must be non-negative, got {n_trajectories}")
        if n_trajectories == 0:
            return []
        self._check_model(model)
        d = self.grid.d
        n = n_trajectories
        # Unbiased frequency estimates can be negative or degenerate; sanitize onto
        # the simplex (uniform fallback) before any sampling.
        length_probs = sanitize_probability_vector(model.length_distribution)
        start_probs = sanitize_probability_vector(model.start_distribution)
        direction_probs = sanitize_probability_vector(model.direction_distribution)

        # Lengths: bucket via inverse CDF, then uniform within the bucket.
        n_buckets = length_probs.shape[0]
        buckets = np.searchsorted(np.cumsum(length_probs), rng.random(n), side="right")
        np.clip(buckets, 0, n_buckets - 1, out=buckets)
        lo = np.asarray(model.length_buckets, dtype=float)[buckets]
        hi = np.asarray(model.length_buckets, dtype=float)[buckets + 1]
        lengths = np.maximum(2, np.round(lo + rng.random(n) * (hi - lo)).astype(np.int64))

        # Start cells via inverse CDF over the start distribution.
        cells0 = np.searchsorted(np.cumsum(start_probs), rng.random(n), side="right")
        np.clip(cells0, 0, self.grid.n_cells - 1, out=cells0)

        # Direction matrix: every step of every trajectory, padded to max length.
        max_steps = int(lengths.max()) - 1
        if self.backend == "native":
            # Same inverse-CDF draw (identical RNG consumption), int8 steps and
            # a time-major int32 walk — bit-identical positions, less bandwidth.
            from repro.kernels.walk import batched_walk, inverse_cdf_draws

            step_idx = inverse_cdf_draws(
                rng, direction_probs, (n, max_steps), dtype=np.int16
            )
            rows_t, cols_t = batched_walk(
                cells0,
                _DIR_ROW_STEPS_NARROW[step_idx],
                _DIR_COL_STEPS_NARROW[step_idx],
                d,
            )
            rows, cols = rows_t.T, cols_t.T
        else:
            step_idx = np.searchsorted(
                np.cumsum(direction_probs), rng.random((n, max_steps)), side="right"
            )
            np.clip(step_idx, 0, len(DIRECTIONS) - 1, out=step_idx)
            drow = _DIR_ROW_STEPS[step_idx]
            dcol = _DIR_COL_STEPS[step_idx]

            # The batched walk: one clipped vector update of all trajectories per step.
            rows = np.empty((n, max_steps + 1), dtype=np.int64)
            cols = np.empty((n, max_steps + 1), dtype=np.int64)
            rows[:, 0] = cells0 // d
            cols[:, 0] = cells0 % d
            for t in range(max_steps):
                np.clip(rows[:, t] + drow[:, t], 0, d - 1, out=rows[:, t + 1])
                np.clip(cols[:, t] + dcol[:, t], 0, d - 1, out=cols[:, t + 1])

        # Mask the padding, jitter every valid cell uniformly, split per trajectory.
        mask = np.arange(max_steps + 1)[None, :] < lengths[:, None]
        flat_rows = rows[mask]
        flat_cols = cols[mask]
        u = rng.random((flat_rows.shape[0], 2))
        x_min, x_max, y_min, y_max = self.grid.domain.bounds
        xs = x_min + (flat_cols + u[:, 0]) * (x_max - x_min) / d
        ys = y_min + (flat_rows + u[:, 1]) * (y_max - y_min) / d
        points = np.column_stack([xs, ys])
        return np.split(points, np.cumsum(lengths)[:-1])

    def synthesize_reference(
        self, model: LDPTraceModel, n_trajectories: int, seed=None
    ) -> list[np.ndarray]:
        """The retained seed loop (see :meth:`LDPTrace.synthesize_reference`)."""
        return self.mechanism.synthesize_reference(model, n_trajectories, seed=seed)

    def fit_synthesize(
        self,
        trajectories: list[np.ndarray],
        seed=None,
        *,
        n_output: int | None = None,
        workers: int = 1,
    ) -> list[np.ndarray]:
        """Convenience: sharded fit followed by batched synthesis."""
        rng = ensure_rng(seed)
        model = self.fit(trajectories, seed=rng, workers=workers)
        count = len(trajectories) if n_output is None else n_output
        return self.synthesize(model, count, seed=rng)
