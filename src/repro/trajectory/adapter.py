"""Trajectory-to-point adapter — the seven-step comparison procedure of Appendix D.

LDPTrace and PivotTrace estimate *trajectories* while DAM estimates *point densities*;
the paper makes them comparable by converting both sides to point statistics:

1. divide the trajectory input domain into ``d x d`` grids;
2. count the original trajectory points in each cell;
3. normalise into the real distribution ``D_T``;
4. run the trajectory mechanism to obtain estimated trajectories;
5. count the estimated trajectory points per cell;
6. normalise into the estimated distribution ``D_T_hat``;
7. report the Wasserstein distance ``W2(D_T, D_T_hat)``.

For DAM the adapter simply feeds every trajectory point through the point mechanism
(each point is one report), which is how Figure 14's DAM curve is produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.metrics.wasserstein import wasserstein2_auto
from repro.trajectory.ldptrace import LDPTrace
from repro.trajectory.pivottrace import PivotTrace
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class TrajectoryComparisonResult:
    """Outcome of one mechanism's trajectory-to-point comparison."""

    mechanism: str
    w2: float
    true_distribution: GridDistribution
    estimated_distribution: GridDistribution
    n_trajectories: int


def trajectory_point_distribution(
    trajectories: list[np.ndarray], grid: GridSpec
) -> GridDistribution:
    """Steps 2-3 / 5-6: the per-cell point distribution of a trajectory set."""
    if not trajectories:
        return GridDistribution.uniform(grid)
    points = np.vstack(trajectories)
    return grid.distribution(points)


def compare_trajectory_mechanism(
    mechanism_name: str,
    trajectories: list[np.ndarray],
    domain: SpatialDomain,
    d: int,
    epsilon: float,
    *,
    seed=None,
    normalise_domain: bool = True,
    workers: int = 1,
) -> TrajectoryComparisonResult:
    """Run the full seven-step comparison for one mechanism.

    ``mechanism_name`` is ``"ldptrace"``, ``"pivottrace"`` or ``"dam"``.  With
    ``normalise_domain=True`` (the default) trajectory coordinates are mapped into the
    unit square first, so the reported W2 is on the same scale as the point-density
    experiments.  ``workers > 1`` shards LDPTrace's report collection over a process
    pool (numbers are worker-invariant; the other mechanisms run single-process).
    """
    rng = ensure_rng(seed)
    if normalise_domain:
        trajectories = [domain.normalise(t) for t in trajectories]
        domain = SpatialDomain.unit(domain.name or "unit")
    grid = GridSpec(domain, d)
    true_distribution = trajectory_point_distribution(trajectories, grid)

    key = mechanism_name.strip().lower()
    if d == 1:
        # A single analysis cell makes every mechanism exact: both distributions are
        # the point mass on that cell, so W2 = 0 (the degenerate left end of Figure 14).
        label = {"ldptrace": "LDPTrace", "pivottrace": "PivotTrace", "dam": "DAM"}.get(key)
        if label is None:
            raise ValueError(
                f"unknown trajectory mechanism {mechanism_name!r}; "
                "expected 'ldptrace', 'pivottrace' or 'dam'"
            )
        return TrajectoryComparisonResult(
            mechanism=label,
            w2=0.0,
            true_distribution=true_distribution,
            estimated_distribution=true_distribution,
            n_trajectories=len(trajectories),
        )
    if key == "ldptrace":
        from repro.trajectory.engine import TrajectoryEngine

        mechanism = LDPTrace(grid, epsilon)
        synthetic = TrajectoryEngine(mechanism).fit_synthesize(
            trajectories, seed=rng, workers=workers
        )
        estimated = trajectory_point_distribution(synthetic, grid)
        label = mechanism.name
    elif key == "pivottrace":
        mechanism = PivotTrace(grid, epsilon)
        reconstructed = mechanism.collect(trajectories, seed=rng)
        estimated = trajectory_point_distribution(reconstructed, grid)
        label = mechanism.name
    elif key == "dam":
        dam = DiscreteDAM(grid, epsilon)
        points = np.vstack(trajectories)
        estimated = dam.run(points, seed=rng).estimate
        label = dam.name
    else:
        raise ValueError(
            f"unknown trajectory mechanism {mechanism_name!r}; "
            "expected 'ldptrace', 'pivottrace' or 'dam'"
        )
    w2 = wasserstein2_auto(true_distribution, estimated)
    return TrajectoryComparisonResult(
        mechanism=label,
        w2=w2,
        true_distribution=true_distribution,
        estimated_distribution=estimated,
        n_trajectories=len(trajectories),
    )


def compare_all_trajectory_mechanisms(
    trajectories: list[np.ndarray],
    domain: SpatialDomain,
    d: int,
    epsilon: float,
    *,
    seed=None,
    workers: int = 1,
) -> dict[str, TrajectoryComparisonResult]:
    """Run LDPTrace, PivotTrace and DAM on the same trajectory set (Figure 14 row)."""
    rng = ensure_rng(seed)
    results = {}
    for name in ("ldptrace", "pivottrace", "dam"):
        results[name] = compare_trajectory_mechanism(
            name, trajectories, domain, d, epsilon, seed=rng, workers=workers
        )
    return results
