"""Epoch-bucketed sufficient statistics with an O(one epoch) sliding window.

A long-lived LDP deployment receives reports continuously.  The batch stack
(:class:`~repro.core.estimator.StreamingAggregator` and everything above it) can
ingest those reports incrementally, but it can only ever *grow*: once an epoch's
counts are folded in they are in forever, so tracking population drift would require
re-scanning every surviving report whenever the analysis window moves.

:class:`WindowedAggregator` removes that re-scan.  Reports are bucketed into
*epochs* (the deployment's collection interval — an hour, a day); each epoch is
reduced to its additive :class:`~repro.core.estimator.ShardAggregate` and the window
maintains the running totals of the last ``window_epochs`` epochs by pure count
algebra:

* committing an epoch **adds** its histograms;
* the epoch that falls off the back is **subtracted** — an exact inverse, since
  histogram counts are integer-valued floats far below 2**53 and therefore add and
  subtract exactly (the same algebra ``StreamingAggregator.merge``/``subtract``
  expose for standalone aggregators; the window keeps its own running arrays so the
  hard and exponentially-decayed variants share one slide path);
* with an optional exponential ``decay`` in ``(0, 1)``, every slide multiplies the
  running totals by the decay before the new epoch lands, so older epochs fade
  smoothly instead of dropping off a cliff (the expired epoch is removed at its
  decayed weight ``decay**window_epochs``).

Either way a window slide costs O(one epoch's histograms) — never O(window), never a
pass over raw reports.  The undecayed algebra is *bit-exact*: a window that merged
and then expired an epoch holds byte-for-byte the counts of a window that never saw
that epoch (property-tested in ``tests/streaming/test_streaming_window.py``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.domain import GridDistribution
from repro.core.estimator import MechanismReport, ShardAggregate, SpatialMechanism
from repro.utils.rng import ensure_rng


class WindowedAggregator:
    """Sliding-window sufficient statistics over one mechanism's report stream.

    Parameters
    ----------
    mechanism:
        The :class:`~repro.core.estimator.SpatialMechanism` whose reports are being
        windowed; it supplies the output-domain and grid shapes and the
        privatization used by :meth:`ingest_epoch`.
    window_epochs:
        Number of most-recent epochs the window covers.
    decay:
        ``None`` (default) for a hard window — every covered epoch at weight 1 —
        or a factor in ``(0, 1]`` applied to the running totals at every slide.
        ``decay=1.0`` is algebraically identical to ``None`` (multiplying by 1.0 is
        exact), so callers can sweep the decay without special-casing the endpoint.

    Notes
    -----
    The aggregator never holds raw reports: per epoch it keeps one
    :class:`~repro.core.estimator.ShardAggregate` (two histograms and a counter), so
    memory is ``O(window_epochs * (m + d^2))`` regardless of traffic volume.
    Epochs may arrive pre-aggregated (:meth:`commit_aggregate` — e.g. merged shard
    states from a worker pool) or as raw points/cells (:meth:`ingest_epoch` /
    :meth:`ingest_epoch_cells`).
    """

    def __init__(
        self,
        mechanism: SpatialMechanism,
        window_epochs: int,
        *,
        decay: float | None = None,
    ) -> None:
        if window_epochs < 1:
            raise ValueError(f"window_epochs must be >= 1, got {window_epochs}")
        if decay is not None and not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        self.mechanism = mechanism
        self.window_epochs = int(window_epochs)
        self.decay = decay
        self._epochs: deque[ShardAggregate] = deque()
        self._noisy = np.zeros(mechanism.output_domain_size(), dtype=float)
        self._true = np.zeros(mechanism.grid.n_cells, dtype=float)
        self._users = 0.0
        self.epochs_seen = 0

    # ------------------------------------------------------------- inspection
    @property
    def n_epochs_in_window(self) -> int:
        return len(self._epochs)

    @property
    def n_users_window(self) -> float:
        """Effective user total of the window (fractional under decay)."""
        return self._users

    def epoch_aggregates(self) -> tuple[ShardAggregate, ...]:
        """The undecayed per-epoch aggregates currently covered, oldest first."""
        return tuple(self._epochs)

    def window_counts(self) -> tuple[np.ndarray, np.ndarray, float]:
        """Copies of the windowed ``(noisy_counts, true_cell_counts, n_users)``."""
        return self._noisy.copy(), self._true.copy(), self._users

    # -------------------------------------------------------------- ingestion
    def ingest_epoch(self, points: np.ndarray, seed=None) -> ShardAggregate:
        """Privatize one epoch of raw points, commit it, return its aggregate.

        ``seed`` follows the library convention — pass a shared generator to make
        consecutive epochs consume one RNG stream (bit-identical to a batch run
        over the concatenated epochs).
        """
        aggregator = self.mechanism.streaming_aggregator(seed=ensure_rng(seed))
        aggregator.add_points(np.asarray(points, dtype=float))
        aggregate = aggregator.state()
        self.commit_aggregate(aggregate)
        return aggregate

    def ingest_epoch_cells(self, cells: np.ndarray, seed=None) -> ShardAggregate:
        """Like :meth:`ingest_epoch` for callers that already bucketised their data."""
        aggregator = self.mechanism.streaming_aggregator(seed=ensure_rng(seed))
        aggregator.add_cells(np.asarray(cells, dtype=np.int64))
        aggregate = aggregator.state()
        self.commit_aggregate(aggregate)
        return aggregate

    def commit_aggregate(self, aggregate: ShardAggregate) -> ShardAggregate | None:
        """Slide the window by one epoch: fold the new counts in, expire the oldest.

        Returns the expired epoch's (undecayed) aggregate, or ``None`` while the
        window is still filling.  This — two histogram additions, at most one
        subtraction — is the *entire* cost of a slide.
        """
        if not isinstance(aggregate, ShardAggregate):
            raise TypeError(
                f"commit_aggregate expects a ShardAggregate, got {type(aggregate).__name__}"
            )
        if aggregate.noisy_counts.shape != self._noisy.shape:
            raise ValueError(
                f"epoch noisy counts have shape {aggregate.noisy_counts.shape}, "
                f"expected {self._noisy.shape} (different mechanism?)"
            )
        if aggregate.true_cell_counts.shape != self._true.shape:
            raise ValueError(
                f"epoch true-cell counts have shape {aggregate.true_cell_counts.shape}, "
                f"expected {self._true.shape} (different grid?)"
            )
        if self.decay is not None:
            self._noisy *= self.decay
            self._true *= self.decay
            self._users *= self.decay
        self._noisy += aggregate.noisy_counts
        self._true += aggregate.true_cell_counts
        self._users += aggregate.n_users
        self._epochs.append(aggregate)
        self.epochs_seen += 1

        expired: ShardAggregate | None = None
        if len(self._epochs) > self.window_epochs:
            expired = self._epochs.popleft()
            weight = 1.0 if self.decay is None else self.decay**self.window_epochs
            self._noisy -= weight * expired.noisy_counts
            self._true -= weight * expired.true_cell_counts
            self._users -= weight * expired.n_users
            if self.decay is not None:
                # Float decay can leave ~1e-17 residues on bins an expired epoch
                # owned exclusively; clamp them so downstream solvers see a valid
                # histogram.  The undecayed path is exact and never enters here.
                np.clip(self._noisy, 0.0, None, out=self._noisy)
                np.clip(self._true, 0.0, None, out=self._true)
                self._users = max(self._users, 0.0)
        return expired

    # ------------------------------------------------------------- estimation
    def finalize(self) -> MechanismReport:
        """Post-process the current window through the mechanism's own estimator.

        The batch-equivalent endpoint: for a hard window this is exactly what
        ``StreamingAggregator.finalize`` would return over the covered epochs'
        reports.  The incremental service bypasses this in favour of the
        warm-started solve (:class:`repro.streaming.StreamingEstimationService`).
        """
        noisy = self._noisy.copy()
        estimate = self.mechanism.estimate(noisy, n_users=int(round(self._users)))
        return MechanismReport(
            estimate=estimate, noisy_counts=noisy, n_users=int(round(self._users))
        )

    def true_distribution(self) -> GridDistribution:
        """The (non-private) empirical distribution of the window's population.

        Serves as the drift-tracking ground truth in evaluations; raises while the
        window is empty.
        """
        if self._true.sum() <= 0:
            raise ValueError("the window holds no users yet")
        return GridDistribution.from_flat(self.mechanism.grid, self._true / self._true.sum())
