"""Epoch-bucketed sufficient statistics with an O(one epoch) sliding window.

A long-lived LDP deployment receives reports continuously.  The batch stack
(:class:`~repro.core.estimator.StreamingAggregator` and everything above it) can
ingest those reports incrementally, but it can only ever *grow*: once an epoch's
counts are folded in they are in forever, so tracking population drift would require
re-scanning every surviving report whenever the analysis window moves.

:class:`WindowedAggregator` removes that re-scan.  Reports are bucketed into
*epochs* (the deployment's collection interval — an hour, a day); each epoch is
reduced to its additive :class:`~repro.core.estimator.ShardAggregate` and a generic
:class:`~repro.streaming.protocol.SlidingAggregateWindow` maintains the running
total of the last ``window_epochs`` epochs by pure count algebra:

* committing an epoch **merges** its histograms (``ShardAggregate.merged``);
* the epoch that falls off the back is **subtracted**
  (``ShardAggregate.subtracted``) — an exact inverse, since histogram counts are
  integer-valued floats far below 2**53 and therefore add and subtract exactly
  (the same algebra ``StreamingAggregator.merge``/``subtract`` expose for
  standalone aggregators);
* with an optional exponential ``decay`` in ``(0, 1)``, every slide scales the
  running total by the decay before the new epoch lands, so older epochs fade
  smoothly instead of dropping off a cliff (the expired epoch is removed at its
  decayed weight ``decay**window_epochs``).

Either way a window slide costs O(one epoch's histograms) — never O(window), never a
pass over raw reports.  The undecayed algebra is *bit-exact*: a window that merged
and then expired an epoch holds byte-for-byte the counts of a window that never saw
that epoch (property-tested in ``tests/streaming/test_streaming_window.py``).  The
window machinery itself is aggregate-agnostic — the trajectory sessions in
:mod:`repro.streaming.trajectory` slide the very same
:class:`~repro.streaming.protocol.SlidingAggregateWindow` over
:class:`~repro.trajectory.engine.TrajectoryShardAggregate` epochs.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridDistribution
from repro.core.estimator import MechanismReport, ShardAggregate, SpatialMechanism
from repro.streaming.protocol import SlidingAggregateWindow
from repro.utils.rng import ensure_rng


class WindowedAggregator:
    """Sliding-window sufficient statistics over one mechanism's report stream.

    Parameters
    ----------
    mechanism:
        The :class:`~repro.core.estimator.SpatialMechanism` whose reports are being
        windowed; it supplies the output-domain and grid shapes and the
        privatization used by :meth:`ingest_epoch`.
    window_epochs:
        Number of most-recent epochs the window covers.
    decay:
        ``None`` (default) for a hard window — every covered epoch at weight 1 —
        or a factor in ``(0, 1]`` applied to the running totals at every slide.
        ``decay=1.0`` is algebraically identical to ``None`` (multiplying by 1.0 is
        exact), so callers can sweep the decay without special-casing the endpoint.

    Notes
    -----
    The aggregator never holds raw reports: per epoch it keeps one
    :class:`~repro.core.estimator.ShardAggregate` (two histograms and a counter), so
    memory is ``O(window_epochs * (m + d^2))`` regardless of traffic volume.
    Epochs may arrive pre-aggregated (:meth:`commit_aggregate` — e.g. merged shard
    states from a worker pool) or as raw points/cells (:meth:`ingest_epoch` /
    :meth:`ingest_epoch_cells`).
    """

    def __init__(
        self,
        mechanism: SpatialMechanism,
        window_epochs: int,
        *,
        decay: float | None = None,
    ) -> None:
        self.mechanism = mechanism
        self._window = SlidingAggregateWindow(window_epochs, decay=decay)
        self._noisy_shape = (mechanism.output_domain_size(),)
        self._true_shape = (mechanism.grid.n_cells,)

    # ------------------------------------------------------------- inspection
    @property
    def window_epochs(self) -> int:
        return self._window.window_epochs

    @property
    def decay(self) -> float | None:
        return self._window.decay

    @property
    def epochs_seen(self) -> int:
        return self._window.epochs_seen

    @property
    def n_epochs_in_window(self) -> int:
        return self._window.n_epochs_in_window

    @property
    def n_users_window(self) -> float:
        """Effective user total of the window (fractional under decay)."""
        total = self._window.total
        return 0.0 if total is None else float(total.n_users)

    def epoch_aggregates(self) -> tuple[ShardAggregate, ...]:
        """The undecayed per-epoch aggregates currently covered, oldest first."""
        return self._window.epoch_aggregates()

    def window_counts(self) -> tuple[np.ndarray, np.ndarray, float]:
        """Copies of the windowed ``(noisy_counts, true_cell_counts, n_users)``."""
        total = self._window.total
        if total is None:
            return np.zeros(self._noisy_shape), np.zeros(self._true_shape), 0.0
        return (
            total.noisy_counts.copy(),
            total.true_cell_counts.copy(),
            float(total.n_users),
        )

    # -------------------------------------------------------------- ingestion
    def ingest_epoch(self, points: np.ndarray, seed=None) -> ShardAggregate:
        """Privatize one epoch of raw points, commit it, return its aggregate.

        ``seed`` follows the library convention — pass a shared generator to make
        consecutive epochs consume one RNG stream (bit-identical to a batch run
        over the concatenated epochs).
        """
        aggregator = self.mechanism.streaming_aggregator(seed=ensure_rng(seed))
        aggregator.add_points(np.asarray(points, dtype=float))
        aggregate = aggregator.state()
        self.commit_aggregate(aggregate)
        return aggregate

    def ingest_epoch_cells(self, cells: np.ndarray, seed=None) -> ShardAggregate:
        """Like :meth:`ingest_epoch` for callers that already bucketised their data."""
        aggregator = self.mechanism.streaming_aggregator(seed=ensure_rng(seed))
        aggregator.add_cells(np.asarray(cells, dtype=np.int64))
        aggregate = aggregator.state()
        self.commit_aggregate(aggregate)
        return aggregate

    def commit_aggregate(self, aggregate: ShardAggregate) -> ShardAggregate | None:
        """Slide the window by one epoch: fold the new counts in, expire the oldest.

        Returns the expired epoch's (undecayed) aggregate, or ``None`` while the
        window is still filling.  This — one merge, at most one subtraction —
        is the *entire* cost of a slide.
        """
        if not isinstance(aggregate, ShardAggregate):
            raise TypeError(
                f"commit_aggregate expects a ShardAggregate, got {type(aggregate).__name__}"
            )
        if aggregate.noisy_counts.shape != self._noisy_shape:
            raise ValueError(
                f"epoch noisy counts have shape {aggregate.noisy_counts.shape}, "
                f"expected {self._noisy_shape} (different mechanism?)"
            )
        if aggregate.true_cell_counts.shape != self._true_shape:
            raise ValueError(
                f"epoch true-cell counts have shape {aggregate.true_cell_counts.shape}, "
                f"expected {self._true_shape} (different grid?)"
            )
        return self._window.commit(aggregate)

    # ------------------------------------------------------------- estimation
    def finalize(self) -> MechanismReport:
        """Post-process the current window through the mechanism's own estimator.

        The batch-equivalent endpoint: for a hard window this is exactly what
        ``StreamingAggregator.finalize`` would return over the covered epochs'
        reports.  The incremental service bypasses this in favour of the
        warm-started solve (:class:`repro.streaming.StreamingEstimationService`).
        """
        noisy, _, users = self.window_counts()
        estimate = self.mechanism.estimate(noisy, n_users=int(round(users)))
        return MechanismReport(estimate=estimate, noisy_counts=noisy, n_users=int(round(users)))

    def true_distribution(self) -> GridDistribution:
        """The (non-private) empirical distribution of the window's population.

        Serves as the drift-tracking ground truth in evaluations; raises while the
        window is empty.
        """
        _, true_counts, _ = self.window_counts()
        if true_counts.sum() <= 0:
            raise ValueError("the window holds no users yet")
        return GridDistribution.from_flat(self.mechanism.grid, true_counts / true_counts.sum())
