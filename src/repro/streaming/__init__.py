"""Streaming sliding-window estimation — the batch stack as a long-lived session.

Every engine below this package is batch-and-done: collect all reports, solve once,
serve a frozen estimate.  This package turns that into the continual-collection
setting of a deployed LDP system:

* :class:`MergeableAggregate` / :class:`DecayableAggregate` — the mergeable-
  aggregate protocol (``merged``/``subtracted`` plus ``scaled``/``clamped``) any
  epoch statistic must satisfy to be windowed;
* :class:`SlidingAggregateWindow` — the generic window over any conforming
  aggregate: slides in O(one epoch) of count algebra (exact merge/subtract,
  optional exponential decay), never a re-scan of surviving reports;
* :class:`WindowedAggregator` — the point-mechanism window: epoch-bucketed
  :class:`~repro.core.estimator.ShardAggregate` statistics over one mechanism's
  report stream;
* :class:`StreamingEstimationService` — the point deployment loop: sharded
  per-epoch privatization, warm-started EM re-solves that track population drift
  at a fraction of the cold-start cost, and atomic publication of each epoch's
  estimate through :class:`~repro.queries.engine.StreamingQueryEngine`;
* :class:`StreamingTrajectoryService` — the trajectory deployment loop: the same
  window over :class:`~repro.trajectory.engine.TrajectoryShardAggregate` epochs,
  closed-form Markov-model refreshes on every slide, and atomic publication of
  each epoch's synthetic release through
  :class:`~repro.queries.engine.StreamingTrajectoryQueryEngine`;
* :class:`EpochUpdate` / :class:`TrajectoryEpochUpdate` — the per-epoch telemetry
  records (window size, iterations/model, timings) the CLI and benchmarks report.

Drifting input scenarios live in :mod:`repro.datasets.synthetic`
(``shifting_hotspot_stream`` and friends) and :mod:`repro.datasets.trajectories`
(``commute_shift_stream`` and friends); the CLI front end is ``repro stream``
with ``--workload point`` or ``--workload trajectory``.
"""

from repro.streaming.protocol import (
    DecayableAggregate,
    MergeableAggregate,
    SlidingAggregateWindow,
)
from repro.streaming.service import EpochUpdate, StreamingEstimationService
from repro.streaming.trajectory import StreamingTrajectoryService, TrajectoryEpochUpdate
from repro.streaming.window import WindowedAggregator

__all__ = [
    "DecayableAggregate",
    "EpochUpdate",
    "MergeableAggregate",
    "SlidingAggregateWindow",
    "StreamingEstimationService",
    "StreamingTrajectoryService",
    "TrajectoryEpochUpdate",
    "WindowedAggregator",
]
