"""Streaming sliding-window estimation — the batch stack as a long-lived session.

Every engine below this package is batch-and-done: collect all reports, solve once,
serve a frozen estimate.  This package turns that into the continual-collection
setting of a deployed LDP system:

* :class:`WindowedAggregator` — epoch-bucketed sufficient statistics whose window
  slides in O(one epoch) of count algebra (exact merge/subtract, optional
  exponential decay), never a re-scan of surviving reports;
* :class:`StreamingEstimationService` — the deployment loop: sharded per-epoch
  privatization, warm-started EM re-solves that track population drift at a
  fraction of the cold-start cost, and atomic publication of each epoch's estimate
  through :class:`~repro.queries.engine.StreamingQueryEngine`;
* :class:`EpochUpdate` — the per-epoch telemetry record (window size, iterations,
  log-likelihood, timings) the CLI and benchmarks report.

Drifting input scenarios live in :mod:`repro.datasets.synthetic`
(``shifting_hotspot_stream`` and friends); the CLI front end is ``repro stream``.
"""

from repro.streaming.service import EpochUpdate, StreamingEstimationService
from repro.streaming.window import WindowedAggregator

__all__ = [
    "EpochUpdate",
    "StreamingEstimationService",
    "WindowedAggregator",
]
