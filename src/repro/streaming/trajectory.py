"""Long-lived trajectory sessions: LDPTrace as a sliding-window service.

The trajectory workload (Appendix D) was batch-and-done: collect every user's three
oracle reports once, estimate one Markov model, synthesize one release.  This module
runs it as the same kind of long-lived session :mod:`repro.streaming.service` runs
for point mechanisms, on the same generic window machinery:

1. **Ingest** — each epoch's trajectories are privatized into the three per-user
   oracle report streams (length GRR / start OUE / direction GRR at ε/3 each,
   optionally sharded over the process pool via
   :meth:`~repro.trajectory.engine.TrajectoryEngine.collect_aggregate_sharded`) and
   reduced to one epoch-bucketed
   :class:`~repro.trajectory.engine.TrajectoryShardAggregate`.
2. **Slide** — the aggregate is committed to a
   :class:`~repro.streaming.protocol.SlidingAggregateWindow`: one exact ``merged``,
   at most one exact ``subtracted`` — O(one epoch's counts), never a re-scan of
   surviving reports.  The slid total is *bit-identical* to a fresh window over the
   surviving epochs at any worker count (property-tested in
   ``tests/streaming/test_streaming_trajectory.py``).
3. **Refresh** — the Markov model is re-estimated from the windowed counts.  The
   trajectory analogue of the point service's warm-started EM is even cheaper: the
   oracle estimators are closed-form in the sufficient statistic, so the refreshed
   model costs O(count vectors) — the whole point of keeping the window in count
   algebra (gated ≥5x vs a full refit in
   ``benchmarks/test_streaming_trajectory_throughput.py``).
4. **Publish** — a fresh synthetic release is walked from the refreshed model and
   swapped into a :class:`~repro.queries.engine.StreamingTrajectoryQueryEngine`
   atomically, so mid-stream OD/transition/length queries never observe a
   half-updated window.

Privacy: windowing is pure post-processing of already-privatized reports — each
user's three reports are produced by the ε/3 oracles exactly as in the batch
pipeline, so the per-report guarantee is unchanged (audited at ``confidence_z=4``
in ``tests/streaming/test_streaming_trajectory.py``).

Drifting trajectory scenarios (commute shift, event surge, route closure) live in
:mod:`repro.datasets.trajectories`; the CLI front end is
``repro stream --workload trajectory``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.domain import GridSpec, SpatialDomain
from repro.queries.engine import StreamingTrajectoryQueryEngine
from repro.streaming.protocol import SlidingAggregateWindow
from repro.trajectory.engine import (
    DEFAULT_TRAJECTORY_SHARD_SIZE,
    TrajectoryEngine,
    TrajectoryShardAggregate,
)
from repro.trajectory.ldptrace import LDPTraceModel
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class TrajectoryEpochUpdate:
    """Everything one epoch's turn of the trajectory service loop produced."""

    #: 0-based index of the epoch in the stream.
    epoch: int
    #: trajectories (users) ingested this epoch
    n_users_epoch: int
    #: effective user total of the window after the slide (fractional under decay)
    n_users_window: float
    #: the Markov model refreshed from the slid window's counts
    model: LDPTraceModel
    #: size of the synthetic release published this epoch (0 when unpublished)
    n_synthetic: int
    #: wall-clock seconds privatizing + reducing the epoch's reports (0.0 when the
    #: epoch arrived pre-aggregated through :meth:`ingest_aggregate`)
    collect_seconds: float
    #: wall-clock seconds of the pure window slide (the O(one epoch) count algebra)
    slide_seconds: float
    #: wall-clock seconds re-estimating the Markov model from the windowed counts
    refresh_seconds: float
    #: wall-clock seconds synthesizing + atomically publishing the serving engine
    publish_seconds: float


class StreamingTrajectoryService:
    """Sliding-window LDPTrace estimation over a continuous trajectory stream.

    Parameters
    ----------
    engine:
        The :class:`~repro.trajectory.engine.TrajectoryEngine` (wrapping an
        :class:`~repro.trajectory.ldptrace.LDPTrace` mechanism) that privatizes,
        estimates and synthesizes.
    window_epochs, decay:
        Window geometry — see
        :class:`~repro.streaming.protocol.SlidingAggregateWindow`.
    n_synthetic:
        Size of the synthetic release walked and published per epoch.  ``0``
        disables publishing (the service still slides and refreshes the model —
        useful when only the model is consumed).
    workers, shard_size:
        Per-epoch report collection fans out over the process pool exactly like
        the batch fit; the per-shard seed derivation keeps every epoch
        bit-identical at any worker count.
    seed:
        Seeds the service's single RNG stream (collection and synthesis draw from
        it in turn), so a fixed seed makes the whole session reproducible.
    """

    def __init__(
        self,
        engine: TrajectoryEngine,
        *,
        window_epochs: int = 8,
        decay: float | None = None,
        n_synthetic: int = 1000,
        workers: int = 1,
        shard_size: int = DEFAULT_TRAJECTORY_SHARD_SIZE,
        seed=None,
    ) -> None:
        if not isinstance(engine, TrajectoryEngine):
            raise TypeError(
                f"StreamingTrajectoryService wraps a TrajectoryEngine, "
                f"got {type(engine).__name__}"
            )
        if n_synthetic < 0:
            raise ValueError(f"n_synthetic must be non-negative, got {n_synthetic}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.window = SlidingAggregateWindow(window_epochs, decay=decay)
        self.n_synthetic = int(n_synthetic)
        self.workers = int(workers)
        self.shard_size = int(shard_size)
        self._rng = ensure_rng(seed)
        self.model: LDPTraceModel | None = None
        self.serving = StreamingTrajectoryQueryEngine()

    @classmethod
    def build(
        cls,
        domain: SpatialDomain,
        d: int,
        epsilon: float,
        *,
        n_length_buckets: int = 10,
        max_length: int = 200,
        **kwargs,
    ) -> "StreamingTrajectoryService":
        """Construct the service from grid parameters (mirrors the point service)."""
        engine = TrajectoryEngine.build(
            GridSpec(domain, d),
            epsilon,
            n_length_buckets=n_length_buckets,
            max_length=max_length,
        )
        return cls(engine, **kwargs)

    # ------------------------------------------------------------- conveniences
    @property
    def grid(self) -> GridSpec:
        return self.engine.grid

    @property
    def epochs_processed(self) -> int:
        return self.window.epochs_seen

    # --------------------------------------------------------------- the loop
    def ingest_epoch(self, trajectories: list) -> TrajectoryEpochUpdate:
        """One turn of the service loop: collect, slide, refresh, publish."""
        start = time.perf_counter()
        aggregate = self.engine.collect_aggregate_sharded(
            trajectories,
            seed=self._rng,
            workers=self.workers,
            shard_size=self.shard_size,
        )
        collect_seconds = time.perf_counter() - start
        return self._ingest(aggregate, collect_seconds)

    def ingest_aggregate(self, aggregate: TrajectoryShardAggregate) -> TrajectoryEpochUpdate:
        """Like :meth:`ingest_epoch` for epochs that arrive pre-aggregated.

        Edge collectors may deliver an epoch as its merged
        :class:`~repro.trajectory.engine.TrajectoryShardAggregate`; the service
        then only pays the slide, the model refresh and the publish.
        """
        return self._ingest(aggregate, 0.0)

    def _ingest(
        self, aggregate: TrajectoryShardAggregate, collect_seconds: float
    ) -> TrajectoryEpochUpdate:
        if not isinstance(aggregate, TrajectoryShardAggregate):
            raise TypeError(
                f"ingest_aggregate expects a TrajectoryShardAggregate, "
                f"got {type(aggregate).__name__}"
            )
        start = time.perf_counter()
        self.window.commit(aggregate)
        slide_seconds = time.perf_counter() - start

        # The "warm refresh": the previous model is replaced wholesale because the
        # oracle estimators are closed-form in the windowed counts — there is no
        # iterative solve to warm-start, which is exactly why the slide path beats
        # the refit path (the refit re-reduces every surviving epoch's raw report
        # streams before reaching the same estimators).
        start = time.perf_counter()
        model = self.engine.estimate(self.window.total)
        refresh_seconds = time.perf_counter() - start
        self.model = model

        epoch = self.window.epochs_seen - 1
        start = time.perf_counter()
        if self.n_synthetic > 0:
            synthetic = self.engine.synthesize(model, self.n_synthetic, seed=self._rng)
            self.serving.refresh_trajectories(synthetic, self.grid, epoch=epoch)
        publish_seconds = time.perf_counter() - start

        return TrajectoryEpochUpdate(
            epoch=epoch,
            n_users_epoch=int(aggregate.n_users),
            n_users_window=float(self.window.total.n_users),
            model=model,
            n_synthetic=self.n_synthetic,
            collect_seconds=collect_seconds,
            slide_seconds=slide_seconds,
            refresh_seconds=refresh_seconds,
            publish_seconds=publish_seconds,
        )
