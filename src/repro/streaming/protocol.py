"""The mergeable-aggregate protocol and the generic sliding window over it.

Every scaled execution path in this repository — the sharded process pool
(:func:`repro.core.parallel.run_sharded`), the point sliding window
(:class:`repro.streaming.window.WindowedAggregator`) and the trajectory sessions
(:class:`repro.streaming.trajectory.StreamingTrajectoryService`) — reduces its
input to *additive sufficient statistics* and then works in pure count algebra.
This module names that contract once and implements the window over it, so any
aggregate that satisfies the laws below slides for free.

The protocol
------------

An aggregate is a value object carrying one population's counts.  Two flavours
conform (the ``agg-protocol`` lint rule checks the exact signatures of both):

* **mutable aggregators** — :class:`repro.core.estimator.StreamingAggregator`:
  ``merge(self, other)`` folds counts in, ``subtract(self, other)`` removes them
  again, ``state(self)`` snapshots the partial counts as a plain value object;
* **functional aggregates** — :class:`repro.core.estimator.ShardAggregate` and
  :class:`repro.trajectory.engine.TrajectoryShardAggregate`: frozen dataclasses
  whose ``merged(self, other)`` / ``subtracted(self, other)`` return *new*
  aggregates, plus ``scaled(self, factor)`` / ``clamped(self)`` for the decayed
  window variant.

The laws (property-tested in ``tests/streaming/``):

* ``merged`` is commutative and associative — shard and merge in any order;
* ``subtracted`` is the **exact inverse** of ``merged``:
  ``a.merged(b).subtracted(b)`` is *bit-identical* to ``a``.  This is not an
  approximation: every count is an integer-valued float far below ``2**53``, so
  IEEE-754 addition and subtraction are exact on them;
* ``scaled(1.0)`` is the identity (multiplying by 1.0 is exact), so decayed and
  hard windows share one slide path;
* solving (EM for point mechanisms, the closed-form oracle estimators for
  trajectories) reads *only* the merged counts, so ``solve(merge(shards))`` is
  bit-identical to a serial pass over the concatenated reports.

:class:`SlidingAggregateWindow` needs nothing else: a window slide is one
``merged`` plus at most one ``subtracted`` — O(one epoch's counts), never a
re-scan of surviving reports, for *any* conforming aggregate type.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, TypeVar, runtime_checkable


@runtime_checkable
class MergeableAggregate(Protocol):
    """A functional additive aggregate: pure merge with an exact inverse."""

    def merged(self, other):
        """A new aggregate holding ``self``'s and ``other``'s counts."""
        ...

    def subtracted(self, other):
        """The exact inverse of :meth:`merged` — retire ``other``'s counts."""
        ...


@runtime_checkable
class DecayableAggregate(MergeableAggregate, Protocol):
    """A mergeable aggregate that additionally supports exponential decay."""

    def scaled(self, factor):
        """A new aggregate with every count multiplied by ``factor``."""
        ...

    def clamped(self):
        """A new aggregate with negative float-decay residues clamped to zero."""
        ...


A = TypeVar("A", bound=MergeableAggregate)


class SlidingAggregateWindow:
    """A sliding window over any mergeable aggregate, in O(one epoch) per slide.

    The type-agnostic core that :class:`repro.streaming.window.WindowedAggregator`
    (point mechanisms) and
    :class:`repro.streaming.trajectory.StreamingTrajectoryService` (trajectory
    mechanisms) are both built on.  The window holds the last ``window_epochs``
    per-epoch aggregates plus one running total maintained purely through the
    protocol:

    * committing an epoch **merges** its aggregate into the total;
    * the epoch that falls off the back is **subtracted** — bit-exact, by the
      integer-count argument in the module docstring;
    * with ``decay`` in ``(0, 1]``, the running total is **scaled** by the decay
      before each new epoch lands and the expired epoch is retired at its decayed
      weight ``decay**window_epochs``, with :meth:`~DecayableAggregate.clamped`
      absorbing the ~1e-17 float residues decay can leave behind.

    Parameters
    ----------
    window_epochs:
        Number of most-recent epochs the window covers.
    decay:
        ``None`` (default) for a hard window, or a factor in ``(0, 1]`` applied to
        the running total at every slide.  ``decay=1.0`` is algebraically
        identical to ``None`` (scaling by 1.0 is exact).  Decay requires the
        committed aggregates to conform to :class:`DecayableAggregate`.
    """

    def __init__(self, window_epochs: int, *, decay: float | None = None) -> None:
        if window_epochs < 1:
            raise ValueError(f"window_epochs must be >= 1, got {window_epochs}")
        if decay is not None and not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        self.window_epochs = int(window_epochs)
        self.decay = decay
        self._epochs: deque = deque()
        self._total = None
        self.epochs_seen = 0

    # ------------------------------------------------------------- inspection
    @property
    def n_epochs_in_window(self) -> int:
        return len(self._epochs)

    @property
    def total(self):
        """The running window total, or ``None`` before the first commit."""
        return self._total

    def epoch_aggregates(self) -> tuple:
        """The undecayed per-epoch aggregates currently covered, oldest first."""
        return tuple(self._epochs)

    # ------------------------------------------------------------------ slide
    def commit(self, aggregate):
        """Slide the window by one epoch; return the expired aggregate (if any).

        One ``merged``, at most one ``subtracted`` (plus two ``scaled`` under
        decay) — that is the *entire* cost of a slide, for any aggregate type.
        """
        protocol = MergeableAggregate if self.decay is None else DecayableAggregate
        if not isinstance(aggregate, protocol):
            raise TypeError(
                f"commit expects a {protocol.__name__} "
                f"(merged/subtracted{'' if self.decay is None else '/scaled/clamped'}), "
                f"got {type(aggregate).__name__}"
            )
        if self.decay is not None and self._total is not None:
            self._total = self._total.scaled(self.decay)
        self._total = aggregate if self._total is None else self._total.merged(aggregate)
        self._epochs.append(aggregate)
        self.epochs_seen += 1

        expired = None
        if len(self._epochs) > self.window_epochs:
            expired = self._epochs.popleft()
            if self.decay is None:
                self._total = self._total.subtracted(expired)
            else:
                # The expired epoch entered at weight 1 and was decayed once per
                # subsequent slide, so it leaves at decay**window_epochs; float
                # decay can leave ~1e-17 residues on counts the expired epoch
                # owned exclusively — clamp them so downstream solvers see a
                # valid histogram.  The undecayed path is exact and never clamps.
                weight = self.decay**self.window_epochs
                self._total = self._total.subtracted(expired.scaled(weight)).clamped()
        return expired
