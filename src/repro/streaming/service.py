"""The sliding-window estimation service: the batch stack as a long-lived session.

:class:`StreamingEstimationService` ties the streaming pieces together into the
deployment loop a production LDP collector actually runs:

1. **Ingest** — each epoch's reports are privatized (optionally sharded over the
   process pool via :meth:`repro.core.parallel.ParallelPipeline.aggregate`) and
   committed to a :class:`~repro.streaming.window.WindowedAggregator`, sliding the
   analysis window in O(one epoch) of count algebra.
2. **Re-solve** — the window's histogram is re-estimated by
   :func:`~repro.core.postprocess.expectation_maximization` *warm-started from the
   previous epoch's posterior*.  Under drift the posterior moves a little per epoch,
   so the warm solve converges in a small fraction of the cold-start iterations at
   the same final log-likelihood (gated in
   ``benchmarks/test_streaming_throughput.py``).
3. **Publish** — the fresh estimate is swapped into a
   :class:`~repro.queries.engine.StreamingQueryEngine`, so analyst queries running
   mid-stream never observe a half-updated window.  When the service was built
   with a ``snapshot_writer``, the same estimate is also published to the
   shared-memory segment of the :mod:`repro.serving` tier, so out-of-process
   serving workers pick the new window up on their next seqlock read.

Privacy: windowing and warm-starting are pure post-processing of already-privatized
reports — each user's single report is produced by the underlying ε-LDP mechanism
exactly as in the batch pipeline, so the deployment's per-report guarantee is
unchanged (audited in ``tests/streaming/test_streaming_window.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.dam import Backend, PostProcess
from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.core.estimator import TransitionMatrixMechanism
from repro.core.parallel import DEFAULT_SHARD_SIZE, ParallelPipeline
from repro.core.pipeline import MechanismName
from repro.core.postprocess import EMResult, expectation_maximization, make_grid_smoother
from repro.queries.engine import StreamingQueryEngine
from repro.serving.shm import SnapshotWriter
from repro.streaming.window import WindowedAggregator
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class EpochUpdate:
    """Everything one epoch's turn of the service loop produced."""

    #: 0-based index of the epoch in the stream.
    epoch: int
    #: users ingested this epoch (after domain filtering)
    n_users_epoch: int
    #: effective user total of the window after the slide (fractional under decay)
    n_users_window: float
    #: EM iterations the (warm-started) re-solve needed
    iterations: int
    #: final log-likelihood of the re-solve
    log_likelihood: float
    #: whether the re-solve converged within the iteration budget
    converged: bool
    #: the published estimate
    estimate: GridDistribution
    #: wall-clock seconds spent privatizing the epoch's reports (0.0 when the
    #: epoch arrived pre-aggregated through :meth:`ingest_aggregate`)
    privatize_seconds: float
    #: wall-clock seconds of the pure window slide (the O(one epoch) count algebra)
    slide_seconds: float
    #: wall-clock seconds spent in the warm-started EM re-solve
    solve_seconds: float
    #: which EM kernel ran the re-solve (``"numba/float64"``-style tag from the
    #: native tier, ``None`` for the plain operator/dense matvec loop)
    kernel: str | None = None


class StreamingEstimationService:
    """Long-lived sliding-window estimation over a continuous report stream.

    Construct directly from a built mechanism (serial ingestion), or through
    :meth:`build` to get the pipeline wiring — domain filtering and ``workers``-way
    sharded privatization — for free.

    Parameters
    ----------
    mechanism:
        A :class:`~repro.core.estimator.TransitionMatrixMechanism` (DAM, DAM-NS,
        HUEM, ...).  The warm-started re-solve drives
        :func:`~repro.core.postprocess.expectation_maximization` with the
        mechanism's transition (operator or dense backend alike), so mechanisms
        without a transition model are rejected.
    window_epochs, decay:
        Window geometry — see :class:`~repro.streaming.window.WindowedAggregator`.
    max_iterations, tolerance:
        EM convergence controls for the per-epoch re-solve.
    smoothing_strength:
        Optional EMS smoothing in ``[0, 1]`` applied inside each re-solve
        (``0.0`` — the default — keeps the solve a pure maximum-likelihood EM so
        warm and cold starts share one objective).
    warm_start:
        ``False`` forces every epoch to a cold (uniform-start) solve — the
        ablation the throughput benchmark measures against.
    warm_floor:
        Mass floor (relative to uniform) applied to the previous posterior before
        it seeds the next solve: every cell starts at least
        ``warm_floor / n_cells``.  EM's updates are multiplicative, so a cell the
        old window estimated at ~0 could otherwise take hundreds of iterations to
        regrow when the population drifts onto it — the floor un-sticks those
        zeros while leaving the informative bulk of the posterior untouched
        (measured: raw warm starts *lose* to cold starts; floored ones beat them
        severalfold).
    seed:
        Seeds the service's report-privatization stream; epochs consume one shared
        stream, so a fixed seed makes the whole session reproducible.
    pipeline:
        Optional :class:`~repro.core.parallel.ParallelPipeline` whose mechanism is
        ``mechanism``; when present, epochs are privatized through
        :meth:`~repro.core.parallel.ParallelPipeline.aggregate` (sharded, domain
        filtered, worker-pool capable).  :meth:`build` wires this up.
    snapshot_writer:
        Optional :class:`~repro.serving.shm.SnapshotWriter` on this service's
        grid; when present, every epoch's estimate is additionally published to
        its shared-memory segment (after the in-process serving swap), which is
        how the :class:`~repro.serving.server.ServingServer` worker pool sees
        new windows.  The caller owns the writer's lifetime.
    """

    def __init__(
        self,
        mechanism: TransitionMatrixMechanism,
        *,
        window_epochs: int = 8,
        decay: float | None = None,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        smoothing_strength: float = 0.0,
        warm_start: bool = True,
        warm_floor: float = 0.1,
        seed=None,
        pipeline: ParallelPipeline | None = None,
        snapshot_writer: SnapshotWriter | None = None,
    ) -> None:
        if not isinstance(mechanism, TransitionMatrixMechanism):
            raise TypeError(
                "streaming estimation needs a transition-matrix mechanism "
                "(DAM / DAM-NS / HUEM / ...) so the warm-started EM re-solve can "
                f"invert the randomisation; got {type(mechanism).__name__}"
            )
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0.0 <= warm_floor < 1.0:
            raise ValueError(f"warm_floor must lie in [0, 1), got {warm_floor}")
        if pipeline is not None and pipeline.pipeline.mechanism is not mechanism:
            raise ValueError("pipeline must wrap the same mechanism instance")
        if snapshot_writer is not None and (
            snapshot_writer.grid.d != mechanism.grid.d
            or snapshot_writer.grid.domain.bounds != mechanism.grid.domain.bounds
        ):
            raise ValueError(
                "snapshot_writer grid does not match the mechanism grid "
                f"(d={snapshot_writer.grid.d} vs d={mechanism.grid.d})"
            )
        self.mechanism = mechanism
        self.grid: GridSpec = mechanism.grid
        self.window = WindowedAggregator(mechanism, window_epochs, decay=decay)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.warm_start = bool(warm_start)
        self.warm_floor = float(warm_floor)
        self._smoother = (
            make_grid_smoother(self.grid.d, strength=smoothing_strength)
            if smoothing_strength > 0 and self.grid.d > 1
            else None
        )
        self._rng = ensure_rng(seed)
        self._pipeline = pipeline
        self._theta: np.ndarray | None = None
        self.serving = StreamingQueryEngine()
        self.snapshot_writer = snapshot_writer

    @classmethod
    def build(
        cls,
        domain: SpatialDomain,
        d: int,
        epsilon: float,
        *,
        mechanism: MechanismName = "dam",
        b_hat: int | None = None,
        postprocess: PostProcess = "ems",
        backend: Backend = "operator",
        workers: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        **kwargs,
    ) -> "StreamingEstimationService":
        """Construct the service from pipeline-style parameters.

        ``workers > 1`` privatizes every epoch on the existing sharded process
        pool; the per-shard RNG derivation keeps the session bit-identical to the
        serial run at any worker count.  Remaining keyword arguments go to the
        service constructor (``window_epochs``, ``decay``, ``seed``, ...).
        """
        pipeline = ParallelPipeline(
            domain,
            d,
            epsilon,
            mechanism=mechanism,
            b_hat=b_hat,
            postprocess=postprocess,
            backend=backend,
            workers=workers,
            shard_size=shard_size,
        )
        return cls(pipeline.pipeline.mechanism, pipeline=pipeline, **kwargs)

    # --------------------------------------------------------------- the loop
    @property
    def epochs_processed(self) -> int:
        return self.window.epochs_seen

    @property
    def posterior(self) -> np.ndarray | None:
        """The previous epoch's solved distribution (the next warm start), if any."""
        return None if self._theta is None else self._theta.copy()

    def ingest_epoch(self, points: np.ndarray) -> EpochUpdate:
        """One turn of the service loop: privatize, slide, re-solve, publish."""
        start = time.perf_counter()
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
        if self._pipeline is not None:
            aggregate = self._pipeline.aggregate(pts, seed=self._rng)
        else:
            pts = pts[self.grid.domain.contains(pts)]
            aggregator = self.mechanism.streaming_aggregator(seed=self._rng)
            aggregator.add_points(pts)
            aggregate = aggregator.state()
        privatize_seconds = time.perf_counter() - start
        return self._ingest(aggregate, privatize_seconds)

    def ingest_aggregate(self, aggregate) -> EpochUpdate:
        """Like :meth:`ingest_epoch` for epochs that arrive pre-aggregated.

        Edge collectors (or the worker pool) may deliver an epoch as its merged
        :class:`~repro.core.estimator.ShardAggregate`; the service then only pays
        the slide, the warm re-solve and the publish.
        """
        return self._ingest(aggregate, 0.0)

    def _ingest(self, aggregate, privatize_seconds: float) -> EpochUpdate:
        start = time.perf_counter()
        self.window.commit_aggregate(aggregate)
        slide_seconds = time.perf_counter() - start

        start = time.perf_counter()
        result = self.solve_window(initial=self.warm_initial())
        solve_seconds = time.perf_counter() - start

        estimate = GridDistribution.from_flat(self.grid, result.estimate)
        self._theta = result.estimate
        epoch = self.window.epochs_seen - 1
        self.serving.refresh(estimate, epoch=epoch)
        if self.snapshot_writer is not None:
            # refresh() above already materialised the summed-area table on this
            # estimate, so the cross-process publish is two buffer copies under
            # the seqlock — no recomputation.
            self.snapshot_writer.publish(estimate, epoch=epoch)
        return EpochUpdate(
            epoch=epoch,
            n_users_epoch=aggregate.n_users,
            n_users_window=self.window.n_users_window,
            iterations=result.iterations,
            log_likelihood=result.log_likelihood,
            converged=result.converged,
            estimate=estimate,
            privatize_seconds=privatize_seconds,
            slide_seconds=slide_seconds,
            solve_seconds=solve_seconds,
            kernel=result.kernel,
        )

    def warm_initial(self) -> np.ndarray | None:
        """The floored previous posterior that seeds the next solve (or ``None``).

        ``None`` — meaning a cold, uniform start — is returned before the first
        epoch lands or when the service was built with ``warm_start=False``.
        """
        if not self.warm_start or self._theta is None:
            return None
        floored = np.maximum(self._theta, self.warm_floor / self.grid.n_cells)
        return floored / floored.sum()

    def solve_window(self, *, initial: np.ndarray | None = None) -> EMResult:
        """Re-solve the current window, optionally warm-started.

        ``initial=None`` is the cold start (uniform); :meth:`ingest_epoch` passes
        :meth:`warm_initial`.  Exposed so benchmarks and diagnostics can compare
        both starts on the identical histogram.
        """
        noisy, _, _ = self.window.window_counts()
        return expectation_maximization(
            self.mechanism._estimation_transition(),
            noisy,
            initial=initial,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            smoothing=self._smoother,
        )
