"""The Square Wave mechanism with EM smoothing (SW-EMS, Li et al. SIGMOD 2020).

SW is the 1-D numerical frequency oracle the paper's MDSW baseline is built on.  A
value ``v`` in ``[0, 1]`` is reported in the extended interval ``[-b, 1 + b]``; points
within distance ``b`` of ``v`` receive the high density ``p`` and everything else the
low density ``q``, with

``b = (eps * e^eps - e^eps + 1) / (2 e^eps (e^eps - 1 - eps))``,
``p = e^eps / (2 b e^eps + 1)`` and ``q = 1 / (2 b e^eps + 1)``.

The analyst buckets the reports and runs expectation maximisation (optionally with the
smoothing step — "EMS") against the known bucket-to-bucket transition probabilities.
This module provides both the continuous sampler and the discretised oracle used by
:class:`~repro.mechanisms.mdsw.MDSW`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.postprocess import (
    adaptive_smoothing_strength,
    expectation_maximization,
    make_line_smoother,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon, check_grid_side


def square_wave_radius(epsilon: float) -> float:
    """The SW mechanism's optimal half-width ``b`` for the unit interval."""
    epsilon = check_epsilon(epsilon)
    e_eps = math.exp(epsilon)
    return (epsilon * e_eps - e_eps + 1.0) / (2.0 * e_eps * (e_eps - 1.0 - epsilon))


def square_wave_probabilities(epsilon: float) -> tuple[float, float, float]:
    """Return ``(b, p, q)`` for the unit-interval Square Wave mechanism."""
    epsilon = check_epsilon(epsilon)
    b = square_wave_radius(epsilon)
    e_eps = math.exp(epsilon)
    p = e_eps / (2.0 * b * e_eps + 1.0)
    q = 1.0 / (2.0 * b * e_eps + 1.0)
    return b, p, q


class SquareWaveMechanism:
    """Continuous Square Wave reporting over the unit interval."""

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.b, self.p, self.q = square_wave_probabilities(epsilon)

    def privatize(self, values: np.ndarray, seed=None) -> np.ndarray:
        """Perturb values in ``[0, 1]`` into reports in ``[-b, 1 + b]``."""
        rng = ensure_rng(seed)
        v = np.asarray(values, dtype=float).reshape(-1)
        if np.any(v < -1e-9) or np.any(v > 1.0 + 1e-9):
            raise ValueError("Square Wave inputs must lie in [0, 1]")
        v = np.clip(v, 0.0, 1.0)
        n = v.shape[0]
        # Probability that the report falls inside the high band [v - b, v + b].
        high_mass = 2.0 * self.b * self.p
        in_band = rng.random(n) < high_mass
        high_reports = rng.uniform(v - self.b, v + self.b)
        # Outside the band: uniform over [-b, 1 + b] minus the band, sampled by
        # stitching the two flanking segments ([-b, v - b) of length v and
        # (v + b, 1 + b] of length 1 - v) together.
        left_len = v
        right_len = 1.0 - v
        u = rng.random(n) * (left_len + right_len)
        low_reports = np.where(u < left_len, -self.b + u, v + self.b + (u - left_len))
        return np.where(in_band, high_reports, low_reports)


class DiscreteSquareWave:
    """Bucketised Square Wave frequency oracle over ``d`` input buckets.

    The input domain ``[0, 1]`` is split into ``d`` equal buckets and the output domain
    ``[-b, 1 + b]`` into ``d_out`` buckets of the same width.  The bucket-to-bucket
    transition probabilities are the integrals of the SW density, computed exactly from
    the piecewise-constant structure.  Estimation runs EM, optionally with the 1-D
    smoothing step of SW-EMS.
    """

    def __init__(
        self,
        d: int,
        epsilon: float,
        *,
        postprocess: str = "ems",
        em_iterations: int = 200,
        smoothing_strength: float | None = None,
    ) -> None:
        self.d = check_grid_side(d)
        self.epsilon = check_epsilon(epsilon)
        if postprocess not in ("ems", "em"):
            raise ValueError(f"unknown postprocess mode {postprocess!r}")
        self.postprocess = postprocess
        self.em_iterations = em_iterations
        self.smoothing_strength = smoothing_strength
        self.b, self.p, self.q = square_wave_probabilities(epsilon)
        cell = 1.0 / self.d
        self.pad_cells = int(math.ceil(self.b / cell))
        self.d_out = self.d + 2 * self.pad_cells
        self._transition = self._build_transition()

    @property
    def transition(self) -> np.ndarray:
        return self._transition

    def _build_transition(self) -> np.ndarray:
        cell = 1.0 / self.d
        centers_in = (np.arange(self.d) + 0.5) * cell
        edges_out = -self.pad_cells * cell + np.arange(self.d_out + 1) * cell
        transition = np.zeros((self.d, self.d_out), dtype=float)
        for i, center in enumerate(centers_in):
            lo_band, hi_band = center - self.b, center + self.b
            for j in range(self.d_out):
                lo, hi = edges_out[j], edges_out[j + 1]
                overlap_high = max(0.0, min(hi, hi_band) - max(lo, lo_band))
                overlap_low = (hi - lo) - overlap_high
                transition[i, j] = overlap_high * self.p + overlap_low * self.q
        # Normalise away the tiny truncation error from padding to whole cells.
        return transition / transition.sum(axis=1, keepdims=True)

    def privatize(self, buckets: np.ndarray, seed=None) -> np.ndarray:
        """Perturb input bucket indices into output bucket indices."""
        rng = ensure_rng(seed)
        buckets = np.asarray(buckets, dtype=np.int64)
        if buckets.size and (buckets.min() < 0 or buckets.max() >= self.d):
            raise ValueError(f"bucket indices must lie in [0, {self.d})")
        reports = np.empty(buckets.shape[0], dtype=np.int64)
        for bucket in np.unique(buckets):
            mask = buckets == bucket
            reports[mask] = rng.choice(self.d_out, size=int(mask.sum()), p=self._transition[bucket])
        return reports

    def estimate(self, reports: np.ndarray, n_users: int) -> np.ndarray:
        """Estimate the input bucket distribution from noisy output bucket reports."""
        reports = np.asarray(reports, dtype=np.int64)
        counts = np.bincount(reports, minlength=self.d_out).astype(float)
        result = expectation_maximization(
            self._transition,
            counts,
            max_iterations=self.em_iterations,
            smoothing=self._smoother(counts.sum()),
        )
        return result.estimate

    def _smoother(self, n_reports: float):
        """EMS smoothing callable for the given report volume (or ``None``)."""
        if self.postprocess != "ems" or self.d <= 1:
            return None
        strength = (
            self.smoothing_strength
            if self.smoothing_strength is not None
            else adaptive_smoothing_strength(self.d, n_reports)
        )
        if strength <= 0:
            return None
        return make_line_smoother(self.d, strength=strength)

    def ldp_ratio(self) -> float:
        """Worst-case per-column probability ratio (should not exceed ``e^eps``)."""
        matrix = self._transition
        return float((matrix.max(axis=0) / np.clip(matrix.min(axis=0), 1e-300, None)).max())
