"""HDG — Hybrid-Dimensional Grids (Yang et al., VLDB 2020), range-query extension.

The paper positions HDG as related work that DAM could be combined with for private
range queries: HDG answers multi-dimensional range queries by maintaining coarse 2-D
grids (capturing cross-dimension correlation) alongside fine 1-D grids (capturing
per-dimension resolution) and reconciling the two estimates.

This module implements the 2-D specialisation used for spatial data: users are split
into two groups, one reporting their cell on a coarse ``d2 x d2`` grid and one
reporting each coordinate on a fine ``d1``-bucket 1-D grid (all through OUE); range
queries combine the coarse joint estimate with the fine marginals by weighted
averaging.  It is exercised by the "future work" ablation benchmark that combines DAM
with range-query answering.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridDistribution, GridSpec, outer_product_distribution
from repro.core.estimator import SpatialMechanism
from repro.mechanisms.cfo import OptimizedUnaryEncoding
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_grid_side


class HDG(SpatialMechanism):
    """Hybrid-Dimensional Grids for 2-D data under LDP.

    Parameters
    ----------
    grid, epsilon:
        The fine analysis grid (``d x d``) and per-user budget.
    coarse_d:
        Side of the coarse joint grid (defaults to ``max(2, d // 3)`` — HDG picks the
        coarse granularity so each 2-D cell still receives enough reports).
    joint_fraction:
        Fraction of users assigned to the coarse joint grid group; the rest report the
        two fine 1-D marginals (budget split evenly between the two coordinates).
    """

    name = "HDG"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        coarse_d: int | None = None,
        joint_fraction: float = 0.5,
    ) -> None:
        super().__init__(grid, epsilon)
        if coarse_d is None:
            coarse_d = max(2, grid.d // 3)
        self.coarse_d = check_grid_side(min(coarse_d, grid.d))
        if not 0.0 < joint_fraction < 1.0:
            raise ValueError(f"joint_fraction must be in (0, 1), got {joint_fraction}")
        self.joint_fraction = joint_fraction
        self.joint_oracle = OptimizedUnaryEncoding(self.coarse_d * self.coarse_d, epsilon)
        self.marginal_oracle_x = OptimizedUnaryEncoding(grid.d, epsilon / 2.0)
        self.marginal_oracle_y = OptimizedUnaryEncoding(grid.d, epsilon / 2.0)
        self._joint_reports: np.ndarray | None = None
        self._marginal_reports_x: np.ndarray | None = None
        self._marginal_reports_y: np.ndarray | None = None
        self._group_sizes: tuple[int, int] = (0, 0)

    def output_domain_size(self) -> int:
        return self.coarse_d * self.coarse_d

    def _coarse_cell(self, cells: np.ndarray) -> np.ndarray:
        rows, cols = self.grid.cell_to_rowcol(cells)
        coarse_rows = (rows * self.coarse_d) // self.grid.d
        coarse_cols = (cols * self.coarse_d) // self.grid.d
        return coarse_rows * self.coarse_d + coarse_cols

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        n = cells.shape[0]
        joint_mask = rng.random(n) < self.joint_fraction
        joint_cells = self._coarse_cell(cells[joint_mask])
        rows, cols = self.grid.cell_to_rowcol(cells[~joint_mask])
        self._joint_reports = self.joint_oracle.privatize(joint_cells, seed=rng)
        self._marginal_reports_x = self.marginal_oracle_x.privatize(cols, seed=rng)
        self._marginal_reports_y = self.marginal_oracle_y.privatize(rows, seed=rng)
        self._group_sizes = (int(joint_mask.sum()), int((~joint_mask).sum()))
        # The generic report stream (what the privacy audit sees and what would leave
        # the device alongside the raw OUE bits) must be a post-processed function of
        # the *privatized* reports only — an earlier revision returned the true coarse
        # assignment here, silently leaking every user's location through the generic
        # aggregation path.  Joint-group users contribute the argmax of their OUE bit
        # vector; marginal-group users the coarse cell implied by their two noisy
        # marginal argmaxes.  Both are pure post-processing, so the stream inherits
        # the oracles' epsilon-LDP guarantee (estimation keeps using the raw reports).
        stream = np.empty(n, dtype=np.int64)
        stream[joint_mask] = np.argmax(self._joint_reports, axis=1)
        noisy_cols = np.argmax(self._marginal_reports_x, axis=1)
        noisy_rows = np.argmax(self._marginal_reports_y, axis=1)
        coarse_rows = (noisy_rows * self.coarse_d) // self.grid.d
        coarse_cols = (noisy_cols * self.coarse_d) // self.grid.d
        stream[~joint_mask] = coarse_rows * self.coarse_d + coarse_cols
        return stream

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        if self._joint_reports is None:
            raise RuntimeError("privatize_cells must be called before estimate")
        n_joint, n_marginal = self._group_sizes
        coarse = self.joint_oracle.estimate_frequencies(self._joint_reports, n_joint)
        x_marginal = self.marginal_oracle_x.estimate_frequencies(
            self._marginal_reports_x, n_marginal
        )
        y_marginal = self.marginal_oracle_y.estimate_frequencies(
            self._marginal_reports_y, n_marginal
        )
        fine_joint = outer_product_distribution(self.grid, x_marginal, y_marginal)
        coarse_grid = coarse.reshape(self.coarse_d, self.coarse_d)
        # Reconcile: scale the fine joint so that its mass inside every coarse cell
        # matches the coarse joint estimate (HDG's consistency step).
        adjusted = fine_joint.probabilities.copy()
        for row in range(self.coarse_d):
            row_lo = row * self.grid.d // self.coarse_d
            row_hi = (row + 1) * self.grid.d // self.coarse_d
            for col in range(self.coarse_d):
                col_lo = col * self.grid.d // self.coarse_d
                col_hi = (col + 1) * self.grid.d // self.coarse_d
                block = adjusted[row_lo:row_hi, col_lo:col_hi]
                block_mass = block.sum()
                target = coarse_grid[row, col]
                if block_mass > 0:
                    adjusted[row_lo:row_hi, col_lo:col_hi] = block * (target / block_mass)
                else:
                    cells = (row_hi - row_lo) * (col_hi - col_lo)
                    adjusted[row_lo:row_hi, col_lo:col_hi] = target / max(cells, 1)
        total = adjusted.sum()
        if total <= 0:
            return GridDistribution.uniform(self.grid)
        return GridDistribution(self.grid, adjusted / total)

    def range_query(self, estimate: GridDistribution, col_range: tuple[int, int],
                    row_range: tuple[int, int]) -> float:
        """Answer a rectangular range query (inclusive cell ranges) on an estimate."""
        col_lo, col_hi = col_range
        row_lo, row_hi = row_range
        if not (0 <= col_lo <= col_hi < self.grid.d and 0 <= row_lo <= row_hi < self.grid.d):
            raise ValueError("range query bounds must lie inside the grid")
        return float(estimate.probabilities[row_lo : row_hi + 1, col_lo : col_hi + 1].sum())
