"""MDSW — the Multi-dimensional Square Wave baseline (Yang et al., VLDB 2020).

MDSW extends the 1-D Square Wave mechanism to spatial data by privatising each
coordinate independently: every user splits the privacy budget across the two
dimensions, reports the x bucket through one SW oracle and the y bucket through
another, and the analyst multiplies the two estimated marginals back into a joint
distribution.  The construction keeps the ordinal structure *within* each axis but
discards the correlation *between* axes — which is exactly the weakness the paper's
DAM addresses and the experiments expose.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridDistribution, GridSpec, outer_product_distribution
from repro.core.estimator import SpatialMechanism
from repro.mechanisms.sw import DiscreteSquareWave
from repro.utils.rng import ensure_rng


class MDSW(SpatialMechanism):
    """Multi-dimensional Square Wave over a ``d x d`` grid.

    Parameters
    ----------
    grid, epsilon:
        Input grid and total per-user budget.  The budget is split evenly across the
        two dimensions (``eps / 2`` each), the standard composition used when every
        user reports both coordinates.
    postprocess:
        ``"ems"`` (EM + smoothing, the SW-EMS default) or ``"em"``.
    """

    name = "MDSW"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        postprocess: str = "ems",
        budget_split: float = 0.5,
    ) -> None:
        super().__init__(grid, epsilon)
        if not 0.0 < budget_split < 1.0:
            raise ValueError(f"budget_split must be in (0, 1), got {budget_split}")
        self.budget_split = budget_split
        self.oracle_x = DiscreteSquareWave(grid.d, epsilon * budget_split, postprocess=postprocess)
        self.oracle_y = DiscreteSquareWave(
            grid.d, epsilon * (1.0 - budget_split), postprocess=postprocess
        )

    def output_domain_size(self) -> int:
        return self.oracle_x.d_out * self.oracle_y.d_out

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        rows, cols = self.grid.cell_to_rowcol(cells)
        noisy_x = self.oracle_x.privatize(cols, seed=rng)
        noisy_y = self.oracle_y.privatize(rows, seed=rng)
        return noisy_y * self.oracle_x.d_out + noisy_x

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        counts = np.asarray(noisy_counts, dtype=float).reshape(
            self.oracle_y.d_out, self.oracle_x.d_out
        )
        # Recover the per-axis report histograms, estimate each marginal, recombine.
        reports_x = counts.sum(axis=0)
        reports_y = counts.sum(axis=1)
        x_marginal = self._estimate_axis(self.oracle_x, reports_x, n_users)
        y_marginal = self._estimate_axis(self.oracle_y, reports_y, n_users)
        return outer_product_distribution(self.grid, x_marginal, y_marginal)

    @staticmethod
    def _estimate_axis(
        oracle: DiscreteSquareWave, report_counts: np.ndarray, n_users: int
    ) -> np.ndarray:
        from repro.core.postprocess import expectation_maximization

        result = expectation_maximization(
            oracle.transition,
            report_counts,
            max_iterations=oracle.em_iterations,
            smoothing=oracle._smoother(float(np.asarray(report_counts).sum())),
        )
        return result.estimate
