"""Categorical Frequency Oracles (CFO): GRR, OUE and OLH.

These are the classical LDP primitives for *categorical* (unordered) domains
(Wang et al., USENIX Security 2017).  The paper uses them in two roles:

* as the "Bucket + CFO" strawman for spatial data — divide the plane into grid cells
  and treat cells as unrelated categories, which ignores the spatial ordinal
  relationship and motivates DAM (Section I / Table I); and
* as the reporting substrate of the trajectory baselines (LDPTrace perturbs its
  start-cell / direction / length histograms with OUE or GRR).

All three oracles follow the :class:`~repro.core.estimator.SpatialMechanism` protocol
when wrapped by :class:`BucketCFOMechanism`, and can also be used directly on arbitrary
categorical domains through their ``privatize`` / ``estimate_frequencies`` methods.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.core.domain import GridDistribution, GridSpec
from repro.core.estimator import SpatialMechanism
from repro.core.postprocess import project_to_simplex
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon


class CategoricalFrequencyOracle(abc.ABC):
    """Abstract frequency oracle over a categorical domain of size ``k``."""

    def __init__(self, domain_size: int, epsilon: float) -> None:
        if domain_size < 2:
            raise ValueError(f"domain_size must be >= 2, got {domain_size}")
        self.domain_size = int(domain_size)
        self.epsilon = check_epsilon(epsilon)

    @abc.abstractmethod
    def privatize(self, values: np.ndarray, seed=None) -> np.ndarray:
        """Perturb an array of true category indices into noisy reports."""

    @abc.abstractmethod
    def estimate_frequencies(self, reports: np.ndarray, n_users: int) -> np.ndarray:
        """Unbiased frequency estimates (length ``domain_size``), then simplex-projected."""

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        """Reduce raw reports to the additive per-category support counts.

        The counts are the sufficient statistic of :meth:`estimate_frequencies`:
        they can be accumulated per shard and summed across shards (they are plain
        additive histograms), and :meth:`estimate_from_counts` recovers exactly the
        estimate the raw concatenated reports would have produced.  This is the
        oracle-level mergeable-aggregate protocol the sharded trajectory fit rides.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support count-based estimation"
        )

    def estimate_from_counts(self, counts: np.ndarray, n_users: int) -> np.ndarray:
        """Estimate frequencies from accumulated :meth:`support_counts`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support count-based estimation"
        )

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise ValueError(f"values must lie in [0, {self.domain_size})")
        return values


class GeneralizedRandomizedResponse(CategoricalFrequencyOracle):
    """GRR (a.k.a. k-RR): keep the true value w.p. ``p``, else report a uniform other value.

    ``p = e^eps / (e^eps + k - 1)``; the estimator inverts the known perturbation.
    GRR is optimal for small domains and degrades as ``k`` grows — exactly the regime
    where OUE/OLH take over.
    """

    name = "GRR"

    def __init__(self, domain_size: int, epsilon: float) -> None:
        super().__init__(domain_size, epsilon)
        e_eps = math.exp(self.epsilon)
        self.p = e_eps / (e_eps + self.domain_size - 1)
        self.q = 1.0 / (e_eps + self.domain_size - 1)

    def privatize(self, values: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        values = self._check_values(values)
        keep = rng.random(values.shape[0]) < self.p
        noise = rng.integers(0, self.domain_size - 1, size=values.shape[0])
        # Map the "other" draw around the true value so it is uniform over the k-1
        # remaining categories.
        noise = noise + (noise >= values)
        return np.where(keep, values, noise)

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        reports = self._check_values(reports)
        return np.bincount(reports, minlength=self.domain_size).astype(float)

    def estimate_from_counts(self, counts: np.ndarray, n_users: int) -> np.ndarray:
        if n_users <= 0:
            return np.full(self.domain_size, 1.0 / self.domain_size)
        counts = np.asarray(counts, dtype=float).reshape(-1)
        estimates = (counts / n_users - self.q) / (self.p - self.q)
        return project_to_simplex(estimates)

    def estimate_frequencies(self, reports: np.ndarray, n_users: int) -> np.ndarray:
        return self.estimate_from_counts(self.support_counts(reports), n_users)


class OptimizedUnaryEncoding(CategoricalFrequencyOracle):
    """OUE: report a perturbed one-hot vector with ``p = 1/2`` and ``q = 1/(e^eps + 1)``.

    The report is the full bit vector; :meth:`privatize` returns it packed as a 2-D
    boolean array (one row per user) and :meth:`estimate_frequencies` aggregates the
    per-category bit counts.
    """

    name = "OUE"

    def __init__(self, domain_size: int, epsilon: float) -> None:
        super().__init__(domain_size, epsilon)
        self.p = 0.5
        self.q = 1.0 / (math.exp(self.epsilon) + 1.0)

    def privatize(self, values: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        values = self._check_values(values)
        n = values.shape[0]
        bits = rng.random((n, self.domain_size)) < self.q
        keep_true = rng.random(n) < self.p
        bits[np.arange(n), values] = keep_true
        return bits

    def support_counts(self, reports: np.ndarray) -> np.ndarray:
        bits = np.asarray(reports, dtype=bool)
        if bits.ndim != 2 or bits.shape[1] != self.domain_size:
            raise ValueError(
                f"OUE reports must have shape (n, {self.domain_size}), got {bits.shape}"
            )
        return bits.sum(axis=0).astype(float)

    def estimate_from_counts(self, counts: np.ndarray, n_users: int) -> np.ndarray:
        if n_users <= 0:
            return np.full(self.domain_size, 1.0 / self.domain_size)
        counts = np.asarray(counts, dtype=float).reshape(-1)
        estimates = (counts / n_users - self.q) / (self.p - self.q)
        return project_to_simplex(estimates)

    def estimate_frequencies(self, reports: np.ndarray, n_users: int) -> np.ndarray:
        return self.estimate_from_counts(self.support_counts(reports), n_users)


class OptimizedLocalHashing(CategoricalFrequencyOracle):
    """OLH: hash the value into ``g = e^eps + 1`` buckets, then run GRR on the hash.

    Each user draws a random hash seed; the analyst aggregates support counts over the
    (seed, bucket) reports.  We use a simple multiply-shift universal hash family, which
    is sufficient for the statistical guarantees OLH relies on.
    """

    name = "OLH"

    _PRIME = (1 << 61) - 1

    def __init__(self, domain_size: int, epsilon: float) -> None:
        super().__init__(domain_size, epsilon)
        self.g = max(2, int(round(math.exp(self.epsilon) + 1.0)))
        e_eps = math.exp(self.epsilon)
        self.p = e_eps / (e_eps + self.g - 1)
        self.q = 1.0 / self.g

    def _hash(self, seeds: np.ndarray, values: np.ndarray) -> np.ndarray:
        mixed = (seeds.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)) ^ (
            values.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
        )
        mixed ^= mixed >> np.uint64(29)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(32)
        return (mixed % np.uint64(self.g)).astype(np.int64)

    def privatize(self, values: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        values = self._check_values(values)
        n = values.shape[0]
        seeds = rng.integers(1, 2**31 - 1, size=n)
        hashed = self._hash(seeds, values)
        keep = rng.random(n) < self.p
        noise = rng.integers(0, self.g - 1, size=n)
        noise = noise + (noise >= hashed)
        buckets = np.where(keep, hashed, noise)
        return np.column_stack([seeds, buckets])

    def estimate_frequencies(self, reports: np.ndarray, n_users: int) -> np.ndarray:
        reports = np.asarray(reports, dtype=np.int64)
        if reports.ndim != 2 or reports.shape[1] != 2:
            raise ValueError(f"OLH reports must have shape (n, 2), got {reports.shape}")
        if n_users <= 0:
            return np.full(self.domain_size, 1.0 / self.domain_size)
        seeds = reports[:, 0]
        buckets = reports[:, 1]
        supports = np.zeros(self.domain_size, dtype=float)
        candidates = np.arange(self.domain_size, dtype=np.int64)
        for seed_value, bucket in zip(seeds, buckets):
            hashed = self._hash(np.full(self.domain_size, seed_value), candidates)
            supports += hashed == bucket
        estimates = (supports / n_users - 1.0 / self.g) / (self.p - 1.0 / self.g)
        return project_to_simplex(estimates)


class BucketCFOMechanism(SpatialMechanism):
    """The "Bucket + CFO" spatial strawman: grid cells treated as unrelated categories.

    Wraps any :class:`CategoricalFrequencyOracle` over the flattened grid cells and
    exposes the standard :class:`~repro.core.estimator.SpatialMechanism` interface so it
    can be dropped into the experiment runner next to DAM and MDSW.
    """

    name = "Bucket+CFO"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        oracle: str = "grr",
    ) -> None:
        super().__init__(grid, epsilon)
        oracle = oracle.lower()
        if oracle == "grr":
            self.oracle: CategoricalFrequencyOracle = GeneralizedRandomizedResponse(
                grid.n_cells, epsilon
            )
        elif oracle == "oue":
            self.oracle = OptimizedUnaryEncoding(grid.n_cells, epsilon)
        elif oracle == "olh":
            self.oracle = OptimizedLocalHashing(grid.n_cells, epsilon)
        else:
            raise ValueError(f"unknown oracle {oracle!r}; expected 'grr', 'oue' or 'olh'")
        self.name = f"Bucket+{self.oracle.name}"
        self._last_reports: np.ndarray | None = None

    def output_domain_size(self) -> int:
        return self.grid.n_cells

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        reports = self.oracle.privatize(np.asarray(cells, dtype=np.int64), seed=seed)
        self._last_reports = reports
        if isinstance(self.oracle, GeneralizedRandomizedResponse):
            return reports
        # OUE / OLH reports are not single indices; return the most likely cell per
        # user purely so the generic aggregation stays shaped, but estimation uses the
        # stored raw reports.
        if isinstance(self.oracle, OptimizedUnaryEncoding):
            return np.argmax(reports, axis=1)
        return reports[:, 1] % self.grid.n_cells

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        if self._last_reports is None:
            raise RuntimeError("privatize_cells must be called before estimate")
        frequencies = self.oracle.estimate_frequencies(self._last_reports, n_users)
        return GridDistribution.from_flat(self.grid, frequencies)
