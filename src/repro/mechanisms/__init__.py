"""Baseline mechanisms the paper compares DAM against (and their substrates).

* Categorical frequency oracles — GRR, OUE, OLH and the Bucket+CFO spatial strawman.
* Square Wave (SW-EMS) and its multi-dimensional extension MDSW, the main LDP baseline.
* Geo-Indistinguishability (planar Laplace and the discrete exponential kernel) and the
  SEM-Geo-I subset mechanism, the main Geo-I baseline.
* SR / PM mean estimators (related work, Table I).
* HDG hybrid-dimensional grids (range-query extension / future-work combination).
"""

from repro.mechanisms.cfo import (
    BucketCFOMechanism,
    CategoricalFrequencyOracle,
    GeneralizedRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
)
from repro.mechanisms.geo_i import DiscreteGeoIMechanism, PlanarLaplaceMechanism
from repro.mechanisms.hdg import HDG
from repro.mechanisms.mdsw import MDSW
from repro.mechanisms.piecewise import (
    PiecewiseMechanism,
    StochasticRounding,
    hybrid_mean_estimator,
)
from repro.mechanisms.sem_geo_i import SEMGeoI
from repro.mechanisms.sw import (
    DiscreteSquareWave,
    SquareWaveMechanism,
    square_wave_probabilities,
    square_wave_radius,
)

__all__ = [
    "BucketCFOMechanism",
    "CategoricalFrequencyOracle",
    "GeneralizedRandomizedResponse",
    "OptimizedLocalHashing",
    "OptimizedUnaryEncoding",
    "DiscreteGeoIMechanism",
    "PlanarLaplaceMechanism",
    "HDG",
    "MDSW",
    "PiecewiseMechanism",
    "StochasticRounding",
    "hybrid_mean_estimator",
    "SEMGeoI",
    "DiscreteSquareWave",
    "SquareWaveMechanism",
    "square_wave_probabilities",
    "square_wave_radius",
]
