"""SEM-Geo-I — the Subset Exponential Mechanism under ε-Geo-I (Wang et al., INFOCOM 2017).

SEM-Geo-I is the paper's strongest categorical baseline.  Each user reports a *subset*
of ``k`` grid cells rather than a single cell:

1. an "anchor" cell is drawn from the Geo-I exponential kernel centred on the true cell
   (``Pr proportional to exp(-eps' * dis / 2)``), and
2. ``k - 1`` further distinct cells are added uniformly at random as padding,

with ``k ~= n / e^{eps'}`` following the subset-mechanism analysis (this is also why the
paper notes SEM-Geo-I's output domain blows up as ``n^{n / e^eps}`` for small budgets).
The analyst observes, for every cell, how often it was included in a reported subset;
the inclusion probabilities have a closed form, so the input distribution is recovered
with the same EM machinery used elsewhere in the library.

The ε′ used here is a Geo-I budget; the experiment runner calibrates it against DAM's
ε through the Local Privacy metric (:mod:`repro.metrics.local_privacy`), exactly as in
Section VII-B.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.domain import GridDistribution, GridSpec
from repro.core.estimator import SpatialMechanism
from repro.core.postprocess import (
    adaptive_smoothing_strength,
    expectation_maximization,
    make_grid_smoother,
)
from repro.utils.histogram import pairwise_cell_distances
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon


class SEMGeoI(SpatialMechanism):
    """Subset Exponential Mechanism with a Geo-I reporting kernel.

    Parameters
    ----------
    grid, epsilon:
        Input grid and the Geo-I budget ε′ (privacy loss per unit distance, measured in
        cell units).
    subset_size:
        Size ``k`` of the reported subset; defaults to ``max(1, round(n / e^eps'))``.
    postprocess:
        ``"ems"`` or ``"em"`` — post-processing of the inclusion histogram.
    """

    name = "SEM-Geo-I"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        subset_size: int | None = None,
        postprocess: str = "ems",
        em_iterations: int = 200,
        smoothing_strength: float | None = None,
    ) -> None:
        super().__init__(grid, epsilon)
        if postprocess not in ("ems", "em"):
            raise ValueError(f"unknown postprocess mode {postprocess!r}")
        self.postprocess = postprocess
        self.em_iterations = em_iterations
        self.smoothing_strength = smoothing_strength
        n_cells = grid.n_cells
        if subset_size is None:
            subset_size = max(1, int(round(n_cells / math.exp(check_epsilon(epsilon)))))
        if not 1 <= subset_size <= n_cells:
            raise ValueError(f"subset_size must lie in [1, {n_cells}], got {subset_size}")
        self.subset_size = int(subset_size)

        distances = pairwise_cell_distances(grid.d, grid.domain.bounds) / grid.cell_side
        self.cell_distances = distances
        kernel = np.exp(-self.epsilon * distances / 2.0)
        #: anchor-selection probabilities, row-stochastic over cells
        self.anchor_probabilities = kernel / kernel.sum(axis=1, keepdims=True)
        #: closed-form inclusion probabilities Pr(cell j in subset | true cell i)
        self.inclusion_probabilities = self._inclusion_matrix()

    def _inclusion_matrix(self) -> np.ndarray:
        """``Pr(j in S | i) = anchor_ij + (1 - anchor_ij) * (k - 1) / (n - 1)``."""
        n = self.grid.n_cells
        if n == 1:
            return np.ones((1, 1))
        anchor = self.anchor_probabilities
        padding = (self.subset_size - 1) / (n - 1)
        return anchor + (1.0 - anchor) * padding

    def output_domain_size(self) -> int:
        # Reports are aggregated as per-cell inclusion counts.
        return self.grid.n_cells

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        """Report the anchor cell of each user's subset (used for the report stream).

        The full subset is produced by :meth:`privatize_subsets`; the anchor alone is
        returned here so the mechanism still fits the single-index report interface
        used by the shared privacy audits.
        """
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        reports = np.empty(cells.shape[0], dtype=np.int64)
        for cell in np.unique(cells):
            mask = cells == cell
            reports[mask] = rng.choice(
                self.grid.n_cells, size=int(mask.sum()), p=self.anchor_probabilities[cell]
            )
        return reports

    @property
    def transition(self) -> np.ndarray:
        """Single-report (anchor) obfuscation matrix, used by the Local Privacy metric.

        The Local Privacy calibration of Section VII-B traverses the mechanism's output
        domain; for the subset mechanism we use the anchor-report kernel, which carries
        all of the location-dependent signal (the padding cells are uniform and
        distribution-free).
        """
        return self.anchor_probabilities

    def privatize_subsets(self, cells: np.ndarray, seed=None) -> np.ndarray:
        """Full subset reports: a boolean ``(n_users, n_cells)`` inclusion matrix.

        The anchor cell is always included; the ``k - 1`` padding cells are a uniform
        random draw without replacement from the remaining cells, realised by ranking
        one uniform key per (user, cell) pair so the whole batch is vectorised.
        """
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        n_users = cells.shape[0]
        n_cells = self.grid.n_cells
        inclusion = np.zeros((n_users, n_cells), dtype=bool)
        if n_users == 0:
            return inclusion
        anchors = self.privatize_cells(cells, seed=rng)
        inclusion[np.arange(n_users), anchors] = True
        extra = self.subset_size - 1
        if extra > 0:
            keys = rng.random((n_users, n_cells))
            keys[np.arange(n_users), anchors] = np.inf  # anchor already in the subset
            chosen = np.argpartition(keys, extra - 1, axis=1)[:, :extra]
            inclusion[np.repeat(np.arange(n_users), extra), chosen.reshape(-1)] = True
        return inclusion

    def aggregate_subsets(self, inclusion: np.ndarray) -> np.ndarray:
        """Per-cell inclusion counts from a boolean subset-report matrix."""
        inclusion = np.asarray(inclusion, dtype=bool)
        if inclusion.ndim != 2 or inclusion.shape[1] != self.grid.n_cells:
            raise ValueError(
                f"inclusion matrix must have {self.grid.n_cells} columns, got {inclusion.shape}"
            )
        return inclusion.sum(axis=0).astype(float)

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        """Recover the input distribution from per-cell inclusion (or anchor) counts."""
        counts = np.asarray(noisy_counts, dtype=float)
        strength = (
            self.smoothing_strength
            if self.smoothing_strength is not None
            else adaptive_smoothing_strength(self.grid.n_cells, counts.sum())
        )
        smoother = (
            make_grid_smoother(self.grid.d, strength=strength)
            if self.postprocess == "ems" and self.grid.d > 1 and strength > 0
            else None
        )
        # The inclusion matrix is not row-stochastic (rows sum to k); normalising the
        # rows rescales the likelihood uniformly and leaves the EM fixed points intact.
        matrix = self.inclusion_probabilities / self.inclusion_probabilities.sum(
            axis=1, keepdims=True
        )
        result = expectation_maximization(
            matrix, counts, max_iterations=self.em_iterations, smoothing=smoother
        )
        return GridDistribution.from_flat(self.grid, result.estimate)

    def run(self, points: np.ndarray, seed=None):
        """End-to-end run using full subset reports (overrides the anchor-only default)."""
        from repro.core.estimator import MechanismReport

        rng = ensure_rng(seed)
        pts = np.asarray(points, dtype=float)
        cells = self.grid.point_to_cell(pts)
        inclusion = self.privatize_subsets(cells, seed=rng)
        counts = self.aggregate_subsets(inclusion)
        estimate = self.estimate(counts, n_users=pts.shape[0])
        return MechanismReport(estimate=estimate, noisy_counts=counts, n_users=pts.shape[0])
