"""Geo-Indistinguishability (Andrés et al., CCS 2013) — the substrate for SEM-Geo-I.

ε-Geo-I bounds the probability ratio of any two inputs ``v1, v2`` producing the same
output by ``exp(eps * dis(v1, v2))``: nearby locations are almost indistinguishable,
far-apart locations much less so.  Two implementations are provided:

* :class:`PlanarLaplaceMechanism` — the classical continuous mechanism that adds noise
  drawn from the planar (polar) Laplace distribution; and
* :class:`DiscreteGeoIMechanism` — the exponential-kernel analogue over grid cells,
  ``Pr(report j | true i)  proportional to  exp(-eps * dis(c_i, c_j) / 2)``,
  which satisfies ε-Geo-I by the triangle inequality and is the reporting kernel the
  SEM-Geo-I baseline builds on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.domain import GridDistribution, GridSpec
from repro.core.estimator import TransitionMatrixMechanism
from repro.core.postprocess import (
    adaptive_smoothing_strength,
    expectation_maximization,
    make_grid_smoother,
)
from repro.utils.histogram import pairwise_cell_distances
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon, check_points


class PlanarLaplaceMechanism:
    """Continuous Geo-I via planar Laplace noise.

    The noise magnitude follows a Gamma(2, 1/eps) radial distribution with a uniform
    angle, which is the exact polar decomposition of the planar Laplace density
    ``f(z) proportional to exp(-eps ||z||)``.
    """

    def __init__(self, epsilon: float) -> None:
        #: ε here is the Geo-I parameter (privacy loss per unit of distance).
        self.epsilon = check_epsilon(epsilon)

    def privatize(self, points: np.ndarray, seed=None) -> np.ndarray:
        """Add planar Laplace noise to each ``(x, y)`` point."""
        rng = ensure_rng(seed)
        pts = check_points(points)
        n = pts.shape[0]
        angles = rng.uniform(0.0, 2.0 * math.pi, n)
        radii = rng.gamma(shape=2.0, scale=1.0 / self.epsilon, size=n)
        noise = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        return pts + noise

    def privacy_loss(self, distance: float) -> float:
        """The Geo-I privacy loss of distinguishing two points at a given distance."""
        return self.epsilon * float(distance)


class DiscreteGeoIMechanism(TransitionMatrixMechanism):
    """Exponential-kernel Geo-I reporting over grid cells.

    ``Pr(report j | true i) = exp(-eps * d(c_i, c_j) / 2) / Z_i``; because the row
    normalisers ``Z_i`` differ by at most ``exp(eps * d(i, i') / 2)`` between rows, the
    mechanism satisfies ε-Geo-I (the standard exponential-mechanism argument with the
    distance as a 1-sensitive score).  Distances are measured between cell centres in
    *cell units* by default so that one ε value behaves comparably across grid
    resolutions, matching how the paper normalises SEM-Geo-I's domain.
    """

    name = "Geo-I"

    def __init__(
        self,
        grid: GridSpec,
        epsilon: float,
        *,
        distance_unit: str = "cells",
        postprocess: str = "ems",
        em_iterations: int = 200,
        smoothing_strength: float | None = None,
    ) -> None:
        super().__init__(grid, epsilon)
        if distance_unit not in ("cells", "domain"):
            raise ValueError(f"distance_unit must be 'cells' or 'domain', got {distance_unit!r}")
        if postprocess not in ("ems", "em"):
            raise ValueError(f"unknown postprocess mode {postprocess!r}")
        self.distance_unit = distance_unit
        self.postprocess = postprocess
        self.em_iterations = em_iterations
        self.smoothing_strength = smoothing_strength
        distances = pairwise_cell_distances(grid.d, grid.domain.bounds)
        if distance_unit == "cells":
            distances = distances / grid.cell_side
        self.cell_distances = distances
        kernel = np.exp(-check_epsilon(epsilon) * distances / 2.0)
        self._set_transition(kernel / kernel.sum(axis=1, keepdims=True))

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        counts = np.asarray(noisy_counts, dtype=float)
        strength = (
            self.smoothing_strength
            if self.smoothing_strength is not None
            else adaptive_smoothing_strength(self.grid.n_cells, counts.sum())
        )
        smoother = (
            make_grid_smoother(self.grid.d, strength=strength)
            if self.postprocess == "ems" and self.grid.d > 1 and strength > 0
            else None
        )
        result = expectation_maximization(
            self.transition, counts, max_iterations=self.em_iterations, smoothing=smoother
        )
        return GridDistribution.from_flat(self.grid, result.estimate)

    def geo_indistinguishability_audit(self) -> float:
        """Largest measured ``log ratio / distance`` over input pairs and outputs.

        For a correct ε-Geo-I mechanism this is at most ε (up to floating point); the
        privacy tests assert it.
        """
        matrix = self.transition
        worst = 0.0
        n = matrix.shape[0]
        for i in range(n):
            ratios = np.log(np.clip(matrix[i], 1e-300, None)) - np.log(
                np.clip(matrix, 1e-300, None)
            )
            max_log_ratio = ratios.max(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                normalised = np.where(
                    self.cell_distances[i] > 0, max_log_ratio / self.cell_distances[i], 0.0
                )
            worst = max(worst, float(normalised.max()))
        return worst
