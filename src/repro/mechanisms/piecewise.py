"""1-D numerical LDP mechanisms for mean estimation: SR and PM.

These are the related-work mechanisms of Table I ("catch numeric, 1-Dim") — Duchi et
al.'s Stochastic Rounding (SR) and Wang et al.'s Piecewise Mechanism (PM).  Both target
*mean* estimation on ``[-1, 1]`` rather than distribution estimation, which is why the
paper contrasts them with SW-EMS; they are included here so the library covers the full
baseline landscape and so the examples can show the difference between mean-only and
distribution-level estimation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon


def _check_unit_interval(values: np.ndarray) -> np.ndarray:
    v = np.asarray(values, dtype=float).reshape(-1)
    if np.any(v < -1.0 - 1e-9) or np.any(v > 1.0 + 1e-9):
        raise ValueError("inputs must lie in [-1, 1]")
    return np.clip(v, -1.0, 1.0)


class StochasticRounding:
    """Duchi et al.'s minimax mechanism: report ±1 with value-dependent probabilities.

    A value ``v`` in ``[-1, 1]`` is reported as ``+c`` with probability
    ``1/2 + v (e^eps - 1) / (2 (e^eps + 1))`` and ``-c`` otherwise, where
    ``c = (e^eps + 1) / (e^eps - 1)`` makes the report an unbiased estimate of ``v``.
    """

    name = "SR"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_epsilon(epsilon)
        e_eps = math.exp(self.epsilon)
        self.scale = (e_eps + 1.0) / (e_eps - 1.0)

    def privatize(self, values: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        v = _check_unit_interval(values)
        e_eps = math.exp(self.epsilon)
        prob_positive = 0.5 + v * (e_eps - 1.0) / (2.0 * (e_eps + 1.0))
        positive = rng.random(v.shape[0]) < prob_positive
        return np.where(positive, self.scale, -self.scale)

    def estimate_mean(self, reports: np.ndarray) -> float:
        """The sample mean of the reports is already unbiased for the true mean."""
        reports = np.asarray(reports, dtype=float)
        if reports.size == 0:
            raise ValueError("cannot estimate a mean from zero reports")
        return float(reports.mean())


class PiecewiseMechanism:
    """Wang et al.'s Piecewise Mechanism (PM) for mean estimation on ``[-1, 1]``.

    The output domain is ``[-s, s]`` with ``s = (e^{eps/2} + 1) / (e^{eps/2} - 1)``.
    A value ``v`` is reported uniformly from a high-probability subinterval
    ``[l(v), r(v)]`` of width ``s - 1`` with total probability ``e^{eps/2} (e^{eps/2}-1)
    / (e^{eps/2}+1) * ...`` (density ratio ``e^eps`` against the complement), producing
    an unbiased report with lower variance than SR for moderate budgets.
    """

    name = "PM"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_epsilon(epsilon)
        half = math.exp(self.epsilon / 2.0)
        self.s = (half + 1.0) / (half - 1.0)
        # Density inside the favoured band and outside it (ratio e^eps).
        self.high_density = half * (half - 1.0) / (2.0 * (half + 1.0))
        self.low_density = self.high_density / math.exp(self.epsilon)

    def _band(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        half = math.exp(self.epsilon / 2.0)
        left = (half * v - 1.0) / (half - 1.0)
        right = (half * v + 1.0) / (half - 1.0)
        return left, right

    def privatize(self, values: np.ndarray, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        v = _check_unit_interval(values)
        n = v.shape[0]
        left, right = self._band(v)
        band_mass = self.high_density * (right - left)
        in_band = rng.random(n) < band_mass
        high_reports = rng.uniform(left, right)
        # Complement: two flanking segments [-s, left) and (right, s].
        left_len = left - (-self.s)
        right_len = self.s - right
        u = rng.random(n) * (left_len + right_len)
        low_reports = np.where(u < left_len, -self.s + u, right + (u - left_len))
        return np.where(in_band, high_reports, low_reports)

    def estimate_mean(self, reports: np.ndarray) -> float:
        """The PM report is unbiased, so the sample mean estimates the true mean."""
        reports = np.asarray(reports, dtype=float)
        if reports.size == 0:
            raise ValueError("cannot estimate a mean from zero reports")
        return float(reports.mean())


def hybrid_mean_estimator(
    values: np.ndarray, epsilon: float, *, seed=None, threshold: float = 0.61
) -> float:
    """The PM/SR hybrid of Wang et al.: use PM with probability ``alpha``, SR otherwise.

    For ``eps > ~0.61`` the hybrid mixes the two mechanisms to minimise worst-case
    variance; below the threshold it reduces to SR.  Returns the estimated mean of
    ``values`` (which must lie in ``[-1, 1]``).
    """
    epsilon = check_epsilon(epsilon)
    rng = ensure_rng(seed)
    v = _check_unit_interval(values)
    if epsilon <= threshold:
        sr = StochasticRounding(epsilon)
        return sr.estimate_mean(sr.privatize(v, seed=rng))
    alpha = 1.0 - math.exp(-epsilon / 2.0)
    use_pm = rng.random(v.shape[0]) < alpha
    pm = PiecewiseMechanism(epsilon)
    sr = StochasticRounding(epsilon)
    reports = np.empty_like(v)
    if use_pm.any():
        reports[use_pm] = pm.privatize(v[use_pm], seed=rng)
    if (~use_pm).any():
        reports[~use_pm] = sr.privatize(v[~use_pm], seed=rng)
    return float(reports.mean())
