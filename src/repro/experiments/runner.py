"""Experiment runner: build mechanisms by name, run them on datasets, average errors.

The runner reproduces the measurement protocol of Section VII-C:

* every mechanism is run on every *part* of a dataset (the real datasets have the three
  Table III parts, the synthetic ones a single part) and the per-part ``W2`` values are
  averaged;
* every configuration is repeated ``n_repeats`` times with independent randomness and
  the mean is reported;
* SEM-Geo-I's ε′ is calibrated so its Local Privacy matches DAM's at the same nominal
  budget (Section VII-B), unless calibration is disabled;
* the exact LP Wasserstein solver is used for coarse grids and Sinkhorn for fine ones.

Execution scales out without changing a single number: every (dataset, mechanism,
parameter value) cell of a sweep derives its randomness from its own stable seed, so
:func:`sweep_parameter` can fan cells out to a process pool (``config.workers``) and
memoise them in a content-addressed on-disk cache (``config.cache_dir``) while staying
bit-identical to the serial, uncached run.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache, partial

import numpy as np

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec, SpatialDomain
from repro.core.huem import DiscreteHUEM
from repro.core.radius import grid_radius
from repro.datasets.loader import EvaluationDataset, load_dataset
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.config import ExperimentConfig
from repro.mechanisms.cfo import BucketCFOMechanism
from repro.mechanisms.geo_i import DiscreteGeoIMechanism
from repro.mechanisms.hdg import HDG
from repro.mechanisms.mdsw import MDSW
from repro.mechanisms.sem_geo_i import SEMGeoI
from repro.metrics.local_privacy import calibrate_epsilon, local_privacy_of_mechanism
from repro.metrics.wasserstein import wasserstein2_auto
from repro.queries.engine import QueryEngine
from repro.queries.range_query import RangeQueryWorkload
from repro.utils.rng import ensure_rng, spawn_seed_sequences

#: Mechanism names accepted by :func:`build_mechanism`.
MECHANISM_NAMES: tuple[str, ...] = (
    "DAM",
    "DAM-NS",
    "HUEM",
    "MDSW",
    "SEM-Geo-I",
    "Geo-I",
    "Bucket+CFO",
    "HDG",
)


@dataclass(frozen=True)
class MeasurementPoint:
    """One averaged measurement: a (dataset, mechanism, parameter) triple's error."""

    dataset: str
    mechanism: str
    parameter_name: str
    parameter_value: float
    w2_mean: float
    w2_std: float
    n_repeats: int
    details: dict = field(default_factory=dict, compare=False)


@dataclass
class SweepResult:
    """All measurement points of one parameter sweep (one paper figure panel row)."""

    name: str
    points: list[MeasurementPoint] = field(default_factory=list)

    def series(self, dataset: str, mechanism: str) -> list[tuple[float, float]]:
        """The (parameter, W2) series of one mechanism on one dataset, sorted."""
        selected = [
            (p.parameter_value, p.w2_mean)
            for p in self.points
            if p.dataset == dataset and p.mechanism == mechanism
        ]
        return sorted(selected)

    def datasets(self) -> list[str]:
        return sorted({p.dataset for p in self.points})

    def mechanisms(self) -> list[str]:
        seen: list[str] = []
        for p in self.points:
            if p.mechanism not in seen:
                seen.append(p.mechanism)
        return seen


def calibrated_sem_epsilon(grid: GridSpec, epsilon: float, b_hat: int | None = None) -> float:
    """ε′ for SEM-Geo-I whose Local Privacy matches DAM's at the given ε (Section VII-B)."""
    return _calibrated_sem_epsilon_cached(grid.d, grid.domain.bounds, float(epsilon), b_hat)


@lru_cache(maxsize=256)
def _calibrated_sem_epsilon_cached(
    d: int, bounds: tuple[float, float, float, float], epsilon: float, b_hat: int | None
) -> float:
    domain = SpatialDomain(*bounds)
    grid = GridSpec(domain, d)
    if d == 1:
        # A single cell carries no location signal; calibration is meaningless.
        return epsilon
    dam = DiscreteDAM(grid, epsilon, b_hat=b_hat) if b_hat else DiscreteDAM(grid, epsilon)
    target = local_privacy_of_mechanism(dam)
    result = calibrate_epsilon(lambda e: SEMGeoI(grid, e), target)
    return float(result.epsilon)


def build_mechanism(
    name: str,
    grid: GridSpec,
    epsilon: float,
    *,
    b_hat: int | None = None,
    calibrate_sem: bool = True,
    backend: str = "operator",
):
    """Instantiate a mechanism by its paper name on the given grid and budget.

    ``backend`` selects the transition backend of the disk mechanisms (DAM, DAM-NS,
    HUEM): the structured operator engine (default) or the dense matrix.
    """
    key = name.strip().lower()
    if key == "dam":
        if b_hat:
            return DiscreteDAM(grid, epsilon, b_hat=b_hat, backend=backend)
        return DiscreteDAM(grid, epsilon, backend=backend)
    if key in ("dam-ns", "damns"):
        if b_hat:
            return DiscreteDAM(grid, epsilon, b_hat=b_hat, use_shrinkage=False, backend=backend)
        return DiscreteDAM(grid, epsilon, use_shrinkage=False, backend=backend)
    if key == "huem":
        if b_hat:
            return DiscreteHUEM(grid, epsilon, b_hat=b_hat, backend=backend)
        return DiscreteHUEM(grid, epsilon, backend=backend)
    if key == "mdsw":
        return MDSW(grid, epsilon)
    if key in ("sem-geo-i", "sem_geo_i", "semgeoi"):
        sem_epsilon = (
            calibrated_sem_epsilon(grid, epsilon, b_hat) if calibrate_sem else epsilon
        )
        return SEMGeoI(grid, sem_epsilon)
    if key == "geo-i":
        return DiscreteGeoIMechanism(grid, epsilon)
    if key in ("bucket+cfo", "cfo", "bucket"):
        return BucketCFOMechanism(grid, epsilon)
    if key == "hdg":
        return HDG(grid, epsilon)
    raise ValueError(f"unknown mechanism {name!r}; expected one of {MECHANISM_NAMES}")


def evaluate_on_part(
    mechanism_name: str,
    points: np.ndarray,
    domain: SpatialDomain,
    d: int,
    epsilon: float,
    *,
    b_hat: int | None = None,
    seed=None,
    exact_cell_limit: int = 144,
    calibrate_sem: bool = True,
    max_users: int | None = None,
    normalise_domain: bool = True,
    backend: str = "operator",
) -> float:
    """Run one mechanism on one dataset part and return the ``W2`` error.

    Following the problem definition (Section IV: the input domain is the unit square),
    the part's coordinates are affinely mapped into ``[0, 1]^2`` before bucketisation by
    default, so W2 values are comparable across datasets of different physical extent —
    this matches the scale of the paper's figures.
    """
    rng = ensure_rng(seed)
    pts = np.asarray(points, dtype=float)
    pts = pts[domain.contains(pts)]
    if max_users is not None and pts.shape[0] > max_users:
        chosen = rng.choice(pts.shape[0], size=max_users, replace=False)
        pts = pts[chosen]
    if normalise_domain:
        pts = domain.normalise(pts)
        domain = SpatialDomain.unit(domain.name or "unit")
    grid = GridSpec(domain, d)
    true_distribution = grid.distribution(pts)
    mechanism = build_mechanism(
        mechanism_name,
        grid,
        epsilon,
        b_hat=b_hat,
        calibrate_sem=calibrate_sem,
        backend=backend,
    )
    report = mechanism.run(pts, seed=rng)
    return wasserstein2_auto(true_distribution, report.estimate, exact_cell_limit=exact_cell_limit)


#: Range-query workload used by the ``"range-mae"`` sweep metric: queries per part
#: and the side-length fractions (the short-to-mid range mix of the HIO/HDG papers).
RANGE_QUERY_WORKLOAD_SIZE: int = 64
RANGE_QUERY_FRACTIONS: tuple[float, float] = (0.05, 0.5)

#: Trajectory workload used by the ``"trajectory-w2"`` sweep metric: every part's
#: point cloud is turned into an Appendix-D random-walk trajectory set of this shape
#: before the trajectory mechanism runs (kept small so a sweep cell stays affordable).
TRAJECTORY_WORKLOAD_ROUTING_D: int = 60
TRAJECTORY_WORKLOAD_SIZE: int = 120
TRAJECTORY_WORKLOAD_MAX_LENGTH: int = 40

#: Streaming workload used by the ``"stream-mae"`` sweep metric: each part becomes a
#: drifting report stream (per-epoch resamples of the part translated by a moving
#: offset) served through the sliding-window service; the error is the mean per-cell
#: absolute error of the windowed estimate against the window's true distribution,
#: averaged over the epochs — error-vs-epoch under drift, collapsed to one number.
STREAM_WORKLOAD_EPOCHS: int = 10
STREAM_WORKLOAD_USERS_PER_EPOCH: int = 1200
STREAM_WORKLOAD_WINDOW_EPOCHS: int = 4
STREAM_WORKLOAD_DRIFT: float = 0.3


def evaluate_trajectories_on_part(
    mechanism_name: str,
    points: np.ndarray,
    domain: SpatialDomain,
    d: int,
    epsilon: float,
    *,
    seed=None,
    max_users: int | None = None,
    routing_d: int = TRAJECTORY_WORKLOAD_ROUTING_D,
    n_trajectories: int = TRAJECTORY_WORKLOAD_SIZE,
    max_length: int = TRAJECTORY_WORKLOAD_MAX_LENGTH,
) -> float:
    """Trajectory point-density ``W2`` of one mechanism on one dataset part.

    The part's points seed an Appendix-D popularity-weighted random-walk trajectory
    set, the trajectory mechanism (``"LDPTrace"``, ``"PivotTrace"`` or ``"DAM"``
    through the trajectory-to-point adapter) privatizes it, and the seven-step
    comparison returns the Wasserstein error — the trajectory counterpart of
    :func:`evaluate_on_part`'s point metric.
    """
    from repro.datasets.trajectories import generate_trajectories
    from repro.trajectory.adapter import compare_trajectory_mechanism

    rng = ensure_rng(seed)
    pts = np.asarray(points, dtype=float)
    pts = pts[domain.contains(pts)]
    if max_users is not None and pts.shape[0] > max_users:
        chosen = rng.choice(pts.shape[0], size=max_users, replace=False)
        pts = pts[chosen]
    dataset = generate_trajectories(
        pts,
        domain,
        routing_d=routing_d,
        n_trajectories=n_trajectories,
        max_length=max_length,
        seed=rng,
    )
    return compare_trajectory_mechanism(
        mechanism_name,
        dataset.trajectories,
        domain,
        d,
        epsilon,
        seed=rng,
    ).w2


def evaluate_stream_on_part(
    mechanism_name: str,
    points: np.ndarray,
    domain: SpatialDomain,
    d: int,
    epsilon: float,
    *,
    b_hat: int | None = None,
    seed=None,
    calibrate_sem: bool = True,
    max_users: int | None = None,
    normalise_domain: bool = True,
    backend: str = "operator",
    n_epochs: int = STREAM_WORKLOAD_EPOCHS,
    users_per_epoch: int = STREAM_WORKLOAD_USERS_PER_EPOCH,
    window_epochs: int = STREAM_WORKLOAD_WINDOW_EPOCHS,
    drift: float = STREAM_WORKLOAD_DRIFT,
) -> float:
    """Drift-tracking error of one mechanism on one dataset part.

    The part's points become a drifting stream: every epoch resamples
    ``users_per_epoch`` reports from the part and translates them by a moving
    diagonal offset (total excursion ``drift`` of the domain side, clipped to the
    domain), so the population migrates smoothly while keeping the part's shape.
    The stream runs through the sliding-window
    :class:`~repro.streaming.StreamingEstimationService` and the returned error is
    the epoch-averaged mean absolute per-cell error of the windowed estimate
    against the window's true (non-private) distribution.

    Only transition-matrix mechanisms (DAM / DAM-NS / HUEM / Geo-I / ...) can be
    streamed — the warm-started re-solve needs the mechanism's transition model.
    """
    from repro.streaming import StreamingEstimationService

    rng = ensure_rng(seed)
    pts = np.asarray(points, dtype=float)
    pts = pts[domain.contains(pts)]
    if max_users is not None and pts.shape[0] > max_users:
        chosen = rng.choice(pts.shape[0], size=max_users, replace=False)
        pts = pts[chosen]
    if normalise_domain:
        pts = domain.normalise(pts)
        domain = SpatialDomain.unit(domain.name or "unit")
    grid = GridSpec(domain, d)
    mechanism = build_mechanism(
        mechanism_name,
        grid,
        epsilon,
        b_hat=b_hat,
        calibrate_sem=calibrate_sem,
        backend=backend,
    )
    service = StreamingEstimationService(mechanism, window_epochs=window_epochs, seed=rng)
    step = np.array([domain.width, domain.height])
    errors = []
    for epoch in range(n_epochs):
        t = epoch / (n_epochs - 1) if n_epochs > 1 else 0.0
        offset = drift * (t - 0.5) * step
        chosen = rng.integers(0, pts.shape[0], users_per_epoch)
        update = service.ingest_epoch(domain.clip(pts[chosen] + offset))
        truth = service.window.true_distribution()
        errors.append(float(np.abs(update.estimate.flat() - truth.flat()).mean()))
    return float(np.mean(errors))


def evaluate_range_queries_on_part(
    mechanism_name: str,
    points: np.ndarray,
    domain: SpatialDomain,
    d: int,
    epsilon: float,
    *,
    b_hat: int | None = None,
    seed=None,
    calibrate_sem: bool = True,
    max_users: int | None = None,
    normalise_domain: bool = True,
    backend: str = "operator",
    n_queries: int = RANGE_QUERY_WORKLOAD_SIZE,
) -> float:
    """Range-query MAE of one mechanism on one dataset part.

    The mechanism's estimate is served through the summed-area-table
    :class:`~repro.queries.engine.QueryEngine` and scored against the raw points on a
    random rectangular workload — the range-query counterpart of
    :func:`evaluate_on_part`'s ``W2`` error.
    """
    rng = ensure_rng(seed)
    pts = np.asarray(points, dtype=float)
    pts = pts[domain.contains(pts)]
    if max_users is not None and pts.shape[0] > max_users:
        chosen = rng.choice(pts.shape[0], size=max_users, replace=False)
        pts = pts[chosen]
    if normalise_domain:
        pts = domain.normalise(pts)
        domain = SpatialDomain.unit(domain.name or "unit")
    grid = GridSpec(domain, d)
    mechanism = build_mechanism(
        mechanism_name,
        grid,
        epsilon,
        b_hat=b_hat,
        calibrate_sem=calibrate_sem,
        backend=backend,
    )
    report = mechanism.run(pts, seed=rng)
    low, high = RANGE_QUERY_FRACTIONS
    workload = RangeQueryWorkload.random(
        domain, n_queries, min_fraction=low, max_fraction=high, seed=rng
    )
    answers = QueryEngine(report.estimate).range_mass(workload.as_array())
    return workload.mean_absolute_error(answers, pts)


def _evaluate_repeat(
    repeat_seed,
    *,
    mechanism_name: str,
    dataset: EvaluationDataset,
    d: int,
    epsilon: float,
    b_hat: int | None,
    config: ExperimentConfig,
    metric: str = "w2",
) -> float:
    """One repetition: run the mechanism on every dataset part, average the errors.

    The parts deliberately share one generator (state carries across parts within a
    repetition, as in the original serial loop), so a repetition is the unit of
    parallelism — fanning out repetitions reproduces the serial numbers bit for bit.
    """
    rng = ensure_rng(repeat_seed)
    if metric == "w2":
        part_errors = [
            evaluate_on_part(
                mechanism_name,
                points,
                domain,
                d,
                epsilon,
                b_hat=b_hat,
                seed=rng,
                exact_cell_limit=config.exact_cell_limit,
                calibrate_sem=config.calibrate_sem,
                max_users=config.max_users_per_part,
                backend=config.backend,
            )
            for _, points, domain in dataset.parts
        ]
    elif metric == "range-mae":
        part_errors = [
            evaluate_range_queries_on_part(
                mechanism_name,
                points,
                domain,
                d,
                epsilon,
                b_hat=b_hat,
                seed=rng,
                calibrate_sem=config.calibrate_sem,
                max_users=config.max_users_per_part,
                backend=config.backend,
            )
            for _, points, domain in dataset.parts
        ]
    elif metric == "trajectory-w2":
        part_errors = [
            evaluate_trajectories_on_part(
                mechanism_name,
                points,
                domain,
                d,
                epsilon,
                seed=rng,
                max_users=config.max_users_per_part,
            )
            for _, points, domain in dataset.parts
        ]
    elif metric == "stream-mae":
        part_errors = [
            evaluate_stream_on_part(
                mechanism_name,
                points,
                domain,
                d,
                epsilon,
                b_hat=b_hat,
                seed=rng,
                calibrate_sem=config.calibrate_sem,
                max_users=config.max_users_per_part,
                backend=config.backend,
            )
            for _, points, domain in dataset.parts
        ]
    else:
        raise ValueError(
            f"unknown sweep metric {metric!r}; "
            "expected 'w2', 'range-mae', 'trajectory-w2' or 'stream-mae'"
        )
    return float(np.mean(part_errors))


# Worker-process global for the repetition pool: the (dataset-bearing) evaluation
# context is shipped once per worker through the pool initializer rather than being
# re-pickled into every repetition task.
_REPEAT_EVALUATE = None


def _repeat_worker_init(evaluate) -> None:
    global _REPEAT_EVALUATE
    _REPEAT_EVALUATE = evaluate


def _repeat_worker(repeat_seed) -> float:
    assert _REPEAT_EVALUATE is not None, "repetition pool initializer did not run"
    return _REPEAT_EVALUATE(repeat_seed)


def evaluate_on_dataset(
    mechanism_name: str,
    dataset: EvaluationDataset,
    d: int,
    epsilon: float,
    config: ExperimentConfig,
    *,
    b_hat: int | None = None,
    seed=None,
    workers: int = 1,
    metric: str = "w2",
) -> tuple[float, float]:
    """Mean and standard deviation of the error over repetitions and dataset parts.

    ``metric`` selects the error: ``"w2"`` (the paper's Wasserstein protocol) or
    ``"range-mae"`` (range-query mean absolute error through the serving engine).
    ``workers > 1`` fans the repetitions out to a process pool; each repetition owns
    an independent spawned child stream, so the returned statistics are identical to
    the serial run for every worker count.
    """
    repeat_seeds = spawn_seed_sequences(seed if seed is not None else config.seed, config.n_repeats)
    evaluate = partial(
        _evaluate_repeat,
        mechanism_name=mechanism_name,
        dataset=dataset,
        d=d,
        epsilon=epsilon,
        b_hat=b_hat,
        config=config,
        metric=metric,
    )
    if workers > 1 and len(repeat_seeds) > 1:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(repeat_seeds)),
            initializer=_repeat_worker_init,
            initargs=(evaluate,),
        ) as pool:
            repeat_means = list(pool.map(_repeat_worker, repeat_seeds))
    else:
        repeat_means = [evaluate(child) for child in repeat_seeds]
    return float(np.mean(repeat_means)), float(np.std(repeat_means))


@lru_cache(maxsize=16)
def _load_dataset_cached(
    name: str, scale: float, seed: int, full_domain: bool
) -> EvaluationDataset:
    """Per-process dataset cache so pool workers regenerate each dataset only once."""
    return load_dataset(name, scale=scale, seed=seed, full_domain=full_domain)


@dataclass(frozen=True)
class SweepCell:
    """One independently computable cell of a sweep, fully described by values.

    Carries everything a worker process needs to reproduce the measurement (the
    dataset travels by name, not by value — workers load and memoise it locally),
    and everything the result cache needs to address it.
    """

    dataset: str
    mechanism: str
    parameter_name: str
    parameter_value: float
    d: int
    epsilon: float
    b_hat: int | None
    seed: int
    full_domain: bool
    metric: str = "w2"


def _cell_seed(config: ExperimentConfig, dataset_name: str, mechanism_name: str) -> int:
    # Derive a per-(dataset, mechanism) seed with a *stable* hash so sweep results
    # are reproducible across processes (Python's built-in hash of strings is salted
    # per interpreter run).
    stable = zlib.crc32(f"{dataset_name}/{mechanism_name}".encode()) % 100_000
    return config.seed + stable


def _evaluate_sweep_cell(cell: SweepCell, *, config: ExperimentConfig) -> MeasurementPoint:
    """Compute one sweep cell — the unit of work shipped to pool workers."""
    dataset = _load_dataset_cached(
        cell.dataset, config.dataset_scale, config.seed, cell.full_domain
    )
    mean, std = evaluate_on_dataset(
        cell.mechanism,
        dataset,
        cell.d,
        cell.epsilon,
        config,
        b_hat=cell.b_hat,
        seed=cell.seed,
        metric=cell.metric,
    )
    return MeasurementPoint(
        dataset=cell.dataset,
        mechanism=cell.mechanism,
        parameter_name=cell.parameter_name,
        parameter_value=cell.parameter_value,
        w2_mean=mean,
        w2_std=std,
        n_repeats=config.n_repeats,
        details={
            "d": cell.d,
            "epsilon": cell.epsilon,
            "b_hat": cell.b_hat,
            "metric": cell.metric,
        },
    )


def _cell_cache_key(cell: SweepCell, config: ExperimentConfig) -> str:
    """Content address of one cell: every result-affecting parameter, nothing else.

    ``workers`` and ``cache_dir`` are deliberately excluded — they change how a
    number is computed, never which number comes out.  The native tier is the
    one exception to "backend is just a string": which kernel it builds (numba
    vs FFT, accumulation dtype) depends on the environment, so its signature is
    folded in — a cache written where numba compiled is not replayed where it
    did not.
    """
    if config.backend == "native":
        from repro.kernels import native_kernel_signature

        native_kernel = native_kernel_signature()
    else:
        native_kernel = None
    return cache_key(
        {
            "kind": "sweep-cell",
            "dataset": cell.dataset,
            "mechanism": cell.mechanism,
            "parameter_name": cell.parameter_name,
            "parameter_value": cell.parameter_value,
            "d": cell.d,
            "epsilon": cell.epsilon,
            "b_hat": cell.b_hat,
            "seed": cell.seed,
            "full_domain": cell.full_domain,
            "dataset_scale": config.dataset_scale,
            "n_repeats": config.n_repeats,
            "config_seed": config.seed,
            "exact_cell_limit": config.exact_cell_limit,
            "calibrate_sem": config.calibrate_sem,
            "max_users_per_part": config.max_users_per_part,
            "backend": config.backend,
            "native_kernel": native_kernel,
            "metric": cell.metric,
            "range_query_workload": (
                (RANGE_QUERY_WORKLOAD_SIZE, RANGE_QUERY_FRACTIONS)
                if cell.metric == "range-mae"
                else None
            ),
            "trajectory_workload": (
                (
                    TRAJECTORY_WORKLOAD_ROUTING_D,
                    TRAJECTORY_WORKLOAD_SIZE,
                    TRAJECTORY_WORKLOAD_MAX_LENGTH,
                )
                if cell.metric == "trajectory-w2"
                else None
            ),
            "stream_workload": (
                (
                    STREAM_WORKLOAD_EPOCHS,
                    STREAM_WORKLOAD_USERS_PER_EPOCH,
                    STREAM_WORKLOAD_WINDOW_EPOCHS,
                    STREAM_WORKLOAD_DRIFT,
                )
                if cell.metric == "stream-mae"
                else None
            ),
        }
    )


def _point_to_payload(point: MeasurementPoint) -> dict:
    return {
        "dataset": point.dataset,
        "mechanism": point.mechanism,
        "parameter_name": point.parameter_name,
        "parameter_value": point.parameter_value,
        "w2_mean": point.w2_mean,
        "w2_std": point.w2_std,
        "n_repeats": point.n_repeats,
        "details": point.details,
    }


def _point_from_payload(payload: dict) -> MeasurementPoint:
    return MeasurementPoint(
        dataset=payload["dataset"],
        mechanism=payload["mechanism"],
        parameter_name=payload["parameter_name"],
        parameter_value=float(payload["parameter_value"]),
        w2_mean=float(payload["w2_mean"]),
        w2_std=float(payload["w2_std"]),
        n_repeats=int(payload["n_repeats"]),
        details=dict(payload.get("details", {})),
    )


def plan_sweep(
    parameter_name: str,
    parameter_values: tuple,
    mechanisms: tuple[str, ...],
    config: ExperimentConfig,
    *,
    full_domain: bool = False,
    datasets: tuple[str, ...] | None = None,
    metric: str = "w2",
) -> list[SweepCell]:
    """Expand a sweep into its independent cells, in the canonical (serial) order."""
    if parameter_name not in ("d", "epsilon", "b_scale"):
        raise ValueError(f"unknown swept parameter {parameter_name!r}")
    dataset_names = datasets if datasets is not None else config.datasets
    cells: list[SweepCell] = []
    for dataset_name in dataset_names:
        if parameter_name == "b_scale":
            # Radius resolution needs the part geometry; every other sweep plans
            # without touching the data (workers load it themselves).
            dataset = _load_dataset_cached(
                dataset_name, config.dataset_scale, config.seed, full_domain
            )
            side = dataset.parts[0][2].side_length if dataset.parts else 1.0
        else:
            side = 1.0
        for value in parameter_values:
            d, epsilon, b_hat = _resolve_parameters(parameter_name, value, config, side)
            for mechanism_name in mechanisms:
                cells.append(
                    SweepCell(
                        dataset=dataset_name,
                        mechanism=mechanism_name,
                        parameter_name=parameter_name,
                        parameter_value=float(value),
                        d=d,
                        epsilon=epsilon,
                        b_hat=b_hat,
                        seed=_cell_seed(config, dataset_name, mechanism_name),
                        full_domain=full_domain,
                        metric=metric,
                    )
                )
    return cells


def sweep_parameter(
    sweep_name: str,
    parameter_name: str,
    parameter_values: tuple,
    mechanisms: tuple[str, ...],
    config: ExperimentConfig,
    *,
    full_domain: bool = False,
    datasets: tuple[str, ...] | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
    metric: str = "w2",
) -> SweepResult:
    """Run a full sweep: every (dataset, mechanism, parameter value) combination.

    ``parameter_name`` is ``"d"``, ``"epsilon"`` or ``"b_scale"``; the non-swept
    parameters take the config defaults.  ``metric`` selects the per-cell error
    (``"w2"``, ``"range-mae"``, ``"trajectory-w2"`` or ``"stream-mae"``).  This is
    the workhorse every figure bench calls.

    Cells are independent, so with ``workers > 1`` (default: ``config.workers``)
    they are fanned out to a process pool, and with a cache (default: a
    :class:`~repro.experiments.cache.ResultCache` over ``config.cache_dir``) each
    cell is memoised on disk by the hash of its parameters — interrupted or
    repeated sweeps only pay for the cells they have not seen.  Neither knob
    changes a single measured value.
    """
    cells = plan_sweep(
        parameter_name,
        parameter_values,
        mechanisms,
        config,
        full_domain=full_domain,
        datasets=datasets,
        metric=metric,
    )
    if workers is None:
        workers = config.workers
    if cache is None:
        cache = ResultCache(config.cache_dir)

    points: list[MeasurementPoint | None] = [None] * len(cells)
    pending: list[tuple[int, str]] = []
    for index, cell in enumerate(cells):
        key = _cell_cache_key(cell, config)
        payload = cache.get(key)
        if payload is not None:
            points[index] = _point_from_payload(payload)
        else:
            pending.append((index, key))

    if pending:
        evaluate = partial(_evaluate_sweep_cell, config=config)
        todo = [cells[index] for index, _ in pending]
        if workers > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=min(workers, len(todo))) as pool:
                results = pool.map(evaluate, todo)
                # Consume lazily and persist each cell as it lands, so an
                # interrupted sweep resumes from every completed cell.
                for (index, key), point in zip(pending, results):
                    points[index] = point
                    cache.put(key, _point_to_payload(point))
        else:
            for (index, key), cell in zip(pending, todo):
                point = evaluate(cell)
                points[index] = point
                cache.put(key, _point_to_payload(point))

    return SweepResult(name=sweep_name, points=list(points))


def sweep_range_query_error(
    sweep_name: str,
    parameter_name: str,
    parameter_values: tuple,
    mechanisms: tuple[str, ...],
    config: ExperimentConfig,
    *,
    datasets: tuple[str, ...] | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Sweep the range-query MAE instead of ``W2`` (the serving-accuracy panel).

    Each cell runs the mechanism, serves a random rectangular workload through the
    summed-area-table :class:`~repro.queries.engine.QueryEngine` and scores the
    answers against the raw points — the measurement behind the "DAM + range query"
    combination the paper proposes.  Pool fan-out and the content-addressed cache
    work exactly as in :func:`sweep_parameter`.
    """
    return sweep_parameter(
        sweep_name,
        parameter_name,
        parameter_values,
        mechanisms,
        config,
        datasets=datasets,
        workers=workers,
        cache=cache,
        metric="range-mae",
    )


def sweep_stream_error(
    sweep_name: str,
    parameter_name: str,
    parameter_values: tuple,
    mechanisms: tuple[str, ...],
    config: ExperimentConfig,
    *,
    datasets: tuple[str, ...] | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Sweep the drift-tracking error of the streaming service (error-vs-epoch).

    Each cell turns the dataset part into a drifting report stream and runs the
    sliding-window :class:`~repro.streaming.StreamingEstimationService`, scoring
    the epoch-averaged per-cell MAE of the windowed estimates against the windows'
    true distributions.  Pool fan-out and the content-addressed cache work exactly
    as in :func:`sweep_parameter`.  Mechanisms must carry a transition model
    (DAM / DAM-NS / HUEM / ...).
    """
    return sweep_parameter(
        sweep_name,
        parameter_name,
        parameter_values,
        mechanisms,
        config,
        datasets=datasets,
        workers=workers,
        cache=cache,
        metric="stream-mae",
    )


def sweep_trajectory_error(
    sweep_name: str,
    parameter_name: str,
    parameter_values: tuple,
    mechanisms: tuple[str, ...],
    config: ExperimentConfig,
    *,
    datasets: tuple[str, ...] | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Sweep the trajectory point-density ``W2`` (the Figure-14 panel at scale).

    Each cell turns the dataset part into an Appendix-D trajectory workload and runs
    a trajectory mechanism (``LDPTrace`` / ``PivotTrace`` / ``DAM`` through the
    adapter) instead of a point mechanism.  Pool fan-out and the content-addressed
    cache work exactly as in :func:`sweep_parameter`.
    """
    return sweep_parameter(
        sweep_name,
        parameter_name,
        parameter_values,
        mechanisms,
        config,
        datasets=datasets,
        workers=workers,
        cache=cache,
        metric="trajectory-w2",
    )


def _resolve_parameters(
    parameter_name: str, value, config: ExperimentConfig, side: float
) -> tuple[int, float, int | None]:
    """Map a swept value onto the concrete (d, epsilon, b_hat) triple."""
    if parameter_name == "d":
        return int(value), config.default_epsilon, None
    if parameter_name == "epsilon":
        return config.default_d, float(value), None
    # b_scale sweep: fix d and epsilon, scale the optimal radius (in units of the
    # dataset part's side length).
    optimal = grid_radius(config.default_epsilon, config.default_d, side)
    b_hat = max(int(np.floor(float(value) * optimal)), 1)
    return config.default_d, config.default_epsilon, b_hat
