"""Formatting of experiment results into the rows and series the paper reports.

The benchmark suite prints these tables so a run of ``pytest benchmarks/`` produces,
for every figure, the same "dataset x mechanism x parameter -> W2" series the paper
plots — which is what EXPERIMENTS.md archives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.figures import DatasetPartStatistics
from repro.experiments.runner import SweepResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Simple fixed-width text table (no external dependencies)."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * widths[i] for i in range(len(headers)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    return "\n".join([line, separator, *body])


def format_sweep(result: SweepResult, *, precision: int = 4) -> str:
    """Format a sweep as a wide table: one (dataset, parameter) row per mechanism column."""
    mechanisms = result.mechanisms()
    headers = [
        "dataset", result.points[0].parameter_name if result.points else "param", *mechanisms
    ]
    rows = []
    for dataset in result.datasets():
        values = sorted({p.parameter_value for p in result.points if p.dataset == dataset})
        for value in values:
            row: list[object] = [dataset, _format_value(value)]
            for mechanism in mechanisms:
                matches = [
                    p.w2_mean
                    for p in result.points
                    if p.dataset == dataset
                    and p.mechanism == mechanism
                    and p.parameter_value == value
                ]
                row.append(f"{matches[0]:.{precision}f}" if matches else "-")
            rows.append(row)
    return format_table(headers, rows)


def _format_value(value: float) -> str:
    return f"{int(value)}" if float(value).is_integer() else f"{value:g}"


def format_series(result: SweepResult, dataset: str, mechanism: str, *, precision: int = 4) -> str:
    """One mechanism's series on one dataset as ``x: y`` pairs (a single plotted curve)."""
    pairs = result.series(dataset, mechanism)
    return ", ".join(f"{_format_value(x)}: {y:.{precision}f}" for x, y in pairs)


def format_table3(rows: Sequence[DatasetPartStatistics]) -> str:
    """Render the Table III reproduction."""
    return format_table(
        ["dataset", "part", "lat range", "lon range", "paper points", "surrogate points"],
        [
            (
                row.dataset,
                row.part,
                f"[{row.lat_range[0]:.2f}, {row.lat_range[1]:.2f}]",
                f"[{row.lon_range[0]:.2f}, {row.lon_range[1]:.2f}]",
                row.paper_points,
                row.surrogate_points,
            )
            for row in rows
        ],
    )


def summarize_winner(result: SweepResult) -> dict[str, str]:
    """For each dataset, the mechanism with the lowest average W2 across the sweep.

    Benchmarks use this to assert the paper's headline orderings ("DAM is always better
    than MDSW") without depending on absolute values.
    """
    winners: dict[str, str] = {}
    for dataset in result.datasets():
        best_mechanism = None
        best_value = float("inf")
        for mechanism in result.mechanisms():
            series = result.series(dataset, mechanism)
            if not series:
                continue
            mean_error = sum(y for _, y in series) / len(series)
            if mean_error < best_value:
                best_value = mean_error
                best_mechanism = mechanism
        if best_mechanism is not None:
            winners[dataset] = best_mechanism
    return winners


def mean_error(result: SweepResult, dataset: str, mechanism: str) -> float:
    """Average W2 of one mechanism over a sweep on one dataset."""
    series = result.series(dataset, mechanism)
    if not series:
        raise ValueError(f"no measurements for {mechanism} on {dataset}")
    return sum(y for _, y in series) / len(series)
