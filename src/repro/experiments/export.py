"""Export of experiment results to CSV / JSON and markdown summaries.

The benchmark suite prints fixed-width tables; downstream users (and the CLI) usually
want machine-readable output instead.  These helpers serialise
:class:`~repro.experiments.runner.SweepResult` objects losslessly and render the
compact markdown summary used when regenerating EXPERIMENTS.md entries.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable

from repro.experiments.runner import MeasurementPoint, SweepResult

_CSV_FIELDS = (
    "dataset",
    "mechanism",
    "parameter_name",
    "parameter_value",
    "w2_mean",
    "w2_std",
    "n_repeats",
)


def sweep_to_records(result: SweepResult) -> list[dict]:
    """Flatten a sweep into plain dictionaries (one per measurement point)."""
    records = []
    for point in result.points:
        record = {field: getattr(point, field) for field in _CSV_FIELDS}
        record["sweep"] = result.name
        record.update({f"detail_{k}": v for k, v in sorted(point.details.items())})
        records.append(record)
    return records


def sweep_to_csv(result: SweepResult, path: str | Path | None = None) -> str:
    """Serialise a sweep to CSV; optionally write it to ``path``.  Returns the CSV text."""
    records = sweep_to_records(result)
    fieldnames: list[str] = ["sweep", *(_CSV_FIELDS)]
    extra = sorted({key for record in records for key in record} - set(fieldnames))
    fieldnames += extra
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def sweep_to_json(result: SweepResult, path: str | Path | None = None, *, indent: int = 2) -> str:
    """Serialise a sweep to JSON; optionally write it to ``path``.  Returns the JSON text."""
    payload = {"sweep": result.name, "points": sweep_to_records(result)}
    text = json.dumps(payload, indent=indent, sort_keys=True)
    if path is not None:
        Path(path).write_text(text)
    return text


def sweep_from_json(text: str) -> SweepResult:
    """Inverse of :func:`sweep_to_json` (used to reload archived runs)."""
    payload = json.loads(text)
    points = []
    for record in payload.get("points", []):
        details = {
            key[len("detail_"):]: value
            for key, value in record.items()
            if key.startswith("detail_")
        }
        points.append(
            MeasurementPoint(
                dataset=record["dataset"],
                mechanism=record["mechanism"],
                parameter_name=record["parameter_name"],
                parameter_value=float(record["parameter_value"]),
                w2_mean=float(record["w2_mean"]),
                w2_std=float(record["w2_std"]),
                n_repeats=int(record["n_repeats"]),
                details=details,
            )
        )
    return SweepResult(name=payload.get("sweep", "sweep"), points=points)


def sweep_to_markdown(result: SweepResult, *, precision: int = 4) -> str:
    """Render a sweep as a GitHub-flavoured markdown table (datasets x mechanisms)."""
    mechanisms = result.mechanisms()
    parameter = result.points[0].parameter_name if result.points else "param"
    header = f"| dataset | {parameter} | " + " | ".join(mechanisms) + " |"
    divider = "|" + "---|" * (len(mechanisms) + 2)
    lines = [header, divider]
    for dataset in result.datasets():
        values = sorted({p.parameter_value for p in result.points if p.dataset == dataset})
        for value in values:
            cells = []
            for mechanism in mechanisms:
                matches = [
                    p.w2_mean
                    for p in result.points
                    if p.dataset == dataset
                    and p.mechanism == mechanism
                    and p.parameter_value == value
                ]
                cells.append(f"{matches[0]:.{precision}f}" if matches else "-")
            label = f"{int(value)}" if float(value).is_integer() else f"{value:g}"
            lines.append(f"| {dataset} | {label} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def write_all(results: Iterable[SweepResult], directory: str | Path) -> list[Path]:
    """Write CSV + JSON for every sweep into a directory; returns the created paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    created = []
    for result in results:
        stem = result.name.replace("/", "-") or "sweep"
        csv_path = directory / f"{stem}.csv"
        json_path = directory / f"{stem}.json"
        sweep_to_csv(result, csv_path)
        sweep_to_json(result, json_path)
        created.extend([csv_path, json_path])
    return created
