"""One entry point per table and figure of the paper's evaluation section.

Each ``figure_*`` function runs the corresponding sweep with a given
:class:`~repro.experiments.config.ExperimentConfig` and returns a
:class:`~repro.experiments.runner.SweepResult` (or a plain structure for the tables).
The benchmark suite calls these with the laptop config and prints the resulting series;
EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.geodata import CHICAGO_PARTS, NYC_PARTS, RegionSpec
from repro.datasets.loader import load_dataset
from repro.experiments.config import (
    B_SCALE_VALUES,
    D_VALUES_LARGE,
    D_VALUES_SMALL,
    EPSILON_VALUES_LARGE,
    EPSILON_VALUES_SMALL,
    FINE_MECHANISMS,
    MAIN_MECHANISMS,
    TRAJECTORY_D_VALUES,
    TRAJECTORY_EPSILON_VALUES,
    ExperimentConfig,
    TrajectoryConfig,
    laptop_config,
    laptop_trajectory_config,
)
from repro.experiments.runner import MeasurementPoint, SweepResult, sweep_parameter
from repro.trajectory.adapter import compare_trajectory_mechanism
from repro.utils.rng import spawn_rngs


# ---------------------------------------------------------------------------
# Table III — dataset statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetPartStatistics:
    """One row of Table III: part name, bounding box, paper count and surrogate count."""

    dataset: str
    part: str
    lat_range: tuple[float, float]
    lon_range: tuple[float, float]
    paper_points: int
    surrogate_points: int


def table3_dataset_statistics(
    config: ExperimentConfig | None = None,
) -> list[DatasetPartStatistics]:
    """Regenerate Table III from the surrogate datasets."""
    config = config or laptop_config()
    rows: list[DatasetPartStatistics] = []
    for dataset_name, specs in (("Crime", CHICAGO_PARTS), ("NYC", NYC_PARTS)):
        dataset = load_dataset(dataset_name, scale=config.dataset_scale, seed=config.seed)
        by_name = {name: points for name, points, _ in dataset.parts}
        for spec in specs:
            rows.append(_part_row(dataset_name, spec, by_name[spec.name].shape[0]))
    return rows


def _part_row(dataset: str, spec: RegionSpec, surrogate_points: int) -> DatasetPartStatistics:
    return DatasetPartStatistics(
        dataset=dataset,
        part=spec.name,
        lat_range=(spec.lat_min, spec.lat_max),
        lon_range=(spec.lon_min, spec.lon_max),
        paper_points=spec.paper_point_count,
        surrogate_points=surrogate_points,
    )


# ---------------------------------------------------------------------------
# Figure 8 — W2 versus the norm distance b
# ---------------------------------------------------------------------------


def figure8_radius_sweep(config: ExperimentConfig | None = None) -> SweepResult:
    """Figure 8: DAM's W2 as the radius multiplier sweeps 0.33 b_check .. 1.67 b_check."""
    config = config or laptop_config()
    return sweep_parameter(
        "figure8-radius-sweep",
        "b_scale",
        B_SCALE_VALUES,
        ("DAM",),
        config,
    )


# ---------------------------------------------------------------------------
# Figure 9 — W2 versus d and epsilon
# ---------------------------------------------------------------------------


def figure9_small_d(config: ExperimentConfig | None = None) -> SweepResult:
    """Figure 9(a-e): all five mechanisms, d in 1..5, default epsilon."""
    config = config or laptop_config()
    return sweep_parameter("figure9-small-d", "d", D_VALUES_SMALL, MAIN_MECHANISMS, config)


def figure9_large_d(config: ExperimentConfig | None = None) -> SweepResult:
    """Figure 9(f-j): DAM vs SEM-Geo-I, d up to 20, epsilon = 5 (Sinkhorn regime)."""
    config = (config or laptop_config()).with_overrides(default_epsilon=5.0)
    return sweep_parameter("figure9-large-d", "d", D_VALUES_LARGE, FINE_MECHANISMS, config)


def figure9_small_epsilon(config: ExperimentConfig | None = None) -> SweepResult:
    """Figure 9(k-o): all five mechanisms, epsilon in 0.7..3.5, default d.

    The paper keeps d small enough for SEM-Geo-I to stay feasible at small budgets; we
    keep the configured default d and rely on the closed-form inclusion matrix, which
    has no blow-up, so the full grid is used throughout.
    """
    config = config or laptop_config()
    return sweep_parameter(
        "figure9-small-epsilon", "epsilon", EPSILON_VALUES_SMALL, MAIN_MECHANISMS, config
    )


def figure9_large_epsilon(config: ExperimentConfig | None = None) -> SweepResult:
    """Figure 9(p-t): DAM vs SEM-Geo-I, epsilon in 5..9, d = 15 (Sinkhorn regime)."""
    config = config or laptop_config()
    return sweep_parameter(
        "figure9-large-epsilon", "epsilon", EPSILON_VALUES_LARGE, FINE_MECHANISMS, config
    )


# ---------------------------------------------------------------------------
# Figure 13 — Crime with the full domain (Appendix C)
# ---------------------------------------------------------------------------


def figure13_full_domain(config: ExperimentConfig | None = None) -> dict[str, SweepResult]:
    """Figure 13(a-d): the d and epsilon sweeps repeated on the full Chicago domain."""
    config = config or laptop_config()
    crime_only = ("Crime",)
    return {
        "small_d": sweep_parameter(
            "figure13-small-d",
            "d",
            D_VALUES_SMALL,
            MAIN_MECHANISMS,
            config,
            full_domain=True,
            datasets=crime_only,
        ),
        "large_d": sweep_parameter(
            "figure13-large-d",
            "d",
            D_VALUES_LARGE,
            FINE_MECHANISMS,
            config.with_overrides(default_epsilon=5.0),
            full_domain=True,
            datasets=crime_only,
        ),
        "small_epsilon": sweep_parameter(
            "figure13-small-epsilon",
            "epsilon",
            EPSILON_VALUES_SMALL,
            MAIN_MECHANISMS,
            config,
            full_domain=True,
            datasets=crime_only,
        ),
        "large_epsilon": sweep_parameter(
            "figure13-large-epsilon",
            "epsilon",
            EPSILON_VALUES_LARGE,
            FINE_MECHANISMS,
            config,
            full_domain=True,
            datasets=crime_only,
        ),
    }


# ---------------------------------------------------------------------------
# Figure 14 — trajectory comparison (Appendix D)
# ---------------------------------------------------------------------------


@dataclass
class TrajectorySweepResult:
    """Figure 14 results: W2 per (mechanism, swept value)."""

    name: str
    points: list[MeasurementPoint] = field(default_factory=list)

    def series(self, mechanism: str) -> list[tuple[float, float]]:
        return sorted(
            (p.parameter_value, p.w2_mean) for p in self.points if p.mechanism == mechanism
        )


def _trajectory_dataset(config: TrajectoryConfig):
    from repro.datasets.loader import load_dataset as _load
    from repro.datasets.trajectories import generate_trajectories

    nyc = _load("NYC", scale=config.dataset_scale, seed=config.seed, full_domain=True)
    _, points, domain = nyc.parts[0]
    return (
        generate_trajectories(
            points,
            domain,
            routing_d=config.routing_d,
            n_trajectories=config.n_trajectories,
            min_length=config.min_length,
            max_length=config.max_length,
            seed=config.seed,
        ),
        domain,
    )


def figure14_trajectory(
    config: TrajectoryConfig | None = None,
    *,
    sweep: str = "both",
) -> dict[str, TrajectorySweepResult]:
    """Figure 14(a-b): trajectory W2 versus d and versus epsilon on NYC trajectories."""
    config = config or laptop_trajectory_config()
    if sweep not in ("d", "epsilon", "both"):
        raise ValueError(f"sweep must be 'd', 'epsilon' or 'both', got {sweep!r}")
    dataset, domain = _trajectory_dataset(config)
    trajectories = dataset.trajectories
    results: dict[str, TrajectorySweepResult] = {}

    def run(parameter_name: str, values, fixed_d: int, fixed_eps: float) -> TrajectorySweepResult:
        result = TrajectorySweepResult(name=f"figure14-{parameter_name}")
        for value in values:
            d = int(value) if parameter_name == "d" else fixed_d
            epsilon = float(value) if parameter_name == "epsilon" else fixed_eps
            for mechanism in config.mechanisms:
                repeat_rngs = spawn_rngs(config.seed, config.n_repeats)
                errors = [
                    compare_trajectory_mechanism(
                        mechanism,
                        trajectories,
                        domain,
                        max(d, 1),
                        epsilon,
                        seed=rng,
                    ).w2
                    for rng in repeat_rngs
                ]
                result.points.append(
                    MeasurementPoint(
                        dataset="NYC-trajectories",
                        mechanism=mechanism,
                        parameter_name=parameter_name,
                        parameter_value=float(value),
                        w2_mean=float(np.mean(errors)),
                        w2_std=float(np.std(errors)),
                        n_repeats=config.n_repeats,
                        details={"d": d, "epsilon": epsilon},
                    )
                )
        return result

    if sweep in ("d", "both"):
        results["d"] = run("d", TRAJECTORY_D_VALUES, config.default_d, config.default_epsilon)
    if sweep in ("epsilon", "both"):
        results["epsilon"] = run(
            "epsilon", TRAJECTORY_EPSILON_VALUES, config.default_d, config.default_epsilon
        )
    return results
