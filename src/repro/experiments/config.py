"""Experiment configuration — the parameter grids of Tables IV and V.

Two presets are provided:

* :func:`paper_config` — the paper's exact settings (full dataset sizes, 10 repetitions,
  the complete parameter grids).  Running everything at this scale takes hours on a
  laptop, exactly as the original Java experiments did on a Xeon server.
* :func:`laptop_config` — the default used by the benchmark suite: the same grids but
  with down-scaled datasets and fewer repetitions, chosen so every figure regenerates
  in minutes while preserving the qualitative trends (who wins, where the crossovers
  are).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Table IV — the norm-distance multipliers applied to the optimal grid radius.
B_SCALE_VALUES: tuple[float, ...] = (0.33, 0.67, 1.0, 1.33, 1.67)
#: Table IV — the discrete side lengths (small sweep and extended sweep).
D_VALUES_SMALL: tuple[int, ...] = (1, 2, 3, 4, 5)
D_VALUES_LARGE: tuple[int, ...] = (1, 5, 10, 15, 20)
D_VALUES_ALL: tuple[int, ...] = (1, 2, 3, 4, 5, 10, 15, 20)
#: Table IV — the privacy budgets (small sweep and extended sweep).
EPSILON_VALUES_SMALL: tuple[float, ...] = (0.7, 1.4, 2.1, 2.8, 3.5)
EPSILON_VALUES_LARGE: tuple[float, ...] = (5.0, 6.0, 7.0, 8.0, 9.0)
EPSILON_VALUES_ALL: tuple[float, ...] = (0.7, 1.4, 2.1, 2.8, 3.5, 5.0, 6.0, 7.0, 8.0, 9.0)
#: Table IV defaults (bold/underlined in the paper).
DEFAULT_D: int = 15
DEFAULT_EPSILON: float = 3.5
DEFAULT_EPSILON_LARGE: float = 5.0

#: Table V — trajectory experiment grids and defaults.
TRAJECTORY_D_VALUES: tuple[int, ...] = (1, 5, 10, 15, 20)
TRAJECTORY_EPSILON_VALUES: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5)
TRAJECTORY_DEFAULT_D: int = 15
TRAJECTORY_DEFAULT_EPSILON: float = 1.5

#: Mechanisms compared in the main figures, in the paper's legend order.
MAIN_MECHANISMS: tuple[str, ...] = ("SEM-Geo-I", "MDSW", "HUEM", "DAM-NS", "DAM")
#: Mechanisms compared in the fine-granularity / large-budget figures.
FINE_MECHANISMS: tuple[str, ...] = ("SEM-Geo-I", "DAM")
#: Mechanisms compared in the trajectory figure.
TRAJECTORY_MECHANISMS: tuple[str, ...] = ("LDPTrace", "PivotTrace", "DAM")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment sweep needs to know besides the swept parameter.

    Attributes
    ----------
    dataset_scale:
        Multiplier on the paper's dataset sizes (1.0 = full size).
    n_repeats:
        Number of repetitions averaged per point (the paper uses 10).
    seed:
        Master seed; repetitions use independent child streams.
    default_d, default_epsilon:
        Values held fixed while the other parameter is swept.
    exact_cell_limit:
        Largest grid (in cells) for which the exact LP Wasserstein solver is used;
        larger grids switch to Sinkhorn, mirroring the paper.
    calibrate_sem:
        Whether SEM-Geo-I's ε′ is calibrated to DAM's Local Privacy (Section VII-B)
        rather than reusing the raw ε.
    max_users_per_part:
        Hard cap on the number of reports per dataset part (keeps EM costs bounded on
        laptop runs); ``None`` disables the cap.
    backend:
        Transition backend for the disk mechanisms: ``"operator"`` (default) uses the
        structured :class:`~repro.core.operator.DiskTransitionOperator` engine,
        ``"dense"`` the materialised matrix (ablations / cross-checks), ``"native"``
        the :mod:`repro.kernels` tier (fused stencil-convolution EM; the kernel that
        actually ran — numba or FFT — is environment-dependent, so it is folded into
        the result-cache key).
    workers:
        Process-pool size used by :func:`~repro.experiments.runner.sweep_parameter`
        to fan sweep cells out; ``1`` (default) runs serially.  Execution-only: the
        measured numbers are identical for every worker count.
    cache_dir:
        Directory of the content-addressed result cache
        (:class:`~repro.experiments.cache.ResultCache`); ``None`` disables caching.
        Execution-only, like ``workers``.
    """

    dataset_scale: float = 1.0
    n_repeats: int = 10
    seed: int = 2025
    default_d: int = DEFAULT_D
    default_epsilon: float = DEFAULT_EPSILON
    exact_cell_limit: int = 144
    calibrate_sem: bool = True
    max_users_per_part: int | None = None
    backend: str = "operator"
    workers: int = 1
    cache_dir: str | None = None
    datasets: tuple[str, ...] = ("Crime", "NYC", "Normal", "SZipf", "MNormal")
    mechanisms: tuple[str, ...] = MAIN_MECHANISMS

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def paper_config() -> ExperimentConfig:
    """The paper's full-scale settings (Table IV, 10 repetitions, full datasets)."""
    return ExperimentConfig()


def laptop_config() -> ExperimentConfig:
    """Down-scaled settings used by the benchmark suite.

    Datasets are subsampled to 2% of the paper's sizes and capped at 20,000 reports per
    part, with 2 repetitions.  These sizes keep each figure's regeneration in the
    minutes range while preserving the orderings the paper reports.
    """
    return ExperimentConfig(
        dataset_scale=0.02,
        n_repeats=2,
        max_users_per_part=20_000,
    )


def smoke_config() -> ExperimentConfig:
    """Tiny settings for unit/integration tests (seconds, not minutes)."""
    return ExperimentConfig(
        dataset_scale=0.005,
        n_repeats=1,
        default_d=5,
        default_epsilon=3.5,
        max_users_per_part=2_000,
    )


@dataclass(frozen=True)
class TrajectoryConfig:
    """Configuration of the Appendix-D trajectory experiment (Table V)."""

    n_trajectories: int = 1000
    min_length: int = 2
    max_length: int = 200
    routing_d: int = 300
    default_d: int = TRAJECTORY_DEFAULT_D
    default_epsilon: float = TRAJECTORY_DEFAULT_EPSILON
    n_repeats: int = 3
    seed: int = 2025
    dataset_scale: float = 1.0
    mechanisms: tuple[str, ...] = TRAJECTORY_MECHANISMS

    def with_overrides(self, **kwargs) -> "TrajectoryConfig":
        return replace(self, **kwargs)


def paper_trajectory_config() -> TrajectoryConfig:
    """Table V settings: 1000 trajectories of length 2-200 on a 300x300 routing grid."""
    return TrajectoryConfig()


def laptop_trajectory_config() -> TrajectoryConfig:
    """Scaled-down trajectory settings for the benchmark suite."""
    return TrajectoryConfig(
        n_trajectories=200,
        max_length=60,
        routing_d=80,
        n_repeats=1,
        dataset_scale=0.05,
    )
