"""Content-addressed on-disk cache for experiment measurements.

A full sweep is a grid of independent (dataset, mechanism, parameter, seed) cells,
each of which is expensive (repetitions x parts x EM solves) and perfectly
deterministic given its parameters.  :class:`ResultCache` keys every cell by the
SHA-256 digest of a canonical JSON rendering of *all* result-affecting parameters, so

* re-running a sweep after an interruption only computes the missing cells;
* changing any parameter (scale, repeats, seed, backend, ...) changes the key and
  misses cleanly — there is no staleness to invalidate by hand;
* the cache can be shared between serial and parallel runs, between the CLI and the
  benchmark suite, and across processes (writes are atomic renames).

Execution-only knobs (worker count, cache directory itself) must never enter the key:
cells are bit-reproducible across worker counts, and the cache relies on that.

Environment-dependent *numerics* are the flip side of that rule: a backend whose
kernel selection depends on the host (the native tier compiles numba where it
imports and falls back to FFT elsewhere) must fold the selected kernel's signature
(:func:`repro.kernels.native_kernel_signature`) into the key, so results computed
under one kernel are never replayed as another's.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

#: Bump when the semantics of cached payloads change incompatibly.
CACHE_VERSION = 1


def cache_key(payload: dict) -> str:
    """SHA-256 digest of a canonical JSON rendering of ``payload``.

    The payload must be JSON-serialisable (plain dicts/lists/str/int/float/None).
    Key order is canonicalised; floats render via ``repr`` shortest-roundtrip, so
    equal floats always digest equally.
    """
    canonical = json.dumps(
        {"cache_version": CACHE_VERSION, **payload},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed store of JSON payloads under one directory.

    Parameters
    ----------
    directory:
        Where to keep the cache.  ``None`` disables the cache entirely: every
        :meth:`get` misses and :meth:`put` is a no-op, so callers never branch.
    """

    def __init__(self, directory: str | os.PathLike | None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        # Two-level fan-out keeps directory listings manageable for big sweeps.
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the cached payload for ``key``, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (the next :meth:`put`
        overwrites them), so a truncated write can never poison a sweep.
        """
        if self.directory is None:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (atomic rename; concurrent-writer safe)."""
        if self.directory is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.stem, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as tmp:
                json.dump(payload, tmp)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.directory) if self.directory else "disabled"
        return f"ResultCache({where}, hits={self.hits}, misses={self.misses})"
