"""Native kernels for the batched Markov walk of the trajectory engine.

:meth:`~repro.trajectory.engine.TrajectoryEngine.synthesize` already draws
every length, start cell and per-step direction in whole-array operations; what
remains hot at planet scale is the walk itself — one clipped vector update per
time step over arrays laid out *trajectory-major*, so every step touches a
strided column — plus the int64 direction lookups that burn 8x the bandwidth
their ``{-1, 0, 1}`` values need.

The native path keeps the exact RNG consumption order (the differential suite
asserts the synthesized trajectories are **bit-identical** to the numpy path)
and changes only the arithmetic:

* :func:`inverse_cdf_draws` — the shared inverse-CDF step-draw, emitting the
  narrow dtype the walk wants instead of int64;
* :func:`batched_walk` — the walk in **time-major** layout (each step update is
  one contiguous pass) over int32 positions and int8 steps, with an optional
  numba inner loop when the JIT imports.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.em import numba_available

_nb_walk = None


def _numba_walk():
    """Compile (once) the fused time-major walk loop; ``None`` without numba."""
    global _nb_walk
    if _nb_walk is not None:
        return _nb_walk
    if not numba_available():
        return None
    try:
        import numba

        @numba.njit(cache=False)
        def nb_walk(rows, cols, drow, dcol, d):  # pragma: no cover - requires numba
            steps, n = drow.shape
            top = d - 1
            for t in range(steps):
                for i in range(n):
                    r = rows[t, i] + drow[t, i]
                    c = cols[t, i] + dcol[t, i]
                    rows[t + 1, i] = 0 if r < 0 else (top if r > top else r)
                    cols[t + 1, i] = 0 if c < 0 else (top if c > top else c)

        _nb_walk = nb_walk
    except Exception:  # pragma: no cover - depends on numba version
        return None
    return _nb_walk


def inverse_cdf_draws(
    rng: np.random.Generator,
    probabilities: np.ndarray,
    shape,
    *,
    dtype=np.int64,
) -> np.ndarray:
    """Inverse-CDF categorical draws, clipped into range.

    Consumes exactly ``rng.random(shape)`` — the same draw the numpy synthesis
    path makes — so swapping this in changes dtypes, never values.
    """
    cumulative = np.cumsum(probabilities)
    draws = np.searchsorted(cumulative, rng.random(shape), side="right")
    indices = draws.astype(dtype, copy=False)
    np.clip(indices, 0, probabilities.shape[0] - 1, out=indices)
    return indices


def batched_walk(
    start_cells: np.ndarray,
    step_rows: np.ndarray,
    step_cols: np.ndarray,
    d: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the clipped batched Markov walk in time-major layout.

    Parameters
    ----------
    start_cells:
        Flat start cell of each of the ``n`` trajectories.
    step_rows, step_cols:
        ``(n, max_steps)`` per-step row/column increments in ``{-1, 0, 1}``
        (any integer dtype; they are squeezed to int8 internally).
    d:
        Grid side length; positions are clipped into ``[0, d - 1]``.

    Returns
    -------
    ``(rows, cols)`` — **time-major** ``(max_steps + 1, n)`` int32 position
    arrays (``rows[t]`` is one contiguous step); transpose for the
    trajectory-major view.  Values are identical to the int64 numpy walk.
    """
    n = int(start_cells.shape[0])
    max_steps = int(step_rows.shape[1])
    rows = np.empty((max_steps + 1, n), dtype=np.int32)
    cols = np.empty((max_steps + 1, n), dtype=np.int32)
    np.floor_divide(start_cells, d, out=rows[0], casting="unsafe")
    np.remainder(start_cells, d, out=cols[0], casting="unsafe")
    if max_steps == 0:
        return rows, cols
    drow = np.ascontiguousarray(step_rows.T, dtype=np.int8)
    dcol = np.ascontiguousarray(step_cols.T, dtype=np.int8)
    jit = _numba_walk()
    if jit is not None:
        jit(rows, cols, drow, dcol, d)
        return rows, cols
    for t in range(max_steps):
        np.add(rows[t], drow[t], out=rows[t + 1], casting="unsafe")
        np.clip(rows[t + 1], 0, d - 1, out=rows[t + 1])
        np.add(cols[t], dcol[t], out=cols[t + 1], casting="unsafe")
        np.clip(cols[t + 1], 0, d - 1, out=cols[t + 1])
    return rows, cols
