"""``NativeDiskOperator`` — the ``backend="native"`` face of the kernel tier.

A drop-in :class:`~repro.core.operator.DiskTransitionOperator` subclass: same
construction, same protocol (``shape``/``forward``/``backward``/``sample``/
``ldp_ratio``/``to_dense``), but the three hot paths run through the
:mod:`repro.kernels` implementations:

* the EM matvecs through an :class:`~repro.kernels.em.EMKernel` (stencil
  convolution via numba or FFT, preallocated buffers, fused ``em_step``);
* the background order-statistics mapping of :meth:`sample` through the
  whole-batch bisection of :func:`repro.kernels.sampler.background_rank_map`.

Sampling is **bit-identical** to the base operator (exact integer order
statistics, same single uniform draw per user); the matvecs agree to the
kernel's parity floor (~1e-15 relative in float64).  ``forward``/``backward``
return fresh arrays like the base class — the allocation-free buffer reuse is
reserved for the fused EM loop, where it matters.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import GridSpec
from repro.core.operator import DiskTransitionOperator, build_disk_operator
from repro.kernels.em import EMKernel, KernelBuild
from repro.kernels.sampler import background_rank_map


class NativeDiskOperator(DiskTransitionOperator):
    """A disk operator whose hot paths run on the native kernel tier.

    Accepts the base constructor arguments plus the kernel build options
    (``accumulate`` / ``jit``, see :class:`~repro.kernels.em.EMKernel`).  The
    EM kernel is built lazily on first matvec — and dropped on pickling, so
    mechanisms ship to worker processes without dragging compiled JIT
    dispatchers along (the worker rebuilds on first use).
    """

    def __init__(
        self,
        grid: GridSpec,
        b_hat: int,
        offsets: np.ndarray,
        values: np.ndarray,
        background: float,
        output_cells: np.ndarray,
        normaliser: float,
        *,
        accumulate: str = "float64",
        jit: str = "auto",
    ) -> None:
        super().__init__(
            grid, b_hat, offsets, values, background, output_cells, normaliser
        )
        self.accumulate = accumulate
        self.jit = jit
        self._em_kernel: EMKernel | None = None

    @property
    def em_kernel(self) -> EMKernel:
        """The lazily built EM kernel (shared scratch for every solve)."""
        if self._em_kernel is None:
            self._em_kernel = EMKernel(self, accumulate=self.accumulate, jit=self.jit)
        return self._em_kernel

    @property
    def kernel_build(self) -> KernelBuild:
        """Build-time kernel selection metadata (kind, accumulation, fallback)."""
        return self.em_kernel.build

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_em_kernel"] = None
        return state

    # --------------------------------------------------------------- matvecs
    def forward(self, theta: np.ndarray) -> np.ndarray:
        """``theta @ T`` through the native kernel; returns a fresh array."""
        return np.array(self.em_kernel.forward(theta), dtype=float)

    def backward(self, weights: np.ndarray) -> np.ndarray:
        """``T @ w`` through the native kernel; returns a fresh array."""
        return np.array(self.em_kernel.backward(weights), dtype=float)

    # -------------------------------------------------------------- sampling
    def _background_reports(self, cells: np.ndarray, rank: np.ndarray) -> np.ndarray:
        return background_rank_map(self._rank_shift, cells, rank)


def build_native_operator(
    grid: GridSpec,
    b_hat: int,
    offset_masses: np.ndarray,
    *,
    low_mass: float = 1.0,
    accumulate: str = "float64",
    jit: str = "auto",
) -> NativeDiskOperator:
    """:func:`~repro.core.operator.build_disk_operator`, native-tier edition."""
    return build_disk_operator(
        grid,
        b_hat,
        offset_masses,
        low_mass=low_mass,
        operator_cls=NativeDiskOperator,
        accumulate=accumulate,
        jit=jit,
    )
