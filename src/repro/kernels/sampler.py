"""The disk sampler's background order-statistics mapping, fully vectorised.

A background draw of :meth:`~repro.core.operator.DiskTransitionOperator.sample`
maps a uniform rank ``r`` in ``[0, m - k)`` onto the ``r``-th output cell *not*
in the user's disk via ``r + searchsorted(rank_shift[:, cell], r, 'right')``.
The reference implementation loops over the distinct true cells of the batch
(one ``searchsorted`` per cell) — cheap when users cluster on few cells,
quadratic-feeling when a planet-scale batch touches most of the ``d^2`` grid.

:func:`background_rank_map` answers every draw at once: all searches share the
column length ``k``, so one vectorised upper-bound binary search (``ceil(log2
(k+1))`` rounds of a single gather + compare over the whole batch) replaces the
per-cell loop.  Integer comparisons make it **bit-identical** to the grouped
``searchsorted`` path — the differential suite asserts exact report equality.
"""

from __future__ import annotations

import numpy as np


def background_rank_map(
    rank_shift: np.ndarray, cells: np.ndarray, rank: np.ndarray
) -> np.ndarray:
    """Map background ranks onto disk-complement output indices, batch-at-once.

    Parameters
    ----------
    rank_shift:
        The operator's ``(k, d^2)`` order-statistics cache: column ``c`` holds
        ``sorted_disk[:, c] - arange(k)``, non-decreasing down the column.
    cells:
        True input cell of each background draw (length ``n``).
    rank:
        Background rank of each draw (length ``n``, in ``[0, m - k)``).

    Returns
    -------
    The flat output index ``rank + shift`` of each draw, where ``shift`` is the
    count of disk cells at or below the rank — exactly
    ``searchsorted(rank_shift[:, cell], rank, side="right")`` per draw.
    """
    n = rank.shape[0]
    result = np.empty(n, dtype=np.int64)
    if n == 0:
        return result
    k = int(rank_shift.shape[0])
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, k, dtype=np.int64)
    # Classic upper-bound bisection, one whole-batch round per bit of k.  While
    # a draw is active (lo < hi) its midpoint is < k, so clipping only protects
    # the gather of already-converged lanes.
    for _ in range(k.bit_length()):
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        go_right = active & (rank_shift[np.minimum(mid, k - 1), cells] <= rank)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    np.add(rank, lo, out=result)
    return result
