"""``repro.kernels`` — the raw-speed native tier for the three hot paths.

ROADMAP item 2: the EM operator matvecs, the batched Markov walk and epoch
privatization are whole-array numpy; this package is the ``backend="native"``
tier behind the existing backend flags that buys the next order of magnitude
without touching any caller's semantics:

* :mod:`repro.kernels.em` — stencil-convolution EM matvecs (numba JIT when it
  imports, pure-numpy FFT otherwise; selection recorded in
  :class:`KernelBuild`) with a fused, buffer-reusing ``em_step``;
* :mod:`repro.kernels.sampler` — the background order-statistics mapping as one
  whole-batch bisection (bit-identical to the grouped ``searchsorted``);
* :mod:`repro.kernels.walk` — time-major, narrow-dtype batched Markov walk
  (bit-identical trajectories, same RNG consumption);
* :mod:`repro.kernels.operator` — :class:`NativeDiskOperator`, the drop-in
  operator subclass the mechanisms install under ``backend="native"``.

Validated by the differential parity suite in ``tests/kernels/`` (native vs
operator vs dense) and gated by ``benchmarks/test_native_kernel_throughput.py``
against ``benchmarks/baselines/smoke.json``.
"""

from repro.kernels.em import (
    EMKernel,
    KernelBuild,
    native_kernel_signature,
    numba_available,
)
from repro.kernels.operator import NativeDiskOperator, build_native_operator
from repro.kernels.sampler import background_rank_map
from repro.kernels.walk import batched_walk, inverse_cdf_draws

__all__ = [
    "EMKernel",
    "KernelBuild",
    "NativeDiskOperator",
    "background_rank_map",
    "batched_walk",
    "build_native_operator",
    "inverse_cdf_draws",
    "native_kernel_signature",
    "numba_available",
]
