"""The EM matvec kernel: fused, buffer-reusing forward/backward/EM-step.

The structured :class:`~repro.core.operator.DiskTransitionOperator` already cut
the EM matvecs from ``O(d^2 * m)`` dense matmuls to ``O(d^2 * k)`` scatter and
gather — but its ``forward`` still materialises a ``(k, d^2)`` outer-product
temporary (22 MB per call at d=64) and each EM iteration allocates five more
``m``- and ``d^2``-sized temporaries.  :class:`EMKernel` is the
``backend="native"`` replacement, exploiting one more layer of structure: the
offsets form a contiguous stencil, so

* ``forward`` (``theta @ T``) is exactly a **2-D full convolution** of the
  ``d x d`` estimate with the ``(2b+1) x (2b+1)`` delta stencil, evaluated over
  the ``(d+2b) x (d+2b)`` bounding square of the rounded-square output domain
  and gathered onto the ``m`` output cells by a precomputed flat index, plus the
  rank-one ``background * theta.sum()`` term;
* ``backward`` (``T @ w``) is the matching **correlation** (convolution with the
  flipped stencil), read off at the valid region that overlays the input grid.

Two interchangeable implementations are selected at build time and recorded in
:class:`KernelBuild` (surfaced all the way up to
:attr:`repro.core.postprocess.EMResult.kernel`):

* ``"numba"`` — a cache-blocked, genuinely allocation-free JIT scatter/gather
  pair.  Chosen only when :mod:`numba` imports *and* passes a build-time parity
  self-check against the pure-numpy path; any failure falls back silently with
  the reason recorded.
* ``"fft"`` — the pure-numpy fallback: both stencil applications run through
  precomputed real-FFT stencil spectra at a padded fast size.  numpy's pocketfft
  allocates its own transform workspaces internally, but every operator-sized
  array (the padded planes, the gather/scatter index maps, the ``m``- and
  ``d^2``-sized outputs, the EM double buffer) is preallocated once per kernel.

``accumulate="float32"`` narrows the scatter/gather accumulation buffers to
float32 — a genuine halving of memory traffic under the numba path; under the
FFT fallback the transforms themselves still run in double (numpy's FFT always
does) and only the gathered results are squeezed, so the mode is a
precision/parity experiment there rather than a speedup.  See the "Kernel tier"
section of ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_ACCUMULATE_MODES = ("float64", "float32")
_JIT_MODES = ("auto", "numba", "numpy")

#: Relative tolerance of the numba build-time self-check against the FFT path.
_SELF_CHECK_RTOL = 1e-9


@dataclass(frozen=True)
class KernelBuild:
    """What the build-time kernel selection decided, and why.

    ``kind`` is the implementation that actually runs (``"numba"`` or
    ``"fft"``); ``jit`` the caller's request; ``fallback_reason`` is ``None``
    when the request was honoured and a short human-readable reason otherwise
    (e.g. numba not importable, or the JIT failed its parity self-check).
    """

    kind: str
    accumulate: str
    jit: str
    fallback_reason: str | None = None

    def describe(self) -> str:
        """The compact ``kind/accumulate`` label recorded in result metadata."""
        return f"{self.kind}/{self.accumulate}"


def numba_available() -> bool:
    """Whether the optional numba JIT dependency imports in this environment."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def native_kernel_signature(
    *, accumulate: str = "float64", jit: str = "auto"
) -> str:
    """The ``kind/accumulate`` label :class:`EMKernel` would select right now.

    Used by the experiment runner's cache keys: two containers that resolve the
    ``backend="native"`` tier to different implementations (numba present vs
    absent) produce results differing at the kernel's parity floor, so their
    cache entries must not alias.
    """
    if accumulate not in _ACCUMULATE_MODES:
        raise ValueError(f"accumulate must be one of {_ACCUMULATE_MODES}, got {accumulate!r}")
    if jit not in _JIT_MODES:
        raise ValueError(f"jit must be one of {_JIT_MODES}, got {jit!r}")
    kind = "numba" if jit in ("auto", "numba") and numba_available() else "fft"
    return f"{kind}/{accumulate}"


def _next_fast_len(n: int) -> int:
    """Smallest 5-smooth (2^a * 3^b * 5^c) integer >= n — a fast FFT length."""
    if n <= 1:
        return 1
    best = 1 << (n - 1).bit_length()  # power of two fallback is always valid
    p5 = 1
    while p5 < best:
        p35 = p5
        while p35 < best:
            # Round p35 up to the next power-of-two multiple >= n.
            quotient = -(-n // p35)
            candidate = p35 << max(0, (quotient - 1).bit_length())
            if candidate >= n:
                best = min(best, candidate)
            p35 *= 3
        p5 *= 5
    return best


def _build_numba_pair(out_indices, deltas, background, n_outputs):
    """Compile the blocked scatter/gather pair; raises if numba is unusable."""
    import numba

    n_offsets, n_inputs = out_indices.shape

    @numba.njit(cache=False)
    def nb_forward(theta, out):  # pragma: no cover - requires numba
        total = 0.0
        for i in range(n_inputs):
            total += theta[i]
        for j in range(n_outputs):
            out[j] = background * total
        for i in range(n_inputs):
            ti = theta[i]
            if ti == 0.0:
                continue
            for j in range(n_offsets):
                out[out_indices[j, i]] += deltas[j] * ti

    @numba.njit(cache=False)
    def nb_backward(weights, out):  # pragma: no cover - requires numba
        total = 0.0
        for j in range(n_outputs):
            total += weights[j]
        base = background * total
        for i in range(n_inputs):
            acc = base
            for j in range(n_offsets):
                acc += deltas[j] * weights[out_indices[j, i]]
            out[i] = acc

    return nb_forward, nb_backward


class EMKernel:
    """Preallocated forward/backward/EM-step kernels for one disk operator.

    Build one per operator (``NativeDiskOperator`` does this lazily) and reuse
    it across EM solves: all operator-sized scratch lives on the kernel, so a
    long-lived streaming session re-solves every epoch without re-allocating.

    Parameters
    ----------
    operator:
        A built :class:`~repro.core.operator.DiskTransitionOperator` (or
        anything carrying its ``grid`` / ``offsets`` / ``values`` /
        ``background`` / ``output_cells`` structure).
    accumulate:
        ``"float64"`` (default) or ``"float32"`` accumulation buffers — see the
        module docstring for what float32 does and does not buy per backend.
    jit:
        ``"auto"`` (numba when importable and self-check clean, FFT otherwise),
        ``"numba"`` (prefer the JIT, still falling back cleanly when absent) or
        ``"numpy"`` (force the FFT path).
    """

    def __init__(self, operator, *, accumulate: str = "float64", jit: str = "auto") -> None:
        if accumulate not in _ACCUMULATE_MODES:
            raise ValueError(
                f"accumulate must be one of {_ACCUMULATE_MODES}, got {accumulate!r}"
            )
        if jit not in _JIT_MODES:
            raise ValueError(f"jit must be one of {_JIT_MODES}, got {jit!r}")
        self.accumulate = accumulate
        self.n_inputs, self.n_outputs = operator.shape
        self._d = int(operator.grid.d)
        self._dtype = np.float64 if accumulate == "float64" else np.float32
        self.background = float(operator.background)

        offsets = np.asarray(operator.offsets, dtype=np.int64)
        deltas = np.asarray(operator.values, dtype=float) - self.background
        cols = np.asarray(operator.output_cells[:, 0], dtype=np.int64)
        rows = np.asarray(operator.output_cells[:, 1], dtype=np.int64)
        col_lo, row_lo = int(cols.min()), int(rows.min())
        dx_lo, dy_lo = int(offsets[:, 0].min()), int(offsets[:, 1].min())
        if (col_lo, row_lo) != (dx_lo, dy_lo):
            raise ValueError(
                "output domain is not the union of offset shifts of the input grid "
                f"(corner {(col_lo, row_lo)} vs stencil corner {(dx_lo, dy_lo)})"
            )
        kh = int(offsets[:, 1].max()) - dy_lo + 1
        kw = int(offsets[:, 0].max()) - dx_lo + 1
        stencil = np.zeros((kh, kw))
        stencil[offsets[:, 1] - dy_lo, offsets[:, 0] - dx_lo] = deltas

        d = self._d
        fh = _next_fast_len(d + kh - 1)
        fw = _next_fast_len(d + kw - 1)
        self._plan_shape = (fh, fw)
        # Stencil spectra: forward = convolution, backward = correlation (the
        # flipped stencil).  The backward valid region starts at (kh-1, kw-1);
        # circular wrap-around from the padded transform only ever lands in
        # rows/columns < kh-1 (resp. kw-1), strictly outside both read regions,
        # because fh >= d + kh - 1.
        self._stencil_fwd = np.fft.rfft2(stencil, s=self._plan_shape)
        self._stencil_bwd = np.fft.rfft2(stencil[::-1, ::-1], s=self._plan_shape)
        # Flat gather/scatter maps into the padded planes.
        self._out_plane_idx = (rows - row_lo) * fw + (cols - col_lo)
        input_rows, input_cols = np.divmod(np.arange(self.n_inputs), d)
        self._in_plane_idx = (input_rows + kh - 1) * fw + (input_cols + kw - 1)

        # Preallocated operator-sized scratch, reused across every call.
        self._theta_plane = np.zeros(self._plan_shape)
        self._weight_plane = np.zeros(self._plan_shape)
        self._gather_m = np.empty(self.n_outputs)
        self._gather_n = np.empty(self.n_inputs)
        self._out_m = np.empty(self.n_outputs, dtype=self._dtype)
        self._ratio_m = np.empty(self.n_outputs, dtype=self._dtype)
        self._back_n = np.empty(self.n_inputs, dtype=self._dtype)
        self._theta_pair = (
            np.empty(self.n_inputs, dtype=self._dtype),
            np.empty(self.n_inputs, dtype=self._dtype),
        )
        self._flips = 0

        self._nb_forward = self._nb_backward = None
        self._nb_sources = None
        kind, reason = "fft", None
        if jit in ("auto", "numba"):
            kind, reason = self._try_build_numba(operator)
        self.build = KernelBuild(
            kind=kind, accumulate=accumulate, jit=jit, fallback_reason=reason
        )

    # ----------------------------------------------------------- construction
    def _try_build_numba(self, operator) -> tuple[str, str | None]:
        """Build + self-check the JIT pair; fall back to FFT with a reason."""
        if not numba_available():
            return "fft", "numba not importable; using the pure-numpy FFT kernel"
        out_indices = np.asarray(operator._out_indices)
        deltas = np.asarray(operator.values, dtype=self._dtype) - self._dtype(
            self.background
        )
        try:
            nb_forward, nb_backward = _build_numba_pair(
                out_indices, deltas, self._dtype(self.background), self.n_outputs
            )
            # Deterministic, non-degenerate probe (no RNG: the self-check must
            # be reproducible and seedless by construction).
            probe = np.abs(np.sin(np.arange(1.0, self.n_inputs + 1.0)))
            probe /= probe.sum()
            reference = self._fft_forward(probe.astype(self._dtype), self._out_m)
            candidate = np.empty(self.n_outputs, dtype=self._dtype)
            nb_forward(probe.astype(self._dtype), candidate)
            scale = float(np.abs(reference).max()) or 1.0
            if float(np.abs(candidate - reference).max()) > _SELF_CHECK_RTOL * scale:
                return "fft", "numba kernel failed its build-time parity self-check"
        except Exception as exc:  # pragma: no cover - depends on numba version
            return "fft", f"numba kernel build failed ({type(exc).__name__}: {exc})"
        self._nb_forward, self._nb_backward = nb_forward, nb_backward
        self._nb_sources = (out_indices, deltas)
        return "numba", None

    def __getstate__(self) -> dict:
        # Compiled numba dispatchers are not picklable; drop them (and their
        # sources) and let the unpickled copy rebuild lazily through the same
        # selection recorded in `build` — run_sharded ships mechanisms to
        # worker processes, so this must round-trip.
        state = self.__dict__.copy()
        state["_nb_forward"] = state["_nb_backward"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.build.kind == "numba" and self._nb_sources is not None:
            try:
                out_indices, deltas = self._nb_sources
                self._nb_forward, self._nb_backward = _build_numba_pair(
                    out_indices, deltas, self._dtype(self.background), self.n_outputs
                )
            except Exception:  # pragma: no cover - numba absent on the worker
                self.build = KernelBuild(
                    kind="fft",
                    accumulate=self.accumulate,
                    jit=self.build.jit,
                    fallback_reason="numba unavailable after unpickling; FFT fallback",
                )

    # ---------------------------------------------------------------- matvecs
    def _fft_forward(self, theta: np.ndarray, out: np.ndarray) -> np.ndarray:
        d = self._d
        plane = self._theta_plane
        plane[:d, :d] = theta.reshape(d, d)
        square = np.fft.irfft2(np.fft.rfft2(plane) * self._stencil_fwd, s=self._plan_shape)
        np.take(square.reshape(-1), self._out_plane_idx, out=self._gather_m)
        out[:] = self._gather_m
        out += self._dtype(self.background * float(theta.sum()))
        return out

    def _fft_backward(self, weights: np.ndarray, out: np.ndarray) -> np.ndarray:
        plane = self._weight_plane
        plane.reshape(-1)[self._out_plane_idx] = weights
        square = np.fft.irfft2(np.fft.rfft2(plane) * self._stencil_bwd, s=self._plan_shape)
        np.take(square.reshape(-1), self._in_plane_idx, out=self._gather_n)
        out[:] = self._gather_n
        out += self._dtype(self.background * float(weights.sum()))
        return out

    def forward(self, theta: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``theta @ T`` into a preallocated buffer (valid until the next call)."""
        theta = np.asarray(theta, dtype=self._dtype).reshape(-1)
        if theta.shape[0] != self.n_inputs:
            raise ValueError(
                f"theta must have length {self.n_inputs}, got {theta.shape[0]}"
            )
        out = self._out_m if out is None else out
        if self._nb_forward is not None:
            self._nb_forward(theta, out)
            return out
        return self._fft_forward(theta, out)

    def backward(self, weights: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``T @ w`` into a preallocated buffer (valid until the next call)."""
        weights = np.asarray(weights, dtype=self._dtype).reshape(-1)
        if weights.shape[0] != self.n_outputs:
            raise ValueError(
                f"weights must have length {self.n_outputs}, got {weights.shape[0]}"
            )
        out = self._back_n if out is None else out
        if self._nb_backward is not None:
            self._nb_backward(weights, out)
            return out
        return self._fft_backward(weights, out)

    # ---------------------------------------------------------------- EM step
    def em_step(self, theta: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """One fused EM iteration: E-step, M-step, clip and normalise.

        Returns the new estimate in one of the kernel's two internal double
        buffers (never the one ``theta`` may occupy), so callers alternate
        ``theta = kernel.em_step(theta, counts)`` without copies; anything that
        must outlive the next two steps needs ``.copy()``.
        """
        predicted = self.forward(theta)
        np.clip(predicted, 1e-300, None, out=predicted)
        ratio = self._ratio_m
        with np.errstate(over="ignore"):
            np.divide(counts, predicted, out=ratio, casting="same_kind")
        if not np.isfinite(ratio).all():
            # Mirror of the overflow rescue in
            # :func:`repro.core.postprocess.expectation_maximization`: rescaling
            # the numerator cancels in the final normalisation.
            np.divide(counts, counts.max(), out=ratio, casting="same_kind")
            ratio /= predicted
        back = self.backward(ratio)
        self._flips ^= 1
        new_theta = self._theta_pair[self._flips]
        np.multiply(theta, back, out=new_theta, casting="same_kind")
        np.clip(new_theta, 0.0, None, out=new_theta)
        new_theta /= new_theta.sum()
        return new_theta
