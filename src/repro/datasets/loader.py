"""Dataset registry — one place that knows every dataset the evaluation uses.

The experiment runner and the benchmarks request datasets by the paper's names
("Crime", "NYC", "Normal", "SZipf", "MNormal").  For the two real datasets the loader
returns the per-part point clouds of Table III (the paper averages the Wasserstein
error over parts A/B/C) and also exposes the full-domain variant used by Appendix C.

All loaders accept a ``scale`` that multiplies the point counts so experiments can run
at laptop sizes without changing the density shapes, and a ``seed`` so every run is
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.domain import SpatialDomain
from repro.datasets.geodata import (
    GeoDataset,
    chicago_crime_surrogate,
    nyc_taxi_surrogate,
)
from repro.datasets.synthetic import (
    SyntheticDataset,
    mnormal_dataset,
    normal_dataset,
    szipf_dataset,
)

#: Names of the five evaluation datasets, in the order the paper's figures use.
DATASET_NAMES: tuple[str, ...] = ("Crime", "NYC", "Normal", "SZipf", "MNormal")

#: Paper point counts of the synthetic datasets (used to honour ``scale``).
_SYNTHETIC_SIZES = {"Normal": 300_000, "SZipf": 100_000, "MNormal": 300_000}


@dataclass
class EvaluationDataset:
    """A dataset prepared for the evaluation: one or more (points, domain) parts.

    For the real datasets each Table III part is one entry; for synthetic datasets
    there is a single part covering the whole domain.  The experiment runner computes
    the Wasserstein error per part and averages, exactly as described in Section VII-C.
    """

    name: str
    parts: list[tuple[str, np.ndarray, SpatialDomain]] = field(default_factory=list)

    @property
    def total_points(self) -> int:
        return int(sum(points.shape[0] for _, points, _ in self.parts))

    def part_names(self) -> list[str]:
        return [name for name, _, _ in self.parts]


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    full_domain: bool = False,
) -> EvaluationDataset:
    """Load one of the paper's five evaluation datasets by name.

    Parameters
    ----------
    name:
        ``"Crime"``, ``"NYC"``, ``"Normal"``, ``"SZipf"`` or ``"MNormal"``
        (case-insensitive).
    scale:
        Multiplier on the paper's point counts, in ``(0, 1]``.
    seed:
        Seed for the dataset generator.
    full_domain:
        For the two real datasets, return one part covering the full extraction domain
        (Appendix C) instead of the three Table III parts.
    """
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    key = name.strip().lower()
    if key == "crime":
        return _geo_parts(chicago_crime_surrogate(scale=scale, seed=seed), full_domain)
    if key == "nyc":
        return _geo_parts(nyc_taxi_surrogate(scale=scale, seed=seed), full_domain)
    if key == "normal":
        data = normal_dataset(n=max(int(_SYNTHETIC_SIZES["Normal"] * scale), 100), seed=seed)
        return _single_part(data)
    if key == "szipf":
        data = szipf_dataset(n=max(int(_SYNTHETIC_SIZES["SZipf"] * scale), 100), seed=seed)
        return _single_part(data)
    if key == "mnormal":
        data = mnormal_dataset(n=max(int(_SYNTHETIC_SIZES["MNormal"] * scale), 100), seed=seed)
        return _single_part(data)
    raise ValueError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")


def load_all_datasets(
    *, scale: float = 1.0, seed: int = 0, full_domain: bool = False
) -> dict[str, EvaluationDataset]:
    """Load all five evaluation datasets keyed by their paper names."""
    return {
        name: load_dataset(name, scale=scale, seed=seed, full_domain=full_domain)
        for name in DATASET_NAMES
    }


def _single_part(data: SyntheticDataset) -> EvaluationDataset:
    return EvaluationDataset(name=data.name, parts=[(data.name, data.points, data.domain)])


def _geo_parts(data: GeoDataset, full_domain: bool) -> EvaluationDataset:
    if full_domain:
        return EvaluationDataset(
            name=f"{data.name}-full", parts=[(data.name, data.points, data.domain)]
        )
    parts = [
        (part.spec.name, part.points, part.domain) for part in data.parts.values()
    ]
    return EvaluationDataset(name=data.name, parts=parts)
