"""Datasets used by the paper's evaluation: synthetic generators, real-data surrogates,
the dataset registry and the Appendix-D trajectory generator."""

from repro.datasets.geodata import (
    CHICAGO_FULL_DOMAIN,
    CHICAGO_PARTS,
    NYC_FULL_DOMAIN,
    NYC_PARTS,
    GeoDataset,
    GeoDatasetPart,
    RegionSpec,
    chicago_crime_surrogate,
    nyc_taxi_surrogate,
)
from repro.datasets.loader import (
    DATASET_NAMES,
    EvaluationDataset,
    load_all_datasets,
    load_dataset,
)
from repro.datasets.synthetic import (
    SyntheticDataset,
    mnormal_dataset,
    normal_dataset,
    szipf_dataset,
    uniform_dataset,
)
from repro.datasets.trajectories import TrajectoryDataset, generate_trajectories

__all__ = [
    "CHICAGO_FULL_DOMAIN",
    "CHICAGO_PARTS",
    "NYC_FULL_DOMAIN",
    "NYC_PARTS",
    "GeoDataset",
    "GeoDatasetPart",
    "RegionSpec",
    "chicago_crime_surrogate",
    "nyc_taxi_surrogate",
    "DATASET_NAMES",
    "EvaluationDataset",
    "load_all_datasets",
    "load_dataset",
    "SyntheticDataset",
    "mnormal_dataset",
    "normal_dataset",
    "szipf_dataset",
    "uniform_dataset",
    "TrajectoryDataset",
    "generate_trajectories",
]
