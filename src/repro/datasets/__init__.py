"""Datasets used by the paper's evaluation: synthetic generators, real-data surrogates,
the dataset registry, the Appendix-D trajectory generator and the drifting epoch
streams consumed by :mod:`repro.streaming`."""

from repro.datasets.geodata import (
    CHICAGO_FULL_DOMAIN,
    CHICAGO_PARTS,
    NYC_FULL_DOMAIN,
    NYC_PARTS,
    GeoDataset,
    GeoDatasetPart,
    RegionSpec,
    chicago_crime_surrogate,
    nyc_taxi_surrogate,
)
from repro.datasets.loader import (
    DATASET_NAMES,
    EvaluationDataset,
    load_all_datasets,
    load_dataset,
)
from repro.datasets.synthetic import (
    DRIFT_SCENARIOS,
    DriftingStream,
    SyntheticDataset,
    appearing_cluster_stream,
    diurnal_mixture_stream,
    mnormal_dataset,
    normal_dataset,
    shifting_hotspot_stream,
    szipf_dataset,
    uniform_dataset,
)
from repro.datasets.trajectories import TrajectoryDataset, generate_trajectories

__all__ = [
    "CHICAGO_FULL_DOMAIN",
    "CHICAGO_PARTS",
    "NYC_FULL_DOMAIN",
    "NYC_PARTS",
    "GeoDataset",
    "GeoDatasetPart",
    "RegionSpec",
    "chicago_crime_surrogate",
    "nyc_taxi_surrogate",
    "DATASET_NAMES",
    "EvaluationDataset",
    "load_all_datasets",
    "load_dataset",
    "DRIFT_SCENARIOS",
    "DriftingStream",
    "SyntheticDataset",
    "appearing_cluster_stream",
    "diurnal_mixture_stream",
    "mnormal_dataset",
    "normal_dataset",
    "shifting_hotspot_stream",
    "szipf_dataset",
    "uniform_dataset",
    "TrajectoryDataset",
    "generate_trajectories",
]
