"""Trajectory generation following the paper's Appendix D procedure.

The trajectory experiment (Figure 14) generates trajectories from the NYC pickup
points as follows: divide the domain into a fine ``300 x 300`` grid, map every point to
its cell, sample 1,000 start cells and 1,000 lengths in ``[2, 200]``, and grow each
trajectory by repeatedly moving to a neighbouring cell with probability proportional to
the number of points in that neighbour; the concrete point reported for each visited
cell is a uniformly random point from that cell.

The generator below reproduces that procedure with configurable sizes so that the
benchmark can run at laptop scale (a coarser routing grid and fewer/shorter
trajectories) while the default parameters match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.domain import GridSpec, SpatialDomain
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_grid_side, check_points


@dataclass
class TrajectoryDataset:
    """A set of sampled trajectories plus the routing grid they were generated on."""

    trajectories: list[np.ndarray]
    routing_grid: GridSpec
    parameters: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.trajectories)

    def all_points(self) -> np.ndarray:
        """Concatenate every trajectory's points into one ``(n, 2)`` array."""
        if not self.trajectories:
            return np.empty((0, 2))
        return np.vstack(self.trajectories)

    def lengths(self) -> np.ndarray:
        return np.array([t.shape[0] for t in self.trajectories], dtype=np.int64)


def _neighbour_offsets() -> np.ndarray:
    """The 8-connected neighbourhood used by the random-walk growth step."""
    return np.array(
        [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)],
        dtype=np.int64,
    )


def generate_trajectories(
    points: np.ndarray,
    domain: SpatialDomain,
    *,
    routing_d: int = 300,
    n_trajectories: int = 1000,
    min_length: int = 2,
    max_length: int = 200,
    seed=None,
) -> TrajectoryDataset:
    """Sample trajectories from a point cloud following Appendix D.

    Parameters
    ----------
    points:
        The underlying point cloud (e.g. NYC pickups) that defines cell popularity.
    domain:
        Analysis domain; points outside are ignored.
    routing_d:
        Side of the routing grid (the paper uses 300).
    n_trajectories, min_length, max_length:
        Number of trajectories and the inclusive length range (paper: 1000, 2, 200).
    seed:
        Randomness source.
    """
    rng = ensure_rng(seed)
    routing_d = check_grid_side(routing_d)
    if not 1 <= min_length <= max_length:
        raise ValueError(f"invalid length range [{min_length}, {max_length}]")
    if n_trajectories < 0:
        raise ValueError(f"n_trajectories must be non-negative, got {n_trajectories}")
    pts = check_points(points)
    pts = pts[domain.contains(pts)]
    if pts.shape[0] == 0:
        raise ValueError("no points fall inside the domain; cannot generate trajectories")
    grid = GridSpec(domain, routing_d)
    counts = grid.histogram(pts).astype(float)

    # Points grouped by cell so "pick a random point within the chosen cell" is O(1).
    cell_of_point = grid.point_to_cell(pts)
    order = np.argsort(cell_of_point)
    sorted_cells = cell_of_point[order]
    sorted_points = pts[order]
    unique_cells, start_indices = np.unique(sorted_cells, return_index=True)
    cell_slices = {
        int(cell): (int(start), int(end))
        for cell, start, end in zip(
            unique_cells, start_indices, np.append(start_indices[1:], sorted_cells.size)
        )
    }

    occupied_flat = unique_cells
    occupied_weights = counts.reshape(-1)[occupied_flat]
    occupied_weights = occupied_weights / occupied_weights.sum()
    offsets = _neighbour_offsets()

    def random_point_in_cell(flat_cell: int) -> np.ndarray:
        if flat_cell in cell_slices:
            start, end = cell_slices[flat_cell]
            return sorted_points[rng.integers(start, end)]
        # Empty cell: fall back to its centre (can happen when the walk wanders into a
        # cell with weight contributed only by neighbours).
        row, col = flat_cell // routing_d, flat_cell % routing_d
        x = domain.x_min + (col + 0.5) * domain.width / routing_d
        y = domain.y_min + (row + 0.5) * domain.height / routing_d
        return np.array([x, y])

    trajectories: list[np.ndarray] = []
    start_cells = rng.choice(occupied_flat, size=n_trajectories, p=occupied_weights)
    lengths = rng.integers(min_length, max_length + 1, size=n_trajectories)
    for start_cell, length in zip(start_cells, lengths):
        cells = [int(start_cell)]
        row, col = int(start_cell) // routing_d, int(start_cell) % routing_d
        for _ in range(int(length) - 1):
            neighbour_rows = row + offsets[:, 0]
            neighbour_cols = col + offsets[:, 1]
            valid = (
                (neighbour_rows >= 0)
                & (neighbour_rows < routing_d)
                & (neighbour_cols >= 0)
                & (neighbour_cols < routing_d)
            )
            neighbour_rows = neighbour_rows[valid]
            neighbour_cols = neighbour_cols[valid]
            weights = counts[neighbour_rows, neighbour_cols] + 1e-9
            weights = weights / weights.sum()
            pick = rng.choice(weights.size, p=weights)
            row, col = int(neighbour_rows[pick]), int(neighbour_cols[pick])
            cells.append(row * routing_d + col)
        trajectory = np.array([random_point_in_cell(cell) for cell in cells])
        trajectories.append(trajectory)
    return TrajectoryDataset(
        trajectories=trajectories,
        routing_grid=grid,
        parameters={
            "routing_d": routing_d,
            "n_trajectories": n_trajectories,
            "min_length": min_length,
            "max_length": max_length,
        },
    )
