"""Trajectory generation following the paper's Appendix D procedure.

The trajectory experiment (Figure 14) generates trajectories from the NYC pickup
points as follows: divide the domain into a fine ``300 x 300`` grid, map every point to
its cell, sample 1,000 start cells and 1,000 lengths in ``[2, 200]``, and grow each
trajectory by repeatedly moving to a neighbouring cell with probability proportional to
the number of points in that neighbour; the concrete point reported for each visited
cell is a uniformly random point from that cell.

The generator below reproduces that procedure with configurable sizes so that the
benchmark can run at laptop scale (a coarser routing grid and fewer/shorter
trajectories) while the default parameters match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.domain import GridSpec, SpatialDomain
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_grid_side, check_points


@dataclass
class TrajectoryDataset:
    """A set of sampled trajectories plus the routing grid they were generated on."""

    trajectories: list[np.ndarray]
    routing_grid: GridSpec
    parameters: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.trajectories)

    def all_points(self) -> np.ndarray:
        """Concatenate every trajectory's points into one ``(n, 2)`` array."""
        if not self.trajectories:
            return np.empty((0, 2))
        return np.vstack(self.trajectories)

    def lengths(self) -> np.ndarray:
        return np.array([t.shape[0] for t in self.trajectories], dtype=np.int64)


def _neighbour_offsets() -> np.ndarray:
    """The 8-connected neighbourhood used by the random-walk growth step."""
    return np.array(
        [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)],
        dtype=np.int64,
    )


def generate_trajectories(
    points: np.ndarray,
    domain: SpatialDomain,
    *,
    routing_d: int = 300,
    n_trajectories: int = 1000,
    min_length: int = 2,
    max_length: int = 200,
    seed=None,
) -> TrajectoryDataset:
    """Sample trajectories from a point cloud following Appendix D.

    Parameters
    ----------
    points:
        The underlying point cloud (e.g. NYC pickups) that defines cell popularity.
    domain:
        Analysis domain; points outside are ignored.
    routing_d:
        Side of the routing grid (the paper uses 300).
    n_trajectories, min_length, max_length:
        Number of trajectories and the inclusive length range (paper: 1000, 2, 200).
    seed:
        Randomness source.
    """
    rng = ensure_rng(seed)
    routing_d = check_grid_side(routing_d)
    if not 1 <= min_length <= max_length:
        raise ValueError(f"invalid length range [{min_length}, {max_length}]")
    if n_trajectories < 0:
        raise ValueError(f"n_trajectories must be non-negative, got {n_trajectories}")
    pts = check_points(points)
    pts = pts[domain.contains(pts)]
    if pts.shape[0] == 0:
        raise ValueError("no points fall inside the domain; cannot generate trajectories")
    grid = GridSpec(domain, routing_d)
    counts = grid.histogram(pts).astype(float)

    # Points grouped by cell so "pick a random point within the chosen cell" is O(1).
    cell_of_point = grid.point_to_cell(pts)
    order = np.argsort(cell_of_point)
    sorted_cells = cell_of_point[order]
    sorted_points = pts[order]
    unique_cells, start_indices = np.unique(sorted_cells, return_index=True)
    cell_slices = {
        int(cell): (int(start), int(end))
        for cell, start, end in zip(
            unique_cells, start_indices, np.append(start_indices[1:], sorted_cells.size)
        )
    }

    occupied_flat = unique_cells
    occupied_weights = counts.reshape(-1)[occupied_flat]
    occupied_weights = occupied_weights / occupied_weights.sum()
    offsets = _neighbour_offsets()

    def random_point_in_cell(flat_cell: int) -> np.ndarray:
        if flat_cell in cell_slices:
            start, end = cell_slices[flat_cell]
            return sorted_points[rng.integers(start, end)]
        # Empty cell: fall back to its centre (can happen when the walk wanders into a
        # cell with weight contributed only by neighbours).
        row, col = flat_cell // routing_d, flat_cell % routing_d
        x = domain.x_min + (col + 0.5) * domain.width / routing_d
        y = domain.y_min + (row + 0.5) * domain.height / routing_d
        return np.array([x, y])

    trajectories: list[np.ndarray] = []
    start_cells = rng.choice(occupied_flat, size=n_trajectories, p=occupied_weights)
    lengths = rng.integers(min_length, max_length + 1, size=n_trajectories)
    for start_cell, length in zip(start_cells, lengths):
        cells = [int(start_cell)]
        row, col = int(start_cell) // routing_d, int(start_cell) % routing_d
        for _ in range(int(length) - 1):
            neighbour_rows = row + offsets[:, 0]
            neighbour_cols = col + offsets[:, 1]
            valid = (
                (neighbour_rows >= 0)
                & (neighbour_rows < routing_d)
                & (neighbour_cols >= 0)
                & (neighbour_cols < routing_d)
            )
            neighbour_rows = neighbour_rows[valid]
            neighbour_cols = neighbour_cols[valid]
            weights = counts[neighbour_rows, neighbour_cols] + 1e-9
            weights = weights / weights.sum()
            pick = rng.choice(weights.size, p=weights)
            row, col = int(neighbour_rows[pick]), int(neighbour_cols[pick])
            cells.append(row * routing_d + col)
        trajectory = np.array([random_point_in_cell(cell) for cell in cells])
        trajectories.append(trajectory)
    return TrajectoryDataset(
        trajectories=trajectories,
        routing_grid=grid,
        parameters={
            "routing_d": routing_d,
            "n_trajectories": n_trajectories,
            "min_length": min_length,
            "max_length": max_length,
        },
    )


# --------------------------------------------------------------------- streams
@dataclass
class DriftingTrajectoryStream:
    """A sequence of per-epoch trajectory sets whose movement patterns drift.

    The trajectory analogue of :class:`~repro.datasets.synthetic.DriftingStream`
    and the input of :class:`~repro.streaming.trajectory.StreamingTrajectoryService`:
    ``epochs[e]`` holds the trajectories (each an ``(len, 2)`` point array) collected
    during epoch ``e``.  Generators are deterministic given a seed, so a stream can
    be regenerated exactly from its ``parameters`` — which keeps the
    ``repro stream --workload trajectory`` session logs replayable.
    """

    name: str
    domain: SpatialDomain
    epochs: list[list[np.ndarray]]
    parameters: dict = field(default_factory=dict)

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    def window_trajectories(self, end: int, window_epochs: int) -> list[np.ndarray]:
        """All trajectories of the hard window ending at epoch ``end`` (inclusive)."""
        if not 0 <= end < self.n_epochs:
            raise ValueError(f"end must lie in [0, {self.n_epochs}), got {end}")
        start = max(0, end - window_epochs + 1)
        return [t for epoch in self.epochs[start : end + 1] for t in epoch]


def _biased_walk_epoch(
    rng: np.random.Generator,
    n: int,
    domain: SpatialDomain,
    origins: np.ndarray,
    destinations: np.ndarray,
    origin_choice: np.ndarray,
    *,
    min_length: int,
    max_length: int,
    origin_std: float,
    pull: float,
    noise_std: float,
    blocked_band: tuple[float, float] | None = None,
) -> list[np.ndarray]:
    """One epoch of biased random walks from sampled origins toward destinations.

    Each trajectory starts Gaussian-spread around its origin and every step moves a
    ``pull`` fraction of the remaining displacement toward the destination plus
    isotropic noise, clipped to the domain — a cheap but spatially coherent commute
    model whose OD structure the LDPTrace oracles can recover.  With ``blocked_band``
    set to an ``(x_lo, x_hi)`` vertical corridor, any step that would land inside the
    band keeps its previous x (the "road closed" detour: flows squeeze around the
    band's ends instead of crossing it).
    """
    lengths = rng.integers(min_length, max_length + 1, size=n)
    which = rng.choice(origin_choice.shape[0], size=n, p=origin_choice)
    starts = origins[which] + origin_std * rng.standard_normal((n, 2))
    starts = domain.clip(starts)
    targets = destinations[which]
    trajectories: list[np.ndarray] = []
    for i in range(n):
        length = int(lengths[i])
        points = np.empty((length, 2))
        points[0] = starts[i]
        position = starts[i].copy()
        for step in range(1, length):
            proposal = (
                position
                + pull * (targets[i] - position)
                + noise_std * rng.standard_normal(2)
            )
            proposal = domain.clip(proposal[None, :])[0]
            if blocked_band is not None and blocked_band[0] < proposal[0] < blocked_band[1]:
                proposal[0] = position[0]
            position = proposal
            points[step] = position
        trajectories.append(points)
    return trajectories


def commute_shift_stream(
    n_epochs: int = 20,
    trajectories_per_epoch: int = 500,
    *,
    home: tuple[float, float] = (0.2, 0.2),
    work: tuple[float, float] = (0.8, 0.8),
    min_length: int = 2,
    max_length: int = 30,
    seed=None,
) -> DriftingTrajectoryStream:
    """Morning commute reversing into an evening commute over the stream.

    Early epochs are dominated by home-to-work trajectories; the mix ramps linearly
    until late epochs are dominated by the reverse work-to-home flow.  The OD
    matrix's principal direction flips — the smooth movement-drift analogue of
    ``shifting_hotspot_stream``, and the regime where a sliding window tracks what a
    from-scratch batch fit smears.
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    if trajectories_per_epoch < 0:
        raise ValueError(
            f"trajectories_per_epoch must be non-negative, got {trajectories_per_epoch}"
        )
    if not 1 <= min_length <= max_length:
        raise ValueError(f"invalid length range [{min_length}, {max_length}]")
    rng = ensure_rng(seed)
    domain = SpatialDomain.unit("commute-shift")
    home_arr, work_arr = np.asarray(home, float), np.asarray(work, float)
    origins = np.vstack([home_arr, work_arr])
    destinations = np.vstack([work_arr, home_arr])
    epochs = []
    for epoch in range(n_epochs):
        t = epoch / (n_epochs - 1) if n_epochs > 1 else 0.0
        reverse_frac = 0.1 + 0.8 * t
        epochs.append(
            _biased_walk_epoch(
                rng,
                trajectories_per_epoch,
                domain,
                origins,
                destinations,
                np.array([1.0 - reverse_frac, reverse_frac]),
                min_length=min_length,
                max_length=max_length,
                origin_std=0.05,
                pull=0.15,
                noise_std=0.03,
            )
        )
    return DriftingTrajectoryStream(
        name="commute-shift",
        domain=domain,
        epochs=epochs,
        parameters={
            "n_epochs": n_epochs,
            "trajectories_per_epoch": trajectories_per_epoch,
            "home": tuple(home),
            "work": tuple(work),
            "min_length": min_length,
            "max_length": max_length,
        },
    )


def event_surge_stream(
    n_epochs: int = 20,
    trajectories_per_epoch: int = 500,
    *,
    venue: tuple[float, float] = (0.5, 0.75),
    surge_at: float = 0.3,
    disperse_at: float = 0.8,
    min_length: int = 2,
    max_length: int = 30,
    seed=None,
) -> DriftingTrajectoryStream:
    """A stadium event: background flows, then a surge of trajectories into a venue.

    The fraction of trajectories heading to the venue ramps from zero at fraction
    ``surge_at`` of the stream to a peak and back to zero by ``disperse_at`` — the
    abrupt movement-structure change (all inflow converging on one destination cell)
    that stresses a window's forgetting, mirroring ``appearing_cluster_stream``.
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    if not 0.0 <= surge_at < disperse_at <= 1.0:
        raise ValueError(f"need 0 <= surge_at < disperse_at <= 1, got {surge_at}, {disperse_at}")
    if not 1 <= min_length <= max_length:
        raise ValueError(f"invalid length range [{min_length}, {max_length}]")
    rng = ensure_rng(seed)
    domain = SpatialDomain.unit("event-surge")
    venue_arr = np.asarray(venue, float)
    corners = np.array([[0.15, 0.15], [0.85, 0.15], [0.15, 0.85], [0.85, 0.85]])
    origins = np.vstack([corners, corners])
    # Background trips cross to the opposite corner; surge trips head to the venue.
    destinations = np.vstack([corners[::-1], np.tile(venue_arr, (4, 1))])
    peak = (surge_at + disperse_at) / 2.0
    epochs = []
    for epoch in range(n_epochs):
        t = epoch / (n_epochs - 1) if n_epochs > 1 else 0.0
        if t <= surge_at or t >= disperse_at:
            surge_weight = 0.0
        elif t <= peak:
            surge_weight = (t - surge_at) / (peak - surge_at)
        else:
            surge_weight = (disperse_at - t) / (disperse_at - peak)
        per_origin = np.full(4, (1.0 - surge_weight) / 4.0)
        per_surge = np.full(4, surge_weight / 4.0)
        epochs.append(
            _biased_walk_epoch(
                rng,
                trajectories_per_epoch,
                domain,
                origins,
                destinations,
                np.concatenate([per_origin, per_surge]),
                min_length=min_length,
                max_length=max_length,
                origin_std=0.05,
                pull=0.15,
                noise_std=0.03,
            )
        )
    return DriftingTrajectoryStream(
        name="event-surge",
        domain=domain,
        epochs=epochs,
        parameters={
            "n_epochs": n_epochs,
            "trajectories_per_epoch": trajectories_per_epoch,
            "venue": tuple(venue),
            "surge_at": surge_at,
            "disperse_at": disperse_at,
            "min_length": min_length,
            "max_length": max_length,
        },
    )


def route_closure_stream(
    n_epochs: int = 20,
    trajectories_per_epoch: int = 500,
    *,
    band: tuple[float, float] = (0.45, 0.55),
    close_at: float = 0.3,
    reopen_at: float = 0.7,
    min_length: int = 2,
    max_length: int = 30,
    seed=None,
) -> DriftingTrajectoryStream:
    """East-west commutes with a vertical corridor that closes and reopens.

    While the stream fraction lies in ``[close_at, reopen_at)`` the ``band``
    (an ``(x_lo, x_hi)`` strip) rejects any step landing inside it, so crossing
    flows detour around its ends — the transition matrix loses its central columns
    and regains them on reopen.  The recurring-disruption scenario that
    exponential-decay windows are tuned against.
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    if not 0.0 <= close_at < reopen_at <= 1.0:
        raise ValueError(f"need 0 <= close_at < reopen_at <= 1, got {close_at}, {reopen_at}")
    if not band[0] < band[1]:
        raise ValueError(f"band must be an (x_lo, x_hi) pair with x_lo < x_hi, got {band}")
    if not 1 <= min_length <= max_length:
        raise ValueError(f"invalid length range [{min_length}, {max_length}]")
    rng = ensure_rng(seed)
    domain = SpatialDomain.unit("route-closure")
    west = np.array([[0.1, 0.3], [0.1, 0.7]])
    east = np.array([[0.9, 0.3], [0.9, 0.7]])
    origins = np.vstack([west, east])
    destinations = np.vstack([east, west])
    epochs = []
    for epoch in range(n_epochs):
        t = epoch / (n_epochs - 1) if n_epochs > 1 else 0.0
        closed = close_at <= t < reopen_at
        epochs.append(
            _biased_walk_epoch(
                rng,
                trajectories_per_epoch,
                domain,
                origins,
                destinations,
                np.full(4, 0.25),
                min_length=min_length,
                max_length=max_length,
                origin_std=0.05,
                pull=0.12,
                noise_std=0.03,
                blocked_band=tuple(band) if closed else None,
            )
        )
    return DriftingTrajectoryStream(
        name="route-closure",
        domain=domain,
        epochs=epochs,
        parameters={
            "n_epochs": n_epochs,
            "trajectories_per_epoch": trajectories_per_epoch,
            "band": tuple(band),
            "close_at": close_at,
            "reopen_at": reopen_at,
            "min_length": min_length,
            "max_length": max_length,
        },
    )


#: Scenario registry used by ``repro stream --workload trajectory``.
TRAJECTORY_DRIFT_SCENARIOS = {
    "commute-shift": commute_shift_stream,
    "event-surge": event_surge_stream,
    "route-closure": route_closure_stream,
}
