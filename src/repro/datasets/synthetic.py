"""Synthetic spatial datasets — Normal, SZipf and MNormal (Section VII-A).

The paper evaluates on three synthetic point clouds:

* **Normal** — 300,000 points from a correlated 2-D Gaussian
  ``Normal(0, 0, 1, 1, 0.5)`` clipped to ``(-5, 5)^2``;
* **SZipf** — 100,000 points whose coordinates are i.i.d. skew-Zipf distributed on
  ``[0, 1)`` (CDF ``log2(x + 1)``, density ``1 / ((x + 1) ln 2)``);
* **MNormal** — 300,000 points from three Gaussian clusters with correlations
  ``0.5, 0.0, -0.2``.

The generators below are deterministic given a seed and allow the point counts to be
scaled down for laptop-sized experiment runs (the distributions — and therefore the
relative mechanism orderings — are unchanged by the subsampling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.domain import SpatialDomain
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


@dataclass
class SyntheticDataset:
    """A generated point cloud together with its analysis domain."""

    name: str
    points: np.ndarray
    domain: SpatialDomain
    parameters: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.points.shape[0])


def normal_dataset(
    n: int = 300_000,
    *,
    mean: tuple[float, float] = (0.0, 0.0),
    std: tuple[float, float] = (1.0, 1.0),
    rho: float = 0.5,
    clip: float = 5.0,
    seed=None,
) -> SyntheticDataset:
    """The paper's **Normal(0, 0, 1, 1, 0.5)** dataset.

    Points are drawn from a bivariate Gaussian with the given means, standard
    deviations and correlation ``rho``, then points outside ``(-clip, clip)^2`` are
    redrawn (the paper reports all points fall inside ``(-5, 5)^2``).
    """
    if not -1.0 < rho < 1.0:
        raise ValueError(f"rho must lie in (-1, 1), got {rho}")
    check_positive(clip, "clip")
    rng = ensure_rng(seed)
    cov = np.array(
        [
            [std[0] ** 2, rho * std[0] * std[1]],
            [rho * std[0] * std[1], std[1] ** 2],
        ]
    )
    points = _sample_truncated_gaussian(rng, np.asarray(mean, float), cov, clip, n)
    domain = SpatialDomain(-clip, clip, -clip, clip, name="normal")
    return SyntheticDataset(
        name="Normal",
        points=points,
        domain=domain,
        parameters={"mean": mean, "std": std, "rho": rho, "clip": clip, "n": n},
    )


def _sample_truncated_gaussian(
    rng: np.random.Generator,
    mean: np.ndarray,
    cov: np.ndarray,
    clip: float,
    n: int,
) -> np.ndarray:
    """Rejection-sample a bivariate Gaussian truncated to the ``(-clip, clip)`` square."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    collected: list[np.ndarray] = []
    remaining = n
    while remaining > 0:
        batch = rng.multivariate_normal(mean, cov, size=max(remaining, 1024))
        inside = batch[(np.abs(batch[:, 0]) < clip) & (np.abs(batch[:, 1]) < clip)]
        collected.append(inside[:remaining])
        remaining -= min(remaining, inside.shape[0])
    return np.vstack(collected) if collected else np.empty((0, 2))


def szipf_dataset(n: int = 100_000, *, seed=None) -> SyntheticDataset:
    """The paper's **SZipf** dataset: coordinates i.i.d. skew-Zipf on ``[0, 1)``.

    The skew-Zipf law has CDF ``F(x) = log2(x + 1)`` on ``[0, 1)`` (density
    ``1 / ((x + 1) ln 2)``), so inverse-transform sampling gives ``x = 2^u - 1`` for
    uniform ``u`` — heavily skewed towards the origin corner, exactly the hot-corner
    shape visible in the paper's Figure 7(d).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = ensure_rng(seed)
    u = rng.random((n, 2))
    points = np.exp2(u) - 1.0
    domain = SpatialDomain(0.0, 1.0, 0.0, 1.0, name="szipf")
    return SyntheticDataset(
        name="SZipf", points=points, domain=domain, parameters={"n": n}
    )


def mnormal_dataset(
    n: int = 300_000,
    *,
    centers: tuple[tuple[float, float], ...] = ((-2.0, -2.0), (0.5, 0.5), (2.5, 2.0)),
    rhos: tuple[float, ...] = (0.5, 0.0, -0.2),
    std: float = 1.0,
    clip: float = 6.5,
    seed=None,
) -> SyntheticDataset:
    """The paper's **MNormal** (multi-centre normal) dataset.

    Three equal-sized Gaussian clusters with correlations ``0.5, 0, -0.2``.  The paper
    lists all three components with mean ``(0, 0)`` yet calls the dataset
    "multi-center" and reports a wider range than a single standard Gaussian, so the
    reproduction separates the cluster centres (configurable via ``centers``); the
    substitution is recorded in DESIGN.md.
    """
    if len(centers) != len(rhos):
        raise ValueError("centers and rhos must have the same length")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = ensure_rng(seed)
    per_cluster = [n // len(centers)] * len(centers)
    per_cluster[0] += n - sum(per_cluster)
    clusters = []
    for (cx, cy), rho, count in zip(centers, rhos, per_cluster):
        cov = np.array([[std**2, rho * std**2], [rho * std**2, std**2]])
        clusters.append(
            _sample_truncated_gaussian(rng, np.array([cx, cy]), cov, clip, count)
        )
    points = np.vstack(clusters) if clusters else np.empty((0, 2))
    rng.shuffle(points, axis=0)
    domain = SpatialDomain(-clip, clip, -clip, clip, name="mnormal")
    return SyntheticDataset(
        name="MNormal",
        points=points,
        domain=domain,
        parameters={"centers": centers, "rhos": rhos, "std": std, "clip": clip, "n": n},
    )


def uniform_dataset(
    n: int = 100_000, *, domain: SpatialDomain | None = None, seed=None
) -> SyntheticDataset:
    """A uniform point cloud — the no-structure control used by tests and ablations."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = ensure_rng(seed)
    domain = domain if domain is not None else SpatialDomain.unit("uniform")
    xs = rng.uniform(domain.x_min, domain.x_max, n)
    ys = rng.uniform(domain.y_min, domain.y_max, n)
    return SyntheticDataset(
        name="Uniform",
        points=np.column_stack([xs, ys]),
        domain=domain,
        parameters={"n": n},
    )
