"""Synthetic spatial datasets — Normal, SZipf and MNormal (Section VII-A).

The paper evaluates on three synthetic point clouds:

* **Normal** — 300,000 points from a correlated 2-D Gaussian
  ``Normal(0, 0, 1, 1, 0.5)`` clipped to ``(-5, 5)^2``;
* **SZipf** — 100,000 points whose coordinates are i.i.d. skew-Zipf distributed on
  ``[0, 1)`` (CDF ``log2(x + 1)``, density ``1 / ((x + 1) ln 2)``);
* **MNormal** — 300,000 points from three Gaussian clusters with correlations
  ``0.5, 0.0, -0.2``.

The generators below are deterministic given a seed and allow the point counts to be
scaled down for laptop-sized experiment runs (the distributions — and therefore the
relative mechanism orderings — are unchanged by the subsampling).

The module also hosts the *drifting epoch streams* consumed by
:mod:`repro.streaming` — :func:`shifting_hotspot_stream`,
:func:`appearing_cluster_stream` and :func:`diurnal_mixture_stream` each produce a
:class:`DriftingStream` whose per-epoch populations drift in a controlled,
reproducible way (the three canonical drift shapes: smooth migration, structural
appearance/vanishing, and cyclo-stationary oscillation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.domain import SpatialDomain
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


@dataclass
class SyntheticDataset:
    """A generated point cloud together with its analysis domain."""

    name: str
    points: np.ndarray
    domain: SpatialDomain
    parameters: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.points.shape[0])


def normal_dataset(
    n: int = 300_000,
    *,
    mean: tuple[float, float] = (0.0, 0.0),
    std: tuple[float, float] = (1.0, 1.0),
    rho: float = 0.5,
    clip: float = 5.0,
    seed=None,
) -> SyntheticDataset:
    """The paper's **Normal(0, 0, 1, 1, 0.5)** dataset.

    Points are drawn from a bivariate Gaussian with the given means, standard
    deviations and correlation ``rho``, then points outside ``(-clip, clip)^2`` are
    redrawn (the paper reports all points fall inside ``(-5, 5)^2``).
    """
    if not -1.0 < rho < 1.0:
        raise ValueError(f"rho must lie in (-1, 1), got {rho}")
    check_positive(clip, "clip")
    rng = ensure_rng(seed)
    cov = np.array(
        [
            [std[0] ** 2, rho * std[0] * std[1]],
            [rho * std[0] * std[1], std[1] ** 2],
        ]
    )
    points = _sample_truncated_gaussian(rng, np.asarray(mean, float), cov, clip, n)
    domain = SpatialDomain(-clip, clip, -clip, clip, name="normal")
    return SyntheticDataset(
        name="Normal",
        points=points,
        domain=domain,
        parameters={"mean": mean, "std": std, "rho": rho, "clip": clip, "n": n},
    )


def _sample_truncated_gaussian(
    rng: np.random.Generator,
    mean: np.ndarray,
    cov: np.ndarray,
    clip: float,
    n: int,
) -> np.ndarray:
    """Rejection-sample a bivariate Gaussian truncated to the ``(-clip, clip)`` square."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    collected: list[np.ndarray] = []
    remaining = n
    while remaining > 0:
        batch = rng.multivariate_normal(mean, cov, size=max(remaining, 1024))
        inside = batch[(np.abs(batch[:, 0]) < clip) & (np.abs(batch[:, 1]) < clip)]
        collected.append(inside[:remaining])
        remaining -= min(remaining, inside.shape[0])
    return np.vstack(collected) if collected else np.empty((0, 2))


def szipf_dataset(n: int = 100_000, *, seed=None) -> SyntheticDataset:
    """The paper's **SZipf** dataset: coordinates i.i.d. skew-Zipf on ``[0, 1)``.

    The skew-Zipf law has CDF ``F(x) = log2(x + 1)`` on ``[0, 1)`` (density
    ``1 / ((x + 1) ln 2)``), so inverse-transform sampling gives ``x = 2^u - 1`` for
    uniform ``u`` — heavily skewed towards the origin corner, exactly the hot-corner
    shape visible in the paper's Figure 7(d).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = ensure_rng(seed)
    u = rng.random((n, 2))
    points = np.exp2(u) - 1.0
    domain = SpatialDomain(0.0, 1.0, 0.0, 1.0, name="szipf")
    return SyntheticDataset(name="SZipf", points=points, domain=domain, parameters={"n": n})


def mnormal_dataset(
    n: int = 300_000,
    *,
    centers: tuple[tuple[float, float], ...] = ((-2.0, -2.0), (0.5, 0.5), (2.5, 2.0)),
    rhos: tuple[float, ...] = (0.5, 0.0, -0.2),
    std: float = 1.0,
    clip: float = 6.5,
    seed=None,
) -> SyntheticDataset:
    """The paper's **MNormal** (multi-centre normal) dataset.

    Three equal-sized Gaussian clusters with correlations ``0.5, 0, -0.2``.  The paper
    lists all three components with mean ``(0, 0)`` yet calls the dataset
    "multi-center" and reports a wider range than a single standard Gaussian, so the
    reproduction separates the cluster centres (configurable via ``centers``); the
    substitution is recorded in DESIGN.md.
    """
    if len(centers) != len(rhos):
        raise ValueError("centers and rhos must have the same length")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = ensure_rng(seed)
    per_cluster = [n // len(centers)] * len(centers)
    per_cluster[0] += n - sum(per_cluster)
    clusters = []
    for (cx, cy), rho, count in zip(centers, rhos, per_cluster):
        cov = np.array([[std**2, rho * std**2], [rho * std**2, std**2]])
        clusters.append(
            _sample_truncated_gaussian(rng, np.array([cx, cy]), cov, clip, count)
        )
    points = np.vstack(clusters) if clusters else np.empty((0, 2))
    rng.shuffle(points, axis=0)
    domain = SpatialDomain(-clip, clip, -clip, clip, name="mnormal")
    return SyntheticDataset(
        name="MNormal",
        points=points,
        domain=domain,
        parameters={"centers": centers, "rhos": rhos, "std": std, "clip": clip, "n": n},
    )


# --------------------------------------------------------------------- streams
@dataclass
class DriftingStream:
    """A sequence of per-epoch point clouds whose population drifts over time.

    The input of the streaming subsystem (:mod:`repro.streaming`): ``epochs[e]``
    holds the ``(n_e, 2)`` reports that arrive during epoch ``e``.  Generators are
    deterministic given a seed, so a stream can be regenerated exactly from its
    ``parameters`` — which is what makes the ``repro stream`` session logs
    replayable.
    """

    name: str
    domain: SpatialDomain
    epochs: list[np.ndarray]
    parameters: dict = field(default_factory=dict)

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    def window_points(self, end: int, window_epochs: int) -> np.ndarray:
        """All points of the hard window ending at epoch ``end`` (inclusive)."""
        if not 0 <= end < self.n_epochs:
            raise ValueError(f"end must lie in [0, {self.n_epochs}), got {end}")
        start = max(0, end - window_epochs + 1)
        return np.vstack(self.epochs[start : end + 1])


def _mixture_epoch(
    rng: np.random.Generator,
    n: int,
    domain: SpatialDomain,
    centers: np.ndarray,
    stds: np.ndarray,
    weights: np.ndarray,
    uniform_weight: float,
) -> np.ndarray:
    """One epoch from a Gaussian mixture plus a uniform background, clipped."""
    weights = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    total = weights.sum() + uniform_weight
    component = rng.choice(
        weights.shape[0] + 1,
        size=n,
        p=np.append(weights, uniform_weight) / total,
    )
    points = np.empty((n, 2))
    background = component == weights.shape[0]
    points[background, 0] = rng.uniform(domain.x_min, domain.x_max, int(background.sum()))
    points[background, 1] = rng.uniform(domain.y_min, domain.y_max, int(background.sum()))
    for index in range(weights.shape[0]):
        mask = component == index
        points[mask] = centers[index] + stds[index] * rng.standard_normal((int(mask.sum()), 2))
    return domain.clip(points)


def shifting_hotspot_stream(
    n_epochs: int = 20,
    users_per_epoch: int = 2000,
    *,
    start: tuple[float, float] = (0.25, 0.25),
    end: tuple[float, float] = (0.75, 0.75),
    std: float = 0.08,
    background: float = 0.25,
    seed=None,
) -> DriftingStream:
    """A single Gaussian hotspot that migrates linearly across the unit square.

    The canonical smooth-drift scenario: each epoch the hotspot centre moves one
    ``(end - start) / (n_epochs - 1)`` step, so consecutive windows overlap heavily —
    exactly the regime where warm-started re-solves shine.  ``background`` is the
    fraction of users drawn uniformly (keeps every cell's count away from zero).
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    if users_per_epoch < 0:
        raise ValueError(f"users_per_epoch must be non-negative, got {users_per_epoch}")
    if not 0.0 <= background <= 1.0:
        raise ValueError(f"background must lie in [0, 1], got {background}")
    check_positive(std, "std")
    rng = ensure_rng(seed)
    domain = SpatialDomain.unit("shifting-hotspot")
    start_arr, end_arr = np.asarray(start, float), np.asarray(end, float)
    epochs = []
    for epoch in range(n_epochs):
        t = epoch / (n_epochs - 1) if n_epochs > 1 else 0.0
        center = ((1.0 - t) * start_arr + t * end_arr)[None, :]
        epochs.append(
            _mixture_epoch(
                rng,
                users_per_epoch,
                domain,
                center,
                np.array([std]),
                np.array([1.0 - background]),
                background,
            )
        )
    return DriftingStream(
        name="shifting-hotspot",
        domain=domain,
        epochs=epochs,
        parameters={
            "n_epochs": n_epochs,
            "users_per_epoch": users_per_epoch,
            "start": tuple(start),
            "end": tuple(end),
            "std": std,
            "background": background,
        },
    )


def appearing_cluster_stream(
    n_epochs: int = 20,
    users_per_epoch: int = 2000,
    *,
    base_center: tuple[float, float] = (0.3, 0.65),
    cluster_center: tuple[float, float] = (0.75, 0.25),
    std: float = 0.08,
    appear_at: float = 0.25,
    vanish_at: float = 0.75,
    background: float = 0.15,
    seed=None,
) -> DriftingStream:
    """A stable base population plus a secondary cluster that appears and vanishes.

    The cluster's mixture weight ramps linearly from zero starting at fraction
    ``appear_at`` of the stream, peaks at equal weight with the base population,
    then ramps back to zero by ``vanish_at`` — the abrupt-structural-change
    scenario (a venue opening and closing) that stresses a window's forgetting.
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    if not 0.0 <= appear_at < vanish_at <= 1.0:
        raise ValueError(
            f"need 0 <= appear_at < vanish_at <= 1, got {appear_at}, {vanish_at}"
        )
    check_positive(std, "std")
    rng = ensure_rng(seed)
    domain = SpatialDomain.unit("appearing-cluster")
    centers = np.array([base_center, cluster_center], dtype=float)
    stds = np.array([std, std])
    peak = (appear_at + vanish_at) / 2.0
    epochs = []
    for epoch in range(n_epochs):
        t = epoch / (n_epochs - 1) if n_epochs > 1 else 0.0
        if t <= appear_at or t >= vanish_at:
            cluster_weight = 0.0
        elif t <= peak:
            cluster_weight = (t - appear_at) / (peak - appear_at)
        else:
            cluster_weight = (vanish_at - t) / (vanish_at - peak)
        weights = np.array([1.0, cluster_weight]) * (1.0 - background)
        epochs.append(
            _mixture_epoch(rng, users_per_epoch, domain, centers, stds, weights, background)
        )
    return DriftingStream(
        name="appearing-cluster",
        domain=domain,
        epochs=epochs,
        parameters={
            "n_epochs": n_epochs,
            "users_per_epoch": users_per_epoch,
            "base_center": tuple(base_center),
            "cluster_center": tuple(cluster_center),
            "std": std,
            "appear_at": appear_at,
            "vanish_at": vanish_at,
            "background": background,
        },
    )


def diurnal_mixture_stream(
    n_epochs: int = 24,
    users_per_epoch: int = 2000,
    *,
    day_center: tuple[float, float] = (0.7, 0.7),
    night_center: tuple[float, float] = (0.3, 0.3),
    std: float = 0.1,
    period: int = 24,
    background: float = 0.1,
    seed=None,
) -> DriftingStream:
    """Population oscillating between a day district and a night district.

    The mixture weight of the day component follows ``(1 + sin) / 2`` with the
    given period (in epochs), so the stream is cyclo-stationary — the recurring
    daily commute pattern that exponential-decay windows are tuned against.
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    if period < 2:
        raise ValueError(f"period must be >= 2 epochs, got {period}")
    check_positive(std, "std")
    rng = ensure_rng(seed)
    domain = SpatialDomain.unit("diurnal-mixture")
    centers = np.array([day_center, night_center], dtype=float)
    stds = np.array([std, std])
    epochs = []
    for epoch in range(n_epochs):
        day_weight = 0.5 * (1.0 + np.sin(2.0 * np.pi * epoch / period))
        weights = np.array([day_weight, 1.0 - day_weight]) * (1.0 - background)
        epochs.append(
            _mixture_epoch(rng, users_per_epoch, domain, centers, stds, weights, background)
        )
    return DriftingStream(
        name="diurnal-mixture",
        domain=domain,
        epochs=epochs,
        parameters={
            "n_epochs": n_epochs,
            "users_per_epoch": users_per_epoch,
            "day_center": tuple(day_center),
            "night_center": tuple(night_center),
            "std": std,
            "period": period,
            "background": background,
        },
    )


#: Scenario registry used by ``repro stream`` and the drift benchmarks.
DRIFT_SCENARIOS = {
    "shifting-hotspot": shifting_hotspot_stream,
    "appearing-cluster": appearing_cluster_stream,
    "diurnal-mixture": diurnal_mixture_stream,
}


def uniform_dataset(
    n: int = 100_000, *, domain: SpatialDomain | None = None, seed=None
) -> SyntheticDataset:
    """A uniform point cloud — the no-structure control used by tests and ablations."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = ensure_rng(seed)
    domain = domain if domain is not None else SpatialDomain.unit("uniform")
    xs = rng.uniform(domain.x_min, domain.x_max, n)
    ys = rng.uniform(domain.y_min, domain.y_max, n)
    return SyntheticDataset(
        name="Uniform",
        points=np.column_stack([xs, ys]),
        domain=domain,
        parameters={"n": n},
    )
