"""Surrogates for the paper's real-world datasets: Chicago Crimes and NYC Green Taxis.

The paper downloads two public CSVs (Chicago crime events 2022 and NYC green-taxi
pickups 2016).  This offline reproduction cannot fetch them, so each dataset is
replaced by a *seeded synthetic surrogate* that reproduces the properties the
mechanisms actually react to:

* the published bounding boxes and the per-part bounding boxes of Table III;
* the per-part point counts of Table III (scalable for laptop runs);
* the qualitative density structure — street-grid-aligned anisotropic hot spots over a
  sparse background for Chicago, and a few dense pickup corridors plus airport-style
  hot spots for NYC.

Every mechanism consumes nothing but a point cloud inside a bounding box, so a
surrogate with the same multi-cluster, strongly skewed shape preserves the relative
ordering of the mechanisms' Wasserstein errors, which is what the evaluation reproduces
(absolute values are not expected to match — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.domain import SpatialDomain
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class RegionSpec:
    """One rectangular analysis part of a real dataset (a row of Table III)."""

    name: str
    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    paper_point_count: int

    def domain(self) -> SpatialDomain:
        """The part's domain with longitude as x and latitude as y."""
        return SpatialDomain(self.lon_min, self.lon_max, self.lat_min, self.lat_max, name=self.name)


#: Table III — Chicago Crimes parts A/B/C (latitude x longitude boxes and sizes).
CHICAGO_PARTS: tuple[RegionSpec, ...] = (
    RegionSpec("chicago-part-a", 41.72, 41.81, -87.68, -87.59, 216_595),
    RegionSpec("chicago-part-b", 41.82, 41.91, -87.73, -87.64, 173_552),
    RegionSpec("chicago-part-c", 41.92, 41.99, -87.77, -87.70, 69_068),
)

#: Table III — NYC Green Taxi parts A/B/C.
NYC_PARTS: tuple[RegionSpec, ...] = (
    RegionSpec("nyc-part-a", 40.65, 40.75, -73.84, -73.74, 10_561),
    RegionSpec("nyc-part-b", 40.65, 40.74, -73.95, -73.86, 42_195),
    RegionSpec("nyc-part-c", 40.82, 40.89, -73.90, -73.83, 9_186),
)

#: Full-domain extraction boxes used in Section VII-A (Crime) and Appendix C.  The NYC
#: upper latitude is extended from the paper's 40.88 to 40.89 so that part C of
#: Table III (latitude up to 40.89) stays inside the full domain — the paper's two
#: numbers are mutually inconsistent by 0.01 degrees.
CHICAGO_FULL_DOMAIN = SpatialDomain(-87.9, -87.54, 41.6, 42.0, name="chicago-full")
NYC_FULL_DOMAIN = SpatialDomain(-74.05, -73.73, 40.55, 40.89, name="nyc-full")

#: Full-dataset sizes reported in Section VII-A.
CHICAGO_FULL_COUNT = 101_146
NYC_FULL_COUNT = 446_110


@dataclass
class GeoDataset:
    """A surrogate real-world dataset: full point cloud plus its Table III parts."""

    name: str
    points: np.ndarray
    domain: SpatialDomain
    parts: dict[str, "GeoDatasetPart"] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.points.shape[0])


@dataclass
class GeoDatasetPart:
    """One rectangular part (A, B or C) of a surrogate dataset."""

    spec: RegionSpec
    points: np.ndarray

    @property
    def domain(self) -> SpatialDomain:
        return self.spec.domain()

    @property
    def size(self) -> int:
        return int(self.points.shape[0])


def _street_grid_clusters(
    rng: np.random.Generator,
    domain: SpatialDomain,
    n: int,
    *,
    n_clusters: int,
    street_alignment: float,
    background_fraction: float,
    cluster_spread: float,
) -> np.ndarray:
    """Generate a street-grid-like point cloud inside a domain.

    ``n_clusters`` anisotropic Gaussian hot spots (elongated alternately along x and y
    to mimic arterial roads, controlled by ``street_alignment``), a light uniform
    background, and light snapping of a subset of points onto a regular street lattice.
    """
    if n <= 0:
        return np.empty((0, 2))
    n_background = int(n * background_fraction)
    n_clustered = n - n_background
    # Cluster centres biased towards the middle of the domain.
    centers_x = rng.normal(
        (domain.x_min + domain.x_max) / 2.0,
        domain.width / 4.0,
        n_clusters,
    ).clip(domain.x_min, domain.x_max)
    centers_y = rng.normal(
        (domain.y_min + domain.y_max) / 2.0,
        domain.height / 4.0,
        n_clusters,
    ).clip(domain.y_min, domain.y_max)
    weights = rng.dirichlet(np.full(n_clusters, 0.6))
    assignments = rng.choice(n_clusters, size=n_clustered, p=weights)
    scale_x = domain.width * cluster_spread
    scale_y = domain.height * cluster_spread
    points = np.empty((n_clustered, 2))
    for cluster in range(n_clusters):
        mask = assignments == cluster
        count = int(mask.sum())
        if count == 0:
            continue
        # Alternate elongation axis to mimic a road grid.
        if cluster % 2 == 0:
            sx, sy = scale_x * street_alignment, scale_y / street_alignment
        else:
            sx, sy = scale_x / street_alignment, scale_y * street_alignment
        points[mask, 0] = rng.normal(centers_x[cluster], sx, count)
        points[mask, 1] = rng.normal(centers_y[cluster], sy, count)
    background = np.column_stack(
        [
            rng.uniform(domain.x_min, domain.x_max, n_background),
            rng.uniform(domain.y_min, domain.y_max, n_background),
        ]
    )
    all_points = np.vstack([points, background])
    # Snap a third of the points onto a street lattice (every ~1/40 of the domain).
    snap_mask = rng.random(all_points.shape[0]) < 0.33
    lattice_x = domain.width / 40.0
    lattice_y = domain.height / 40.0
    snapped = all_points[snap_mask].copy()
    snap_axis = rng.random(snapped.shape[0]) < 0.5
    snapped[snap_axis, 0] = (
        np.round((snapped[snap_axis, 0] - domain.x_min) / lattice_x) * lattice_x + domain.x_min
    )
    snapped[~snap_axis, 1] = (
        np.round((snapped[~snap_axis, 1] - domain.y_min) / lattice_y) * lattice_y + domain.y_min
    )
    all_points[snap_mask] = snapped
    all_points[:, 0] = all_points[:, 0].clip(domain.x_min, domain.x_max)
    all_points[:, 1] = all_points[:, 1].clip(domain.y_min, domain.y_max)
    rng.shuffle(all_points, axis=0)
    return all_points


def _build_geo_dataset(
    name: str,
    full_domain: SpatialDomain,
    full_count: int,
    parts: tuple[RegionSpec, ...],
    *,
    scale: float,
    seed,
    n_clusters: int,
    street_alignment: float,
    background_fraction: float,
    cluster_spread: float,
) -> GeoDataset:
    rng = ensure_rng(seed)
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    built_parts: dict[str, GeoDatasetPart] = {}
    all_points = []
    for spec in parts:
        count = max(int(spec.paper_point_count * scale), 50)
        pts = _street_grid_clusters(
            rng,
            spec.domain(),
            count,
            n_clusters=n_clusters,
            street_alignment=street_alignment,
            background_fraction=background_fraction,
            cluster_spread=cluster_spread,
        )
        built_parts[spec.name] = GeoDatasetPart(spec=spec, points=pts)
        all_points.append(pts)
    # Points outside the three parts fill the remainder of the full-domain count.
    part_total = sum(p.size for p in built_parts.values())
    remainder = max(int(full_count * scale) - part_total, 0)
    filler = _street_grid_clusters(
        rng,
        full_domain,
        remainder,
        n_clusters=n_clusters * 2,
        street_alignment=street_alignment,
        background_fraction=background_fraction * 1.5,
        cluster_spread=cluster_spread,
    )
    points = (
        np.vstack([*(p.points for p in built_parts.values()), filler]) if all_points else filler
    )
    rng.shuffle(points, axis=0)
    return GeoDataset(name=name, points=points, domain=full_domain, parts=built_parts)


def chicago_crime_surrogate(*, scale: float = 1.0, seed=0) -> GeoDataset:
    """Seeded surrogate for the Chicago Crimes 2022 extraction of Section VII-A.

    ``scale`` multiplies every part's point count (``scale=0.05`` gives a fast
    laptop-sized dataset with an identical density shape).
    """
    return _build_geo_dataset(
        "Crime",
        CHICAGO_FULL_DOMAIN,
        CHICAGO_FULL_COUNT,
        CHICAGO_PARTS,
        scale=scale,
        seed=seed,
        n_clusters=12,
        street_alignment=2.2,
        background_fraction=0.18,
        cluster_spread=0.09,
    )


def nyc_taxi_surrogate(*, scale: float = 1.0, seed=1) -> GeoDataset:
    """Seeded surrogate for the NYC Green Taxi 2016 pickup extraction of Section VII-A."""
    return _build_geo_dataset(
        "NYC",
        NYC_FULL_DOMAIN,
        NYC_FULL_COUNT,
        NYC_PARTS,
        scale=scale,
        seed=seed,
        n_clusters=8,
        street_alignment=2.8,
        background_fraction=0.10,
        cluster_spread=0.07,
    )
