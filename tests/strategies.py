"""Shared hypothesis strategies for the whole test suite.

Every property test used to re-roll its own ad-hoc ``st.integers`` /
``st.sampled_from`` combinations for the same five concepts — grid sides, privacy
budgets, disk radii, spatial domains and query rectangles.  This module is the single
source of those strategies so the generators (and their edge cases: offset domains,
planet-scale coordinates, degenerate-thin rectangles, overhanging and fully-outside
queries, trajectory sets) are shared by ``tests/test_properties.py``,
``tests/core/``, ``tests/metrics/``, ``tests/queries/`` and ``tests/trajectory/``.

Conventions
-----------
* Strategies are *functions returning strategies* (like ``st.integers``), so call
  sites read ``@given(grid_sides(), epsilons())``.
* Numpy randomness inside composite strategies is derived from hypothesis-drawn
  seeds, never from global state — shrinking and ``derandomize`` (the CI profile in
  ``tests/conftest.py``) stay deterministic.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.queries.range_query import RangeQuery

#: The paper's Table IV budget grid plus the large-budget regime — the values every
#: mechanism-invariant property sweeps.
EPSILON_GRID: tuple[float, ...] = (0.7, 1.4, 2.1, 3.5, 5.0, 8.0)

#: Coordinate offsets exercising float behaviour from the unit square up to
#: planet-scale projected coordinates (see the boundary properties in
#: ``tests/core/test_domain.py``).
COORDINATE_OFFSETS: tuple[float, ...] = (0.0, 1.0, 1e3, 1e6, 4.1e9, -7.3e8)


def epsilons() -> st.SearchStrategy[float]:
    """Privacy budgets from the paper's evaluation grid."""
    return st.sampled_from(EPSILON_GRID)


def grid_sides(min_side: int = 2, max_side: int = 7) -> st.SearchStrategy[int]:
    """Grid side lengths ``d``; the default range keeps transition matrices small."""
    return st.integers(min_value=min_side, max_value=max_side)


def b_hats(max_b: int = 3) -> st.SearchStrategy[int]:
    """Grid disk radii ``b_hat``."""
    return st.integers(min_value=1, max_value=max_b)


def seeds(max_seed: int = 10**6) -> st.SearchStrategy[int]:
    """Seeds for :func:`numpy.random.default_rng` inside properties."""
    return st.integers(min_value=0, max_value=max_seed)


def rngs(max_seed: int = 10**6) -> st.SearchStrategy[np.random.Generator]:
    """Deterministically seeded numpy generators."""
    return seeds(max_seed).map(np.random.default_rng)


@st.composite
def domains(
    draw,
    *,
    offsets: tuple[float, ...] = COORDINATE_OFFSETS,
    min_extent: float = 1e-3,
    max_extent: float = 1e3,
    square: bool = False,
) -> SpatialDomain:
    """Spatial domains at varied offsets and extents (rectangular by default)."""
    offset = draw(st.sampled_from(offsets))
    rng = np.random.default_rng(draw(seeds()))
    width = rng.uniform(min_extent, max_extent)
    height = width if square else rng.uniform(min_extent, max_extent)
    x_min = offset + rng.uniform(-1.0, 1.0)
    y_min = offset + rng.uniform(-1.0, 1.0)
    return SpatialDomain(x_min, x_min + width, y_min, y_min + height)


@st.composite
def grid_specs(
    draw,
    *,
    min_side: int = 1,
    max_side: int = 12,
    unit: bool = False,
    domain_strategy: st.SearchStrategy[SpatialDomain] | None = None,
) -> GridSpec:
    """Grid specs over :func:`domains` (or the unit square with ``unit=True``)."""
    d = draw(grid_sides(min_side, max_side))
    if unit:
        domain = SpatialDomain.unit()
    else:
        domain = draw(domain_strategy if domain_strategy is not None else domains())
    return GridSpec(domain, d)


@st.composite
def grid_distributions(
    draw,
    *,
    min_side: int = 1,
    max_side: int = 12,
    unit: bool = False,
    concentration: float = 1.0,
    domain_strategy: st.SearchStrategy[SpatialDomain] | None = None,
) -> GridDistribution:
    """Dirichlet-random probability grids over :func:`grid_specs`."""
    grid = draw(
        grid_specs(
            min_side=min_side,
            max_side=max_side,
            unit=unit,
            domain_strategy=domain_strategy,
        )
    )
    rng = np.random.default_rng(draw(seeds()))
    probabilities = rng.dirichlet(np.full(grid.n_cells, concentration))
    return GridDistribution(grid, probabilities.reshape(grid.d, grid.d))


@st.composite
def point_clouds(
    draw,
    *,
    domain: SpatialDomain | None = None,
    min_points: int = 1,
    max_points: int = 200,
) -> np.ndarray:
    """Uniform point clouds inside a domain (drawn from :func:`domains` if omitted)."""
    dom = domain if domain is not None else draw(domains())
    rng = np.random.default_rng(draw(seeds()))
    n = int(rng.integers(min_points, max_points + 1))
    return dom.denormalise(rng.random((n, 2)))


@st.composite
def range_queries(
    draw,
    *,
    domain: SpatialDomain | None = None,
    allow_overhang: bool = True,
) -> RangeQuery:
    """Rectangular queries over a domain, including the hard cases.

    With ``allow_overhang`` (default) the rectangle's corners are sampled from a box
    1.5x the domain on every side, so the strategy covers interior rectangles,
    rectangles overhanging one or more domain edges, rectangles containing the whole
    domain, and rectangles entirely outside it.  Degenerate (zero-width/height)
    rectangles are rejected by :class:`RangeQuery` itself; the strategy enforces a
    tiny positive extent and also generates *near*-degenerate slivers, which is where
    summation bugs hide.
    """
    dom = domain if domain is not None else draw(domains())
    rng = np.random.default_rng(draw(seeds()))
    margin = 0.75 if allow_overhang else 0.0
    lo_unit = rng.uniform(-margin, 1.0 + margin, size=2)
    # Mix near-degenerate slivers with ordinary extents.
    extent_scale = draw(st.sampled_from([1e-9, 1e-4, 0.1, 0.5, 1.0]))
    extents = rng.uniform(1e-12, extent_scale, size=2) + 1e-12
    x_lo = dom.x_min + lo_unit[0] * dom.width
    y_lo = dom.y_min + lo_unit[1] * dom.height
    # Guard against float underflow at large coordinate offsets: RangeQuery rejects
    # zero-extent rectangles, so force at least one ulp of width.
    x_hi = max(x_lo + extents[0] * dom.width, float(np.nextafter(x_lo, np.inf)))
    y_hi = max(y_lo + extents[1] * dom.height, float(np.nextafter(y_lo, np.inf)))
    return RangeQuery(x_lo, x_hi, y_lo, y_hi)


@st.composite
def trajectory_sets(
    draw,
    *,
    domain: SpatialDomain | None = None,
    min_trajectories: int = 1,
    max_trajectories: int = 10,
    min_length: int = 1,
    max_length: int = 25,
    allow_outside: bool = True,
) -> list[np.ndarray]:
    """Variable-length trajectory sets over a domain, including the hard cases.

    Each trajectory is a Gaussian random walk started inside the domain with step
    sizes proportional to the domain extent, so walks routinely *overhang* the domain
    (off-grid points — the cell mapping must clamp them).  Single-point trajectories
    are always possible (``min_length=1`` default) and one is forced in whenever the
    drawn flag says so, because that is where per-trajectory direction sampling and
    pivot selection degenerate.  Domains default to :func:`domains`, which includes
    planet-scale coordinate offsets.
    """
    dom = domain if domain is not None else draw(domains())
    rng = np.random.default_rng(draw(seeds()))
    force_single_point = draw(st.booleans())
    count = int(rng.integers(min_trajectories, max_trajectories + 1))
    scale = np.array([dom.width, dom.height])
    origin = np.array([dom.x_min, dom.y_min])
    trajectories: list[np.ndarray] = []
    for index in range(count):
        if force_single_point and index == 0:
            length = max(min_length, 1)
        else:
            length = int(rng.integers(min_length, max_length + 1))
        start = origin + rng.random(2) * scale
        steps = rng.normal(0.0, 0.08, size=(length - 1, 2)) * scale
        points = start[None, :] + np.concatenate(
            [np.zeros((1, 2)), np.cumsum(steps, axis=0)]
        )
        if not allow_outside:
            points = dom.clip(points)
        trajectories.append(points)
    return trajectories


@st.composite
def query_batches(
    draw,
    *,
    domain: SpatialDomain | None = None,
    min_queries: int = 1,
    max_queries: int = 64,
) -> np.ndarray:
    """Structured ``(n, 4)`` query arrays, the batched serving format."""
    dom = domain if domain is not None else draw(domains())
    rng = np.random.default_rng(draw(seeds()))
    n = int(rng.integers(min_queries, max_queries + 1))
    lo = dom.denormalise(rng.uniform(-0.75, 1.75, size=(n, 2)))
    extents = rng.uniform(1e-9, 1.0, size=(n, 2)) * [dom.width, dom.height]
    hi = np.maximum(lo + extents, np.nextafter(lo, np.inf))
    return np.column_stack([lo[:, 0], hi[:, 0], lo[:, 1], hi[:, 1]])
