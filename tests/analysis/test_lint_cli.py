"""``repro lint`` CLI behaviour: exit codes, formats, rule selection."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def _tree_with(tmp_path, fixture_name, synthetic_rel):
    target = tmp_path / synthetic_rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text((FIXTURES / fixture_name).read_text())
    return target


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    _tree_with(tmp_path, "rng_ambient_clean.py", "src/repro/core/clean.py")
    assert main(["lint", str(tmp_path)]) == 0
    assert capsys.readouterr().out.strip().endswith("0 findings")


def test_lint_flagged_tree_exits_one(tmp_path, capsys):
    _tree_with(tmp_path, "rng_ambient_flagged.py", "src/repro/core/flagged.py")
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "[rng-ambient]" in out
    assert out.strip().endswith("1 finding")


def test_lint_json_format(tmp_path, capsys):
    _tree_with(tmp_path, "rng_ambient_flagged.py", "src/repro/core/flagged.py")
    assert main(["lint", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule_id"] == "rng-ambient"
    assert payload[0]["path"].endswith("flagged.py")


def test_lint_rule_selection(tmp_path):
    """--rule restricts the run: an ambient-draw file passes a priv-flow-only run."""
    _tree_with(tmp_path, "rng_ambient_flagged.py", "src/repro/core/flagged.py")
    assert main(["lint", str(tmp_path), "--rule", "priv-flow"]) == 0
    assert main(["lint", str(tmp_path), "--rule", "rng-ambient"]) == 1


def test_lint_unknown_rule_is_an_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["lint", str(tmp_path), "--rule", "no-such-rule"])


def test_lint_missing_path_is_an_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["lint", str(tmp_path / "does-not-exist")])


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("priv-flow", "rng-ambient", "agg-protocol", "bench-metrics"):
        assert rule_id in out
