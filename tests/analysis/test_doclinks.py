"""Tests for repro.analysis.doclinks — the markdown relative-link checker."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.doclinks import (
    DocLinkFinding,
    check_documents,
    collect_markdown,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def write(path: Path, text: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestFileLinks:
    def test_valid_relative_link_passes(self, tmp_path):
        write(tmp_path / "docs" / "GUIDE.md", "# Guide\n")
        doc = write(tmp_path / "README.md", "See the [guide](docs/GUIDE.md).\n")
        assert check_documents([doc]) == []

    def test_broken_link_reports_path_line_and_target(self, tmp_path):
        doc = write(tmp_path / "README.md", "intro\n\nSee [gone](docs/GONE.md).\n")
        findings = check_documents([doc])
        assert len(findings) == 1
        finding = findings[0]
        assert isinstance(finding, DocLinkFinding)
        assert finding.line == 3
        assert finding.target == "docs/GONE.md"
        assert "does not exist" in finding.message
        assert finding.format().startswith(f"{doc}:3:")

    def test_parent_directory_links_resolve_within_root(self, tmp_path):
        write(tmp_path / "README.md", "# Top\n")
        doc = write(tmp_path / "docs" / "GUIDE.md", "Back to [top](../README.md).\n")
        assert check_documents([doc], root=tmp_path) == []

    def test_directory_target_is_a_valid_link(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        doc = write(tmp_path / "README.md", "The [benches](benchmarks) directory.\n")
        assert check_documents([doc]) == []

    def test_image_targets_are_checked_too(self, tmp_path):
        doc = write(tmp_path / "README.md", "![plot](figures/plot.png)\n")
        findings = check_documents([doc])
        assert len(findings) == 1
        assert findings[0].target == "figures/plot.png"

    def test_external_urls_are_skipped(self, tmp_path):
        doc = write(
            tmp_path / "README.md",
            "[a](https://example.com/x.md) [b](mailto:x@example.com)\n",
        )
        assert check_documents([doc]) == []

    def test_site_relative_targets_escaping_the_root_are_skipped(self, tmp_path):
        # The GitHub Actions badge idiom: resolves on the website, not on disk.
        doc = write(
            tmp_path / "README.md",
            "[![CI](../../actions/workflows/ci.yml/badge.svg)]"
            "(../../actions/workflows/ci.yml)\n",
        )
        assert check_documents([doc], root=tmp_path) == []

    def test_links_inside_fenced_code_blocks_are_ignored(self, tmp_path):
        doc = write(
            tmp_path / "README.md",
            "```markdown\n[broken](nope/GONE.md)\n```\n\n[real](also/GONE.md)\n",
        )
        findings = check_documents([doc])
        assert [finding.target for finding in findings] == ["also/GONE.md"]


class TestAnchors:
    def test_valid_anchor_in_other_document(self, tmp_path):
        write(tmp_path / "docs" / "ARCH.md", "# Arch\n\n## The Window Protocol\n")
        doc = write(
            tmp_path / "README.md", "See [it](docs/ARCH.md#the-window-protocol).\n"
        )
        assert check_documents([doc]) == []

    def test_broken_anchor_is_flagged(self, tmp_path):
        write(tmp_path / "docs" / "ARCH.md", "# Arch\n\n## Real Heading\n")
        doc = write(tmp_path / "README.md", "See [it](docs/ARCH.md#fake-heading).\n")
        findings = check_documents([doc])
        assert len(findings) == 1
        assert "broken anchor" in findings[0].message
        assert "#fake-heading" in findings[0].message

    def test_self_anchor(self, tmp_path):
        doc = write(
            tmp_path / "README.md",
            "# Title\n\nJump to [usage](#usage) or [nope](#missing).\n\n## Usage\n",
        )
        findings = check_documents([doc])
        assert [finding.target for finding in findings] == ["#missing"]

    def test_github_slug_rules(self, tmp_path):
        write(
            tmp_path / "D.md",
            "# The `BENCH_*.json` convention\n\n## Adding a gated metric!\n",
        )
        doc = write(
            tmp_path / "README.md",
            "[a](D.md#the-bench_json-convention) [b](D.md#adding-a-gated-metric)\n",
        )
        assert check_documents([doc]) == []

    def test_duplicate_headings_get_dedup_suffixes(self, tmp_path):
        write(tmp_path / "D.md", "## Laws\n\ntext\n\n## Laws\n")
        doc = write(tmp_path / "README.md", "[a](D.md#laws) [b](D.md#laws-1)\n")
        assert check_documents([doc]) == []
        doc.write_text("[c](D.md#laws-2)\n")
        assert len(check_documents([doc])) == 1

    def test_headings_inside_code_fences_are_not_anchors(self, tmp_path):
        write(tmp_path / "D.md", "# Real\n\n```\n# Not A Heading\n```\n")
        doc = write(tmp_path / "README.md", "[x](D.md#not-a-heading)\n")
        assert len(check_documents([doc])) == 1

    def test_anchor_into_non_markdown_target_is_not_checked(self, tmp_path):
        write(tmp_path / "script.py", "print('hi')\n")
        doc = write(tmp_path / "README.md", "[code](script.py#L1)\n")
        assert check_documents([doc]) == []


class TestCollectionAndCli:
    def test_directories_are_walked_recursively(self, tmp_path):
        a = write(tmp_path / "docs" / "A.md", "# A\n")
        b = write(tmp_path / "docs" / "deep" / "B.md", "# B\n")
        write(tmp_path / "docs" / "notes.txt", "not markdown\n")
        assert collect_markdown([tmp_path / "docs"]) == [a, b]

    def test_missing_input_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such file"):
            collect_markdown([tmp_path / "GONE.md"])

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = write(tmp_path / "clean.md", "# Fine\n")
        broken = write(tmp_path / "broken.md", "[x](missing.md)\n")
        assert main([str(clean)]) == 0
        assert "all links resolve" in capsys.readouterr().out
        assert main([str(broken)]) == 1
        out = capsys.readouterr().out
        assert "broken.md:1:" in out and "1 broken link(s)" in out
        assert main([]) == 2
        assert main([str(tmp_path / "GONE.md")]) == 2

    def test_repository_documentation_has_no_broken_links(self):
        """The gate CI runs: README + docs/ must stay internally consistent."""
        findings = check_documents(
            [REPO_ROOT / "README.md", REPO_ROOT / "docs"], root=REPO_ROOT
        )
        assert findings == [], "\n".join(finding.format() for finding in findings)
