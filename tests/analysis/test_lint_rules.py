"""Rule-level tests: every rule id has one flagged and one clean fixture.

Fixtures live on disk under ``tests/analysis/fixtures/`` but are linted under
*synthetic* in-scope paths (e.g. ``src/repro/mechanisms/...``) via
``ModuleContext.from_source``: the rules deliberately exclude ``tests/`` and
``fixtures/`` directories, so the on-disk copies never trip the repo-wide lint
gate while the tests still exercise the real scoping logic.
"""

from pathlib import Path

import pytest

from repro.analysis import ModuleContext, get_rules, lint_contexts

FIXTURES = Path(__file__).parent / "fixtures"

MECHANISM_PATH = Path("src/repro/mechanisms/fixture_mechanism.py")
CORE_PATH = Path("src/repro/core/fixture_module.py")
STREAMING_PATH = Path("src/repro/streaming/fixture_aggregates.py")
BENCH_PATH = Path("benchmarks/test_fixture_bench.py")
QUERIES_PATH = Path("src/repro/queries/fixture_queries.py")

#: rule id -> (flagged fixture, clean fixture, synthetic path to lint under).
PAIRS = {
    "priv-flow": ("priv_flow_hdg_leak.py", "priv_flow_clean.py", MECHANISM_PATH),
    "rng-ambient": ("rng_ambient_flagged.py", "rng_ambient_clean.py", CORE_PATH),
    "rng-argless": ("rng_argless_flagged.py", "rng_argless_clean.py", CORE_PATH),
    "rng-entropy": ("rng_entropy_flagged.py", "rng_entropy_clean.py", CORE_PATH),
    "rng-missing-seed": (
        "rng_missing_seed_flagged.py",
        "rng_missing_seed_clean.py",
        CORE_PATH,
    ),
    "rng-doc-example": (
        "rng_doc_example_flagged.py",
        "rng_doc_example_clean.py",
        CORE_PATH,
    ),
    "agg-protocol": ("agg_protocol_flagged.py", "agg_protocol_clean.py", STREAMING_PATH),
    "bench-metrics": ("bench_metrics_flagged.py", "bench_metrics_clean.py", BENCH_PATH),
    "query-surface": (
        "query_surface_flagged.py",
        "query_surface_clean.py",
        QUERIES_PATH,
    ),
}


def lint_fixture(fixture_name, synthetic_path, rule_id):
    source = (FIXTURES / fixture_name).read_text()
    context = ModuleContext.from_source(source, synthetic_path)
    return lint_contexts([context], get_rules([rule_id]))


@pytest.mark.parametrize("rule_id", sorted(PAIRS))
def test_flagged_fixture_is_flagged(rule_id):
    flagged, _, synthetic_path = PAIRS[rule_id]
    findings = lint_fixture(flagged, synthetic_path, rule_id)
    assert findings, f"{flagged} should be flagged by {rule_id}"
    assert {finding.rule_id for finding in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(PAIRS))
def test_clean_fixture_is_clean(rule_id):
    _, clean, synthetic_path = PAIRS[rule_id]
    findings = lint_fixture(clean, synthetic_path, rule_id)
    assert findings == [], f"{clean} should be clean under {rule_id}"


@pytest.mark.parametrize("rule_id", sorted(PAIRS))
def test_clean_fixture_is_clean_under_every_rule(rule_id):
    """Clean fixtures carry no violations at all, not just none for their rule."""
    _, clean, synthetic_path = PAIRS[rule_id]
    source = (FIXTURES / clean).read_text()
    context = ModuleContext.from_source(source, synthetic_path)
    findings = [f for f in lint_contexts([context], get_rules()) if f.rule_id != "bench-baseline"]
    assert findings == []


def test_hdg_leak_regression_flags_the_return():
    """The minimized PR 3 HDG leak must be flagged at the line returning the
    partially-raw stream (the shape the e^eps audit caught dynamically)."""
    source = (FIXTURES / "priv_flow_hdg_leak.py").read_text()
    expected_line = next(
        i for i, line in enumerate(source.splitlines(), start=1) if "return stream" in line
    )
    context = ModuleContext.from_source(source, MECHANISM_PATH)
    findings = lint_contexts([context], get_rules(["priv-flow"]))
    assert [finding.line for finding in findings] == [expected_line]


def test_priv_flow_flags_direct_return():
    source = (
        "class Echo:\n"
        "    def privatize(self, values, seed=None):\n"
        "        return values\n"
    )
    context = ModuleContext.from_source(source, MECHANISM_PATH)
    findings = lint_contexts([context], get_rules(["priv-flow"]))
    assert len(findings) == 1
    assert findings[0].line == 3


def test_rules_respect_out_of_scope_paths():
    """The same flagged sources produce nothing when linted under tests/."""
    for rule_id, (flagged, _, synthetic_path) in PAIRS.items():
        source = (FIXTURES / flagged).read_text()
        test_path = Path("tests") / synthetic_path.name
        context = ModuleContext.from_source(source, test_path)
        assert lint_contexts([context], get_rules([rule_id])) == []


def test_agg_protocol_reports_each_drift():
    source = (FIXTURES / "agg_protocol_flagged.py").read_text()
    findings = lint_fixture("agg_protocol_flagged.py", STREAMING_PATH, "agg-protocol")
    messages = "\n".join(finding.message for finding in findings)
    assert "DriftedAggregate.merge" in messages
    assert "subtract() without merge()" in messages
    assert "DriftedSpec.build" in messages
    assert "subtracted() without merged()" in messages
    assert "DriftedWeightedAggregate.scaled" in messages
    assert len(findings) == 5
    assert "merge(self, shard)" in source  # the drift the fixture encodes
    assert "scaled(self, weight)" in source


class TestSuppressionComments:
    FLAGGED_LINE = "    return points + np.random.normal(scale=0.01, size=points.shape)"

    def _lint_with_comment(self, comment):
        source = (FIXTURES / "rng_ambient_flagged.py").read_text()
        assert self.FLAGGED_LINE in source
        source = source.replace(self.FLAGGED_LINE, self.FLAGGED_LINE + comment)
        context = ModuleContext.from_source(source, CORE_PATH)
        return lint_contexts([context], get_rules(["rng-ambient"]))

    def test_matching_rule_id_suppresses(self):
        assert self._lint_with_comment("  # repro-lint: disable=rng-ambient") == []

    def test_disable_all_suppresses(self):
        assert self._lint_with_comment("  # repro-lint: disable=all") == []

    def test_wrong_rule_id_does_not_suppress(self):
        findings = self._lint_with_comment("  # repro-lint: disable=priv-flow")
        assert [finding.rule_id for finding in findings] == ["rng-ambient"]

    def test_comma_separated_ids(self):
        comment = "  # repro-lint: disable=priv-flow, rng-ambient"
        assert self._lint_with_comment(comment) == []

    def test_suppression_only_covers_its_line(self):
        source = (FIXTURES / "rng_ambient_flagged.py").read_text()
        suppressed = source + (
            "\n\ndef jitter_again(points):  # repro-lint is line-scoped\n"
            "    return points + np.random.normal(size=points.shape)\n"
        )
        context = ModuleContext.from_source(
            suppressed.replace(
                self.FLAGGED_LINE, self.FLAGGED_LINE + "  # repro-lint: disable=all"
            ),
            CORE_PATH,
        )
        findings = lint_contexts([context], get_rules(["rng-ambient"]))
        assert len(findings) == 1  # only the unsuppressed second draw
