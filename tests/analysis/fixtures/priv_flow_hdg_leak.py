"""FLAGGED by priv-flow: minimized reproduction of the PR 3 HDG.privatize_cells leak.

The random mask selects a subpopulation, but the values written back for the
"joint" users are their TRUE coarse cells — selection is random, the reported
values are not.  The e^eps audit caught this dynamically in PR 3; the taint
rule must catch it statically.
"""

import numpy as np

from repro.utils.rng import ensure_rng


class LeakyHDG:
    def __init__(self, coarse):
        self._coarse = coarse

    def privatize_cells(self, cells, seed=None):
        rng = ensure_rng(seed)
        cells = np.asarray(cells, dtype=np.int64)
        n = cells.shape[0]
        joint_mask = rng.random(n) < 0.5
        joint_cells = self._coarse(cells[joint_mask])
        stream = np.empty(n, dtype=np.int64)
        stream[joint_mask] = joint_cells
        stream[~joint_mask] = self._coarse(cells[~joint_mask])
        return stream
