"""CLEAN under rng-doc-example: the example threads a seed through the API."""


def estimate(points, seed=None):
    """Estimate something.

    Example::

        rng = ensure_rng(0)
        points = rng.normal(size=(100, 2))
        estimate(points, seed=rng)
    """
    return points.mean(axis=0)
