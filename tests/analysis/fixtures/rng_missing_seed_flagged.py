"""FLAGGED by rng-missing-seed: draws from a source the caller cannot seed."""

import numpy as np

_ambient_source = np.random.default_rng(12345)


def jitter(points):
    return points + _ambient_source.normal(scale=0.01, size=points.shape)
