"""FLAGGED by rng-doc-example: the docstring below models ambient generator use."""


def estimate(points, seed=None):
    """Estimate something.

    Example::

        points = np.random.default_rng(0).normal(size=(100, 2))
        estimate(points)
    """
    return points.mean(axis=0)
