"""CLEAN under rng-missing-seed: the generator is a parameter, and closures
over an rng threaded by the enclosing scope stay traceable."""

from repro.utils.rng import ensure_rng


def jitter(points, rng):
    return points + rng.normal(scale=0.01, size=points.shape)


def walk(steps, seed=None):
    rng = ensure_rng(seed)

    def one_step(position):
        return position + rng.integers(-1, 2)

    position = 0
    for _ in range(steps):
        position = one_step(position)
    return position
