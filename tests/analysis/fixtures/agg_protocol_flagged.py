"""FLAGGED by agg-protocol: three distinct protocol drifts.

* ``merge`` takes the wrong parameter name (positional call sites in
  ``run_sharded`` still work, attribute-based dispatch does not);
* ``subtract`` exists without ``merge`` on the second class;
* a ``*Spec`` class whose ``build`` takes an argument.
"""


class DriftedAggregate:
    def __init__(self):
        self.total = 0

    def merge(self, shard):
        self.total += shard.total

    def state(self):
        return self.total


class RetireOnlyAggregate:
    def __init__(self):
        self.total = 0

    def subtract(self, other):
        self.total -= other.total


class DriftedSpec:
    def build(self, seed):
        return DriftedAggregate()
