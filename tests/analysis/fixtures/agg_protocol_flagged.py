"""FLAGGED by agg-protocol: five distinct protocol drifts.

* ``merge`` takes the wrong parameter name (positional call sites in
  ``run_sharded`` still work, attribute-based dispatch does not);
* ``subtract`` exists without ``merge`` on the second class;
* a ``*Spec`` class whose ``build`` takes an argument;
* ``subtracted`` exists without ``merged`` (the generic-window drift: a
  sliding window can never have merged what it is asked to retire);
* ``scaled`` takes the wrong parameter name for the decayed-window protocol.
"""


class DriftedAggregate:
    def __init__(self):
        self.total = 0

    def merge(self, shard):
        self.total += shard.total

    def state(self):
        return self.total


class RetireOnlyAggregate:
    def __init__(self):
        self.total = 0

    def subtract(self, other):
        self.total -= other.total


class FunctionalRetireOnlyAggregate:
    def __init__(self, total):
        self.total = total

    def subtracted(self, other):
        return FunctionalRetireOnlyAggregate(self.total - other.total)


class DriftedWeightedAggregate:
    def __init__(self, total):
        self.total = total

    def merged(self, other):
        return DriftedWeightedAggregate(self.total + other.total)

    def subtracted(self, other):
        return DriftedWeightedAggregate(self.total - other.total)

    def scaled(self, weight):
        return DriftedWeightedAggregate(self.total * weight)

    def clamped(self):
        return DriftedWeightedAggregate(max(self.total, 0))


class DriftedSpec:
    def build(self, seed):
        return DriftedAggregate()
