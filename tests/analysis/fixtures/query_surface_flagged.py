"""Flagged: calls the deprecated ``answer_many`` spelling instead of the
unified ``QuerySurface.answer_batch``."""


def score_workload(engine, workload, points):
    answers = engine.answer_many(workload.queries)
    return workload.mean_absolute_error(answers, points)
