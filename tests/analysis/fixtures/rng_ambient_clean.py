"""CLEAN under rng-ambient: all draws go through a threaded Generator."""

from repro.utils.rng import ensure_rng


def jitter(points, seed=None):
    rng = ensure_rng(seed)
    return points + rng.normal(scale=0.01, size=points.shape)
