"""CLEAN under bench-metrics: every record_result carries metrics."""


def test_latency_smoke(record_result):
    elapsed = 0.125
    record_result(
        "latency_smoke",
        f"elapsed={elapsed:.3f}s",
        metrics={"elapsed_s": elapsed},
    )
