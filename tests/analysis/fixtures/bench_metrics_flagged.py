"""FLAGGED by bench-metrics: record_result without a metrics dict."""


def test_latency_smoke(record_result):
    elapsed = 0.125
    record_result("latency_smoke", f"elapsed={elapsed:.3f}s")
