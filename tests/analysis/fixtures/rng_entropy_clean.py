"""CLEAN under rng-entropy: seed material comes from the caller."""

from repro.utils.rng import ensure_rng


def make_generator(seed):
    return ensure_rng(seed)


def coin(rng):
    return rng.random() < 0.5
