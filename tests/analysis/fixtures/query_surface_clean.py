"""Clean: speaks the unified query surface (``answer`` / ``answer_batch``)."""


def score_workload(engine, workload, points):
    answers = engine.answer_batch(workload.queries)
    return workload.mean_absolute_error(answers, points)


def answer_one(engine, query):
    return engine.answer(query)
