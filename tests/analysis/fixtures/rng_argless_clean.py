"""CLEAN under rng-argless: generators are built from an explicit seed."""

import numpy as np

from repro.utils.rng import ensure_rng


def make_generator(seed):
    return ensure_rng(seed)


def make_sequence(seed):
    return np.random.SeedSequence(seed)
