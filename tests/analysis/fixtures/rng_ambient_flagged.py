"""FLAGGED by rng-ambient: module-level np.random draws use hidden global state."""

import numpy as np


def jitter(points):
    return points + np.random.normal(scale=0.01, size=points.shape)
