"""Fixture for bench-baseline: asserts on two ratios, records both as metrics.

Whether this is flagged depends on the ``benchmarks/baselines/smoke.json``
sitting next to the file the test materializes it as: gate both metrics and it
is clean; gate only one and the other is flagged.
"""


def test_kernel_throughput(record_result):
    kernel_speedup = 12.0
    copy_ratio = 0.4
    assert kernel_speedup > 5.0
    assert copy_ratio < 1.0
    record_result(
        "kernel_throughput",
        f"speedup={kernel_speedup:.1f}x",
        metrics={"kernel_speedup": kernel_speedup, "copy_ratio": copy_ratio},
    )
