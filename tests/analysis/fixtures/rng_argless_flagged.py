"""FLAGGED by rng-argless: fresh OS entropy outside utils/rng.py."""

import numpy as np


def make_generator():
    return np.random.default_rng()


def make_sequence():
    return np.random.SeedSequence()
