"""CLEAN under agg-protocol: conforming mutable and functional aggregates."""


class WindowedCountAggregate:
    """Conforms to the functional generic-window protocol (merged/subtracted
    exact inverses plus the decay pair scaled/clamped)."""

    def __init__(self, total):
        self.total = total

    def merged(self, other):
        return WindowedCountAggregate(self.total + other.total)

    def subtracted(self, other):
        return WindowedCountAggregate(self.total - other.total)

    def scaled(self, factor):
        return WindowedCountAggregate(self.total * factor)

    def clamped(self):
        return WindowedCountAggregate(max(self.total, 0))


class CountAggregate:
    def __init__(self):
        self.total = 0

    def merge(self, other):
        self.total += other.total

    def subtract(self, other):
        self.total -= other.total

    def state(self):
        return self.total


class CountSpec:
    def build(self):
        return CountAggregate()
