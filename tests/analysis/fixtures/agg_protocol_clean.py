"""CLEAN under agg-protocol: a conforming mergeable aggregate and its spec."""


class CountAggregate:
    def __init__(self):
        self.total = 0

    def merge(self, other):
        self.total += other.total

    def subtract(self, other):
        self.total -= other.total

    def state(self):
        return self.total


class CountSpec:
    def build(self):
        return CountAggregate()
