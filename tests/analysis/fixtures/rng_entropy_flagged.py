"""FLAGGED by rng-entropy: stdlib random import and wall-clock seed material."""

import random
import time

import numpy as np


def make_generator():
    return np.random.default_rng(int(time.time()))


def coin():
    return random.random() < 0.5
