"""CLEAN under priv-flow: the GRR shape — every user's report is randomized.

``np.where(keep, values, noise)`` keeps the true value only where the *keep
coin* said so, which is exactly the sanctioned randomized-response shape (the
random mask gates between truth and noise per user, it does not select a
subpopulation whose raw values pass through).
"""

import numpy as np

from repro.utils.rng import ensure_rng


class TinyGRR:
    def __init__(self, k, p_keep):
        self.k = k
        self.p_keep = p_keep

    def privatize(self, values, seed=None):
        rng = ensure_rng(seed)
        values = np.asarray(values, dtype=np.int64)
        keep = rng.random(values.shape[0]) < self.p_keep
        noise = rng.integers(0, self.k, size=values.shape[0])
        return np.where(keep, values, noise)
