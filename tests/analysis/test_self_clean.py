"""The repo's own tree must lint clean — this is the same gate CI runs."""

from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_benchmarks_lint_clean():
    findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    formatted = "\n".join(finding.format() for finding in findings)
    assert findings == [], f"repo tree has lint findings:\n{formatted}"


def test_real_aggregates_satisfy_protocol():
    """The streaming aggregates and sharded-run specs are in scope for
    agg-protocol; a signature drift there must fail this test, not just CI."""
    findings = lint_paths([REPO_ROOT / "src" / "repro"], rule_ids=["agg-protocol"])
    assert findings == []
