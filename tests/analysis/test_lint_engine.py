"""Engine, registry, findings-rendering and bench-baseline filesystem tests."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    RULES,
    get_rules,
    lint_paths,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestRegistry:
    def test_all_rule_ids_registered(self):
        assert set(RULES) == {
            "priv-flow",
            "rng-ambient",
            "rng-argless",
            "rng-entropy",
            "rng-missing-seed",
            "rng-doc-example",
            "agg-protocol",
            "bench-metrics",
            "bench-baseline",
            "query-surface",
        }

    def test_get_rules_default_returns_all(self):
        assert {rule.rule_id for rule in get_rules()} == set(RULES)

    def test_get_rules_filters_and_preserves_request(self):
        rules = get_rules(["rng-ambient", "priv-flow"])
        assert {rule.rule_id for rule in rules} == {"rng-ambient", "priv-flow"}

    def test_get_rules_unknown_id_raises(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            get_rules(["no-such-rule"])


class TestEngine:
    def test_parse_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        findings = lint_paths([tmp_path])
        assert [finding.rule_id for finding in findings] == ["parse-error"]

    def test_overlapping_paths_deduplicate(self, tmp_path):
        module = tmp_path / "src" / "repro" / "core" / "dup.py"
        module.parent.mkdir(parents=True)
        module.write_text((FIXTURES / "rng_ambient_flagged.py").read_text())
        findings = lint_paths([tmp_path, module, module], rule_ids=["rng-ambient"])
        assert len(findings) == 1

    def test_skip_dirs_are_not_linted(self, tmp_path):
        cached = tmp_path / "src" / "repro" / "__pycache__" / "junk.py"
        cached.parent.mkdir(parents=True)
        cached.write_text("import random\n")
        assert lint_paths([tmp_path]) == []

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "core"
        tree.mkdir(parents=True)
        (tree / "b_module.py").write_text(
            "import numpy as np\n\n\ndef f(points):\n"
            "    return np.random.normal(size=points.shape)\n"
        )
        (tree / "a_module.py").write_text(
            "import numpy as np\n\n\ndef g(points):\n"
            "    return np.random.uniform(size=points.shape)\n"
        )
        findings = lint_paths([tmp_path], rule_ids=["rng-ambient"])
        assert [Path(finding.path).name for finding in findings] == [
            "a_module.py",
            "b_module.py",
        ]


class TestBenchBaseline:
    """bench-baseline reads the smoke.json next to the benchmark file."""

    def _materialize(self, tmp_path, gated):
        bench_dir = tmp_path / "benchmarks"
        (bench_dir / "baselines").mkdir(parents=True)
        source = (FIXTURES / "bench_baseline_throughput.py").read_text()
        (bench_dir / "test_kernel_throughput.py").write_text(source)
        if gated is not None:
            baseline = {"profile": "smoke", "max_regression": 0.3, "gated": gated}
            (bench_dir / "baselines" / "smoke.json").write_text(json.dumps(baseline))
        return bench_dir

    def test_fully_gated_baseline_is_clean(self, tmp_path):
        gated = {"kernel_throughput": {"kernel_speedup": 12.0, "copy_ratio": 0.4}}
        bench_dir = self._materialize(tmp_path, gated)
        assert lint_paths([bench_dir], rule_ids=["bench-baseline"]) == []

    def test_ungated_asserted_metric_is_flagged(self, tmp_path):
        gated = {"kernel_throughput": {"kernel_speedup": 12.0}}
        bench_dir = self._materialize(tmp_path, gated)
        findings = lint_paths([bench_dir], rule_ids=["bench-baseline"])
        assert len(findings) == 1
        assert "copy_ratio" in findings[0].message

    def test_missing_baseline_file_is_flagged(self, tmp_path):
        bench_dir = self._materialize(tmp_path, gated=None)
        findings = lint_paths([bench_dir], rule_ids=["bench-baseline"])
        assert len(findings) == 1
        assert findings[0].line == 1
        assert "missing or unreadable" in findings[0].message


class TestRendering:
    FINDINGS = [
        Finding(path="src/repro/a.py", line=3, rule_id="rng-ambient", message="draw"),
        Finding(path="src/repro/b.py", line=7, rule_id="priv-flow", message="leak"),
    ]

    def test_format_is_compiler_style(self):
        assert self.FINDINGS[0].format() == "src/repro/a.py:3: [rng-ambient] draw"

    def test_render_text_has_count_footer(self):
        text = render_text(self.FINDINGS)
        assert text.splitlines()[-1] == "2 findings"
        assert render_text([]).splitlines()[-1] == "0 findings"
        assert render_text(self.FINDINGS[:1]).splitlines()[-1] == "1 finding"

    def test_render_json_round_trips(self):
        payload = json.loads(render_json(self.FINDINGS))
        assert payload == [
            {"path": "src/repro/a.py", "line": 3, "rule_id": "rng-ambient", "message": "draw"},
            {"path": "src/repro/b.py", "line": 7, "rule_id": "priv-flow", "message": "leak"},
        ]
