"""Shared fixtures and hypothesis profiles for the test suite.

Fixtures are deliberately small (tiny grids, a few thousand points at most) so the full
suite stays in the tens of seconds; statistical assertions use generous tolerances and
fixed seeds so they are deterministic.

Two hypothesis profiles are registered and selected with the ``HYPOTHESIS_PROFILE``
environment variable (the CI workflow exports ``HYPOTHESIS_PROFILE=ci``):

* ``default`` — local development: normal randomised search, no deadline (some
  properties build transition matrices whose first run dwarfs any per-example
  deadline).
* ``ci`` — reproducible runs: ``derandomize=True`` (a fixed seed, so a red CI run is
  replayable bit-for-bit), an explicit generous per-example deadline to catch
  pathological blowups, and ``print_blob`` so failures ship their repro blob in the
  log.

The directory of this conftest is put on ``sys.path`` so every test module (including
the ones in subdirectories) can import the shared strategy library ``strategies.py``.
"""

from __future__ import annotations

import os
import sys
from datetime import timedelta
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.domain import GridDistribution, GridSpec, SpatialDomain

sys.path.insert(0, str(Path(__file__).parent))

settings.register_profile("default", settings(deadline=None))
settings.register_profile(
    "ci",
    settings(
        derandomize=True,
        deadline=timedelta(seconds=5),
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_domain() -> SpatialDomain:
    return SpatialDomain.unit()


@pytest.fixture
def unit_grid5(unit_domain) -> GridSpec:
    """A 5x5 grid over the unit square (exact-LP Wasserstein territory)."""
    return GridSpec(unit_domain, 5)


@pytest.fixture
def unit_grid8(unit_domain) -> GridSpec:
    """An 8x8 grid over the unit square."""
    return GridSpec(unit_domain, 8)


@pytest.fixture
def clustered_points(rng) -> np.ndarray:
    """A skewed two-cluster point cloud inside the unit square (3,000 points)."""
    cluster_a = rng.normal([0.25, 0.3], 0.07, size=(2000, 2))
    cluster_b = rng.normal([0.75, 0.7], 0.05, size=(1000, 2))
    return np.clip(np.vstack([cluster_a, cluster_b]), 0.0, 1.0)


@pytest.fixture
def clustered_distribution(unit_grid5, clustered_points) -> GridDistribution:
    return unit_grid5.distribution(clustered_points)


@pytest.fixture
def uniform_distribution(unit_grid5) -> GridDistribution:
    return GridDistribution.uniform(unit_grid5)


@pytest.fixture
def corner_distribution(unit_grid5) -> GridDistribution:
    """All mass in the lower-left cell — the most concentrated distribution possible."""
    grid = np.zeros((5, 5))
    grid[0, 0] = 1.0
    return GridDistribution(unit_grid5, grid)
