"""Cross-module integration tests.

These exercise the same paths the benchmarks use, at smoke size: datasets feed
mechanisms through the experiment runner, results are compared with the optimal
transport metrics, and the paper's qualitative findings are asserted (DAM beats MDSW,
error shrinks with budget, the optimal radius is a sensible choice).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DiscreteDAM,
    DiscreteHUEM,
    GridSpec,
    SpatialDomain,
    estimate_spatial_distribution,
)
from repro.datasets.loader import load_dataset
from repro.experiments.config import smoke_config
from repro.experiments.reporting import mean_error
from repro.experiments.runner import evaluate_on_part, sweep_parameter
from repro.mechanisms import MDSW, SEMGeoI
from repro.metrics import local_privacy_of_mechanism, wasserstein2_grid


@pytest.fixture(scope="module")
def crime_part():
    dataset = load_dataset("Crime", scale=0.02, seed=0)
    name, points, domain = dataset.parts[0]
    return points, domain


class TestEndToEndQuickstart:
    def test_quickstart_flow(self):
        rng = np.random.default_rng(0)
        locations = np.clip(rng.normal([0.3, 0.6], 0.1, size=(5000, 2)), 0, 1)
        result = estimate_spatial_distribution(locations, epsilon=3.5, d=8, seed=1)
        w2 = wasserstein2_grid(result.true_distribution, result.estimate)
        assert w2 < 0.25

    def test_real_surrogate_flow(self, crime_part):
        points, domain = crime_part
        pipeline_error = evaluate_on_part("DAM", points, domain, d=5, epsilon=3.5, seed=0)
        assert 0 < pipeline_error < 0.5


class TestPaperHeadlineClaims:
    """Smoke-sized checks of the orderings the paper reports (full-size in benchmarks)."""

    def test_dam_beats_mdsw_on_average(self):
        config = smoke_config().with_overrides(datasets=("Crime",), n_repeats=2)
        result = sweep_parameter(
            "headline", "d", (3, 5), ("DAM", "MDSW"), config, datasets=("Crime",)
        )
        assert mean_error(result, "Crime", "DAM") <= mean_error(result, "Crime", "MDSW")

    def test_error_decreases_with_budget(self, crime_part):
        points, domain = crime_part
        low = evaluate_on_part("DAM", points, domain, d=5, epsilon=0.7, seed=1)
        high = evaluate_on_part("DAM", points, domain, d=5, epsilon=7.0, seed=1)
        assert high < low

    def test_shrinkage_does_not_hurt(self, crime_part):
        """DAM with shrinkage tracks or beats DAM-NS on road-network-like data."""
        points, domain = crime_part
        errors = {}
        for name in ("DAM", "DAM-NS"):
            errors[name] = np.mean(
                [
                    evaluate_on_part(name, points, domain, d=5, epsilon=2.1, seed=seed)
                    for seed in range(3)
                ]
            )
        assert errors["DAM"] <= errors["DAM-NS"] * 1.15

    def test_optimal_radius_is_competitive(self, crime_part):
        """The closed-form b_check is within noise of the best swept radius (Figure 8)."""
        from repro.core.radius import grid_radius

        points, domain = crime_part
        d, epsilon = 8, 3.5
        best_b = grid_radius(epsilon, d, 1.0)
        errors = {}
        for b_hat in {1, best_b, best_b + 2}:
            errors[b_hat] = np.mean(
                [
                    evaluate_on_part(
                        "DAM", points, domain, d=d, epsilon=epsilon, b_hat=b_hat, seed=seed
                    )
                    for seed in range(2)
                ]
            )
        assert errors[best_b] <= min(errors.values()) * 1.3


class TestPrivacyAccounting:
    def test_all_ldp_mechanisms_bounded(self):
        grid = GridSpec.unit(5)
        epsilon = 2.1
        for mechanism in (
            DiscreteDAM(grid, epsilon),
            DiscreteHUEM(grid, epsilon),
        ):
            assert mechanism.ldp_ratio() <= np.exp(epsilon) * (1 + 1e-9)
        mdsw = MDSW(grid, epsilon)
        assert mdsw.oracle_x.ldp_ratio() <= np.exp(epsilon / 2) * (1 + 1e-6)
        assert mdsw.oracle_y.ldp_ratio() <= np.exp(epsilon / 2) * (1 + 1e-6)

    def test_lp_calibration_is_consistent_across_mechanism_families(self):
        """After calibration DAM and SEM-Geo-I offer the same Local Privacy."""
        from repro.experiments.runner import calibrated_sem_epsilon

        grid = GridSpec.unit(4)
        epsilon = 3.5
        dam_lp = local_privacy_of_mechanism(DiscreteDAM(grid, epsilon))
        sem_lp = local_privacy_of_mechanism(SEMGeoI(grid, calibrated_sem_epsilon(grid, epsilon)))
        assert sem_lp == pytest.approx(dam_lp, rel=0.02)


class TestDomainHandling:
    def test_rectangular_geographic_domain(self):
        domain = SpatialDomain(-74.05, -73.73, 40.55, 40.88)
        rng = np.random.default_rng(5)
        points = np.column_stack(
            [rng.uniform(-74.0, -73.8, 3000), rng.uniform(40.6, 40.8, 3000)]
        )
        error = evaluate_on_part("DAM", points, domain, d=6, epsilon=3.5, seed=0)
        assert 0 <= error < 0.5

    def test_no_points_in_domain(self):
        domain = SpatialDomain.unit()
        far_points = np.full((100, 2), 10.0)
        error = evaluate_on_part("DAM", far_points, domain, d=4, epsilon=2.0, seed=0)
        # With no data both the truth and the estimate fall back to uniform.
        assert error == pytest.approx(0.0, abs=0.35)
