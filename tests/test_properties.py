"""Cross-cutting property-based tests (hypothesis) on the library's core invariants.

Module-specific property tests live next to their modules; this file holds the
invariants that span several components:

* every mechanism's transition matrix is row-stochastic and e^eps-bounded,
* every exported mechanism passes the empirical privacy audit within its claim,
* estimation always returns a valid probability distribution,
* the Wasserstein metrics satisfy the metric axioms on random inputs,
* the disk geometry is consistent between its closed forms and the enumeration.

All generators come from the shared strategy library (``tests/strategies.py``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import strategies
from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec
from repro.core.geometry import disk_high_low_areas, enumerate_disk_cells, pure_low_cell_count
from repro.core.huem import DiscreteHUEM
from repro.core.radius import grid_radius, optimal_radius
from repro.mechanisms.cfo import BucketCFOMechanism
from repro.mechanisms.geo_i import DiscreteGeoIMechanism
from repro.mechanisms.hdg import HDG
from repro.mechanisms.mdsw import MDSW
from repro.mechanisms.sem_geo_i import SEMGeoI
from repro.metrics.privacy_audit import audit_mechanism, audit_pairwise_privacy
from repro.metrics.sliced import sliced_wasserstein
from repro.metrics.wasserstein import wasserstein2_grid

SLOW_SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

epsilon_strategy = strategies.epsilons()
small_grid_strategy = strategies.grid_sides(2, 7)


class TestMechanismInvariants:
    @given(small_grid_strategy, epsilon_strategy, strategies.b_hats())
    @SLOW_SETTINGS
    def test_dam_transition_invariants(self, d, epsilon, b_hat):
        mech = DiscreteDAM(GridSpec.unit(d), epsilon, b_hat=b_hat)
        matrix = mech.transition
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)
        assert matrix.min() > 0
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    @given(small_grid_strategy, epsilon_strategy)
    @SLOW_SETTINGS
    def test_huem_transition_invariants(self, d, epsilon):
        mech = DiscreteHUEM(GridSpec.unit(d), epsilon, b_hat=1)
        np.testing.assert_allclose(mech.transition.sum(axis=1), 1.0, atol=1e-9)
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    @given(small_grid_strategy, epsilon_strategy, strategies.b_hats())
    @SLOW_SETTINGS
    def test_dam_ns_audit_bounded(self, d, epsilon, b_hat):
        mech = DiscreteDAM(GridSpec.unit(d), epsilon, b_hat=b_hat, use_shrinkage=False)
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    @given(small_grid_strategy, epsilon_strategy, strategies.b_hats())
    @SLOW_SETTINGS
    def test_operator_audit_matches_dense_audit(self, d, epsilon, b_hat):
        """The structured audit and the dense audit must agree on the same mechanism."""
        grid = GridSpec.unit(d)
        via_operator = DiscreteDAM(grid, epsilon, b_hat=b_hat, backend="operator")
        via_dense = DiscreteDAM(grid, epsilon, b_hat=b_hat, backend="dense")
        assert via_operator.ldp_ratio() == pytest.approx(via_dense.ldp_ratio(), rel=1e-12)

    @given(small_grid_strategy, epsilon_strategy, strategies.seeds())
    @SLOW_SETTINGS
    def test_estimation_always_returns_distribution(self, d, epsilon, seed):
        rng = np.random.default_rng(seed)
        grid = GridSpec.unit(d)
        points = rng.random((200, 2))
        for mechanism in (DiscreteDAM(grid, epsilon, b_hat=1), MDSW(grid, epsilon)):
            estimate = mechanism.run(points, seed=rng).estimate
            assert estimate.flat().sum() == pytest.approx(1.0)
            assert np.all(estimate.flat() >= 0)

    @given(small_grid_strategy, epsilon_strategy)
    @SLOW_SETTINGS
    def test_sem_inclusion_invariants(self, d, epsilon):
        mech = SEMGeoI(GridSpec.unit(d), epsilon)
        inclusion = mech.inclusion_probabilities
        assert np.all(inclusion > 0)
        assert np.all(inclusion <= 1 + 1e-12)
        np.testing.assert_allclose(inclusion.sum(axis=1), mech.subset_size, rtol=1e-9)


class TestMetricAxioms:
    @given(
        st.integers(min_value=2, max_value=6),
        strategies.seeds(),
    )
    @SLOW_SETTINGS
    def test_wasserstein_metric_axioms(self, d, seed):
        rng = np.random.default_rng(seed)
        grid = GridSpec.unit(d)
        a = GridDistribution(grid, rng.dirichlet(np.ones(d * d)).reshape(d, d))
        b = GridDistribution(grid, rng.dirichlet(np.ones(d * d)).reshape(d, d))
        d_ab = wasserstein2_grid(a, b)
        assert d_ab >= 0
        assert wasserstein2_grid(a, a) == pytest.approx(0.0, abs=1e-6)
        assert d_ab == pytest.approx(wasserstein2_grid(b, a), rel=1e-6, abs=1e-9)
        assert d_ab <= math.sqrt(2.0) + 1e-9

    @given(
        st.integers(min_value=2, max_value=6),
        strategies.seeds(),
    )
    @SLOW_SETTINGS
    def test_sliced_wasserstein_lower_bounds_wasserstein(self, d, seed):
        rng = np.random.default_rng(seed)
        grid = GridSpec.unit(d)
        a = GridDistribution(grid, rng.dirichlet(np.ones(d * d)).reshape(d, d))
        b = GridDistribution(grid, rng.dirichlet(np.ones(d * d)).reshape(d, d))
        sw = sliced_wasserstein(a, b, p=2.0, n_projections=48)
        w2 = wasserstein2_grid(a, b)
        assert sw <= w2 + 1e-6


class TestGeometryInvariants:
    @given(st.integers(min_value=1, max_value=20))
    @SLOW_SETTINGS
    def test_disk_area_between_inscribed_and_circumscribed(self, b_hat):
        count = len(enumerate_disk_cells(b_hat))
        assert math.pi * b_hat**2 <= count + 4 * b_hat + 4
        assert count <= math.pi * (b_hat + 1.5) ** 2

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=10))
    @SLOW_SETTINGS
    def test_theorem_vi2_nonnegative_and_monotone(self, b_hat, d):
        value = pure_low_cell_count(d, b_hat)
        assert value >= 0
        assert pure_low_cell_count(d + 1, b_hat) > value

    @given(st.integers(min_value=1, max_value=20))
    @SLOW_SETTINGS
    def test_shrinkage_bounded_by_cell_count(self, b_hat):
        s_high, low_in_disk = disk_high_low_areas(b_hat)
        assert 0 < s_high <= len(enumerate_disk_cells(b_hat))
        assert low_in_disk >= 0


class TestMechanismPrivacyAudit:
    """Every exported mechanism must pass the empirical audit within its claim.

    The audit (``metrics/privacy_audit``) estimates realised log-probability ratios
    from repeated runs.  Strict epsilon-LDP mechanisms are checked against ``e^eps``
    via :func:`audit_mechanism`; the Geo-I family claims a *distance-scaled* bound
    ``e^{eps * d(a, b)}`` (cell units), so it is audited pairwise against exactly
    that claim.  This property caught a real leak: HDG's generic report stream used
    to return the true coarse cell.
    """

    AUDIT_SETTINGS = settings(
        max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )

    @staticmethod
    def _ldp_mechanisms(grid: GridSpec, epsilon: float):
        return [
            DiscreteDAM(grid, epsilon, b_hat=1),
            DiscreteDAM(grid, epsilon, b_hat=1, use_shrinkage=False),
            DiscreteHUEM(grid, epsilon, b_hat=1),
            MDSW(grid, epsilon),
            BucketCFOMechanism(grid, epsilon, oracle="grr"),
            BucketCFOMechanism(grid, epsilon, oracle="oue"),
            BucketCFOMechanism(grid, epsilon, oracle="olh"),
            HDG(grid, epsilon),
        ]

    @given(strategies.grid_sides(2, 5), epsilon_strategy, strategies.seeds())
    @AUDIT_SETTINGS
    def test_ldp_mechanisms_within_claimed_epsilon(self, d, epsilon, seed):
        grid = GridSpec.unit(d)
        for mechanism in self._ldp_mechanisms(grid, epsilon):
            # The audit maximises over outputs, so keep a few hundred trials per
            # output — too few inflates the max beyond what the per-output
            # confidence bound compensates (see audit_mechanism's docstring).
            # confidence_z=4: the violation check runs max-over-outputs across two
            # pairs, eight mechanisms and many hypothesis examples, so a z=3
            # per-output bound false-flags correct mechanisms every few thousand
            # draws (observed on Bucket+GRR); z=4 absorbs that multiplicity while
            # a real leak (an unbounded ratio) still trips instantly.
            n_trials = max(5_000, 300 * mechanism.output_domain_size())
            results = audit_mechanism(
                mechanism, n_pairs=2, n_trials=n_trials, confidence_z=4.0, seed=seed
            )
            assert not any(result.violated for result in results), (
                f"{mechanism.name} exceeded its claimed epsilon={epsilon}: "
                f"{max(r.epsilon_lower_confidence for r in results):.3f}"
            )

    @given(strategies.grid_sides(2, 5), st.sampled_from([0.7, 1.4, 2.1]), strategies.seeds())
    @AUDIT_SETTINGS
    def test_geo_i_family_within_distance_scaled_claim(self, d, epsilon, seed):
        grid = GridSpec.unit(d)
        cell_a, cell_b = 0, grid.n_cells - 1  # far corners: the worst claimed pair
        for mechanism in (DiscreteGeoIMechanism(grid, epsilon), SEMGeoI(grid, epsilon)):
            distance = float(mechanism.cell_distances[cell_a, cell_b])
            result = audit_pairwise_privacy(mechanism, cell_a, cell_b, n_trials=5_000, seed=seed)
            assert result.epsilon_lower_confidence <= epsilon * distance * (1 + 1e-9), (
                f"{mechanism.name} exceeded its Geo-I claim eps*d = "
                f"{epsilon * distance:.3f}: {result.epsilon_lower_confidence:.3f}"
            )


class TestRadiusInvariants:
    @given(st.floats(min_value=0.3, max_value=9.0), st.integers(min_value=1, max_value=30))
    @SLOW_SETTINGS
    def test_grid_radius_consistent_with_continuous(self, epsilon, d):
        b_star = optimal_radius(epsilon)
        b_hat = grid_radius(epsilon, d, 1.0)
        assert b_hat >= 1
        assert b_hat <= max(math.floor(b_star * d), 1)
